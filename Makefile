# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

# The benchmark set the CI bench-gate guards against regression. C1
# (access designs), C4 (accounting), C7 (transfer security + pooling),
# C8 (contended access), C14 (VM agent workloads) and C15 (dispatch-path
# name resolution) cover every hot path this repo optimizes.
GATE_BENCH := BenchmarkC1_|BenchmarkC4_|BenchmarkC7_|BenchmarkC8_|BenchmarkC14_|BenchmarkC15_
BENCH_FLAGS := -run '^$$' -benchtime 0.5s -count 3

.PHONY: test race lint bench-gate-run bench-baseline bench-gate load load-smoke slo-gate

test:
	go build ./... && go test ./...

race:
	go test -race ./...

# lint runs the full static gate: formatting, go vet, staticcheck when
# the binary is installed (it is optional — the repo's own analyzers do
# the heavy lifting), and the in-tree type-aware analyzer suite
# (cmd/repolint; see docs/ANALYZERS.md). Fails on any unsuppressed
# finding.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi
	go vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (optional)"; \
	fi
	go run ./cmd/repolint .

# bench-gate-run produces one gate-comparable measurement file.
bench-gate-run:
	go test $(BENCH_FLAGS) -bench '$(GATE_BENCH)' . | tee bench_new.txt

# bench-baseline regenerates the committed baseline. Run it on the same
# class of machine the gate compares on (the CI runner for CI gating;
# your workstation for local comparisons) and commit the result.
bench-baseline:
	mkdir -p bench
	go test $(BENCH_FLAGS) -bench '$(GATE_BENCH)' . | tee bench/baseline.txt

# bench-gate compares a fresh run against the committed baseline and
# fails on a >15% geomean regression — the same check CI runs.
bench-gate: bench-gate-run
	go run ./cmd/benchgate -old bench/baseline.txt -new bench_new.txt

# load runs the full cluster load scenario suite (C16): in-process
# multi-server clusters, seeded open-loop agent load, scripted faults.
# Writes BENCH_cluster.json + BENCH_cluster.csv.
load:
	go run ./cmd/ajanta-load -scenario all -seed 42 \
		-json BENCH_cluster.json -csv BENCH_cluster.csv

# load-smoke is the CI-sized variant (each scenario's smoke scaling) —
# the same command the cluster-slo CI job runs.
load-smoke:
	go run ./cmd/ajanta-load -scenario all -smoke -seed 42 \
		-json BENCH_cluster.json -csv BENCH_cluster.csv

# slo-gate re-evaluates the measured artifact against every scenario's
# SLO block and fails on any breach (lost agents, latency percentiles,
# throughput floors) — the same check the cluster-slo CI job runs.
slo-gate: load-smoke
	go run ./cmd/slogate -report BENCH_cluster.json
