// Package ajanta is the public API of this reproduction of "Protected
// Resource Access for Mobile Agent-based Distributed Computing"
// (Tripathi & Karnik, ICPP 1998) — the Ajanta mobile agent system's
// security architecture, implemented in Go.
//
// The library provides:
//
//   - agent servers (Fig. 1) hosting mobile agents written in ASL, a
//     small agent language compiled to a verified, metered bytecode VM;
//   - the paper's proxy-based protected resource access (§5.5):
//     policy-driven proxies with per-method enabling, identity-based
//     capability binding, expiry, usage accounting, and selective
//     revocation;
//   - tamperproof credentials with cascaded delegation (§5.2);
//   - a secure server-to-server transfer protocol (mutual
//     authentication, encryption, integrity, replay defence);
//   - per-agent namespaces with trusted-module shadowing (the class
//     loader analogue, §5.3) and a security-manager reference monitor.
//
// Quickstart:
//
//	p, _ := ajanta.NewPlatform("example.org")
//	defer p.StopAll()
//	srv, _ := p.StartServer("s1", "s1:7000", ajanta.ServerConfig{
//	    Rules: []ajanta.Rule{{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"}}},
//	})
//	_ = ajanta.InstallResource(srv, ajanta.CounterResource(
//	    ajanta.ResourceName("example.org", "counter"), "counter"))
//	home, _ := p.StartServer("home", "home:7000", ajanta.ServerConfig{})
//	owner, _ := p.NewOwner("alice")
//	a, _ := p.BuildAgent(ajanta.AgentSpec{
//	    Owner: owner, Name: "hello",
//	    Source: `module hello
//	func main() {
//	  var c = get_resource("ajanta:resource:example.org/counter")
//	  invoke(c, "add", 41)
//	  report(invoke(c, "add", 1))
//	}`,
//	    Itinerary: ajanta.Tour("main", srv.Name()),
//	    Home:      home,
//	})
//	back, _ := p.LaunchAndWait(home, a, 10*time.Second)
//	fmt.Println(back.Results) // [42]
//
// See examples/ for complete programs and DESIGN.md for the
// paper-to-module map.
package ajanta

import (
	"time"

	"repro/internal/admission"
	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/retry"
	"repro/internal/server"
	"repro/internal/transfer"
	"repro/internal/vm"
	"repro/internal/vm/analysis"
)

// Core platform types.
type (
	// Platform wires CA, name service, network and servers together.
	Platform = core.Platform
	// ServerConfig tunes one agent server.
	ServerConfig = core.ServerConfig
	// AgentSpec describes an agent to build from ASL source.
	AgentSpec = core.AgentSpec
	// Server is one agent server (Fig. 1).
	Server = server.Server
	// Agent is a mobile agent: code + state + credentials + itinerary.
	Agent = agent.Agent
	// Itinerary is the agent's planned tour.
	Itinerary = agent.Itinerary
	// Stop is one itinerary entry with alternative servers.
	Stop = agent.Stop
	// Name is a global, location-independent identifier.
	Name = names.Name
	// Identity is a certified principal (name + keys + certificate).
	Identity = keys.Identity
	// Rule is one policy clause of a server's security policy.
	Rule = policy.Rule
	// Quota bounds resource usage per binding.
	Quota = policy.Quota
	// Tier is one admission tier: per-principal rate limit,
	// concurrent-visit cap and fuel quota applied at the arrival gate
	// (docs/PROTOCOLS.md §3.3).
	Tier = policy.Tier
	// TierAssignment maps a principal (or group, or everyone) to a
	// tier by name.
	TierAssignment = policy.TierAssignment
	// PolicyDocument is a parsed policy file: rules plus admission
	// tier configuration (ParsePolicy).
	PolicyDocument = policy.Document
	// RightSet is a set of delegated rights carried in credentials.
	RightSet = cred.RightSet
	// Right is one "resource.method" permission.
	Right = cred.Right
	// ResourceDef is a concrete protected resource.
	ResourceDef = resource.Def
	// ResourceMethod is one callable resource operation.
	ResourceMethod = resource.Method
	// Proxy is the per-agent protected interface to a resource.
	Proxy = resource.Proxy
	// Value is a VM value (agent state and method arguments).
	Value = vm.Value
	// Credentials are an agent's tamperproof identity/rights record.
	Credentials = cred.Credentials
	// PolicyEngine evaluates a server's security policy.
	PolicyEngine = policy.Engine
	// DomainID identifies a protection domain within one server.
	DomainID = domain.ID
	// ProxyRequest carries the context for a GetProxy upcall, for
	// embedders building custom resource servers on the Go API.
	ProxyRequest = resource.Request
	// ProxyAccount is a snapshot of a proxy's usage accounting.
	ProxyAccount = resource.Account
	// RetryPolicy tunes dispatch retry/backoff (ServerConfig.Retry).
	RetryPolicy = retry.Policy
	// ServerStats is a snapshot of a server's fault-tolerance counters.
	ServerStats = server.Stats
	// ChannelPoolConfig tunes the per-destination pool of persistent
	// authenticated transfer channels (ServerConfig.ChannelPool).
	ChannelPoolConfig = transfer.PoolConfig
	// ChannelPoolStats is a snapshot of a server's outbound channel
	// pool counters (Server.ChannelPoolStats).
	ChannelPoolStats = transfer.PoolStats
	// AdmissionMode selects whether arriving agents' access manifests
	// are enforced at admission (ServerConfig.Admission).
	AdmissionMode = server.AdmissionMode
	// AccessManifest is an agent bundle's statically computed
	// capability surface (see docs/PROTOCOLS.md §3.1).
	AccessManifest = analysis.Manifest
)

// Admission modes (ServerConfig.Admission).
const (
	// AdmissionOff hosts any agent whose credentials and code verify;
	// access control happens only at resource binding time.
	AdmissionOff = server.AdmissionOff
	// AdmissionEnforce additionally requires, before any VM starts,
	// that the agent's access manifest is analyzable, covered by its
	// declaration, and admissible under this server's policy.
	AdmissionEnforce = server.AdmissionEnforce
)

// ServerDomain is the server's own protection domain ID.
const ServerDomain = domain.ServerID

// NewPolicyEngine returns an empty (default-deny) policy engine.
func NewPolicyEngine() *PolicyEngine { return policy.NewEngine() }

// ParseRules reads the textual policy format (see docs/PROTOCOLS.md and
// internal/policy.ParseRules):
//
//	allow|deny <subject> <resource> <methods> [quota=N] [charge=N] [ttl=DUR]
//
// It rejects files containing tier configuration; use ParsePolicy for
// the full format.
func ParseRules(text string) ([]Rule, error) { return policy.ParseRules(text) }

// ParsePolicy reads the full textual policy format — rules plus
// admission tiers and assignments (docs/PROTOCOLS.md §5):
//
//	allow|deny <subject> <resource> <methods> [quota=N] [charge=N] [ttl=DUR]
//	tier <name> [rate=R] [burst=N] [concurrent=N] [fuel=N]
//	assign <subject> <tier-name>
func ParsePolicy(text string) (*PolicyDocument, error) { return policy.ParsePolicy(text) }

// ErrShed marks an arrival refused by the admission gate because the
// owner's tier is over its rate or concurrency limit. Sheds are
// transient to the dispatch retry machinery and carry a retry-after
// hint (docs/PROTOCOLS.md §3.3).
var ErrShed = admission.ErrShed

// NewCA creates a certification-authority registry for standalone
// (non-Platform) embedding.
func NewCA(authority string) (*keys.Registry, error) {
	return keys.NewRegistry(names.Principal(authority, "ca"))
}

// NewIdentity certifies a fresh principal under a CA.
func NewIdentity(ca *keys.Registry, n Name, validFor time.Duration) (Identity, error) {
	return keys.NewIdentity(ca, n, validFor)
}

// IssueCredentials creates owner-signed agent credentials (§5.2).
func IssueCredentials(owner Identity, agentName Name, rights RightSet, validFor time.Duration, homeSite string) (Credentials, error) {
	return cred.Issue(owner, agentName, owner.Name, rights, validFor, homeSite)
}

// NewPlatform creates a platform over the in-memory simulated network.
func NewPlatform(authority string) (*Platform, error) { return core.NewPlatform(authority) }

// NewTCPPlatform creates a platform whose servers use real TCP.
func NewTCPPlatform(authority string) (*Platform, error) { return core.NewTCPPlatform(authority) }

// NewTCPPlatformFromCA creates a TCP platform that joins an existing
// deployment by importing exported CA state (see Platform.CA.Export).
// Processes sharing CA state trust each other's certificates, so agents
// can migrate between them.
func NewTCPPlatformFromCA(authority string, caData []byte) (*Platform, error) {
	reg, err := keys.ImportRegistry(caData)
	if err != nil {
		return nil, err
	}
	return core.NewTCPPlatformWithCA(authority, reg), nil
}

// InstallResource registers a server-owned resource (Fig. 6 step 1).
func InstallResource(s *Server, def *ResourceDef) error { return core.InstallResource(s, def) }

// CounterResource builds the demo counter resource.
func CounterResource(rn Name, path string) *ResourceDef { return core.CounterResource(rn, path) }

// QuoteResource builds a price-quote service resource.
func QuoteResource(rn Name, path string, prices map[string]int64) *ResourceDef {
	return core.QuoteResource(rn, path, prices)
}

// RecordStoreResource builds a filterable dataset resource.
func RecordStoreResource(rn Name, path string, scores []int64, payload string) *ResourceDef {
	return core.RecordStoreResource(rn, path, scores, payload)
}

// Tour builds a simple one-server-per-stop itinerary.
func Tour(entry string, servers ...Name) Itinerary { return agent.Sequence(entry, servers...) }

// Rights builds a RightSet from "resource.method" strings.
func Rights(rs ...Right) RightSet { return cred.NewRightSet(rs...) }

// AllRights delegates everything (the default for trusted launches).
func AllRights() RightSet { return cred.NewRightSet(cred.All) }

// Name constructors.
func ServerName(authority, path string) Name   { return names.Server(authority, path) }
func AgentName(authority, path string) Name    { return names.Agent(authority, path) }
func ResourceName(authority, path string) Name { return names.Resource(authority, path) }

// Value constructors for resource methods and inspecting results.
func Int(i int64) Value            { return vm.I(i) }
func Str(s string) Value           { return vm.S(s) }
func Bool(b bool) Value            { return vm.B(b) }
func List(vs ...Value) Value       { return vm.L(vs...) }
func Nil() Value                   { return vm.Nil() }
func Map(m map[string]Value) Value { return vm.M(m) }
