// End-to-end and component benchmarks complementing the per-experiment
// benches in bench_test.go: full-stack agent tours, concurrent hosting
// throughput, compiler and verifier speed, and credential-chain
// verification cost.
package ajanta_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/asl"
	"repro/internal/core"
	"repro/internal/cred"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/transfer"
	"repro/internal/vm"
)

// benchPlatform assembles a two-server platform with a counter resource.
func benchPlatform(b *testing.B) (*core.Platform, *coreServer, *coreServer) {
	return benchPlatformPool(b, false)
}

// benchPlatformPool is benchPlatform with the servers' outbound channel
// pools optionally disabled (dial + handshake per transfer, the
// pre-pooling behaviour).
func benchPlatformPool(b *testing.B, disablePool bool) (*core.Platform, *coreServer, *coreServer) {
	b.Helper()
	p, err := core.NewPlatform("bench.org")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.StopAll)
	pool := transfer.PoolConfig{Disabled: disablePool}
	open := []policy.Rule{{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"}}}
	srv, err := p.StartServer("s1", "s1:7000", core.ServerConfig{Rules: open, ChannelPool: pool})
	if err != nil {
		b.Fatal(err)
	}
	if err := core.InstallResource(srv, core.CounterResource(
		names.Resource("bench.org", "counter"), "counter")); err != nil {
		b.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", core.ServerConfig{ChannelPool: pool})
	if err != nil {
		b.Fatal(err)
	}
	return p, &coreServer{srv}, &coreServer{home}
}

// coreServer is a thin wrapper keeping the import surface tidy.
type coreServer struct {
	S interface{ Name() names.Name }
}

func BenchmarkE2E_AgentRoundTrip(b *testing.B) {
	p, srv, home := benchPlatform(b)
	owner, err := p.NewOwner("bench")
	if err != nil {
		b.Fatal(err)
	}
	homeSrv, _ := p.Server(home.S.Name())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := p.BuildAgent(core.AgentSpec{
			Owner: owner,
			Name:  fmt.Sprintf("bench-%d", i),
			Source: `module bench
func main() {
  var c = get_resource("ajanta:resource:bench.org/counter")
  report(invoke(c, "add", 1))
}`,
			Itinerary: agent.Sequence("main", srv.S.Name()),
			Home:      homeSrv,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.LaunchAndWait(homeSrv, a, 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2E_ConcurrentAgents runs full tours from many goroutines at
// once. The pooled variant reuses warm authenticated channels between
// the two servers (multiple connections per peer under concurrency);
// unpooled dials and handshakes for every transfer.
func BenchmarkE2E_ConcurrentAgents(b *testing.B) {
	for _, mode := range []struct {
		name        string
		disablePool bool
	}{{"pooled", false}, {"unpooled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p, srv, home := benchPlatformPool(b, mode.disablePool)
			owner, err := p.NewOwner("bench")
			if err != nil {
				b.Fatal(err)
			}
			homeSrv, _ := p.Server(home.S.Name())
			var ctr atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := ctr.Add(1)
					a, err := p.BuildAgent(core.AgentSpec{
						Owner: owner,
						Name:  fmt.Sprintf("par-%s-%d", mode.name, n),
						Source: `module bench
func main() {
  var c = get_resource("ajanta:resource:bench.org/counter")
  invoke(c, "add", 1)
}`,
						Itinerary: agent.Sequence("main", srv.S.Name()),
						Home:      homeSrv,
					})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := p.LaunchAndWait(homeSrv, a, 30*time.Second); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkASL_Compile(b *testing.B) {
	src := `module shopper
var best = 999999
var seen = []
func visit() {
  var parts = split(server_name(), "/")
  var short = parts[len(parts) - 1]
  var q = get_resource("ajanta:resource:x/" + short)
  var price = invoke(q, "quote", "widget")
  if price != nil && price < best { best = price }
  seen = append(seen, short)
}
func helper(a, b) {
  if a > b { return a }
  return b
}`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := asl.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVM_Verify(b *testing.B) {
	mod, err := asl.Compile(`module big
func f0(x) { var a = 0 var i = 0 while i < x { a = a + i i = i + 1 } return a }
func f1(x) { if x > 0 { return f0(x) } return 0 - f0(0 - x) }
func f2(x, y) { return f1(x) + f1(y) }
func main() { return f2(10, 20) }`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vm.Verify(mod); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCred_VerifyChain(b *testing.B) {
	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		b.Fatal(err)
	}
	owner, err := keys.NewIdentity(reg, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	v := reg.Verifier()
	for _, hops := range []int{0, 1, 3} {
		c, err := cred.Issue(owner, names.Agent("umn.edu", "a1"),
			owner.Name, cred.NewRightSet(cred.All), time.Hour, "home")
		if err != nil {
			b.Fatal(err)
		}
		rights := cred.NewRightSet("a.*", "b.*", "c.*")
		for h := 0; h < hops; h++ {
			srv, err := keys.NewIdentity(reg, names.Server("umn.edu", fmt.Sprintf("s%d-%d", hops, h)), time.Hour)
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Delegate(srv, rights, time.Time{}); err != nil {
				b.Fatal(err)
			}
			rights = cred.NewRightSet("a.*", "b.*")
		}
		b.Run(fmt.Sprintf("delegations=%d", hops), func(b *testing.B) {
			now := time.Now()
			for i := 0; i < b.N; i++ {
				if err := c.Verify(v, now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
