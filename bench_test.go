// Benchmarks regenerating the paper's quantitative claims (experiments
// C1–C7 and figure F6 in DESIGN.md / EXPERIMENTS.md), plus the ablation
// benches DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem .
package ajanta_test

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/agent"
	"repro/internal/asl"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/rpcbase"
	"repro/internal/server"
	"repro/internal/transfer"
	"repro/internal/vm"
)

// --- shared fixtures -----------------------------------------------------

const benchAgentDom = domain.ID(2)

func benchCreds(b *testing.B) (*cred.Credentials, keys.Identity, *keys.Registry) {
	b.Helper()
	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		b.Fatal(err)
	}
	owner, err := keys.NewIdentity(reg, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cred.Issue(owner, names.Agent("umn.edu", "bench"),
		names.Principal("umn.edu", "app"), cred.NewRightSet(cred.All), time.Hour, "home")
	if err != nil {
		b.Fatal(err)
	}
	return &c, owner, reg
}

func benchCounterDef() *resource.Def {
	var (
		mu  sync.Mutex
		val int64
	)
	return &resource.Def{
		ResourceImpl: resource.NewImpl(names.Resource("umn.edu", "counter"),
			names.Principal("umn.edu", "admin"), ""),
		Path: "counter",
		Methods: map[string]resource.Method{
			"get": func([]vm.Value) (vm.Value, error) {
				mu.Lock()
				defer mu.Unlock()
				return vm.I(val), nil
			},
			"add": func(args []vm.Value) (vm.Value, error) {
				mu.Lock()
				defer mu.Unlock()
				val += args[0].Int
				return vm.I(val), nil
			},
		},
	}
}

func openPolicy(paths ...string) *policy.Engine {
	eng := policy.NewEngine()
	for _, p := range paths {
		eng.AddRule(policy.Rule{AnyPrincipal: true, Resource: p, Methods: []string{"*"}})
	}
	return eng
}

// --- F6: the resource binding protocol, step by step ----------------------

func BenchmarkF6_BindingSteps(b *testing.B) {
	creds, _, _ := benchCreds(b)
	def := benchCounterDef()
	eng := openPolicy("counter")
	reg := registry.New()
	if err := reg.Register(registry.Entry{
		Name: def.Name, Resource: def, AP: def, OwnerDomain: domain.ServerID,
	}); err != nil {
		b.Fatal(err)
	}

	b.Run("step3_registry_lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reg.Lookup(def.Name); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("step4_getProxy_upcall", func(b *testing.B) {
		req := resource.Request{Caller: benchAgentDom, Creds: creds, Policy: eng}
		for i := 0; i < b.N; i++ {
			if _, err := def.GetProxy(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	proxy, err := def.GetProxy(resource.Request{Caller: benchAgentDom, Creds: creds, Policy: eng})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("step6_proxy_invoke", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := proxy.Invoke(benchAgentDom, "get", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full_bind_once_then_invoke", func(b *testing.B) {
		e, _ := reg.Lookup(def.Name)
		p, err := e.AP.GetProxy(resource.Request{Caller: benchAgentDom, Creds: creds, Policy: eng})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Invoke(benchAgentDom, "get", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- C1: per-invocation cost of the four access-control designs ----------

func benchDesigns(b *testing.B) []baseline.Design {
	b.Helper()
	eng := openPolicy("counter")
	dual := baseline.NewDualEnvDesign(benchCounterDef(), eng)
	b.Cleanup(dual.Close)
	return []baseline.Design{
		baseline.NewProxyDesign(benchCounterDef(), eng),
		baseline.NewFig5Design(benchCounterDef(), eng),
		baseline.NewWrapperDesign(benchCounterDef(), eng),
		baseline.NewSecMgrDesign(benchCounterDef(), eng),
		dual,
	}
}

func BenchmarkC1_AccessDesigns(b *testing.B) {
	creds, _, _ := benchCreds(b)
	for _, d := range benchDesigns(b) {
		b.Run(d.Name(), func(b *testing.B) {
			acc, err := d.Bind(benchAgentDom, creds)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := acc.Invoke(benchAgentDom, "get", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- C2: setup-vs-steady-state crossover ----------------------------------

func BenchmarkC2_SetupCrossover(b *testing.B) {
	creds, _, _ := benchCreds(b)
	for _, calls := range []int{1, 10, 100, 1000} {
		for _, d := range benchDesigns(b) {
			b.Run(fmt.Sprintf("%s/calls=%d", d.Name(), calls), func(b *testing.B) {
				var dom uint64 = 100 // fresh domain per iteration = fresh binding
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dom++
					acc, err := d.Bind(domain.ID(dom), creds)
					if err != nil {
						b.Fatal(err)
					}
					for k := 0; k < calls; k++ {
						if _, err := acc.Invoke(domain.ID(dom), "get", nil); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// --- C3: RPC vs REV bytes and time over the simulated network -------------

func BenchmarkC3_RPCvsREVvsAgent(b *testing.B) {
	const (
		servers = 3
		records = 500
		payload = 128
	)
	start := func(b *testing.B) (*netsim.Network, []string) {
		nw := netsim.NewNetwork()
		addrs := make([]string, servers)
		for i := range addrs {
			addr := fmt.Sprintf("store%d:1", i)
			l, err := nw.Listen(addr)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = l.Close() })
			go (&rpcbase.Server{Store: rpcbase.NewStore(records, payload)}).Serve(l)
			addrs[i] = addr
		}
		return nw, addrs
	}
	for _, sel := range []struct {
		name      string
		threshold int64
	}{{"sel=10pct", 89}, {"sel=50pct", 49}, {"sel=100pct", -1}} {
		b.Run("rpc/"+sel.name, func(b *testing.B) {
			nw, addrs := start(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rpcbase.RPCClient(nw.Dial, addrs, sel.threshold); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nw.BytesSent())/float64(b.N), "wire-bytes/op")
		})
		b.Run("rev/"+sel.name, func(b *testing.B) {
			nw, addrs := start(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rpcbase.REVClient(nw.Dial, addrs, sel.threshold); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nw.BytesSent())/float64(b.N), "wire-bytes/op")
		})
	}
}

// BenchmarkC3_AgentLive measures the REAL bytes a mobile agent puts on
// the (simulated) wire for the same filter workload the RPC/REV benches
// run: 3 servers x 500 records x 128 B payload. One op = one full tour
// including secure transfers and homecoming. Compare the
// wire-bytes/op metric with the rpc/rev benches above.
func BenchmarkC3_AgentLive(b *testing.B) {
	const (
		servers = 3
		records = 500
		payload = 128
	)
	for _, sel := range []struct {
		name      string
		threshold int64
	}{{"sel=10pct", 89}, {"sel=100pct", -1}} {
		b.Run("agent/"+sel.name, func(b *testing.B) {
			p, err := core.NewPlatform("bench.org")
			if err != nil {
				b.Fatal(err)
			}
			defer p.StopAll()
			open := []policy.Rule{{AnyPrincipal: true, Resource: "store", Methods: []string{"*"}}}
			var tour []names.Name
			scores := make([]int64, records)
			for i := range scores {
				scores[i] = int64(i % 100)
			}
			pay := string(make([]byte, payload))
			for i := 0; i < servers; i++ {
				short := fmt.Sprintf("s%d", i)
				srv, err := p.StartServer(short, short+":7000",
					core.ServerConfig{Rules: open, Fuel: 500_000_000})
				if err != nil {
					b.Fatal(err)
				}
				if err := core.InstallResource(srv, core.RecordStoreResource(
					names.Resource("bench.org", "store-"+short), "store", scores, pay)); err != nil {
					b.Fatal(err)
				}
				tour = append(tour, srv.Name())
			}
			home, err := p.StartServer("home", "home:7000", core.ServerConfig{})
			if err != nil {
				b.Fatal(err)
			}
			owner, err := p.NewOwner("bench")
			if err != nil {
				b.Fatal(err)
			}
			src := fmt.Sprintf(`module c3
var results = []
func visit() {
  var parts = split(server_name(), "/")
  var short = parts[len(parts) - 1]
  var st = get_resource("ajanta:resource:bench.org/store-" + short)
  var hits = invoke(st, "scan", %d)
  var k = 0
  while k < len(hits) {
    results = append(results, invoke(st, "fetch", hits[k]))
    k = k + 1
  }
}`, sel.threshold)
			p.Net.ResetCounters()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := p.BuildAgent(core.AgentSpec{
					Owner:     owner,
					Name:      fmt.Sprintf("c3-%d-%d", sel.threshold+1, i),
					Source:    src,
					Itinerary: agentTour("visit", tour),
					Home:      home,
				})
				if err != nil {
					b.Fatal(err)
				}
				back, err := p.LaunchAndWait(home, a, 60*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				if len(back.Log) > 0 {
					b.Fatalf("agent logged errors: %v", back.Log)
				}
			}
			b.ReportMetric(float64(p.Net.BytesSent())/float64(b.N), "wire-bytes/op")
		})
	}
}

// agentTour builds an itinerary without importing agent in two places.
func agentTour(entry string, servers []names.Name) agent.Itinerary {
	return agent.Sequence(entry, servers...)
}

// --- C4: accounting overhead ----------------------------------------------

func BenchmarkC4_Accounting(b *testing.B) {
	creds, _, _ := benchCreds(b)
	eng := openPolicy("counter")

	b.Run("plain_proxy", func(b *testing.B) {
		def := benchCounterDef()
		p, err := def.GetProxy(resource.Request{Caller: benchAgentDom, Creds: creds, Policy: eng})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = p.Invoke(benchAgentDom, "get", nil)
		}
	})
	b.Run("elapsed_metering", func(b *testing.B) {
		def := benchCounterDef()
		def.MeterElapsed = true
		p, err := def.GetProxy(resource.Request{Caller: benchAgentDom, Creds: creds, Policy: eng})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = p.Invoke(benchAgentDom, "get", nil)
		}
	})
	b.Run("usage_hook", func(b *testing.B) {
		def := benchCounterDef()
		var uses uint64
		def.OnUse = func(domain.ID, string, uint64) { uses++ }
		p, err := def.GetProxy(resource.Request{Caller: benchAgentDom, Creds: creds, Policy: eng})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = p.Invoke(benchAgentDom, "get", nil)
		}
	})
	b.Run("direct_call_no_protection", func(b *testing.B) {
		def := benchCounterDef()
		fn := def.Methods["get"]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = fn(nil)
		}
	})
}

// --- C5: identity-based capability check ----------------------------------

func BenchmarkC5_IdentityCheck(b *testing.B) {
	creds, _, _ := benchCreds(b)
	eng := openPolicy("counter")
	def := benchCounterDef()
	p, err := def.GetProxy(resource.Request{Caller: benchAgentDom, Creds: creds, Policy: eng})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("holder_passes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Invoke(benchAgentDom, "get", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("thief_rejected", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Invoke(domain.ID(99), "get", nil); err == nil {
				b.Fatal("stolen proxy worked")
			}
		}
	})
	// Ablation: identify the caller through a shared mutex-guarded
	// goroutine→domain map instead of the env-carried token.
	b.Run("ablation_domain_map", func(b *testing.B) {
		var mu sync.RWMutex
		m := map[int64]domain.ID{1: benchAgentDom}
		lookup := func(gid int64) domain.ID {
			mu.RLock()
			defer mu.RUnlock()
			return m[gid]
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			caller := lookup(1)
			if _, err := p.Invoke(caller, "get", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- C6: revocation --------------------------------------------------------

func BenchmarkC6_Revocation(b *testing.B) {
	creds, _, _ := benchCreds(b)
	eng := openPolicy("counter")
	def := benchCounterDef()

	b.Run("revoke_one_proxy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := def.GetProxy(resource.Request{Caller: benchAgentDom, Creds: creds, Policy: eng})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Revoke(domain.ServerID); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("post_revocation_denial", func(b *testing.B) {
		p, _ := def.GetProxy(resource.Request{Caller: benchAgentDom, Creds: creds, Policy: eng})
		_ = p.Revoke(domain.ServerID)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Invoke(benchAgentDom, "get", nil); err == nil {
				b.Fatal("revoked proxy worked")
			}
		}
	})
	b.Run("selective_disable_enable", func(b *testing.B) {
		p, _ := def.GetProxy(resource.Request{Caller: benchAgentDom, Creds: creds, Policy: eng})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.DisableMethod(domain.ServerID, "get"); err != nil {
				b.Fatal(err)
			}
			if err := p.EnableMethod(domain.ServerID, "get"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- C7: transfer security cost ---------------------------------------------

func benchTransferAgent(b *testing.B, reg *keys.Registry, owner keys.Identity, stateBytes int) *agent.Agent {
	b.Helper()
	c, err := cred.Issue(owner, names.Agent("umn.edu", "wire"),
		names.Principal("umn.edu", "app"), cred.NewRightSet(cred.All), time.Hour, "home")
	if err != nil {
		b.Fatal(err)
	}
	mod, err := asl.Compile("module wire\nfunc main() { return 1 }")
	if err != nil {
		b.Fatal(err)
	}
	a, err := agent.New(c, "wire", []vm.Module{*mod}, agent.Itinerary{})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, stateBytes)
	a.State["blob"] = vm.S(string(payload))
	return a
}

func BenchmarkC7_TransferSecurity(b *testing.B) {
	_, owner, reg := benchCreds(b)
	mkEndpoints := func(b *testing.B, plaintext bool) (*transfer.Endpoint, *transfer.Endpoint) {
		idA, err := keys.NewIdentity(reg, names.Server("umn.edu", "bench-a"+fmt.Sprint(plaintext)), time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		idB, err := keys.NewIdentity(reg, names.Server("umn.edu", "bench-b"+fmt.Sprint(plaintext)), time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		v := reg.Verifier()
		return &transfer.Endpoint{Identity: idA, Verifier: v, Plaintext: plaintext},
			&transfer.Endpoint{Identity: idB, Verifier: v, Plaintext: plaintext}
	}
	for _, mode := range []struct {
		name      string
		plaintext bool
	}{{"secure", false}, {"plaintext_baseline", true}} {
		for _, size := range []int{1 << 10, 64 << 10} {
			b.Run(fmt.Sprintf("%s/state=%dKiB", mode.name, size>>10), func(b *testing.B) {
				sender, receiver := mkEndpoints(b, mode.plaintext)
				nw := netsim.NewNetwork()
				l, err := nw.Listen("b:1")
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				go func() {
					for {
						conn, err := l.Accept()
						if err != nil {
							return
						}
						_, _ = receiver.ReceiveAgent(conn, nil)
						conn.Close()
					}
				}()
				a := benchTransferAgent(b, reg, owner, size)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					conn, err := nw.Dial("b:1")
					if err != nil {
						b.Fatal(err)
					}
					if err := sender.SendAgent(conn, a); err != nil {
						b.Fatal(err)
					}
					conn.Close()
				}
				b.ReportMetric(float64(nw.BytesSent())/float64(b.N), "wire-bytes/op")
			})
		}
	}
}

// BenchmarkC7_Pooled re-runs the secure-transfer benchmark over a warm
// channel pool: the session is dialed and authenticated once, then every
// transfer rides it, so steady state pays gob + AES-GCM only — no
// per-transfer key exchange, certificate verification or signatures.
// Compare with BenchmarkC7_TransferSecurity/secure, which dials and
// handshakes per transfer (the v0 single-shot protocol).
func BenchmarkC7_Pooled(b *testing.B) {
	_, owner, reg := benchCreds(b)
	for _, size := range []int{1 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("state=%dKiB", size>>10), func(b *testing.B) {
			idA, err := keys.NewIdentity(reg, names.Server("umn.edu", fmt.Sprintf("pool-a%d", size)), time.Hour)
			if err != nil {
				b.Fatal(err)
			}
			idB, err := keys.NewIdentity(reg, names.Server("umn.edu", fmt.Sprintf("pool-b%d", size)), time.Hour)
			if err != nil {
				b.Fatal(err)
			}
			v := reg.Verifier()
			sender := &transfer.Endpoint{Identity: idA, Verifier: v}
			receiver := &transfer.Endpoint{Identity: idB, Verifier: v}
			nw := netsim.NewNetwork()
			l, err := nw.Listen("b:1")
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			go func() {
				for {
					conn, err := l.Accept()
					if err != nil {
						return
					}
					go func() {
						defer conn.Close()
						_ = receiver.ServeConn(conn, nil, func(*agent.Agent) {})
					}()
				}
			}()
			pool := transfer.NewPool(sender, transfer.PoolConfig{Dial: nw.Dial})
			defer pool.Close()
			a := benchTransferAgent(b, reg, owner, size)
			// Warm the channel so the timed loop measures steady state.
			if err := pool.Send("b:1", a); err != nil {
				b.Fatal(err)
			}
			nw.ResetCounters()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pool.Send("b:1", a); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nw.BytesSent())/float64(b.N), "wire-bytes/op")
		})
	}
}

// --- C8: contended access ----------------------------------------------------

// benchUncontendedDef is a counter whose methods use atomics, so the
// resource itself never serializes callers: any contention measured in
// C8 is contention in the *access-control path*, not in the resource.
func benchUncontendedDef() *resource.Def {
	var val int64
	return &resource.Def{
		ResourceImpl: resource.NewImpl(names.Resource("umn.edu", "counter"),
			names.Principal("umn.edu", "admin"), ""),
		Path: "counter",
		Methods: map[string]resource.Method{
			"get": func([]vm.Value) (vm.Value, error) {
				return vm.I(atomic.LoadInt64(&val)), nil
			},
			"add": func(args []vm.Value) (vm.Value, error) {
				return vm.I(atomic.AddInt64(&val, args[0].Int)), nil
			},
		},
	}
}

// runContended splits b.N invocations across g goroutines, each calling
// its own accessor (which may be shared between workers).
func runContended(b *testing.B, g int, call func(worker int) error) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / g
	for w := 0; w < g; w++ {
		n := per
		if w == 0 {
			n += b.N % g
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := call(w); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
}

// BenchmarkC8_ContendedAccess measures the §5.5 "little overhead" claim
// under concurrency: G goroutines hammering one shared proxy (worst
// case: one agent's activities, or a leaked-to-threads proxy) and G
// goroutines each owning their own proxy to the same resource (the
// common case: many co-hosted agents). Before the copy-on-write
// refactor every invocation serialized on a per-proxy mutex; the
// numbers for that design are preserved by the mutex_baseline variant
// (internal/baseline.MutexProxyDesign) and in EXPERIMENTS.md C8.
func BenchmarkC8_ContendedAccess(b *testing.B) {
	creds, _, _ := benchCreds(b)
	eng := openPolicy("counter")
	impls := []struct {
		name string
		bind func(caller domain.ID) (baseline.Accessor, error)
	}{
		{"cow", func(caller domain.ID) (baseline.Accessor, error) {
			return benchUncontendedDef().GetProxy(resource.Request{Caller: caller, Creds: creds, Policy: eng})
		}},
		{"mutex_baseline", func(caller domain.ID) (baseline.Accessor, error) {
			return baseline.NewMutexProxyDesign(benchUncontendedDef(), eng).Bind(caller, creds)
		}},
	}
	for _, impl := range impls {
		for _, g := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/one_proxy/goroutines=%d", impl.name, g), func(b *testing.B) {
				acc, err := impl.bind(benchAgentDom)
				if err != nil {
					b.Fatal(err)
				}
				runContended(b, g, func(int) error {
					_, err := acc.Invoke(benchAgentDom, "get", nil)
					return err
				})
			})
			b.Run(fmt.Sprintf("%s/proxy_per_goroutine/goroutines=%d", impl.name, g), func(b *testing.B) {
				accs := make([]baseline.Accessor, g)
				doms := make([]domain.ID, g)
				for i := range accs {
					doms[i] = domain.ID(100 + i)
					var err error
					if accs[i], err = impl.bind(doms[i]); err != nil {
						b.Fatal(err)
					}
				}
				runContended(b, g, func(w int) error {
					_, err := accs[w].Invoke(doms[w], "get", nil)
					return err
				})
			})
		}
	}
}

// --- C12: visit throughput through the domain database -----------------------

// visitDB is the subset of the domain database a hosted visit exercises:
// admission, binding registration, usage accounting, teardown. Both the
// real sharded database and the preserved pre-shard baseline
// (baseline.CoarseDomainDB) satisfy it.
type visitDB interface {
	Admit(caller domain.ID, c *cred.Credentials) (domain.ID, error)
	AddBinding(caller, id domain.ID, b *domain.Binding) error
	RecordUse(caller, id domain.ID, resourcePath string, charge uint64) error
	FlushUsage(caller, id domain.ID, batch []domain.Usage) (uint64, error)
	Remove(caller, id domain.ID) error
}

// BenchmarkC12_VisitThroughput measures whole-visit throughput against
// the domain database: one op is Admit → AddBinding → visitCalls
// metered invocations → usage settlement → Remove, run by G concurrent
// visits (G co-hosted agents arriving, working and departing).
//
// sharded_batched is the production design: the database is sharded by
// domain ID and each invocation's accounting is a visit-local atomic
// append, flushed into the database once at departure. coarse_perinvoke
// preserves the pre-shard design — one RWMutex over the whole table,
// one locked RecordUse per invocation — so the pair quantifies what the
// refactor bought. Run with -cpu 1,2,4,8 for the scaling curve
// (EXPERIMENTS.md C12).
func BenchmarkC12_VisitThroughput(b *testing.B) {
	const visitCalls = 64
	creds, _, _ := benchCreds(b)
	impls := []struct {
		name    string
		mk      func() visitDB
		batched bool
	}{
		{"sharded_batched", func() visitDB { return domain.NewDatabase() }, true},
		{"coarse_perinvoke", func() visitDB { return baseline.NewCoarseDomainDB() }, false},
	}
	for _, impl := range impls {
		for _, g := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", impl.name, g), func(b *testing.B) {
				db := impl.mk()
				visit := func() error {
					dom, err := db.Admit(domain.ServerID, creds)
					if err != nil {
						return err
					}
					if err := db.AddBinding(domain.ServerID, dom, &domain.Binding{ResourcePath: "counter"}); err != nil {
						return err
					}
					if impl.batched {
						// Visit-local accounting, one database write at
						// departure — mirrors (*visit).usageBatch + FlushUsage.
						var inv, charge atomic.Uint64
						for k := 0; k < visitCalls; k++ {
							inv.Add(1)
							charge.Add(1)
						}
						if _, err := db.FlushUsage(domain.ServerID, dom, []domain.Usage{{
							ResourcePath: "counter",
							Invocations:  inv.Load(),
							Charge:       charge.Load(),
						}}); err != nil {
							return err
						}
					} else {
						// Pre-shard accounting: the database lock per call.
						for k := 0; k < visitCalls; k++ {
							if err := db.RecordUse(domain.ServerID, dom, "counter", 1); err != nil {
								return err
							}
						}
					}
					return db.Remove(domain.ServerID, dom)
				}
				runContended(b, g, func(int) error { return visit() })
			})
		}
	}
}

// --- VM throughput and metering ablation -------------------------------------

func benchVMModule(b *testing.B) *vm.Module {
	b.Helper()
	mod, err := asl.Compile(`module bench
func work(n) {
  var acc = 0
  var i = 0
  while i < n {
    acc = acc + i * 3 % 7
    i = i + 1
  }
  return acc
}`)
	if err != nil {
		b.Fatal(err)
	}
	return mod
}

func BenchmarkVM_Throughput(b *testing.B) {
	mod := benchVMModule(b)
	env := vm.NewEnv()
	env.Meter = vm.NewMeter(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(env, mod, "work", vm.I(1000)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(env.Meter.Used())/float64(b.N), "instrs/op")
}

func BenchmarkAblation_Metering(b *testing.B) {
	mod := benchVMModule(b)
	b.Run("unlimited_meter", func(b *testing.B) {
		env := vm.NewEnv()
		env.Meter = vm.NewMeter(0)
		for i := 0; i < b.N; i++ {
			if _, err := vm.Run(env, mod, "work", vm.I(1000)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bounded_meter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env := vm.NewEnv()
			env.Meter = vm.NewMeter(1 << 30)
			if _, err := vm.Run(env, mod, "work", vm.I(1000)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- ablation: enable-set representation -------------------------------------

func BenchmarkAblation_EnableSet(b *testing.B) {
	methods := []string{"get", "put", "len", "reset", "scan", "fetch", "add", "sub"}
	b.Run("string_map", func(b *testing.B) {
		enabled := map[string]bool{"get": true, "add": true}
		hits := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if enabled[methods[i%len(methods)]] {
				hits++
			}
		}
	})
	b.Run("bitmask", func(b *testing.B) {
		idx := map[string]uint{"get": 0, "put": 1, "len": 2, "reset": 3,
			"scan": 4, "fetch": 5, "add": 6, "sub": 7}
		var mask uint64 = 1<<0 | 1<<6
		hits := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if mask&(1<<idx[methods[i%len(methods)]]) != 0 {
				hits++
			}
		}
	})
}

// --- ablation: agent wire encoding -------------------------------------------

func BenchmarkAblation_Encoding(b *testing.B) {
	_, owner, reg := benchCreds(b)
	a := benchTransferAgent(b, reg, owner, 8<<10)
	b.Run("gob", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(a); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
		}
	})
	b.Run("json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			data, err := json.Marshal(a)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
		}
	})
}

// --- admission control: reject at the gate vs. run-then-deny -----------------

// BenchmarkAdmission compares the two places an over-privileged agent
// can be stopped. "reject-at-admission" statically analyzes the bundle
// at arrival and turns the agent away before any VM starts; the cost is
// one verification + analysis pass. "run-then-deny" (admission off, the
// pre-manifest behaviour) hosts the agent, spins up its namespace,
// domain and VM, executes it until get_resource hits the policy denial,
// and ships the failed agent home — the expensive failure the manifest
// check replaces.
func BenchmarkAdmission(b *testing.B) {
	const src = `module greedy
func main() {
  var c = get_resource("ajanta:resource:bench.org/vault")
  report(invoke(c, "get", 0))
}`
	setup := func(b *testing.B, mode server.AdmissionMode) (*core.Platform, *server.Server, *server.Server, keys.Identity) {
		b.Helper()
		p, err := core.NewPlatform("bench.org")
		if err != nil {
			b.Fatal(err)
		}
		// Default-deny policy: the vault is registered, nobody may
		// touch it.
		site, err := p.StartServer("site", "site:7000", core.ServerConfig{Admission: mode})
		if err != nil {
			b.Fatal(err)
		}
		if err := core.InstallResource(site, core.CounterResource(
			names.Resource("bench.org", "vault"), "vault")); err != nil {
			b.Fatal(err)
		}
		home, err := p.StartServer("home", "home:7000", core.ServerConfig{})
		if err != nil {
			b.Fatal(err)
		}
		owner, err := p.NewOwner("bench")
		if err != nil {
			b.Fatal(err)
		}
		return p, site, home, owner
	}
	build := func(b *testing.B, p *core.Platform, owner keys.Identity, home *server.Server, site *server.Server, i int) *agent.Agent {
		b.Helper()
		a, err := p.BuildAgent(core.AgentSpec{
			Owner:     owner,
			Name:      fmt.Sprintf("greedy-%d", i),
			Source:    src,
			Itinerary: agentTour("main", []names.Name{site.Name()}),
			Home:      home,
		})
		if err != nil {
			b.Fatal(err)
		}
		return a
	}

	b.Run("reject-at-admission", func(b *testing.B) {
		p, site, home, owner := setup(b, server.AdmissionEnforce)
		defer p.StopAll()
		agents := make([]*agent.Agent, b.N)
		for i := range agents {
			agents[i] = build(b, p, owner, home, site, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := site.LaunchLocal(agents[i]); err == nil {
				b.Fatal("over-privileged agent admitted")
			}
		}
		b.StopTimer()
		if got := site.Stats().AdmissionRejects; got != uint64(b.N) {
			b.Fatalf("admission rejects = %d, want %d", got, b.N)
		}
	})
	b.Run("run-then-deny", func(b *testing.B) {
		p, site, home, owner := setup(b, server.AdmissionOff)
		defer p.StopAll()
		agents := make([]*agent.Agent, b.N)
		for i := range agents {
			agents[i] = build(b, p, owner, home, site, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			back, err := p.LaunchAndWait(home, agents[i], 30*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if len(back.Results) != 0 {
				b.Fatal("denied agent reported results")
			}
		}
	})
}

// BenchmarkC13_AdmissionStorm measures the tier admission gate under a
// 16-goroutine arrival storm (experiment C13, EXPERIMENTS.md): the
// untiered fast path (one snapshot load, no bucket), the tiered
// under-limit path (bucket op that conforms), and an over-limit storm
// where most arrivals shed. The shed/op metric is the observed shed
// rate; ns/op is the admit decision latency under contention.
func BenchmarkC13_AdmissionStorm(b *testing.B) {
	owner := names.Principal("bench.org", "storm")
	mkGate := func(tiers ...policy.Tier) *admission.Gate {
		eng := policy.NewEngine()
		var assigns []policy.TierAssignment
		if len(tiers) > 0 {
			assigns = []policy.TierAssignment{{AnyPrincipal: true, Tier: tiers[0].Name}}
		}
		eng.SetTierConfig(tiers, assigns)
		return admission.NewGate(eng, nil)
	}
	// storm fans b.N admits over 16 goroutines spread across nKeys
	// principal buckets and returns the shed count.
	storm := func(b *testing.B, g *admission.Gate, nKeys int) uint64 {
		const workers = 16
		var shed atomic.Uint64
		var wg sync.WaitGroup
		per := b.N / workers
		for w := 0; w < workers; w++ {
			n := per
			if w == 0 {
				n += b.N % workers
			}
			var key cred.Digest
			key[0] = byte(w % nKeys)
			wg.Add(1)
			go func(key cred.Digest, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					tk, err := g.Admit(owner, key)
					if err != nil {
						shed.Add(1)
						continue
					}
					tk.Release()
				}
			}(key, n)
		}
		wg.Wait()
		return shed.Load()
	}
	b.Run("untiered-fast-path", func(b *testing.B) {
		g := mkGate()
		b.ReportAllocs()
		b.ResetTimer()
		sheds := storm(b, g, 16)
		b.ReportMetric(float64(sheds)/float64(b.N), "shed/op")
	})
	b.Run("tiered-under-limit", func(b *testing.B) {
		g := mkGate(policy.Tier{Name: "fast", Rate: 1e12, Burst: 1e9, MaxConcurrent: 64})
		b.ReportAllocs()
		b.ResetTimer()
		sheds := storm(b, g, 16)
		b.ReportMetric(float64(sheds)/float64(b.N), "shed/op")
	})
	b.Run("storm-mostly-shed", func(b *testing.B) {
		// One shared bucket, 1k/s: past the initial burst nearly every
		// arrival sheds — the decision must stay O(one bucket op).
		g := mkGate(policy.Tier{Name: "slow", Rate: 1000, Burst: 16})
		b.ReportAllocs()
		b.ResetTimer()
		sheds := storm(b, g, 1)
		b.ReportMetric(float64(sheds)/float64(b.N), "shed/op")
	})
}

// --- C15: federated name resolution ------------------------------------------

// c15Bind populates a directory with n server bindings named
// srv0000..srvNNNN.
func c15Bind(b *testing.B, d names.Directory, n int) []names.Name {
	b.Helper()
	nms := make([]names.Name, n)
	for i := range nms {
		nms[i] = names.Server("umn.edu", fmt.Sprintf("srv%04d", i))
		if err := d.Bind(nms[i], names.Location{
			Address: fmt.Sprintf("srv%04d:7000", i), ServerName: nms[i],
		}); err != nil {
			b.Fatal(err)
		}
	}
	return nms
}

// c15ChurnNames is the rotating set of agent names the churn writer
// rebinds (precomputed so the writer itself allocates as little as
// possible).
var c15ChurnNames = func() []names.Name {
	nms := make([]names.Name, 64)
	for i := range nms {
		nms[i] = names.Agent("umn.edu", fmt.Sprintf("churn%02d", i))
	}
	return nms
}()

// c15Churn continuously rebinds a rotating set of agent names into d:
// the steady-state directory write load of a busy fleet, where every
// accepted transfer rebinds the migrated agent at its new host. Four
// writers model four peer servers acking transfers concurrently. The
// returned func stops them.
func c15Churn(d names.Directory) func() {
	const writers = 4
	stop := make(chan struct{})
	var done sync.WaitGroup
	for w := 0; w < writers; w++ {
		done.Add(1)
		go func(w int) {
			defer done.Done()
			loc := names.Location{Address: "churn:7000"}
			for j := w; ; j += writers {
				select {
				case <-stop:
					return
				default:
					_ = d.Bind(c15ChurnNames[j%len(c15ChurnNames)], loc)
				}
			}
		}(w)
	}
	return func() { close(stop); done.Wait() }
}

// c15LookupResp is the wire response of the remote-directory rows.
type c15LookupResp struct {
	Loc names.Location
	Err string
}

// c15ServeDirectory answers Lookup RPCs over gob: the flat name service
// as the out-of-process directory any multi-machine deployment makes it
// — federation's baseline cost when nothing caches.
func c15ServeDirectory(l net.Listener, flat *baseline.FlatNameService) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
			for {
				var n names.Name
				if dec.Decode(&n) != nil {
					return
				}
				var resp c15LookupResp
				if loc, err := flat.Lookup(n); err != nil {
					resp.Err = err.Error()
				} else {
					resp.Loc = loc
				}
				if enc.Encode(resp) != nil {
					return
				}
			}
		}(conn)
	}
}

// BenchmarkC15_Resolution measures the dispatch path's name resolution
// across the three designs (EXPERIMENTS.md C15):
//
//   - flat: the seed's single RWMutex map (baseline.FlatNameService) —
//     every Lookup takes the read lock.
//   - authority: the sharded copy-on-write authoritative store
//     (names.Service) resolved directly — lock-free reads, but in a
//     federated deployment this is the store the authority round-trip
//     would hit.
//   - cached: the per-server lease-caching names.Resolver over that
//     store, pre-warmed — the production dispatch path. A lease-valid
//     hit must be a couple of atomic loads and map reads: zero locks,
//     zero allocations.
//
// The quiet rows measure the read path alone. The _churn rows add the
// production steady state — writers rebinding agent names into the
// same directory, exactly what every accepted transfer does — and
// separate the lock disciplines: the flat store's write lock stalls
// readers, while COW readers never block. Reported allocs on _churn
// rows are the background writers', not the resolve path's.
//
// flat_remote is the comparison the federated deployment is actually
// about: the flat design has no cache, so once the directory is not
// in-process — the norm under federation, and the deployment the
// paper's name registry describes — every dispatch resolution is a
// round-trip to the authority (measured here as a live gob RPC over a
// netsim connection). The lease cache turns that round-trip into a
// couple of atomic loads.
//
// ranked_replicas adds the location-aware flavor: ResolveAll over a
// 3-replica binding with a proximity estimate, the co-location path.
func BenchmarkC15_Resolution(b *testing.B) {
	const nNames = 1024
	coarse := func() int64 { return resource.CoarseTime().UnixNano() }
	impls := []struct {
		name string
		mk   func(b *testing.B) (func(w int) error, names.Directory)
	}{
		{"flat", func(b *testing.B) (func(int) error, names.Directory) {
			flat := baseline.NewFlatNameService()
			nms := c15Bind(b, flat, nNames)
			return func(w int) error {
				_, err := flat.Lookup(nms[w%nNames])
				return err
			}, flat
		}},
		{"authority", func(b *testing.B) (func(int) error, names.Directory) {
			svc := names.NewService()
			nms := c15Bind(b, svc, nNames)
			return func(w int) error {
				_, err := svc.Resolve(nms[w%nNames])
				return err
			}, svc
		}},
		{"cached", func(b *testing.B) (func(int) error, names.Directory) {
			svc := names.NewServiceWithLease(time.Hour)
			nms := c15Bind(b, svc, nNames)
			// The server injects the process-wide coarse clock; the
			// bench measures the same wiring.
			res := names.NewResolver(svc, names.ResolverConfig{
				Self: "bench:7000",
				Now:  coarse,
			})
			for _, n := range nms { // warm: every name lease-valid
				if _, err := res.Resolve(n); err != nil {
					b.Fatal(err)
				}
			}
			return func(w int) error {
				_, err := res.Resolve(nms[w%nNames])
				return err
			}, svc
		}},
	}
	for _, churn := range []bool{false, true} {
		for _, g := range []int{1, 16} {
			if churn && g == 1 {
				continue // churn rows target the concurrent dispatch path
			}
			for _, impl := range impls {
				tag := impl.name
				if churn {
					tag += "_churn"
				}
				b.Run(fmt.Sprintf("%s/goroutines=%d", tag, g), func(b *testing.B) {
					call, dir := impl.mk(b)
					stopChurn := func() {}
					if churn {
						stopChurn = c15Churn(dir)
					}
					runContended(b, g, call)
					stopChurn()
				})
			}
		}
	}
	for _, g := range []int{1, 16} {
		b.Run(fmt.Sprintf("flat_remote/goroutines=%d", g), func(b *testing.B) {
			nw := netsim.NewNetwork()
			flat := baseline.NewFlatNameService()
			nms := c15Bind(b, flat, nNames)
			l, err := nw.Listen("dir:7000")
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			go c15ServeDirectory(l, flat)
			// One warm connection per goroutine, as a server's channel
			// pool would hold to its authority.
			type cli struct {
				enc *gob.Encoder
				dec *gob.Decoder
			}
			clis := make([]cli, g)
			for i := range clis {
				conn, err := nw.Dial("dir:7000")
				if err != nil {
					b.Fatal(err)
				}
				defer conn.Close()
				clis[i] = cli{gob.NewEncoder(conn), gob.NewDecoder(conn)}
			}
			runContended(b, g, func(w int) error {
				if err := clis[w].enc.Encode(nms[w%nNames]); err != nil {
					return err
				}
				var resp c15LookupResp
				if err := clis[w].dec.Decode(&resp); err != nil {
					return err
				}
				if resp.Err != "" {
					return fmt.Errorf("remote lookup: %s", resp.Err)
				}
				return nil
			})
		})
	}
	b.Run("cached/ranked_replicas", func(b *testing.B) {
		svc := names.NewServiceWithLease(time.Hour)
		rn := names.Resource("umn.edu", "data")
		for i := 0; i < 3; i++ {
			if err := svc.BindReplica(rn, names.Location{
				Address:    fmt.Sprintf("rep%d:7000", i),
				ServerName: names.Server("umn.edu", fmt.Sprintf("rep%d", i)),
			}); err != nil {
				b.Fatal(err)
			}
		}
		prox := func(from, to string) time.Duration {
			return time.Duration(len(to)) * time.Millisecond
		}
		res := names.NewResolver(svc, names.ResolverConfig{
			Self:      "bench:7000",
			Proximity: prox,
			Now:       func() int64 { return resource.CoarseTime().UnixNano() },
		})
		if _, err := res.ResolveAll(rn); err != nil {
			b.Fatal(err)
		}
		runContended(b, 16, func(int) error {
			locs, err := res.ResolveAll(rn)
			if err == nil && len(locs) != 3 {
				return fmt.Errorf("got %d replicas", len(locs))
			}
			return err
		})
	})
}
