// BenchmarkC14_AgentWorkload: end-to-end interpreter throughput on
// representative agent workload mixes (experiment C14 in
// EXPERIMENTS.md). Each mix runs twice — through the production
// interpreter (vm.Run on the module the loader hands out, i.e. the
// exact code path a hosted visit executes) and through the preserved
// pre-optimization interpreter (baseline.NaiveInterp) — so the fast
// path's speedup is measured against a pinned baseline rather than
// against history. ns/op is the cost of one agent entry-function
// invocation ("agent-op"); instr/op reports the metered instruction
// count so per-instruction cost can be derived.
package ajanta_test

import (
	"testing"

	"repro/internal/asl"
	"repro/internal/baseline"
	"repro/internal/loader"
	"repro/internal/vm"
)

// benchC14Src is the C14 agent module: one entry per workload mix.
const benchC14Src = `module c14

var counter = 0

func fib(n) {
  if n < 2 {
    return n
  }
  return fib(n - 1) + fib(n - 2)
}

func fibwork(n) {
  return fib(n)
}

func loopwork(n) {
  var acc = 0
  var i = 0
  while i < n {
    acc = acc + i * 3 % 7
    i = i + 1
  }
  return acc
}

func mapwork(n) {
  var m = {"a": 0, "b": 1, "c": 2, "d": 3}
  var i = 0
  var acc = 0
  while i < n {
    m["a"] = m["a"] + 1
    m["b"] = m["b"] + m["a"] % 5
    acc = acc + m["b"] % 13
    m["d"] = acc
    i = i + 1
  }
  return acc + len(keys(m))
}

func hostwork(n) {
  var i = 0
  var acc = 0
  while i < n {
    acc = acc + ping(i)
    i = i + 1
  }
  return acc
}

func statework(n) {
  var i = 0
  while i < n {
    counter = counter + 1
    i = i + 1
  }
  return counter
}
`

// c14Mix describes one workload mix of the C14 benchmark.
type c14Mix struct {
	Name  string
	Entry string
	Arg   int64
}

// c14Mixes is shared with cmd/experiments via this package's tests only;
// the experiments binary carries its own copy of the source above.
var c14Mixes = []c14Mix{
	// fib(15) is the call-heavy mix: ~2k intra-module OpCall frames per
	// agent-op — the path that must reach 0 allocs/op.
	{"fib", "fibwork", 15},
	// loopwork is the arithmetic mix: a tight while loop of
	// local/int ops, the superinstruction fusion target.
	{"loop", "loopwork", 500},
	// mapwork exercises aggregate index/set-index and the keys builtin.
	{"map", "mapwork", 200},
	// hostwork crosses the host-call boundary every iteration.
	{"host", "hostwork", 500},
	// statework hammers module globals (load/store-global interning).
	{"state", "statework", 500},
}

// benchC14Env builds the execution environment for one sub-benchmark:
// the module is resolved through a loader namespace exactly as a hosted
// visit would (after the fast-path work this is what hands out the
// prepared execution copy), with builtins plus the benchmark's ping
// host function installed.
func benchC14Env(b *testing.B) (*vm.Env, *vm.Module) {
	b.Helper()
	mod, err := asl.Compile(benchC14Src)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := loader.NewTrustedSet()
	if err != nil {
		b.Fatal(err)
	}
	ns, err := loader.NewNamespace(ts, []vm.Module{*mod}, false)
	if err != nil {
		b.Fatal(err)
	}
	execMod, err := ns.Module("c14")
	if err != nil {
		b.Fatal(err)
	}
	env := vm.NewEnv()
	env.Meter = vm.NewMeter(0) // unlimited, but metering stays on
	env.Resolver = ns
	vm.InstallBuiltins(env)
	env.Host["ping"] = func(args []vm.Value) (vm.Value, error) {
		return args[0], nil
	}
	return env, execMod
}

func BenchmarkC14_AgentWorkload(b *testing.B) {
	for _, mix := range c14Mixes {
		mix := mix
		b.Run(mix.Name+"/fast", func(b *testing.B) {
			env, mod := benchC14Env(b)
			if _, err := vm.Run(env, mod, "__init__"); err != nil {
				b.Fatal(err)
			}
			argv := []vm.Value{vm.I(mix.Arg)}
			before := env.Meter.Used()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vm.Run(env, mod, mix.Entry, argv...); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(env.Meter.Used()-before)/float64(b.N), "instr/op")
		})
		b.Run(mix.Name+"/naive", func(b *testing.B) {
			env, _ := benchC14Env(b)
			// The naive interpreter predates prepared execution copies:
			// it runs the canonical bundle the agent carries.
			canon, err := asl.Compile(benchC14Src)
			if err != nil {
				b.Fatal(err)
			}
			env.Resolver = vm.ModuleResolver{M: canon}
			var naive baseline.NaiveInterp
			if _, err := naive.Run(env, canon, "__init__"); err != nil {
				b.Fatal(err)
			}
			argv := []vm.Value{vm.I(mix.Arg)}
			before := env.Meter.Used()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := naive.Run(env, canon, mix.Entry, argv...); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(env.Meter.Used()-before)/float64(b.N), "instr/op")
		})
	}
}
