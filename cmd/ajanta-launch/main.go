// Command ajanta-launch compiles an ASL agent and runs it on a
// freshly assembled in-process platform: a home server plus N plain
// agent servers connected by the simulated network. It is the quickest
// way to watch an agent program travel.
//
// Usage:
//
//	ajanta-launch -servers 3 -entry visit agent.asl
//
// The agent's itinerary visits every server in order, running -entry at
// each; its reports, final state and log are printed on return.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	ajanta "repro"
)

func main() {
	nServers := flag.Int("servers", 1, "number of servers on the tour")
	entry := flag.String("entry", "main", "function to run at each stop")
	timeout := flag.Duration("timeout", 30*time.Second, "journey timeout")
	counter := flag.Bool("counter", false, "install an open counter resource on every server")
	caIn := flag.String("ca-in", "", "cross-process mode: CA state file from ajanta-server -ca-out")
	peers := flag.String("peers", "", "cross-process mode: \"name=host:port,...\" tour targets")
	homeAddr := flag.String("home", "127.0.0.1:7199", "cross-process mode: this process's home server address")
	authorityFlag := flag.String("authority", "example.org", "naming authority")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ajanta-launch [-servers N] [-entry fn] <agent.asl>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *caIn != "" {
		launchRemote(*authorityFlag, *caIn, *peers, *homeAddr, *entry, string(src), *timeout)
		return
	}

	authority := *authorityFlag
	p, err := ajanta.NewPlatform(authority)
	if err != nil {
		fatal(err)
	}
	defer p.StopAll()

	var rules []ajanta.Rule
	if *counter {
		rules = []ajanta.Rule{{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"}}}
	}
	var tour []ajanta.Name
	for i := 0; i < *nServers; i++ {
		short := fmt.Sprintf("s%d", i+1)
		srv, err := p.StartServer(short, short+":7000", ajanta.ServerConfig{
			Rules:                   rules,
			InstalledResourcePolicy: true,
		})
		if err != nil {
			fatal(err)
		}
		if *counter {
			if err := ajanta.InstallResource(srv, ajanta.CounterResource(
				ajanta.ResourceName(authority, "counter-"+short), "counter")); err != nil {
				fatal(err)
			}
		}
		tour = append(tour, srv.Name())
	}
	home, err := p.StartServer("home", "home:7000", ajanta.ServerConfig{})
	if err != nil {
		fatal(err)
	}
	owner, err := p.NewOwner("cli-user")
	if err != nil {
		fatal(err)
	}
	a, err := p.BuildAgent(ajanta.AgentSpec{
		Owner:     owner,
		Name:      "cli-agent",
		Source:    string(src),
		Itinerary: ajanta.Tour(*entry, tour...),
		Home:      home,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("launch: %s touring %d servers, entry %q\n", a.Name, *nServers, *entry)
	back, err := p.LaunchAndWait(home, a, *timeout)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("returned after %d hops\n", back.Hops)
	if len(back.Results) > 0 {
		fmt.Println("results:")
		for _, r := range back.Results {
			fmt.Println("  ", r)
		}
	}
	if len(back.State) > 0 {
		fmt.Println("final state:")
		for k, v := range back.State {
			fmt.Printf("   %s = %s\n", k, v)
		}
	}
	if len(back.Log) > 0 {
		fmt.Println("log:")
		fmt.Println("  " + strings.Join(back.Log, "\n   "))
	}
}

// launchRemote sends the agent to servers running in OTHER processes:
// it imports the shared CA, registers the peers in the name service,
// runs a local home server over TCP, and launches the agent on a tour
// of the named peers.
func launchRemote(authority, caFile, peers, homeAddr, entry, src string, timeout time.Duration) {
	caData, err := os.ReadFile(caFile)
	if err != nil {
		fatal(err)
	}
	p, err := ajanta.NewTCPPlatformFromCA(authority, caData)
	if err != nil {
		fatal(err)
	}
	defer p.StopAll()

	var tour []ajanta.Name
	for _, pair := range strings.Split(peers, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			fatal(fmt.Errorf("bad -peers entry %q (want name=host:port)", pair))
		}
		if err := p.BindPeer(name, addr); err != nil {
			fatal(err)
		}
		tour = append(tour, ajanta.ServerName(authority, name))
	}
	if len(tour) == 0 {
		fatal(fmt.Errorf("cross-process mode needs -peers"))
	}

	home, err := p.StartServer("launch-home", homeAddr, ajanta.ServerConfig{})
	if err != nil {
		fatal(err)
	}
	owner, err := p.NewOwner("cli-user")
	if err != nil {
		fatal(err)
	}
	a, err := p.BuildAgent(ajanta.AgentSpec{
		Owner:     owner,
		Name:      "cli-agent",
		Source:    src,
		Itinerary: ajanta.Tour(entry, tour...),
		Home:      home,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("launch: %s touring %d remote servers, entry %q\n", a.Name, len(tour), entry)
	back, err := p.LaunchAndWait(home, a, timeout)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("returned after %d hops\n", back.Hops)
	for _, r := range back.Results {
		fmt.Println("result:", r)
	}
	for k, v := range back.State {
		fmt.Printf("state:  %s = %s\n", k, v)
	}
	for _, l := range back.Log {
		fmt.Println("log:   ", l)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ajanta-launch:", err)
	os.Exit(1)
}
