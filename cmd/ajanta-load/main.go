// ajanta-load runs cluster load scenarios (C16): it spins up an
// in-process multi-server platform per scenario, drives seeded
// open-loop agent load through the real launch/dispatch paths while a
// scripted fault schedule plays out, and writes the measured
// latency/throughput/shed/no-lost accounting as BENCH_cluster.json
// (+ optional CSV). cmd/slogate turns the artifact into a CI verdict.
//
// Usage:
//
//	ajanta-load -list
//	ajanta-load -scenario quiet_baseline -seed 42 -json BENCH_cluster.json
//	ajanta-load -scenario all -smoke -json BENCH_cluster.json -csv BENCH_cluster.csv
//	ajanta-load -scenario path/to/custom.json
//
// -scenario accepts a builtin name, "all" (the full suite), or a path
// to a spec file (anything containing a path separator or ending in
// .json). -smoke applies each scenario's smoke scaling — the CI-sized
// run. Exit status is 0 even on SLO breaches: measuring and gating are
// separate steps (the gate is cmd/slogate), so CI can always upload
// the artifact of a failing run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/loadharness"
)

func main() {
	scenario := flag.String("scenario", "all", "builtin scenario name, 'all', or a spec file path")
	seed := flag.Int64("seed", 0, "override every scenario's seed (0 = use the spec's)")
	smoke := flag.Bool("smoke", false, "apply each scenario's smoke scaling (CI-sized run)")
	jsonPath := flag.String("json", "", "write the report to this file (JSON)")
	csvPath := flag.String("csv", "", "write per-phase rows to this file (CSV)")
	list := flag.Bool("list", false, "list builtin scenarios and exit")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	if *list {
		for _, name := range loadharness.BuiltinNames() {
			sc, err := loadharness.Builtin(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-20s %s\n", name, sc.Description)
		}
		return
	}

	scenarios, err := selectScenarios(*scenario)
	if err != nil {
		fatal(err)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	report := &loadharness.Report{Suite: "cluster", Seed: *seed, Smoke: *smoke, AllPass: true}
	for _, sc := range scenarios {
		res, err := loadharness.Run(sc, loadharness.RunOptions{
			Smoke: *smoke, Seed: *seed, Logf: logf,
		})
		if err != nil {
			fatal(err)
		}
		report.Scenarios = append(report.Scenarios, *res)
		if !res.Pass {
			report.AllPass = false
		}
		verdict := "PASS"
		if !res.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("%s %-22s launched=%d completed=%d failed=%d lost=%d p50=%.1fms p99=%.1fms thr=%.2f/s sheds=%d retries=%d\n",
			verdict, res.Name, res.Launched, res.Completed, res.FailedHome, res.Lost,
			res.LatencyMS.P50, res.LatencyMS.P99, res.ThroughputPerSec, res.Sheds, res.Retries)
		for _, b := range res.Breaches {
			fmt.Printf("  breach: %s\n", b)
		}
	}

	if *jsonPath != "" {
		data, err := loadharness.MarshalReport(report)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(loadharness.CSV(report)), 0o644); err != nil {
			fatal(err)
		}
	}
}

// selectScenarios resolves the -scenario flag: the whole builtin suite,
// one builtin by name, or a spec file from disk.
func selectScenarios(sel string) ([]*loadharness.Scenario, error) {
	if sel == "all" {
		return loadharness.Builtins()
	}
	if strings.ContainsAny(sel, "/\\") || strings.HasSuffix(sel, ".json") {
		data, err := os.ReadFile(sel)
		if err != nil {
			return nil, err
		}
		sc, err := loadharness.Parse(data)
		if err != nil {
			return nil, err
		}
		return []*loadharness.Scenario{sc}, nil
	}
	sc, err := loadharness.Builtin(sel)
	if err != nil {
		return nil, err
	}
	return []*loadharness.Scenario{sc}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ajanta-load:", err)
	os.Exit(2)
}
