// Command ajanta-server runs agent servers.
//
// Modes:
//
//	ajanta-server -describe
//	    Start one server and print its Figure-1 component inventory.
//
//	ajanta-server -demo
//	    Stand up a three-server marketplace over real TCP on loopback,
//	    launch a shopping agent on a tour, and print what it found.
//
//	ajanta-server -name alpha -addr 127.0.0.1:7501 -ca-out /tmp/ca.bin \
//	              -counter -peers "beta=127.0.0.1:7502"
//	    Run one server over TCP until interrupted. The first server of
//	    a deployment creates the shared CA (-ca-out); further processes
//	    join it with -ca-in. -peers pre-binds other processes' servers
//	    in the local name service so agents can be dispatched to them.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	ajanta "repro"
)

func main() {
	describe := flag.Bool("describe", false, "print the server component inventory and exit")
	demo := flag.Bool("demo", false, "run the three-server marketplace demo")
	name := flag.String("name", "s1", "server short name")
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	authority := flag.String("authority", "example.org", "naming authority")
	caOut := flag.String("ca-out", "", "create the platform CA and write its (secret) state to this file")
	caIn := flag.String("ca-in", "", "join an existing deployment: read CA state from this file")
	peers := flag.String("peers", "", "other processes' servers, \"name=host:port,name=host:port\"")
	counter := flag.Bool("counter", false, "install an open counter resource named counter-<name>")
	policyFile := flag.String("policy", "", "security policy file (allow/deny rules; see docs/PROTOCOLS.md)")
	flag.Parse()

	switch {
	case *describe:
		runDescribe(*authority, *name, *addr)
	case *demo:
		runDemo(*authority)
	default:
		runServer(*authority, *name, *addr, *caOut, *caIn, *peers, *policyFile, *counter)
	}
}

// newPlatform builds the process's platform, creating or importing the
// shared CA as requested.
func newPlatform(authority, caOut, caIn string) (*ajanta.Platform, error) {
	if caIn != "" {
		data, err := os.ReadFile(caIn)
		if err != nil {
			return nil, err
		}
		return ajanta.NewTCPPlatformFromCA(authority, data)
	}
	p, err := ajanta.NewTCPPlatform(authority)
	if err != nil {
		return nil, err
	}
	if caOut != "" {
		data, err := p.CA.Export()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(caOut, data, 0o600); err != nil {
			return nil, err
		}
		fmt.Printf("ajanta-server: CA state written to %s (keep it secret)\n", caOut)
	}
	return p, nil
}

// bindPeers parses "name=addr,name=addr" into name-service bindings.
func bindPeers(p *ajanta.Platform, peers string) error {
	if peers == "" {
		return nil
	}
	for _, pair := range strings.Split(peers, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return fmt.Errorf("bad -peers entry %q (want name=host:port)", pair)
		}
		if err := p.BindPeer(name, addr); err != nil {
			return err
		}
	}
	return nil
}

func runDescribe(authority, name, addr string) {
	p, err := ajanta.NewTCPPlatform(authority)
	if err != nil {
		fatal(err)
	}
	defer p.StopAll()
	srv, err := p.StartServer(name, addr, ajanta.ServerConfig{})
	if err != nil {
		fatal(err)
	}
	fmt.Print(srv.Describe())
}

func runServer(authority, name, addr, caOut, caIn, peers, policyFile string, counter bool) {
	p, err := newPlatform(authority, caOut, caIn)
	if err != nil {
		fatal(err)
	}
	defer p.StopAll()
	if err := bindPeers(p, peers); err != nil {
		fatal(err)
	}
	cfg := ajanta.ServerConfig{InstalledResourcePolicy: true}
	if policyFile != "" {
		text, err := os.ReadFile(policyFile)
		if err != nil {
			fatal(err)
		}
		doc, err := ajanta.ParsePolicy(string(text))
		if err != nil {
			fatal(err)
		}
		cfg.Rules = doc.Rules
		cfg.Tiers = doc.Tiers
		cfg.TierAssignments = doc.Assignments
	}
	if counter {
		cfg.Rules = append(cfg.Rules,
			ajanta.Rule{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"}})
	}
	srv, err := p.StartServer(name, addr, cfg)
	if err != nil {
		fatal(err)
	}
	if counter {
		if err := ajanta.InstallResource(srv, ajanta.CounterResource(
			ajanta.ResourceName(authority, "counter-"+name), "counter")); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("ajanta-server: %s listening on %s (interrupt to stop)\n", srv.Name(), addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\najanta-server: shutting down")
}

func runDemo(authority string) {
	p, err := ajanta.NewTCPPlatform(authority)
	if err != nil {
		fatal(err)
	}
	defer p.StopAll()

	open := []ajanta.Rule{{AnyPrincipal: true, Resource: "quotes", Methods: []string{"*"}}}
	prices := map[string]int64{"s1": 120, "s2": 95, "s3": 110}
	var tour []ajanta.Name
	for i, short := range []string{"s1", "s2", "s3"} {
		addr := fmt.Sprintf("127.0.0.1:%d", 7101+i)
		srv, err := p.StartServer(short, addr, ajanta.ServerConfig{Rules: open})
		if err != nil {
			fatal(err)
		}
		q := ajanta.QuoteResource(ajanta.ResourceName(authority, "quotes-"+short), "quotes",
			map[string]int64{"widget": prices[short]})
		if err := ajanta.InstallResource(srv, q); err != nil {
			fatal(err)
		}
		tour = append(tour, srv.Name())
		fmt.Printf("demo: %s selling widget at %d on %s\n", srv.Name(), prices[short], addr)
	}
	home, err := p.StartServer("home", "127.0.0.1:7100", ajanta.ServerConfig{})
	if err != nil {
		fatal(err)
	}
	owner, err := p.NewOwner("demo-user")
	if err != nil {
		fatal(err)
	}
	a, err := p.BuildAgent(ajanta.AgentSpec{
		Owner: owner,
		Name:  "demo-shopper",
		Source: fmt.Sprintf(`module shopper
var best = 999999
var where = ""
func visit() {
  var parts = split(server_name(), "/")
  var short = parts[len(parts) - 1]
  var q = get_resource("ajanta:resource:%s/quotes-" + short)
  var price = invoke(q, "quote", "widget")
  log("quote: " + str(price))
  if price != nil && price < best {
    best = price
    where = short
  }
}`, authority),
		Itinerary: ajanta.Tour("visit", tour...),
		Home:      home,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println("demo: launching shopper on its tour...")
	back, err := p.LaunchAndWait(home, a, 30*time.Second)
	if err != nil {
		fatal(err)
	}
	for _, line := range back.Log {
		fmt.Println("  agent:", line)
	}
	fmt.Printf("demo: best price %s at %s after %d hops\n",
		back.State["best"], back.State["where"].Text(), back.Hops)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ajanta-server:", err)
	os.Exit(1)
}
