// Command ajanta-vet runs the ASL static-analysis lint suite over any
// number of agent sources — the batch front end to the same driver
// `aslc -vet` uses for a single file.
//
// Usage:
//
//	ajanta-vet [-json] [-manifest] file.asl [file.asl ...]
//	ajanta-vet -codes
//
// Every diagnostic of every file is reported as
// file:line:col: CODE: message (or one JSON array with -json).
// Exit status: 0 = clean, 1 = findings, 2 = usage or unreadable input.
//
// Codes: ASL000 compile error, ANA000 unanalyzable module, and the lint
// findings ANA001 (unreachable code), ANA002 (dead store), ANA003
// (get_resource result ignored), ANA004 (code after go()/colocate()).
// Run with -codes for the authoritative list.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/vet"
	"repro/internal/vm/analysis"
)

func main() {
	asJSON := flag.Bool("json", false, "print diagnostics as JSON")
	showManifest := flag.Bool("manifest", false, "print each clean module's access manifest")
	listCodes := flag.Bool("codes", false, "list diagnostic codes and exit")
	flag.Parse()

	if *listCodes {
		fmt.Printf("%s: %s\n", vet.CodeCompile, "compile error (lex/parse/semantic)")
		fmt.Printf("%s: %s\n", vet.CodeAnalysis, "module failed bytecode verification or analysis")
		codes := make([]string, 0, len(analysis.Codes))
		for c := range analysis.Codes {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, c := range codes {
			fmt.Printf("%s: %s\n", c, analysis.Codes[c])
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ajanta-vet [-json] [-manifest] <file.asl> ...")
		os.Exit(2)
	}

	var results []vet.Result
	for _, file := range flag.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ajanta-vet:", err)
			os.Exit(2)
		}
		results = append(results, vet.Source(file, string(src)))
	}
	n := vet.Print(os.Stdout, results, *asJSON)
	if *showManifest && !*asJSON {
		for _, r := range results {
			if r.Manifest != nil {
				fmt.Printf("%s: %s\n", r.File, r.Manifest)
			}
		}
	}
	if n > 0 {
		os.Exit(1)
	}
}
