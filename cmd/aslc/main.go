// Command aslc compiles Agent Script Language sources to VM modules and
// inspects the result.
//
// Usage:
//
//	aslc file.asl            # compile, verify, report
//	aslc -d file.asl         # compile and print the disassembly
//	aslc -vet file.asl       # compile + static analysis + lint suite
//	aslc -json file.asl      # diagnostics as a JSON array
//	aslc -run main file.asl  # compile and execute a function locally
//
// All diagnostics are reported, not just the first: compilation
// recovers from errors and keeps going, and every finding is printed as
// file:line:col: CODE: message. The exit status is 1 when any
// diagnostic was produced (with -vet, lint findings count too).
//
// Local execution installs only the pure builtins (len/append/str/...)
// plus a log host call that prints to stdout; server primitives such as
// go and get_resource are unavailable outside an agent server.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asl"
	"repro/internal/vet"
	"repro/internal/vm"
)

func main() {
	dis := flag.Bool("d", false, "print disassembly")
	doVet := flag.Bool("vet", false, "run the static-analysis lint suite (ANA001..ANA004)")
	asJSON := flag.Bool("json", false, "print diagnostics as JSON")
	run := flag.String("run", "", "execute the named function after compiling")
	fuel := flag.Uint64("fuel", vm.DefaultFuel, "instruction budget for -run")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: aslc [-d] [-vet] [-json] [-run func] <file.asl>")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	res := vet.Source(file, string(src))
	// Without -vet only the compile/analysis gate matters; lint
	// findings are advisory and suppressed.
	if !*doVet {
		kept := res.Diagnostics[:0]
		for _, d := range res.Diagnostics {
			if d.Code == vet.CodeCompile || d.Code == vet.CodeAnalysis {
				kept = append(kept, d)
			}
		}
		res.Diagnostics = kept
	}
	if n := vet.Print(os.Stdout, []vet.Result{res}, *asJSON); n > 0 {
		os.Exit(1)
	}

	mod, err := asl.Compile(string(src))
	if err != nil {
		fatal(err) // unreachable: vet.Source saw the same source compile
	}
	if *dis {
		fmt.Print(mod.Disassemble())
	}
	fmt.Fprintf(os.Stderr, "aslc: module %q: %d functions, verified OK\n", mod.Name, len(mod.Fns))
	if res.Manifest != nil && !res.Manifest.Empty() {
		fmt.Fprintf(os.Stderr, "aslc: %s\n", res.Manifest)
	}

	if *run == "" {
		return
	}
	env := vm.NewEnv()
	env.Meter = vm.NewMeter(*fuel)
	env.Resolver = vm.ModuleResolver{M: mod}
	vm.InstallBuiltins(env)
	env.Host["log"] = func(args []vm.Value) (vm.Value, error) {
		for _, a := range args {
			fmt.Println(a.Text())
		}
		return vm.Nil(), nil
	}
	if _, err := vm.Run(env, mod, asl.InitFunc); err != nil {
		fatal(err)
	}
	v, err := vm.Run(env, mod, *run)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s() = %s  (%d instructions)\n", *run, v, env.Meter.Used())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aslc:", err)
	os.Exit(1)
}
