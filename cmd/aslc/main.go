// Command aslc compiles Agent Script Language sources to VM modules and
// inspects the result.
//
// Usage:
//
//	aslc file.asl            # compile, verify, report
//	aslc -d file.asl         # compile and print the disassembly
//	aslc -run main file.asl  # compile and execute a function locally
//
// Local execution installs only the pure builtins (len/append/str/...)
// plus a log host call that prints to stdout; server primitives such as
// go and get_resource are unavailable outside an agent server.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asl"
	"repro/internal/vm"
)

func main() {
	dis := flag.Bool("d", false, "print disassembly")
	run := flag.String("run", "", "execute the named function after compiling")
	fuel := flag.Uint64("fuel", vm.DefaultFuel, "instruction budget for -run")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: aslc [-d] [-run func] <file.asl>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := asl.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	if *dis {
		fmt.Print(mod.Disassemble())
	}
	fns := 0
	for range mod.Fns {
		fns++
	}
	fmt.Fprintf(os.Stderr, "aslc: module %q: %d functions, verified OK\n", mod.Name, fns)

	if *run == "" {
		return
	}
	env := vm.NewEnv()
	env.Meter = vm.NewMeter(*fuel)
	env.Resolver = vm.ModuleResolver{M: mod}
	vm.InstallBuiltins(env)
	env.Host["log"] = func(args []vm.Value) (vm.Value, error) {
		for _, a := range args {
			fmt.Println(a.Text())
		}
		return vm.Nil(), nil
	}
	if _, err := vm.Run(env, mod, asl.InitFunc); err != nil {
		fatal(err)
	}
	v, err := vm.Run(env, mod, *run)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s() = %s  (%d instructions)\n", *run, v, env.Meter.Used())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aslc:", err)
	os.Exit(1)
}
