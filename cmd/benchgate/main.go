// Command benchgate compares two `go test -bench` outputs and fails
// when the new run has regressed beyond a threshold. It is the CI
// bench-gate's pass/fail decision: benchstat renders the human-readable
// delta table, benchgate turns the same data into an exit code.
//
//	benchgate -old bench/baseline.txt -new bench_new.txt            # default 15%
//	benchgate -old old.txt -new new.txt -threshold 1.10             # 10%
//
// The verdict is the geometric mean of per-benchmark ns/op ratios
// (new/old) over the benchmarks present in BOTH files: a single noisy
// micro-benchmark cannot fail the build on its own, but a broad
// slowdown — or a large regression in any one hot path — moves the
// geomean past the threshold. Benchmarks present in only one file are
// reported and skipped, so adding or removing a benchmark does not
// require regenerating the baseline in the same commit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one benchmark result line, e.g.
//
//	BenchmarkC8_ContendedAccess/cow/one_proxy/goroutines=4-8   123456   987.6 ns/op   0 B/op ...
//
// Capture 1 is the benchmark name (with the -GOMAXPROCS suffix), 2 the
// ns/op value.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// cpuSuffix strips the trailing -N GOMAXPROCS marker so runs at equal
// parallelism but different suffix formatting still pair up.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func parse(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(m[1], "")
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil || v <= 0 {
			continue
		}
		out[name] = append(out[name], v)
	}
	return out, sc.Err()
}

// center reduces repeated measurements of one benchmark (from -count=N)
// to their median, which resists a single outlier run.
func center(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

func main() {
	oldPath := flag.String("old", "", "baseline `file` of go test -bench output")
	newPath := flag.String("new", "", "candidate `file` of go test -bench output")
	threshold := flag.Float64("threshold", 1.15, "maximum allowed geomean ratio new/old")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	oldRes, err := parse(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	newRes, err := parse(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	var names []string
	for name := range oldRes {
		if _, ok := newRes[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmarks in common between old and new")
		os.Exit(2)
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			fmt.Printf("only in baseline (skipped): %s\n", name)
		}
	}
	for name := range newRes {
		if _, ok := oldRes[name]; !ok {
			fmt.Printf("only in candidate (skipped): %s\n", name)
		}
	}

	var logSum float64
	fmt.Printf("%-72s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, name := range names {
		o, n := center(oldRes[name]), center(newRes[name])
		ratio := n / o
		logSum += math.Log(ratio)
		fmt.Printf("%-72s %12.1f %12.1f %8.3f\n", name, o, n, ratio)
	}
	geomean := math.Exp(logSum / float64(len(names)))
	fmt.Printf("\ngeomean ratio over %d benchmarks: %.3f (threshold %.3f)\n",
		len(names), geomean, *threshold)
	if geomean > *threshold {
		fmt.Printf("FAIL: candidate is %.1f%% slower than baseline (limit %.1f%%)\n",
			(geomean-1)*100, (*threshold-1)*100)
		os.Exit(1)
	}
	fmt.Println("PASS")
}
