package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/cred"
	"repro/internal/names"
	"repro/internal/policy"
)

// c13Result is one row of BENCH_admission.json: the admission gate's
// decision latency distribution and shed rate for one storm scenario.
type c13Result struct {
	Scenario   string  `json:"scenario"` // untiered | tiered_under_limit | storm
	Goroutines int     `json:"goroutines"`
	Ops        int     `json:"ops"`
	ShedRate   float64 `json:"shed_rate"`
	P50Ns      float64 `json:"p50_ns"`
	P99Ns      float64 `json:"p99_ns"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// tableC13 measures the admission gate under arrival storms
// (experiment C13): 16 goroutines hammer Admit for each scenario and
// every decision is individually timed, giving the p50/p99 admit
// latency and the observed shed rate. When jsonPath is non-empty the
// rows are written there (the CI bench job uploads this file as the
// BENCH_admission artifact).
func tableC13(jsonPath string) {
	const (
		workers   = 16
		perWorker = 20000
	)
	owner := names.Principal("umn.edu", "storm")

	scenarios := []struct {
		name  string
		tiers []policy.Tier
		nKeys int // distinct principal buckets across the workers
	}{
		{"untiered", nil, workers},
		{"tiered_under_limit",
			[]policy.Tier{{Name: "fast", Rate: 1e12, Burst: 1e9, MaxConcurrent: 64}}, workers},
		{"storm",
			[]policy.Tier{{Name: "slow", Rate: 1000, Burst: 16}}, 1},
	}

	fmt.Println("C13: admission storm — gate decision latency and shed rate (16 goroutines)")
	fmt.Printf("  %-20s %10s %10s %12s %12s\n", "scenario", "ops", "shed", "p50 ns", "p99 ns")
	var results []c13Result
	for _, sc := range scenarios {
		eng := policy.NewEngine()
		if len(sc.tiers) > 0 {
			eng.SetTierConfig(sc.tiers,
				[]policy.TierAssignment{{AnyPrincipal: true, Tier: sc.tiers[0].Name}})
		}
		gate := admission.NewGate(eng, nil)

		lat := make([][]time.Duration, workers)
		sheds := make([]int, workers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			lat[w] = make([]time.Duration, perWorker)
			var key cred.Digest
			key[0] = byte(w % sc.nKeys)
			wg.Add(1)
			go func(w int, key cred.Digest) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					t0 := time.Now()
					tk, err := gate.Admit(owner, key)
					lat[w][i] = time.Since(t0)
					if err != nil {
						sheds[w]++
						continue
					}
					tk.Release()
				}
			}(w, key)
		}
		wg.Wait()
		elapsed := time.Since(start)

		all := make([]time.Duration, 0, workers*perWorker)
		shed := 0
		for w := 0; w < workers; w++ {
			all = append(all, lat[w]...)
			shed += sheds[w]
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) float64 {
			i := int(p * float64(len(all)-1))
			return float64(all[i].Nanoseconds())
		}
		row := c13Result{
			Scenario:   sc.name,
			Goroutines: workers,
			Ops:        len(all),
			ShedRate:   float64(shed) / float64(len(all)),
			P50Ns:      pct(0.50),
			P99Ns:      pct(0.99),
			NsPerOp:    float64(elapsed.Nanoseconds()) / float64(len(all)),
		}
		results = append(results, row)
		fmt.Printf("  %-20s %10d %9.1f%% %12.0f %12.0f\n",
			row.Scenario, row.Ops, row.ShedRate*100, row.P50Ns, row.P99Ns)
	}
	fmt.Println()

	if jsonPath != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("  wrote %s (%d rows)\n\n", jsonPath, len(results))
	}
}
