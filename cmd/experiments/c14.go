package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/baseline"
	"repro/internal/loader"
	"repro/internal/vm"
)

// c14Src mirrors the BenchmarkC14_AgentWorkload module (bench_vm_test.go):
// one entry function per workload mix.
const c14Src = `module c14

var counter = 0

func fib(n) {
  if n < 2 {
    return n
  }
  return fib(n - 1) + fib(n - 2)
}

func fibwork(n) {
  return fib(n)
}

func loopwork(n) {
  var acc = 0
  var i = 0
  while i < n {
    acc = acc + i * 3 % 7
    i = i + 1
  }
  return acc
}

func mapwork(n) {
  var m = {"a": 0, "b": 1, "c": 2, "d": 3}
  var i = 0
  var acc = 0
  while i < n {
    m["a"] = m["a"] + 1
    m["b"] = m["b"] + m["a"] % 5
    acc = acc + m["b"] % 13
    m["d"] = acc
    i = i + 1
  }
  return acc + len(keys(m))
}

func hostwork(n) {
  var i = 0
  var acc = 0
  while i < n {
    acc = acc + ping(i)
    i = i + 1
  }
  return acc
}

func statework(n) {
  var i = 0
  while i < n {
    counter = counter + 1
    i = i + 1
  }
  return counter
}
`

// c14Result is one row of BENCH_vm.json: the cost of one agent
// entry-function invocation for one (mix, interpreter) pair.
type c14Result struct {
	Mix         string  `json:"mix"`    // fib | loop | map | host | state
	Interp      string  `json:"interp"` // fast | naive
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	InstrPerOp  float64 `json:"instr_per_op"`
	NsPerInstr  float64 `json:"ns_per_instr"`
}

// c14Env builds one measurement environment: the module resolved
// through a loader namespace (the hosted-visit code path, which hands
// out the prepared execution copy) plus builtins and the ping host
// function.
func c14Env() (*vm.Env, *vm.Module) {
	mod, err := compileASL(c14Src)
	if err != nil {
		panic(err)
	}
	ts, err := loader.NewTrustedSet()
	if err != nil {
		panic(err)
	}
	ns, err := loader.NewNamespace(ts, []vm.Module{*mod}, false)
	if err != nil {
		panic(err)
	}
	execMod, err := ns.Module("c14")
	if err != nil {
		panic(err)
	}
	env := vm.NewEnv()
	env.Meter = vm.NewMeter(0)
	env.Resolver = ns
	vm.InstallBuiltins(env)
	env.Host["ping"] = func(args []vm.Value) (vm.Value, error) {
		return args[0], nil
	}
	return env, execMod
}

// tableC14 measures the VM fast path against the preserved naive
// interpreter on the C14 workload mixes (experiment C14). When jsonPath
// is non-empty the rows are written there (uploaded by CI as the
// BENCH_vm artifact).
func tableC14(jsonPath string) {
	mixes := []struct {
		name  string
		entry string
		arg   int64
	}{
		{"fib", "fibwork", 15},
		{"loop", "loopwork", 500},
		{"map", "mapwork", 200},
		{"host", "hostwork", 500},
		{"state", "statework", 500},
	}

	fmt.Println("C14: agent workload — fast interpreter vs naive baseline (ns per agent-op)")
	fmt.Printf("  %-8s %12s %12s %10s %12s\n", "mix", "fast ns", "naive ns", "speedup", "fast allocs")
	var results []c14Result
	for _, mix := range mixes {
		measure := func(run func(argv []vm.Value) error, meter func() uint64) c14Result {
			argv := []vm.Value{vm.I(mix.arg)}
			before := meter()
			var n int
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := run(argv); err != nil {
						b.Fatal(err)
					}
				}
				n += b.N
			})
			instr := float64(meter()-before) / float64(n)
			ns := float64(r.NsPerOp())
			return c14Result{
				Mix:         mix.name,
				NsPerOp:     ns,
				AllocsPerOp: r.AllocsPerOp(),
				InstrPerOp:  instr,
				NsPerInstr:  ns / instr,
			}
		}

		env, mod := c14Env()
		if _, err := vm.Run(env, mod, "__init__"); err != nil {
			panic(err)
		}
		fast := measure(func(argv []vm.Value) error {
			_, err := vm.Run(env, mod, mix.entry, argv...)
			return err
		}, env.Meter.Used)
		fast.Interp = "fast"

		nenv, _ := c14Env()
		canon, err := compileASL(c14Src)
		if err != nil {
			panic(err)
		}
		nenv.Resolver = vm.ModuleResolver{M: canon}
		var naive baseline.NaiveInterp
		if _, err := naive.Run(nenv, canon, "__init__"); err != nil {
			panic(err)
		}
		slow := measure(func(argv []vm.Value) error {
			_, err := naive.Run(nenv, canon, mix.entry, argv...)
			return err
		}, nenv.Meter.Used)
		slow.Interp = "naive"

		results = append(results, fast, slow)
		fmt.Printf("  %-8s %12.0f %12.0f %9.2fx %12d\n",
			mix.name, fast.NsPerOp, slow.NsPerOp, slow.NsPerOp/fast.NsPerOp, fast.AllocsPerOp)
	}
	fmt.Println()

	if jsonPath != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("  wrote %s (%d rows)\n\n", jsonPath, len(results))
	}
}
