package main

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/names"
	"repro/internal/netsim"
	"repro/internal/resource"
)

// c15Result is one row of BENCH_names.json: the cost of one dispatch
// resolution for one (design, goroutines, churn) cell.
type c15Result struct {
	Design      string  `json:"design"` // flat | authority | cached | flat_remote | cached_ranked
	Goroutines  int     `json:"goroutines"`
	Churn       bool    `json:"churn"` // background agent-rebind writers active
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

const c15NNames = 1024

// c15Populate binds srv0000..srvNNNN into d.
func c15Populate(d names.Directory) []names.Name {
	nms := make([]names.Name, c15NNames)
	for i := range nms {
		nms[i] = names.Server("umn.edu", fmt.Sprintf("srv%04d", i))
		if err := d.Bind(nms[i], names.Location{
			Address: fmt.Sprintf("srv%04d:7000", i), ServerName: nms[i],
		}); err != nil {
			panic(err)
		}
	}
	return nms
}

// c15Contended runs call on g goroutines, splitting b.N among them
// (the bench_test.go runContended shape).
func c15Contended(b *testing.B, g int, call func(w int) error) {
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / g
	for w := 0; w < g; w++ {
		n := per
		if w == 0 {
			n += b.N % g
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := call(w); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
}

// c15StartChurn launches 4 writers continuously rebinding agent names
// into d (the steady-state write load of transfer acks); stop with the
// returned func.
func c15StartChurn(d names.Directory) func() {
	const writers = 4
	churnNames := make([]names.Name, 64)
	for i := range churnNames {
		churnNames[i] = names.Agent("umn.edu", fmt.Sprintf("churn%02d", i))
	}
	stop := make(chan struct{})
	var done sync.WaitGroup
	for w := 0; w < writers; w++ {
		done.Add(1)
		go func(w int) {
			defer done.Done()
			loc := names.Location{Address: "churn:7000"}
			for j := w; ; j += writers {
				select {
				case <-stop:
					return
				default:
					_ = d.Bind(churnNames[j%len(churnNames)], loc)
				}
			}
		}(w)
	}
	return func() { close(stop); done.Wait() }
}

// c15ServeDirectory answers Lookup RPCs over gob: the flat store as the
// out-of-process authority a federated deployment makes it.
func c15ServeDirectory(l net.Listener, flat *baseline.FlatNameService) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
			for {
				var n names.Name
				if dec.Decode(&n) != nil {
					return
				}
				var resp struct {
					Loc names.Location
					Err string
				}
				if loc, err := flat.Lookup(n); err != nil {
					resp.Err = err.Error()
				} else {
					resp.Loc = loc
				}
				if enc.Encode(resp) != nil {
					return
				}
			}
		}(conn)
	}
}

// tableC15 measures dispatch-path name resolution across the designs
// (experiment C15): the seed's flat RWMutex map, the sharded COW
// authoritative store, and the per-server lease-caching resolver —
// quiet, under rebind churn, and (for the flat design) behind the
// remote round-trip federation implies when nothing caches. When
// jsonPath is non-empty the rows are written there (uploaded by CI as
// the BENCH_names artifact).
func tableC15(jsonPath string) {
	coarse := func() int64 { return resource.CoarseTime().UnixNano() }
	var results []c15Result

	measure := func(design string, g int, churn bool, setup func() (func(w int) error, names.Directory)) c15Result {
		call, dir := setup()
		stopChurn := func() {}
		if churn {
			stopChurn = c15StartChurn(dir)
		}
		r := testing.Benchmark(func(b *testing.B) {
			c15Contended(b, g, call)
		})
		stopChurn()
		res := c15Result{
			Design:      design,
			Goroutines:  g,
			Churn:       churn,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
		}
		results = append(results, res)
		return res
	}

	mkFlat := func() (func(w int) error, names.Directory) {
		flat := baseline.NewFlatNameService()
		nms := c15Populate(flat)
		return func(w int) error {
			_, err := flat.Lookup(nms[w%c15NNames])
			return err
		}, flat
	}
	mkAuthority := func() (func(w int) error, names.Directory) {
		svc := names.NewService()
		nms := c15Populate(svc)
		return func(w int) error {
			_, err := svc.Resolve(nms[w%c15NNames])
			return err
		}, svc
	}
	mkCached := func() (func(w int) error, names.Directory) {
		svc := names.NewServiceWithLease(time.Hour)
		nms := c15Populate(svc)
		res := names.NewResolver(svc, names.ResolverConfig{Self: "exp:7000", Now: coarse})
		for _, n := range nms {
			if _, err := res.Resolve(n); err != nil {
				panic(err)
			}
		}
		return func(w int) error {
			_, err := res.Resolve(nms[w%c15NNames])
			return err
		}, svc
	}
	mkRemote := func() (func(w int) error, names.Directory) {
		nw := netsim.NewNetwork()
		flat := baseline.NewFlatNameService()
		nms := c15Populate(flat)
		l, err := nw.Listen("dir:7000")
		if err != nil {
			panic(err)
		}
		go c15ServeDirectory(l, flat)
		const maxG = 16
		type cli struct {
			enc *gob.Encoder
			dec *gob.Decoder
		}
		clis := make([]cli, maxG)
		for i := range clis {
			conn, err := nw.Dial("dir:7000")
			if err != nil {
				panic(err)
			}
			clis[i] = cli{gob.NewEncoder(conn), gob.NewDecoder(conn)}
		}
		return func(w int) error {
			c := clis[w%maxG]
			if err := c.enc.Encode(nms[w%c15NNames]); err != nil {
				return err
			}
			var resp struct {
				Loc names.Location
				Err string
			}
			if err := c.dec.Decode(&resp); err != nil {
				return err
			}
			if resp.Err != "" {
				return fmt.Errorf("remote lookup: %s", resp.Err)
			}
			return nil
		}, flat
	}

	fmt.Println("C15: dispatch-path name resolution (ns per resolve)")
	fmt.Printf("  %-12s %6s %6s %12s %8s\n", "design", "goros", "churn", "ns/op", "allocs")
	show := func(r c15Result) {
		fmt.Printf("  %-12s %6d %6v %12.0f %8d\n",
			r.Design, r.Goroutines, r.Churn, r.NsPerOp, r.AllocsPerOp)
	}
	for _, g := range []int{1, 16} {
		show(measure("flat", g, false, mkFlat))
		show(measure("authority", g, false, mkAuthority))
		show(measure("cached", g, false, mkCached))
	}
	for _, cell := range []struct {
		design string
		mk     func() (func(w int) error, names.Directory)
	}{{"flat", mkFlat}, {"authority", mkAuthority}, {"cached", mkCached}} {
		show(measure(cell.design, 16, true, cell.mk))
	}
	show(measure("flat_remote", 16, false, mkRemote))
	fmt.Println()

	if jsonPath != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("wrote %d rows to %s\n", len(results), jsonPath)
	}
}
