package main

import (
	"repro/internal/asl"
	"repro/internal/vm"
)

// compileASL isolates the asl dependency for the VM table.
func compileASL(src string) (*vm.Module, error) {
	return asl.Compile(src)
}
