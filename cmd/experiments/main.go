// Command experiments regenerates the evaluation tables recorded in
// EXPERIMENTS.md: the per-design access costs (C1/C2), the
// communication-paradigm comparison and its crossover sweep (C3),
// accounting and revocation costs (C4/C6), transfer security cost (C7),
// and VM throughput. Timings use testing.Benchmark, so absolute numbers
// vary by machine; the *shapes* are what the reproduction asserts.
//
//	go run ./cmd/experiments            # everything
//	go run ./cmd/experiments -only c3   # one experiment
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/rpcbase"
	"repro/internal/vm"
)

func main() {
	only := flag.String("only", "", "run a single experiment: c1, c2, c3, c4, c6, c8, c12, c13, c14, c15, vm")
	jsonOut := flag.String("json", "", "write the selected experiment's results to this JSON file (c8 → BENCH_access.json rows; -only c12 → BENCH_scaling.json rows; -only c13 → BENCH_admission.json rows; -only c14 → BENCH_vm.json rows; -only c15 → BENCH_names.json rows)")
	flag.Parse()
	run := func(name string, f func()) {
		if *only == "" || *only == name {
			f()
		}
	}
	run("c1", tableC1)
	run("c2", tableC2)
	run("c3", tableC3)
	run("c4", tableC4)
	run("c6", tableC6)
	run("c8", func() { tableC8(*jsonOut) })
	run("c12", func() {
		// The JSON path is shared with c8; only claim it when c12 was
		// selected explicitly, so an unfiltered run keeps today's
		// BENCH_access semantics.
		path := ""
		if *only == "c12" {
			path = *jsonOut
		}
		tableC12(path)
	})
	run("c13", func() {
		// Same shared-path convention as c12: only claim -json when c13
		// was selected explicitly.
		path := ""
		if *only == "c13" {
			path = *jsonOut
		}
		tableC13(path)
	})
	run("c14", func() {
		// Same shared-path convention as c12/c13: only claim -json when
		// c14 was selected explicitly.
		path := ""
		if *only == "c14" {
			path = *jsonOut
		}
		tableC14(path)
	})
	run("c15", func() {
		// Same shared-path convention as c12/c13/c14: only claim -json
		// when c15 was selected explicitly.
		path := ""
		if *only == "c15" {
			path = *jsonOut
		}
		tableC15(path)
	})
	run("vm", tableVM)
}

// --- shared fixtures -------------------------------------------------------

func fixtures() (*cred.Credentials, *policy.Engine) {
	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		panic(err)
	}
	owner, err := keys.NewIdentity(reg, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		panic(err)
	}
	c, err := cred.Issue(owner, names.Agent("umn.edu", "exp"),
		names.Principal("umn.edu", "app"), cred.NewRightSet(cred.All), time.Hour, "home")
	if err != nil {
		panic(err)
	}
	eng := policy.NewEngine()
	eng.AddRule(policy.Rule{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"}})
	return &c, eng
}

func counterDef() *resource.Def {
	var (
		mu  sync.Mutex
		val int64
	)
	return &resource.Def{
		ResourceImpl: resource.NewImpl(names.Resource("umn.edu", "counter"),
			names.Principal("umn.edu", "admin"), ""),
		Path: "counter",
		Methods: map[string]resource.Method{
			"get": func([]vm.Value) (vm.Value, error) {
				mu.Lock()
				defer mu.Unlock()
				return vm.I(val), nil
			},
		},
	}
}

func designs(eng *policy.Engine) []baseline.Design {
	dual := baseline.NewDualEnvDesign(counterDef(), eng)
	return []baseline.Design{
		baseline.NewFig5Design(counterDef(), eng),
		baseline.NewProxyDesign(counterDef(), eng),
		baseline.NewWrapperDesign(counterDef(), eng),
		baseline.NewSecMgrDesign(counterDef(), eng),
		dual,
	}
}

const agentDom = domain.ID(2)

// --- C1 ---------------------------------------------------------------------

func tableC1() {
	creds, eng := fixtures()
	fmt.Println("C1: per-invocation access cost by design (§5.4)")
	fmt.Printf("  %-12s %12s\n", "design", "ns/call")
	for _, d := range designs(eng) {
		acc, err := d.Bind(agentDom, creds)
		if err != nil {
			panic(err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := acc.Invoke(agentDom, "get", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		fmt.Printf("  %-12s %12.1f\n", d.Name(), float64(r.NsPerOp()))
	}
	fmt.Println()
}

// --- C2 ---------------------------------------------------------------------

func tableC2() {
	creds, eng := fixtures()
	fmt.Println("C2: total cost of one binding plus K calls (setup crossover)")
	fmt.Printf("  %-12s", "design")
	kList := []int{1, 10, 100, 1000}
	for _, k := range kList {
		fmt.Printf(" %10s", fmt.Sprintf("K=%d (µs)", k))
	}
	fmt.Println()
	for _, d := range designs(eng) {
		fmt.Printf("  %-12s", d.Name())
		for _, k := range kList {
			var dom uint64 = 1000
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					dom++
					acc, err := d.Bind(domain.ID(dom), creds)
					if err != nil {
						b.Fatal(err)
					}
					for j := 0; j < k; j++ {
						if _, err := acc.Invoke(domain.ID(dom), "get", nil); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			fmt.Printf(" %10.2f", float64(r.NsPerOp())/1000)
		}
		fmt.Println()
	}
	fmt.Println()
}

// --- C3 ---------------------------------------------------------------------

func tableC3() {
	fmt.Println("C3a: live bytes on the wire, 3 servers x 500 records x 128 B (measured)")
	fmt.Printf("  %-12s %14s %14s\n", "selectivity", "rpc bytes", "rev bytes")
	for _, sel := range []struct {
		label     string
		threshold int64
	}{{"1%", 98}, {"10%", 89}, {"50%", 49}, {"100%", -1}} {
		rpcB := measureLive(func(nw *netsim.Network, addrs []string) {
			if _, err := rpcbase.RPCClient(nw.Dial, addrs, sel.threshold); err != nil {
				panic(err)
			}
		})
		revB := measureLive(func(nw *netsim.Network, addrs []string) {
			if _, err := rpcbase.REVClient(nw.Dial, addrs, sel.threshold); err != nil {
				panic(err)
			}
		})
		fmt.Printf("  %-12s %14d %14d\n", sel.label, rpcB, revB)
	}

	fmt.Println("\nC3b: analytic sweep — winner by total bytes and by completion time")
	fmt.Println("  (5 servers x 1000 records x 256 B, code 4 KiB, header 64 B)")
	fmt.Printf("  %-12s %-10s %12s %12s %12s %-12s %-12s\n",
		"selectivity", "latency", "rpc KB", "rev KB", "agent KB", "bytes-winner", "time-winner")
	for _, sel := range []float64{0.01, 0.05, 0.25, 0.5, 1.0} {
		for _, lat := range []time.Duration{time.Millisecond, 50 * time.Millisecond} {
			w := rpcbase.Workload{Servers: 5, Records: 1000, RecSize: 256,
				Selectivity: sel, CodeSize: 4096, HeaderSize: 64}
			m := netsim.Model{Latency: lat, Bandwidth: 1 << 20}
			rpc, rev, ag := rpcbase.RPCCost(w, m), rpcbase.REVCost(w, m), rpcbase.AgentCost(w, m)
			fmt.Printf("  %-12.2f %-10s %12.1f %12.1f %12.1f %-12s %-12s\n",
				sel, lat, kb(rpc.Bytes), kb(rev.Bytes), kb(ag.Bytes),
				winnerBytes(rpc, rev, ag), winnerTime(rpc, rev, ag))
		}
	}
	fmt.Println()
}

func kb(b uint64) float64 { return float64(b) / 1024 }

func measureLive(f func(nw *netsim.Network, addrs []string)) uint64 {
	nw := netsim.NewNetwork()
	addrs := make([]string, 3)
	for i := range addrs {
		addr := fmt.Sprintf("s%d:1", i)
		l, err := nw.Listen(addr)
		if err != nil {
			panic(err)
		}
		defer l.Close()
		go (&rpcbase.Server{Store: rpcbase.NewStore(500, 128)}).Serve(l)
		addrs[i] = addr
	}
	nw.ResetCounters()
	f(nw, addrs)
	return nw.BytesSent()
}

func winnerBytes(cs ...rpcbase.Cost) string {
	best := cs[0]
	for _, c := range cs[1:] {
		if c.Bytes < best.Bytes {
			best = c
		}
	}
	return best.Paradigm
}

func winnerTime(cs ...rpcbase.Cost) string {
	best := cs[0]
	for _, c := range cs[1:] {
		if c.Time < best.Time {
			best = c
		}
	}
	return best.Paradigm
}

// --- C4 ---------------------------------------------------------------------

func tableC4() {
	creds, eng := fixtures()
	fmt.Println("C4: proxy accounting overhead")
	bench := func(def *resource.Def) float64 {
		p, err := def.GetProxy(resource.Request{Caller: agentDom, Creds: creds, Policy: eng})
		if err != nil {
			panic(err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = p.Invoke(agentDom, "get", nil)
			}
		})
		return float64(r.NsPerOp())
	}
	plain := counterDef()
	metered := counterDef()
	metered.MeterElapsed = true
	direct := counterDef()
	fn := direct.Methods["get"]
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = fn(nil)
		}
	})
	fmt.Printf("  %-28s %10.1f ns/call\n", "direct call (no protection)", float64(r.NsPerOp()))
	fmt.Printf("  %-28s %10.1f ns/call\n", "proxy + invocation counting", bench(plain))
	fmt.Printf("  %-28s %10.1f ns/call\n", "proxy + elapsed-time metering", bench(metered))
	fmt.Println()
}

// --- C6 ---------------------------------------------------------------------

func tableC6() {
	creds, eng := fixtures()
	def := counterDef()
	fmt.Println("C6: revocation operations")
	r1 := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := def.GetProxy(resource.Request{Caller: agentDom, Creds: creds, Policy: eng})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Revoke(domain.ServerID); err != nil {
				b.Fatal(err)
			}
		}
	})
	p, _ := def.GetProxy(resource.Request{Caller: agentDom, Creds: creds, Policy: eng})
	_ = p.Revoke(domain.ServerID)
	r2 := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Invoke(agentDom, "get", nil); err == nil {
				b.Fatal("revoked proxy worked")
			}
		}
	})
	fmt.Printf("  %-28s %10.1f ns\n", "grant + revoke one proxy", float64(r1.NsPerOp()))
	fmt.Printf("  %-28s %10.1f ns\n", "post-revocation denial", float64(r2.NsPerOp()))
	fmt.Println()
}

// --- C8 ---------------------------------------------------------------------

// atomicCounterDef is the C8 resource: its method body is a single
// atomic load, so the benchmark isolates access-control overhead rather
// than contention inside the resource itself.
func atomicCounterDef() *resource.Def {
	var val atomic.Int64
	return &resource.Def{
		ResourceImpl: resource.NewImpl(names.Resource("umn.edu", "counter"),
			names.Principal("umn.edu", "admin"), ""),
		Path: "counter",
		Methods: map[string]resource.Method{
			"get": func([]vm.Value) (vm.Value, error) {
				return vm.I(val.Load()), nil
			},
		},
	}
}

// c8Result is one row of BENCH_access.json.
type c8Result struct {
	Impl        string  `json:"impl"` // cow | mutex_baseline
	Mode        string  `json:"mode"` // one_proxy | proxy_per_goroutine
	Goroutines  int     `json:"goroutines"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// tableC8 reproduces BenchmarkC8_ContendedAccess as an experiment
// table: the copy-on-write proxy against the pre-refactor mutex design
// (internal/baseline.MutexProxyDesign), with G goroutines hammering one
// shared proxy and G goroutines each owning their own. When jsonPath is
// non-empty, the rows are also written there as JSON (the CI bench job
// uploads this file as the BENCH_access artifact).
func tableC8(jsonPath string) {
	creds, eng := fixtures()
	impls := []struct {
		name string
		bind func(caller domain.ID) (baseline.Accessor, error)
	}{
		{"cow", func(caller domain.ID) (baseline.Accessor, error) {
			return atomicCounterDef().GetProxy(resource.Request{Caller: caller, Creds: creds, Policy: eng})
		}},
		{"mutex_baseline", func(caller domain.ID) (baseline.Accessor, error) {
			return baseline.NewMutexProxyDesign(atomicCounterDef(), eng).Bind(caller, creds)
		}},
	}

	contended := func(g int, call func(worker int) error) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var wg sync.WaitGroup
			per := b.N / g
			for w := 0; w < g; w++ {
				n := per
				if w == 0 {
					n += b.N % g
				}
				wg.Add(1)
				go func(w, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if err := call(w); err != nil {
							b.Error(err)
							return
						}
					}
				}(w, n)
			}
			wg.Wait()
		})
	}

	fmt.Println("C8: contended access — copy-on-write proxy vs pre-refactor mutex proxy")
	fmt.Printf("  %-16s %-20s %4s %12s %10s\n", "impl", "mode", "G", "ns/call", "allocs/op")
	var results []c8Result
	record := func(impl, mode string, g int, r testing.BenchmarkResult) {
		row := c8Result{Impl: impl, Mode: mode, Goroutines: g,
			NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp()}
		results = append(results, row)
		fmt.Printf("  %-16s %-20s %4d %12.2f %10d\n", impl, mode, g, row.NsPerOp, row.AllocsPerOp)
	}

	for _, impl := range impls {
		for _, g := range []int{1, 4, 16} {
			acc, err := impl.bind(agentDom)
			if err != nil {
				panic(err)
			}
			record(impl.name, "one_proxy", g, contended(g, func(int) error {
				_, err := acc.Invoke(agentDom, "get", nil)
				return err
			}))

			accs := make([]baseline.Accessor, g)
			doms := make([]domain.ID, g)
			for i := range accs {
				doms[i] = domain.ID(100 + i)
				if accs[i], err = impl.bind(doms[i]); err != nil {
					panic(err)
				}
			}
			record(impl.name, "proxy_per_goroutine", g, contended(g, func(w int) error {
				_, err := accs[w].Invoke(doms[w], "get", nil)
				return err
			}))
		}
	}
	fmt.Println()

	if jsonPath != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("  wrote %s (%d rows)\n\n", jsonPath, len(results))
	}
}

// --- C12 --------------------------------------------------------------------

// c12Result is one row of BENCH_scaling.json: whole-visit cost through
// the domain database at a given parallelism, on a given number of
// CPUs.
type c12Result struct {
	Impl       string  `json:"impl"` // sharded_batched | coarse_perinvoke
	CPUs       int     `json:"cpus"`
	Goroutines int     `json:"goroutines"`
	NsPerVisit float64 `json:"ns_per_visit"`
}

// visitDB is the domain-database subset one hosted visit exercises.
type visitDB interface {
	Admit(caller domain.ID, c *cred.Credentials) (domain.ID, error)
	AddBinding(caller, id domain.ID, b *domain.Binding) error
	RecordUse(caller, id domain.ID, resourcePath string, charge uint64) error
	FlushUsage(caller, id domain.ID, batch []domain.Usage) (uint64, error)
	Remove(caller, id domain.ID) error
}

// tableC12 is the multicore scaling experiment behind the domain-DB
// sharding refactor: one op is a whole visit (Admit → AddBinding → 64
// metered invocations → settlement → Remove). sharded_batched is the
// production design (internal/domain: per-shard locks, visit-local
// usage flushed once at departure); coarse_perinvoke preserves the
// pre-shard design (internal/baseline.CoarseDomainDB: one RWMutex, one
// locked RecordUse per invocation). GOMAXPROCS is swept like the
// benchmark's -cpu 1,2,4,8 flag.
func tableC12(jsonPath string) {
	const visitCalls = 64
	creds, _ := fixtures()
	impls := []struct {
		name    string
		mk      func() visitDB
		batched bool
	}{
		{"sharded_batched", func() visitDB { return domain.NewDatabase() }, true},
		{"coarse_perinvoke", func() visitDB { return baseline.NewCoarseDomainDB() }, false},
	}

	visit := func(db visitDB, batched bool) error {
		dom, err := db.Admit(domain.ServerID, creds)
		if err != nil {
			return err
		}
		if err := db.AddBinding(domain.ServerID, dom, &domain.Binding{ResourcePath: "counter"}); err != nil {
			return err
		}
		if batched {
			var inv, charge atomic.Uint64
			for k := 0; k < visitCalls; k++ {
				inv.Add(1)
				charge.Add(1)
			}
			if _, err := db.FlushUsage(domain.ServerID, dom, []domain.Usage{{
				ResourcePath: "counter", Invocations: inv.Load(), Charge: charge.Load(),
			}}); err != nil {
				return err
			}
		} else {
			for k := 0; k < visitCalls; k++ {
				if err := db.RecordUse(domain.ServerID, dom, "counter", 1); err != nil {
					return err
				}
			}
		}
		return db.Remove(domain.ServerID, dom)
	}

	contended := func(g int, call func() error) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			var wg sync.WaitGroup
			per := b.N / g
			for w := 0; w < g; w++ {
				n := per
				if w == 0 {
					n += b.N % g
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if err := call(); err != nil {
							b.Error(err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
		})
	}

	fmt.Println("C12: visit throughput through the domain database (64 calls/visit)")
	fmt.Printf("  %-18s %5s %4s %14s\n", "impl", "cpus", "G", "ns/visit")
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var results []c12Result
	for _, cpus := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(cpus)
		for _, impl := range impls {
			for _, g := range []int{1, 8} {
				db := impl.mk()
				r := contended(g, func() error { return visit(db, impl.batched) })
				row := c12Result{Impl: impl.name, CPUs: cpus, Goroutines: g,
					NsPerVisit: float64(r.NsPerOp())}
				results = append(results, row)
				fmt.Printf("  %-18s %5d %4d %14.1f\n", row.Impl, row.CPUs, row.Goroutines, row.NsPerVisit)
			}
		}
	}
	runtime.GOMAXPROCS(prev)
	fmt.Println()

	if jsonPath != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			panic(err)
		}
		fmt.Printf("  wrote %s (%d rows)\n\n", jsonPath, len(results))
	}
}

// --- VM ---------------------------------------------------------------------

func tableVM() {
	fmt.Println("VM: agent interpreter throughput")
	mod := mustCompile()
	env := vm.NewEnv()
	env.Meter = vm.NewMeter(0)
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vm.Run(env, mod, "work", vm.I(1000)); err != nil {
				b.Fatal(err)
			}
		}
	})
	instrs := float64(env.Meter.Used())
	secs := r.T.Seconds()
	fmt.Printf("  ~%.1f M instructions/second (loop micro-benchmark)\n\n", instrs/secs/1e6)
}

func mustCompile() *vm.Module {
	src := `module bench
func work(n) {
  var acc = 0
  var i = 0
  while i < n {
    acc = acc + i * 3 % 7
    i = i + 1
  }
  return acc
}`
	mod, err := compileASL(src)
	if err != nil {
		panic(err)
	}
	return mod
}
