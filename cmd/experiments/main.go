// Command experiments regenerates the evaluation tables recorded in
// EXPERIMENTS.md: the per-design access costs (C1/C2), the
// communication-paradigm comparison and its crossover sweep (C3),
// accounting and revocation costs (C4/C6), transfer security cost (C7),
// and VM throughput. Timings use testing.Benchmark, so absolute numbers
// vary by machine; the *shapes* are what the reproduction asserts.
//
//	go run ./cmd/experiments            # everything
//	go run ./cmd/experiments -only c3   # one experiment
package main

import (
	"flag"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/rpcbase"
	"repro/internal/vm"
)

func main() {
	only := flag.String("only", "", "run a single experiment: c1, c2, c3, c4, c6, vm")
	flag.Parse()
	run := func(name string, f func()) {
		if *only == "" || *only == name {
			f()
		}
	}
	run("c1", tableC1)
	run("c2", tableC2)
	run("c3", tableC3)
	run("c4", tableC4)
	run("c6", tableC6)
	run("vm", tableVM)
}

// --- shared fixtures -------------------------------------------------------

func fixtures() (*cred.Credentials, *policy.Engine) {
	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		panic(err)
	}
	owner, err := keys.NewIdentity(reg, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		panic(err)
	}
	c, err := cred.Issue(owner, names.Agent("umn.edu", "exp"),
		names.Principal("umn.edu", "app"), cred.NewRightSet(cred.All), time.Hour, "home")
	if err != nil {
		panic(err)
	}
	eng := policy.NewEngine()
	eng.AddRule(policy.Rule{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"}})
	return &c, eng
}

func counterDef() *resource.Def {
	var (
		mu  sync.Mutex
		val int64
	)
	return &resource.Def{
		ResourceImpl: resource.NewImpl(names.Resource("umn.edu", "counter"),
			names.Principal("umn.edu", "admin"), ""),
		Path: "counter",
		Methods: map[string]resource.Method{
			"get": func([]vm.Value) (vm.Value, error) {
				mu.Lock()
				defer mu.Unlock()
				return vm.I(val), nil
			},
		},
	}
}

func designs(eng *policy.Engine) []baseline.Design {
	dual := baseline.NewDualEnvDesign(counterDef(), eng)
	return []baseline.Design{
		baseline.NewFig5Design(counterDef(), eng),
		baseline.NewProxyDesign(counterDef(), eng),
		baseline.NewWrapperDesign(counterDef(), eng),
		baseline.NewSecMgrDesign(counterDef(), eng),
		dual,
	}
}

const agentDom = domain.ID(2)

// --- C1 ---------------------------------------------------------------------

func tableC1() {
	creds, eng := fixtures()
	fmt.Println("C1: per-invocation access cost by design (§5.4)")
	fmt.Printf("  %-12s %12s\n", "design", "ns/call")
	for _, d := range designs(eng) {
		acc, err := d.Bind(agentDom, creds)
		if err != nil {
			panic(err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := acc.Invoke(agentDom, "get", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		fmt.Printf("  %-12s %12.1f\n", d.Name(), float64(r.NsPerOp()))
	}
	fmt.Println()
}

// --- C2 ---------------------------------------------------------------------

func tableC2() {
	creds, eng := fixtures()
	fmt.Println("C2: total cost of one binding plus K calls (setup crossover)")
	fmt.Printf("  %-12s", "design")
	kList := []int{1, 10, 100, 1000}
	for _, k := range kList {
		fmt.Printf(" %10s", fmt.Sprintf("K=%d (µs)", k))
	}
	fmt.Println()
	for _, d := range designs(eng) {
		fmt.Printf("  %-12s", d.Name())
		for _, k := range kList {
			var dom uint64 = 1000
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					dom++
					acc, err := d.Bind(domain.ID(dom), creds)
					if err != nil {
						b.Fatal(err)
					}
					for j := 0; j < k; j++ {
						if _, err := acc.Invoke(domain.ID(dom), "get", nil); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			fmt.Printf(" %10.2f", float64(r.NsPerOp())/1000)
		}
		fmt.Println()
	}
	fmt.Println()
}

// --- C3 ---------------------------------------------------------------------

func tableC3() {
	fmt.Println("C3a: live bytes on the wire, 3 servers x 500 records x 128 B (measured)")
	fmt.Printf("  %-12s %14s %14s\n", "selectivity", "rpc bytes", "rev bytes")
	for _, sel := range []struct {
		label     string
		threshold int64
	}{{"1%", 98}, {"10%", 89}, {"50%", 49}, {"100%", -1}} {
		rpcB := measureLive(func(nw *netsim.Network, addrs []string) {
			if _, err := rpcbase.RPCClient(nw.Dial, addrs, sel.threshold); err != nil {
				panic(err)
			}
		})
		revB := measureLive(func(nw *netsim.Network, addrs []string) {
			if _, err := rpcbase.REVClient(nw.Dial, addrs, sel.threshold); err != nil {
				panic(err)
			}
		})
		fmt.Printf("  %-12s %14d %14d\n", sel.label, rpcB, revB)
	}

	fmt.Println("\nC3b: analytic sweep — winner by total bytes and by completion time")
	fmt.Println("  (5 servers x 1000 records x 256 B, code 4 KiB, header 64 B)")
	fmt.Printf("  %-12s %-10s %12s %12s %12s %-12s %-12s\n",
		"selectivity", "latency", "rpc KB", "rev KB", "agent KB", "bytes-winner", "time-winner")
	for _, sel := range []float64{0.01, 0.05, 0.25, 0.5, 1.0} {
		for _, lat := range []time.Duration{time.Millisecond, 50 * time.Millisecond} {
			w := rpcbase.Workload{Servers: 5, Records: 1000, RecSize: 256,
				Selectivity: sel, CodeSize: 4096, HeaderSize: 64}
			m := netsim.Model{Latency: lat, Bandwidth: 1 << 20}
			rpc, rev, ag := rpcbase.RPCCost(w, m), rpcbase.REVCost(w, m), rpcbase.AgentCost(w, m)
			fmt.Printf("  %-12.2f %-10s %12.1f %12.1f %12.1f %-12s %-12s\n",
				sel, lat, kb(rpc.Bytes), kb(rev.Bytes), kb(ag.Bytes),
				winnerBytes(rpc, rev, ag), winnerTime(rpc, rev, ag))
		}
	}
	fmt.Println()
}

func kb(b uint64) float64 { return float64(b) / 1024 }

func measureLive(f func(nw *netsim.Network, addrs []string)) uint64 {
	nw := netsim.NewNetwork()
	addrs := make([]string, 3)
	for i := range addrs {
		addr := fmt.Sprintf("s%d:1", i)
		l, err := nw.Listen(addr)
		if err != nil {
			panic(err)
		}
		defer l.Close()
		go (&rpcbase.Server{Store: rpcbase.NewStore(500, 128)}).Serve(l)
		addrs[i] = addr
	}
	nw.ResetCounters()
	f(nw, addrs)
	return nw.BytesSent()
}

func winnerBytes(cs ...rpcbase.Cost) string {
	best := cs[0]
	for _, c := range cs[1:] {
		if c.Bytes < best.Bytes {
			best = c
		}
	}
	return best.Paradigm
}

func winnerTime(cs ...rpcbase.Cost) string {
	best := cs[0]
	for _, c := range cs[1:] {
		if c.Time < best.Time {
			best = c
		}
	}
	return best.Paradigm
}

// --- C4 ---------------------------------------------------------------------

func tableC4() {
	creds, eng := fixtures()
	fmt.Println("C4: proxy accounting overhead")
	bench := func(def *resource.Def) float64 {
		p, err := def.GetProxy(resource.Request{Caller: agentDom, Creds: creds, Policy: eng})
		if err != nil {
			panic(err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = p.Invoke(agentDom, "get", nil)
			}
		})
		return float64(r.NsPerOp())
	}
	plain := counterDef()
	metered := counterDef()
	metered.MeterElapsed = true
	direct := counterDef()
	fn := direct.Methods["get"]
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = fn(nil)
		}
	})
	fmt.Printf("  %-28s %10.1f ns/call\n", "direct call (no protection)", float64(r.NsPerOp()))
	fmt.Printf("  %-28s %10.1f ns/call\n", "proxy + invocation counting", bench(plain))
	fmt.Printf("  %-28s %10.1f ns/call\n", "proxy + elapsed-time metering", bench(metered))
	fmt.Println()
}

// --- C6 ---------------------------------------------------------------------

func tableC6() {
	creds, eng := fixtures()
	def := counterDef()
	fmt.Println("C6: revocation operations")
	r1 := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := def.GetProxy(resource.Request{Caller: agentDom, Creds: creds, Policy: eng})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Revoke(domain.ServerID); err != nil {
				b.Fatal(err)
			}
		}
	})
	p, _ := def.GetProxy(resource.Request{Caller: agentDom, Creds: creds, Policy: eng})
	_ = p.Revoke(domain.ServerID)
	r2 := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Invoke(agentDom, "get", nil); err == nil {
				b.Fatal("revoked proxy worked")
			}
		}
	})
	fmt.Printf("  %-28s %10.1f ns\n", "grant + revoke one proxy", float64(r1.NsPerOp()))
	fmt.Printf("  %-28s %10.1f ns\n", "post-revocation denial", float64(r2.NsPerOp()))
	fmt.Println()
}

// --- VM ---------------------------------------------------------------------

func tableVM() {
	fmt.Println("VM: agent interpreter throughput")
	mod := mustCompile()
	env := vm.NewEnv()
	env.Meter = vm.NewMeter(0)
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vm.Run(env, mod, "work", vm.I(1000)); err != nil {
				b.Fatal(err)
			}
		}
	})
	instrs := float64(env.Meter.Used())
	secs := r.T.Seconds()
	fmt.Printf("  ~%.1f M instructions/second (loop micro-benchmark)\n\n", instrs/secs/1e6)
}

func mustCompile() *vm.Module {
	src := `module bench
func work(n) {
  var acc = 0
  var i = 0
  while i < n {
    acc = acc + i * 3 % 7
    i = i + 1
  }
  return acc
}`
	mod, err := compileASL(src)
	if err != nil {
		panic(err)
	}
	return mod
}
