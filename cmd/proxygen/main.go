// Command proxygen is the paper's "simple lexical processing tool"
// (§5.5): it reads a Go source file containing a resource interface and
// emits the corresponding proxy class in the shape of the paper's
// Figure 5.
//
// Usage:
//
//	proxygen -src internal/resource/buffer/buffer.go -iface Buffer [-out buffer_proxy.go]
//
// Without -out the generated source is written to stdout. The checked-in
// internal/resource/buffer/buffer_proxy.go is this tool's output.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/proxygen"
)

func main() {
	src := flag.String("src", "", "Go source file containing the resource interface")
	iface := flag.String("iface", "", "interface name to generate a proxy for")
	out := flag.String("out", "", "output file (default: stdout)")
	flag.Parse()

	if *src == "" || *iface == "" {
		fmt.Fprintln(os.Stderr, "usage: proxygen -src <file.go> -iface <Interface> [-out <file.go>]")
		os.Exit(2)
	}
	data, err := os.ReadFile(*src)
	if err != nil {
		fatal(err)
	}
	generated, err := proxygen.Generate(data, *iface)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		_, _ = os.Stdout.Write(generated)
		return
	}
	if err := os.WriteFile(*out, generated, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "proxygen: wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "proxygen:", err)
	os.Exit(1)
}
