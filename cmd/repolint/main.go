// Command repolint runs this repository's own Go lint rules
// (internal/lint) over a checkout — the platform-side counterpart of
// ajanta-vet. CI runs it next to gofmt, go vet and staticcheck.
//
// Usage:
//
//	repolint [dir]       # default: current directory
//	repolint -rules      # list active rules
//
// Exit status: 0 = clean, 1 = findings, 2 = usage/IO error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list active rules and exit")
	flag.Parse()

	if *listRules {
		for _, r := range lint.Rules {
			fmt.Printf("%s: %s\n", r.Name, r.Doc)
		}
		return
	}
	root := "."
	switch flag.NArg() {
	case 0:
	case 1:
		root = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: repolint [-rules] [dir]")
		os.Exit(2)
	}
	findings, err := lint.CheckDir(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
