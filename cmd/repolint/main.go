// Command repolint runs this repository's own analyzer suite
// (internal/lint) over a checkout — the platform-side counterpart of
// ajanta-vet. Since the type-aware rebuild the suite carries five
// analyzers (resourceimpl, lockorder, cowsnapshot, coarseclock,
// errclass); see docs/ANALYZERS.md for what each enforces and for the
// //lint:allow suppression grammar. CI runs it next to gofmt, go vet
// and staticcheck.
//
// Usage:
//
//	repolint [dir]              # default: current directory
//	repolint -rules             # list active analyzers
//	repolint -json out.json .   # also write findings as JSON
//	repolint -github .          # also emit GitHub ::error annotations
//
// Exit status: 0 = clean, 1 = unsuppressed findings, 2 = usage or
// operational error (type-check failure, toolchain missing).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list active analyzers and exit")
	jsonPath := flag.String("json", "", "write findings as a JSON array to this file ('-' for stdout)")
	github := flag.Bool("github", false, "emit GitHub Actions ::error annotations alongside findings")
	flag.Parse()

	if *listRules {
		for _, a := range lint.Analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	root := "."
	switch flag.NArg() {
	case 0:
	case 1:
		root = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: repolint [-rules] [-json file] [-github] [dir]")
		os.Exit(2)
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	findings, err := lint.CheckDir(absRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	// Findings print with paths relative to the checked root where
	// possible, so output (and GitHub annotations) are portable across
	// checkouts.
	for i := range findings {
		if rel, err := filepath.Rel(absRoot, findings[i].File); err == nil && filepath.IsLocal(rel) {
			findings[i].File = rel
		}
	}
	for _, f := range findings {
		fmt.Println(f)
		if *github {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=repolint %s::%s\n",
				f.File, f.Line, f.Col, f.Rule, f.Msg)
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, findings); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func writeJSON(path string, findings []lint.Finding) error {
	if findings == nil {
		findings = []lint.Finding{} // encode as [], not null
	}
	data, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
