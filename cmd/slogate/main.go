// slogate is the cluster-SLO release gate, the fleet-level sibling of
// cmd/benchgate: it reads the BENCH_cluster.json artifact produced by
// cmd/ajanta-load, re-evaluates every scenario's SLO block against its
// measurements (stored pass/fail verdicts are not trusted), and exits
// nonzero on any breach so CI blocks the merge.
//
// Usage:
//
//	slogate -report BENCH_cluster.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/loadharness"
)

func main() {
	reportPath := flag.String("report", "BENCH_cluster.json", "cluster report to gate")
	flag.Parse()
	os.Exit(gate(*reportPath, os.Stdout))
}

// gate runs the whole check and returns the process exit code; split
// from main so tests can drive a synthetic breach end to end.
func gate(path string, out *os.File) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(out, "slogate:", err)
		return 2
	}
	var r loadharness.Report
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintf(out, "slogate: parse %s: %v\n", path, err)
		return 2
	}
	code, verdict := loadharness.GateReport(&r)
	fmt.Fprint(out, verdict)
	if code != 0 {
		fmt.Fprintln(out, "slogate: SLO breach — gate failed")
	} else {
		fmt.Fprintln(out, "slogate: all scenarios within SLO")
	}
	return code
}
