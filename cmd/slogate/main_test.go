package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/loadharness"
)

// write marshals a report into a temp file and returns its path.
func write(t *testing.T, r *loadharness.Report) string {
	t.Helper()
	data, err := loadharness.MarshalReport(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateExitCodes proves the CI contract end to end: a synthetic SLO
// breach (one lost agent against the default zero-tolerance bound)
// exits 1, a clean report exits 0, and a missing artifact exits 2.
func TestGateExitCodes(t *testing.T) {
	clean := loadharness.ScenarioResult{
		Name: "ok", Launched: 10, Completed: 10,
		ThroughputPerSec: 5,
		LatencyMS:        loadharness.Percentiles{P99: 10, Count: 10},
		SLO:              loadharness.SLO{P99MS: 100},
	}
	breached := clean
	breached.Name = "lossy"
	breached.Completed = 9
	breached.Lost = 1
	breached.Pass = true // stored verdicts are not trusted

	if code := gate(write(t, &loadharness.Report{
		Scenarios: []loadharness.ScenarioResult{clean},
	}), os.Stderr); code != 0 {
		t.Fatalf("clean report: exit %d, want 0", code)
	}
	if code := gate(write(t, &loadharness.Report{
		Scenarios: []loadharness.ScenarioResult{clean, breached},
	}), os.Stderr); code != 1 {
		t.Fatalf("breached report: exit %d, want 1", code)
	}
	if code := gate(filepath.Join(t.TempDir(), "missing.json"), os.Stderr); code != 2 {
		t.Fatalf("missing report: exit %d, want 2", code)
	}
}
