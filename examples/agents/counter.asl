# counter.asl — exercises the Figure-6 binding protocol from the CLI.
#
#   go run ./cmd/ajanta-launch -servers 2 -entry visit -counter examples/agents/counter.asl
#
# Each server is started with an open counter resource named
# counter-<short>; the agent binds to the local one at every stop.

module counter

var total = 0

func visit() {
  var parts = split(server_name(), "/")
  var short = parts[len(parts) - 1]
  var c = get_resource("ajanta:resource:example.org/counter-" + short)
  invoke(c, "add", 10)
  total = total + invoke(c, "get")
  report("counter at " + short + " = " + str(invoke(c, "get")))
}
