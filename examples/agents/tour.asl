# tour.asl — a minimal travelling agent for cmd/ajanta-launch.
#
#   go run ./cmd/ajanta-launch -servers 3 -entry visit examples/agents/tour.asl
#
# At each server it records where it is and how far it has travelled;
# the launcher prints the accumulated state when it returns home.

module tour

var trail = []

func visit() {
  trail = append(trail, server_name())
  log("hop " + str(hops()) + " as " + agent_name())
}
