// Compute: distributed scientific computation (§1 lists "distributed
// scientific computation" among agent tasks).
//
// Four data servers each hold a shard of a dataset exposed as a
// record-store resource. A worker agent tours the shards, computes the
// shard's partial aggregate *at the data* (count and sum of scores over
// a threshold), carries only the partial sums between hops, and reduces
// them at home — the data never crosses the network, which is exactly
// the communication-saving claim experiment C3 quantifies.
//
//	go run ./examples/compute
package main

import (
	"fmt"
	"log"
	"time"

	ajanta "repro"
)

func main() {
	p, err := ajanta.NewPlatform("grid.example")
	if err != nil {
		log.Fatal(err)
	}
	defer p.StopAll()

	open := []ajanta.Rule{{AnyPrincipal: true, Resource: "shard", Methods: []string{"*"}}}
	var tour []ajanta.Name
	const shardSize = 5000
	for i := 0; i < 4; i++ {
		short := fmt.Sprintf("node%d", i)
		srv, err := p.StartServer(short, short+":7000", ajanta.ServerConfig{
			Rules: open,
			Fuel:  500_000_000, // the aggregation loop is genuine work
		})
		if err != nil {
			log.Fatal(err)
		}
		scores := make([]int64, shardSize)
		for j := range scores {
			scores[j] = int64((j*7 + i*13) % 100)
		}
		shard := ajanta.RecordStoreResource(
			ajanta.ResourceName("grid.example", "shard-"+short), "shard", scores, "")
		if err := ajanta.InstallResource(srv, shard); err != nil {
			log.Fatal(err)
		}
		tour = append(tour, srv.Name())
	}

	home, err := p.StartServer("home", "home:7000", ajanta.ServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	owner, err := p.NewOwner("scientist")
	if err != nil {
		log.Fatal(err)
	}

	a, err := p.BuildAgent(ajanta.AgentSpec{
		Owner: owner,
		Name:  "reducer",
		Source: `module reducer
var threshold = 90
var partials = []   # one {count, sum} per shard

func visit() {
  var parts = split(server_name(), "/")
  var short = parts[len(parts) - 1]
  var shard = get_resource("ajanta:resource:grid.example/shard-" + short)
  # Server-side filter: only indices of matching records come back.
  var hits = invoke(shard, "scan", threshold)
  var sum = 0
  var k = 0
  while k < len(hits) {
    var rec = invoke(shard, "fetch", hits[k])
    sum = sum + rec["score"]
    k = k + 1
  }
  partials = append(partials, {"node": short, "count": len(hits), "sum": sum})
}

func reduce() {
  var count = 0
  var sum = 0
  var k = 0
  while k < len(partials) {
    count = count + partials[k]["count"]
    sum = sum + partials[k]["sum"]
    k = k + 1
  }
  report({"matches": count, "sum": sum})
}`,
		Itinerary: func() ajanta.Itinerary {
			it := ajanta.Tour("visit", tour...)
			it.Stops = append(it.Stops, ajanta.Stop{
				Servers: []ajanta.Name{home.Name()}, Entry: "reduce"})
			return it
		}(),
		Home: home,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("launching reducer across 4 shards of %d records each...\n", shardSize)
	start := time.Now()
	back, err := p.LaunchAndWait(home, a, 60*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reduced result:", back.Results[0])
	fmt.Printf("wall time %v, hops %d\n", time.Since(start).Round(time.Millisecond), back.Hops)

	// Cross-check against a direct computation.
	var wantCount, wantSum int64
	for i := 0; i < 4; i++ {
		for j := 0; j < shardSize; j++ {
			s := int64((j*7 + i*13) % 100)
			if s > 90 {
				wantCount++
				wantSum += s
			}
		}
	}
	fmt.Printf("direct check:   {\"matches\": %d, \"sum\": %d}\n", wantCount, wantSum)
}
