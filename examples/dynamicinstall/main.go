// Dynamicinstall: §5.5's "dynamic extension of server capabilities".
//
// A service provider dispatches an installer agent that carries a
// dictionary service implemented in its own code bundle. The agent
// registers the service at the target server and terminates, "leaving
// the passive resource objects behind". Client agents from a different
// principal later discover and use the service through the ordinary
// proxy-request mechanism.
//
//	go run ./examples/dynamicinstall
package main

import (
	"fmt"
	"log"
	"time"

	ajanta "repro"
)

const dictService = `module dictsvc
var table = {
  "agent": "a program that migrates between servers on a user's behalf",
  "proxy": "a per-agent protected interface to a resource"
}
func define(word) { return table[word] }
func add(word, meaning) {
  table[word] = meaning
  return true
}
func size() { return len(table) }`

func main() {
	p, err := ajanta.NewPlatform("example.org")
	if err != nil {
		log.Fatal(err)
	}
	defer p.StopAll()

	srv, err := p.StartServer("host", "host:7000", ajanta.ServerConfig{
		// Demo default: dynamically installed resources are open to
		// all principals; a production server would add rules.
		InstalledResourcePolicy: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ajanta.ServerConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: the provider's installer agent plants the service.
	provider, err := p.NewOwner("provider")
	if err != nil {
		log.Fatal(err)
	}
	installer, err := p.BuildAgent(ajanta.AgentSpec{
		Owner: provider,
		Name:  "installer",
		Source: `module installer
func main() {
  install_resource("ajanta:resource:example.org/dictionary", "dictsvc", "dictionary")
  log("dictionary service installed")
}`,
		ExtraSources: []string{dictService},
		Itinerary:    ajanta.Tour("main", srv.Name()),
		Home:         home,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.LaunchAndWait(home, installer, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("installer done; registry now holds", srv.Registry().Len(), "resource(s)")

	// Phase 2: an unrelated client uses (and extends) the service.
	client, err := p.NewOwner("client")
	if err != nil {
		log.Fatal(err)
	}
	user, err := p.BuildAgent(ajanta.AgentSpec{
		Owner: client,
		Name:  "dictionary-user",
		Source: `module user
func main() {
  var d = get_resource("ajanta:resource:example.org/dictionary")
  report(invoke(d, "define", "agent"))
  invoke(d, "add", "itinerary", "the planned tour of an agent")
  report(invoke(d, "define", "itinerary"))
  report(invoke(d, "size"))
}`,
		Itinerary: ajanta.Tour("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		log.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, user, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("define(agent)     =", back.Results[0].Text())
	fmt.Println("define(itinerary) =", back.Results[1].Text())
	fmt.Println("dictionary size   =", back.Results[2])
}
