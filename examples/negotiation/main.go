// Negotiation: two autonomous agents from different owners meet at a
// marketplace server and haggle through proxy-protected mailboxes —
// the paper's secure inter-agent communication (§5.1: "communication
// among co-located agents needs to be established securely") driving a
// small protocol.
//
// The seller agent arrives first, registers its mailbox, and waits for
// offers. The buyer agent arrives with a budget, opens its own mailbox
// for replies, and bids upward until the seller accepts or the budget
// is exhausted. Every message crosses a policy-screened proxy: peers
// can only send; each agent alone drains its own mailbox.
//
//	go run ./examples/negotiation
package main

import (
	"fmt"
	"log"
	"time"

	ajanta "repro"
)

const sellerSrc = `module seller
var reserve = 80        # private reservation price: never revealed
var sold = 0

func main() {
  make_mailbox("ajanta:resource:bazaar.example/seller-box", "seller-box")
  var buyerBox = nil
  while sold == 0 {
    var msg = recv()
    if msg != nil {
      # offers look like {"from": <mailbox name>, "bid": n}
      if buyerBox == nil {
        buyerBox = get_resource(msg["from"])
      }
      if msg["bid"] >= reserve {
        invoke(buyerBox, "send", {"verdict": "accept", "price": msg["bid"]})
        sold = 1
        report("sold at " + str(msg["bid"]))
      } else {
        invoke(buyerBox, "send", {"verdict": "reject"})
      }
    }
  }
}`

const buyerSrc = `module buyer
var budget = 100
var step = 15
var bid = 40

func main() {
  make_mailbox("ajanta:resource:bazaar.example/buyer-box", "buyer-box")
  var sellerBox = get_resource("ajanta:resource:bazaar.example/seller-box")
  while true {
    invoke(sellerBox, "send", {"from": "ajanta:resource:bazaar.example/buyer-box", "bid": bid})
    var reply = nil
    while reply == nil { reply = recv() }
    if reply["verdict"] == "accept" {
      report("bought at " + str(reply["price"]))
      return
    }
    bid = bid + step
    if bid > budget {
      report("walked away: budget " + str(budget) + " exhausted")
      return
    }
  }
}`

func main() {
	p, err := ajanta.NewPlatform("bazaar.example")
	if err != nil {
		log.Fatal(err)
	}
	defer p.StopAll()

	bazaar, err := p.StartServer("bazaar", "bazaar:7000", ajanta.ServerConfig{
		Fuel: 500_000_000, // both agents busy-wait on their mailboxes
	})
	if err != nil {
		log.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ajanta.ServerConfig{})
	if err != nil {
		log.Fatal(err)
	}

	sellerOwner, err := p.NewOwner("merchant")
	if err != nil {
		log.Fatal(err)
	}
	buyerOwner, err := p.NewOwner("collector")
	if err != nil {
		log.Fatal(err)
	}

	seller, err := p.BuildAgent(ajanta.AgentSpec{
		Owner: sellerOwner, Name: "seller",
		Source:    sellerSrc,
		Itinerary: ajanta.Tour("main", bazaar.Name()),
		Home:      home,
	})
	if err != nil {
		log.Fatal(err)
	}
	sellerCh, err := p.Launch(home, seller)
	if err != nil {
		log.Fatal(err)
	}
	// Wait for the seller's mailbox to be open for business.
	for bazaar.Registry().Len() == 0 {
		time.Sleep(time.Millisecond)
	}

	buyer, err := p.BuildAgent(ajanta.AgentSpec{
		Owner: buyerOwner, Name: "buyer",
		Source:    buyerSrc,
		Itinerary: ajanta.Tour("main", bazaar.Name()),
		Home:      home,
	})
	if err != nil {
		log.Fatal(err)
	}
	buyerBack, err := p.LaunchAndWait(home, buyer, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	sellerBack := <-sellerCh

	fmt.Println("buyer: ", buyerBack.Results[0].Text())
	fmt.Println("seller:", sellerBack.Results[0].Text())
}
