// Quickstart: one server, one resource, one agent.
//
// The agent travels to a server, obtains a proxy to a counter resource
// through the Figure-6 binding protocol, uses it, and comes home with
// the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	ajanta "repro"
)

func main() {
	p, err := ajanta.NewPlatform("example.org")
	if err != nil {
		log.Fatal(err)
	}
	defer p.StopAll()

	// A service provider starts a server and registers a counter
	// resource; its policy lets any principal use every method.
	srv, err := p.StartServer("s1", "s1:7000", ajanta.ServerConfig{
		Rules: []ajanta.Rule{{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	counter := ajanta.CounterResource(ajanta.ResourceName("example.org", "counter"), "counter")
	if err := ajanta.InstallResource(srv, counter); err != nil {
		log.Fatal(err)
	}

	// The user's application runs its own (home) server and owns a
	// certified identity.
	home, err := p.StartServer("home", "home:7000", ajanta.ServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	owner, err := p.NewOwner("alice")
	if err != nil {
		log.Fatal(err)
	}

	// The agent: ASL source compiled into a verified bundle. It binds
	// to the counter via get_resource (steps 2–5 of the paper's
	// Fig. 6) and invokes it through the returned proxy (step 6).
	a, err := p.BuildAgent(ajanta.AgentSpec{
		Owner: owner,
		Name:  "quickstart",
		Source: `module quickstart
func main() {
  var c = get_resource("ajanta:resource:example.org/counter")
  invoke(c, "add", 41)
  report(invoke(c, "add", 1))
  log("done at " + server_name())
}`,
		Itinerary: ajanta.Tour("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		log.Fatal(err)
	}

	back, err := p.LaunchAndWait(home, a, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("agent reported:", back.Results[0]) // 42
	for _, line := range back.Log {
		fmt.Println("agent log:   ", line)
	}
}
