// Revocation & accounting: the §5.5 proxy extensions, demonstrated at
// the Go embedding level.
//
// A resource owner hands two protection domains proxies to the same
// counter, then exercises every control the paper describes:
// usage metering with per-method costs, identity-based capability
// confinement, selective revocation of one method, full revocation, and
// time-based expiry.
//
//	go run ./examples/revocation
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	ajanta "repro"
)

func main() {
	ca, err := ajanta.NewCA("example.org")
	if err != nil {
		log.Fatal(err)
	}
	owner, err := ajanta.NewIdentity(ca, ajanta.Name{Kind: "principal", Authority: "example.org", Path: "alice"}, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	creds, err := ajanta.IssueCredentials(owner,
		ajanta.AgentName("example.org", "worker"), ajanta.AllRights(), time.Hour, "home")
	if err != nil {
		log.Fatal(err)
	}

	// The resource: a counter with a deliberately expensive "add".
	var (
		mu  sync.Mutex
		val int64
	)
	adminDom := ajanta.DomainID(9) // the resource manager's own domain
	def := &ajanta.ResourceDef{
		Path: "counter",
		Methods: map[string]ajanta.ResourceMethod{
			"get": func([]ajanta.Value) (ajanta.Value, error) {
				mu.Lock()
				defer mu.Unlock()
				return ajanta.Int(val), nil
			},
			"add": func(args []ajanta.Value) (ajanta.Value, error) {
				mu.Lock()
				defer mu.Unlock()
				val += args[0].Int
				return ajanta.Int(val), nil
			},
		},
		Costs:       map[string]uint64{"add": 10}, // different costs per method (§5.5)
		Controllers: []ajanta.DomainID{adminDom},
	}
	def.Name = ajanta.ResourceName("example.org", "counter")

	eng := ajanta.NewPolicyEngine()
	eng.AddRule(ajanta.Rule{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"}})

	agentA, agentB := ajanta.DomainID(2), ajanta.DomainID(3)
	proxyA, err := def.GetProxy(ajanta.ProxyRequest{Caller: agentA, Creds: &creds, Policy: eng})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Accounting: count invocations and charge per-method costs.
	for i := 0; i < 3; i++ {
		if _, err := proxyA.Invoke(agentA, "add", []ajanta.Value{ajanta.Int(5)}); err != nil {
			log.Fatal(err)
		}
	}
	_, _ = proxyA.Invoke(agentA, "get", nil)
	acct := proxyA.AccountSnapshot()
	fmt.Printf("1. accounting: %d invocations, charge %d (3×add@10 + 1×get@1)\n",
		acct.Invocations, acct.Charge)

	// 2. Identity-based capability: agent B steals A's proxy — useless.
	if _, err := proxyA.Invoke(agentB, "get", nil); err != nil {
		fmt.Println("2. confinement:", err)
	}

	// 3. Selective revocation: the resource manager disables "add"
	//    on A's proxy; "get" keeps working.
	if err := proxyA.DisableMethod(adminDom, "add"); err != nil {
		log.Fatal(err)
	}
	if _, err := proxyA.Invoke(agentA, "add", []ajanta.Value{ajanta.Int(1)}); err != nil {
		fmt.Println("3. selective revocation:", err)
	}
	if v, err := proxyA.Invoke(agentA, "get", nil); err == nil {
		fmt.Println("   ... but get still works:", v)
	}

	// 4. Expiry: a proxy whose time has passed raises on every call.
	proxyB, err := def.GetProxy(ajanta.ProxyRequest{Caller: agentB, Creds: &creds, Policy: eng})
	if err != nil {
		log.Fatal(err)
	}
	if err := proxyB.SetExpiry(adminDom, time.Now().Add(-time.Second)); err != nil {
		log.Fatal(err)
	}
	if _, err := proxyB.Invoke(agentB, "get", nil); err != nil {
		fmt.Println("4. expiry:", err)
	}

	// 5. Full revocation: A's proxy is invalidated entirely; a fresh
	//    grant is unaffected (proxies are per-agent).
	if err := proxyA.Revoke(adminDom); err != nil {
		log.Fatal(err)
	}
	if _, err := proxyA.Invoke(agentA, "get", nil); err != nil {
		fmt.Println("5. full revocation:", err)
	}
	fresh, err := def.GetProxy(ajanta.ProxyRequest{Caller: agentA, Creds: &creds, Policy: eng})
	if err != nil {
		log.Fatal(err)
	}
	if v, err := fresh.Invoke(agentA, "get", nil); err == nil {
		fmt.Println("   a fresh grant still works:", v)
	}

	// 6. The holder itself cannot control its proxy.
	if err := fresh.Revoke(agentA); err != nil {
		fmt.Println("6. holders cannot self-administer:", err)
	}
}
