// Shopping: the paper's motivating "on-line shopping" scenario (§1).
//
// Five merchants run agent servers, each selling the same catalogue at
// different prices. A shopping agent tours them all with a budget
// delegated by its owner, collects quotes *at* each merchant (moving
// the computation to the data), and returns home with the best offer —
// while the owner's application is free to do other work (the
// asynchrony advantage the paper highlights).
//
//	go run ./examples/shopping
package main

import (
	"fmt"
	"log"
	"time"

	ajanta "repro"
)

var catalogues = map[string]map[string]int64{
	"alpha": {"laptop": 2100, "phone": 900, "tablet": 650},
	"bravo": {"laptop": 1950, "phone": 980},
	"citra": {"laptop": 2300, "phone": 870, "tablet": 700},
	"delta": {"phone": 940, "tablet": 610},
	"echo":  {"laptop": 2050, "phone": 890, "tablet": 680},
}

func main() {
	p, err := ajanta.NewPlatform("market.example")
	if err != nil {
		log.Fatal(err)
	}
	defer p.StopAll()

	open := []ajanta.Rule{{AnyPrincipal: true, Resource: "catalogue", Methods: []string{"*"}}}
	var tour []ajanta.Name
	for _, merchant := range []string{"alpha", "bravo", "citra", "delta", "echo"} {
		srv, err := p.StartServer(merchant, merchant+":7000", ajanta.ServerConfig{Rules: open})
		if err != nil {
			log.Fatal(err)
		}
		q := ajanta.QuoteResource(
			ajanta.ResourceName("market.example", "catalogue-"+merchant),
			"catalogue", catalogues[merchant])
		if err := ajanta.InstallResource(srv, q); err != nil {
			log.Fatal(err)
		}
		tour = append(tour, srv.Name())
	}

	home, err := p.StartServer("home", "home:7000", ajanta.ServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	owner, err := p.NewOwner("shopper")
	if err != nil {
		log.Fatal(err)
	}

	// The shopping list and budget are the agent's initial state; the
	// best offers accumulate in its globals as it travels.
	a, err := p.BuildAgent(ajanta.AgentSpec{
		Owner: owner,
		Name:  "bargain-hunter",
		Source: `module shopper
var wanted = ["laptop", "phone", "tablet"]
var budget = 3500
var best = {}       # item -> price
var seller = {}     # item -> merchant server

func visit() {
  # merchant short name = server name segment after the last "/"
  var parts = split(server_name(), "/")
  var short = parts[len(parts) - 1]
  var cat = get_resource("ajanta:resource:market.example/catalogue-" + short)
  var k = 0
  while k < len(wanted) {
    var item = wanted[k]
    var price = invoke(cat, "quote", item)
    if price != nil {
      if !contains(best, item) || price < best[item] {
        best[item] = price
        seller[item] = short
      }
    }
    k = k + 1
  }
  log("visited " + short)
}

func summarize() {
  var total = 0
  var k = 0
  while k < len(wanted) {
    var item = wanted[k]
    if contains(best, item) {
      total = total + best[item]
      report(item + ": " + str(best[item]) + " at " + seller[item])
    } else {
      report(item + ": unavailable")
    }
    k = k + 1
  }
  if total <= budget {
    report("total " + str(total) + " within budget " + str(budget))
  } else {
    report("total " + str(total) + " EXCEEDS budget " + str(budget))
  }
}`,
		// Visit every merchant, then come home and summarize there.
		Itinerary: func() ajanta.Itinerary {
			it := ajanta.Tour("visit", tour...)
			it.Stops = append(it.Stops, ajanta.Stop{
				Servers: []ajanta.Name{home.Name()}, Entry: "summarize"})
			return it
		}(),
		Home: home,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("launching bargain-hunter across", len(tour), "merchants...")
	back, err := p.LaunchAndWait(home, a, 15*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range back.Results {
		fmt.Println("  ", r.Text())
	}
	fmt.Printf("journey: %d hops, %d log lines\n", back.Hops, len(back.Log))
}
