package ajanta_test

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example program end to end and checks
// a signature line of its output, pinning the README walkthroughs.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are subprocesses; skipped in -short mode")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"quickstart", "agent reported: 42"},
		{"shopping", "within budget"},
		{"compute", `{"matches": 1800, "sum": 171000}`},
		{"dynamicinstall", "define(agent)     = a program that migrates"},
		{"revocation", "full revocation: resource: proxy revoked"},
		{"negotiation", "bought at 85"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+c.dir)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(120 * time.Second):
				_ = cmd.Process.Kill()
				t.Fatal("example timed out")
			}
			if err != nil {
				t.Fatalf("%v\n%s", err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, out)
			}
		})
	}
}
