// Package admission is the server's overload throttle: policy-driven
// ingress control applied at the arrival gate, before an agent's bundle
// is analyzed or a VM starts. The paper's access-control model admits
// every agent and then checks each access; at scale the gate itself
// must be the throttle point, or a burst of agents from one principal
// starves everyone and overload turns into lost agents.
//
// The Gate enforces the admission tiers carried by the policy engine
// (policy.Tier): a per-principal sustained rate with a burst allowance,
// a per-principal concurrent-visit cap, and an optional per-visit fuel
// quota. Limits are keyed by cred.Digest — the (owner, effective
// rights) digest — so all agents of one owner with the same delegated
// rights share one bucket, and a delegation that narrows rights starts
// a fresh one.
//
// Design constraints, in order:
//
//   - The admit path takes no locks. Tier resolution is a lock-free
//     read of the policy engine's copy-on-write snapshot; the bucket
//     map is a sharded sync.Map (Load is lock-free for present keys);
//     the rate decision is one CAS on the bucket's atomic state; the
//     concurrency decision is one atomic add. A tier hot-reload
//     publishes a new snapshot and bumps the epoch — in-flight
//     admissions never block, the next admission sees the new limits.
//
//   - Shedding is cheap and actionable. An over-limit arrival costs
//     O(one atomic read + one bucket op) and produces a *ShedError
//     carrying a retry-after hint, which travels back over the transfer
//     protocol, is classified transient by internal/retry, and lands in
//     the sender's backoff/dead-letter machinery — shed agents back off
//     and retry rather than vanish.
//
// The rate limiter is GCRA (the ATM Generic Cell Rate Algorithm, the
// lock-free formulation of a token bucket): each bucket stores a single
// theoretical-arrival-time (TAT) in an atomic int64 of unix
// nanoseconds. For a tier with rate R and burst B, the emission
// interval is T = 1s/R and the burst tolerance τ = (B-1)·T; an arrival
// at time `now` conforms iff TAT - now ≤ τ, and on conformance the
// bucket advances TAT ← max(TAT, now) + T with one CAS. A shed arrival
// writes nothing and its retry-after hint is exactly when it would next
// conform: (TAT - τ) - now.
package admission

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cred"
	"repro/internal/names"
	"repro/internal/policy"
)

// ErrShed marks a load-shedding rejection: the receiving server is
// over the arriving principal's tier limits right now. It is transient
// by contract — the default retry classifier retries it, unlike
// transfer.ErrRejected — and usually wrapped in a *ShedError carrying
// the retry-after hint.
var ErrShed = errors.New("admission: shed (over tier limit, retry later)")

// ShedError is the typed shed response. It wraps ErrShed (errors.Is
// matches) and exposes the receiver's retry-after hint through
// RetryAfterHint, which internal/retry honours when scheduling the
// backoff.
type ShedError struct {
	// Tier names the tier whose limit fired (empty when the sender
	// reconstructed the error from the wire and the receiver did not
	// say).
	Tier string
	// Cause is "rate" or "concurrency" on the receiver; free text when
	// reconstructed from the wire.
	Cause string
	// RetryAfter is the receiver's hint for when the next attempt can
	// conform; zero means no hint.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	msg := ErrShed.Error()
	if e.Tier != "" || e.Cause != "" {
		msg = fmt.Sprintf("admission: shed (tier %q over %s limit)", e.Tier, e.Cause)
	}
	if e.RetryAfter > 0 {
		msg = fmt.Sprintf("%s: retry after %v", msg, e.RetryAfter)
	}
	return msg
}

// Unwrap lets errors.Is(err, ErrShed) match.
func (e *ShedError) Unwrap() error { return ErrShed }

// RetryAfterHint implements the hint interface internal/retry probes
// with errors.As: the backoff before the next attempt is at least this.
func (e *ShedError) RetryAfterHint() time.Duration { return e.RetryAfter }

// Ticket is an admitted arrival's receipt. It carries the per-visit
// quota the tier imposes and, for tiers with a concurrency cap, the
// obligation to Release when the visit reaches a terminal state.
// Release is idempotent. A nil *Ticket is valid and releases nothing
// (untiered arrivals).
type Ticket struct {
	// Tier is the name of the tier that admitted the agent.
	Tier string
	// Fuel, when non-zero, caps the visit's instruction budget below
	// the server default.
	Fuel uint64

	slot     *bucket
	released atomic.Bool
}

// Release returns the arrival's concurrency slot. Safe to call more
// than once and on nil.
func (t *Ticket) Release() {
	if t == nil || t.slot == nil {
		return
	}
	if t.released.CompareAndSwap(false, true) {
		t.slot.inflight.Add(-1)
	}
}

// bucket is one principal key's admission state: the GCRA TAT and the
// concurrent-visit gauge. Buckets are created on a key's first arrival
// and reused for its lifetime; tier parameters are NOT stored here —
// they are read from the policy snapshot per arrival, so a tier reload
// needs no bucket rebuild.
type bucket struct {
	tat      atomic.Int64 // GCRA theoretical arrival time, unix nanos
	inflight atomic.Int64 // concurrent admitted visits
}

// take runs one GCRA conformance decision at time now (unix nanos) for
// emission interval t and tolerance tau (both nanos). On conformance it
// advances the TAT with a CAS and returns ok; on shed it returns the
// wait until the arrival would conform.
func (b *bucket) take(now, t, tau int64) (retryAfter time.Duration, ok bool) {
	for {
		tat := b.tat.Load()
		if tat-now > tau {
			return time.Duration(tat - tau - now), false
		}
		next := tat
		if now > next {
			next = now
		}
		if b.tat.CompareAndSwap(tat, next+t) {
			return 0, true
		}
	}
}

// shardCount is the bucket-map shard fan-out. Shards only reduce
// sync.Map write contention when many new keys arrive at once; reads
// are lock-free regardless.
const shardCount = 32

// Stats is a snapshot of the gate's lifetime counters.
type Stats struct {
	// Admitted counts arrivals that passed the gate (tiered or not).
	Admitted uint64
	// ShedRate counts arrivals shed by a tier's rate limit.
	ShedRate uint64
	// ShedConcurrency counts arrivals shed by a tier's concurrent-visit
	// cap.
	ShedConcurrency uint64
}

// Shed is the total arrivals shed for any cause.
func (s Stats) Shed() uint64 { return s.ShedRate + s.ShedConcurrency }

// Gate applies the policy engine's admission tiers at a server's
// arrival gate. One Gate per server; safe for concurrent use with zero
// locks on the admit path.
type Gate struct {
	pol    *policy.Engine
	now    func() time.Time     // test seam; defaults to time.Now
	shards [shardCount]sync.Map // cred.Digest -> *bucket

	admitted atomic.Uint64
	shedRate atomic.Uint64
	shedConc atomic.Uint64
}

// NewGate builds a gate over the policy engine's tier configuration.
// now is the clock used for rate decisions; nil means time.Now.
// (Rate windows can be sub-millisecond at high tiers, so the gate does
// not use the coarse clock.)
func NewGate(pol *policy.Engine, now func() time.Time) *Gate {
	if now == nil {
		now = time.Now
	}
	return &Gate{pol: pol, now: now}
}

// bucketFor returns the bucket for a key, creating it on first arrival.
// The Load fast path is lock-free; LoadOrStore allocates only on a
// key's first arrival ever.
func (g *Gate) bucketFor(key cred.Digest) *bucket {
	shard := &g.shards[int(key[0])%shardCount]
	if v, ok := shard.Load(key); ok {
		return v.(*bucket)
	}
	v, _ := shard.LoadOrStore(key, &bucket{})
	return v.(*bucket)
}

// Admit runs the tier admission decision for an arriving agent's owner
// and credentials digest. Untiered owners are admitted with a nil
// ticket and no bucket state. Tiered owners pay one atomic add
// (concurrency cap) and one CAS (rate); over-limit arrivals get a
// *ShedError with a retry-after hint. The returned ticket must be
// Released when the visit terminates (nil-safe).
func (g *Gate) Admit(owner names.Name, key cred.Digest) (*Ticket, error) {
	tier, ok := g.pol.TierFor(owner)
	if !ok {
		g.admitted.Add(1)
		return nil, nil
	}
	tk := &Ticket{Tier: tier.Name, Fuel: tier.Fuel}
	var b *bucket
	if tier.MaxConcurrent > 0 || tier.Rate > 0 {
		b = g.bucketFor(key)
	}
	if tier.MaxConcurrent > 0 {
		if n := b.inflight.Add(1); n > int64(tier.MaxConcurrent) {
			b.inflight.Add(-1)
			g.shedConc.Add(1)
			// No natural completion time is known for a full house;
			// suggest a modest pause rather than an immediate re-slam.
			return nil, &ShedError{Tier: tier.Name, Cause: "concurrency", RetryAfter: concurrencyRetryAfter}
		}
		tk.slot = b
	}
	if tier.Rate > 0 {
		t := int64(float64(time.Second) / tier.Rate)
		burst := tier.Burst
		if burst < 1 {
			burst = 1
		}
		tau := int64(float64(t) * (burst - 1))
		if retryAfter, ok := b.take(g.now().UnixNano(), t, tau); !ok {
			tk.Release() // give back the concurrency slot, if any
			g.shedRate.Add(1)
			return nil, &ShedError{Tier: tier.Name, Cause: "rate", RetryAfter: retryAfter}
		}
	}
	g.admitted.Add(1)
	return tk, nil
}

// concurrencyRetryAfter is the hint attached to concurrency-cap sheds,
// where the gate cannot compute when a slot frees up.
const concurrencyRetryAfter = 50 * time.Millisecond

// Stats returns the gate's counters.
func (g *Gate) Stats() Stats {
	return Stats{
		Admitted:        g.admitted.Load(),
		ShedRate:        g.shedRate.Load(),
		ShedConcurrency: g.shedConc.Load(),
	}
}
