package admission

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/names"
	"repro/internal/policy"
)

func dig(b byte) cred.Digest {
	var d cred.Digest
	d[0] = b
	return d
}

var (
	alice = names.Principal("umn.edu", "alice")
	bob   = names.Principal("umn.edu", "bob")
)

// fakeClock is a settable test clock.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

func tieredEngine(t policy.Tier, assigns ...policy.TierAssignment) *policy.Engine {
	e := policy.NewEngine()
	e.SetTierConfig([]policy.Tier{t}, assigns)
	return e
}

func TestUntieredOwnerAdmitsFreely(t *testing.T) {
	g := NewGate(policy.NewEngine(), nil)
	for i := 0; i < 100; i++ {
		tk, err := g.Admit(alice, dig(1))
		if err != nil {
			t.Fatalf("untiered admit %d: %v", i, err)
		}
		if tk != nil {
			t.Fatal("untiered admit returned a ticket")
		}
	}
	if st := g.Stats(); st.Admitted != 100 || st.Shed() != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRateLimitBurstThenShed(t *testing.T) {
	clk := &fakeClock{}
	clk.advance(time.Hour) // away from zero
	e := tieredEngine(
		policy.Tier{Name: "bronze", Rate: 10, Burst: 4},
		policy.TierAssignment{AnyPrincipal: true, Tier: "bronze"},
	)
	g := NewGate(e, clk.now)

	// Burst allowance: exactly Burst back-to-back admissions from idle.
	for i := 0; i < 4; i++ {
		if _, err := g.Admit(alice, dig(1)); err != nil {
			t.Fatalf("burst admit %d shed: %v", i, err)
		}
	}
	_, err := g.Admit(alice, dig(1))
	if err == nil {
		t.Fatal("burst+1 admitted")
	}
	if !errors.Is(err, ErrShed) {
		t.Fatalf("shed error does not match ErrShed: %v", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("shed error is not a *ShedError: %v", err)
	}
	// GCRA: the first post-burst conformance is one emission interval
	// (1s/10 = 100ms) away.
	if want := 100 * time.Millisecond; shed.RetryAfter != want {
		t.Fatalf("retry-after hint = %v, want %v", shed.RetryAfter, want)
	}
	if shed.Cause != "rate" || shed.Tier != "bronze" {
		t.Fatalf("shed = %+v", shed)
	}

	// Waiting out the hint makes the next arrival conform.
	clk.advance(shed.RetryAfter)
	if _, err := g.Admit(alice, dig(1)); err != nil {
		t.Fatalf("post-hint admit shed: %v", err)
	}

	// A different principal key has its own bucket.
	if _, err := g.Admit(bob, dig(2)); err != nil {
		t.Fatalf("independent key shed: %v", err)
	}
}

func TestConcurrencyCapAndRelease(t *testing.T) {
	e := tieredEngine(
		policy.Tier{Name: "visitors", MaxConcurrent: 2},
		policy.TierAssignment{AnyPrincipal: true, Tier: "visitors"},
	)
	g := NewGate(e, nil)

	t1, err := g.Admit(alice, dig(1))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := g.Admit(alice, dig(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Admit(alice, dig(1))
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Cause != "concurrency" {
		t.Fatalf("third concurrent visit: got %v, want concurrency shed", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatal("concurrency shed carries no retry-after hint")
	}

	// Release is idempotent and frees exactly one slot.
	t1.Release()
	t1.Release()
	if _, err := g.Admit(alice, dig(1)); err != nil {
		t.Fatalf("admit after one release: %v", err)
	}
	if _, err := g.Admit(alice, dig(1)); err == nil {
		t.Fatal("double release freed two slots")
	}
	t2.Release()

	// A nil ticket releases nothing and does not panic.
	var nilTicket *Ticket
	nilTicket.Release()
}

func TestTierFuelRidesTicket(t *testing.T) {
	e := tieredEngine(
		policy.Tier{Name: "cheap", Fuel: 1234, MaxConcurrent: 8},
		policy.TierAssignment{Principal: alice, Tier: "cheap"},
	)
	g := NewGate(e, nil)
	tk, err := g.Admit(alice, dig(1))
	if err != nil {
		t.Fatal(err)
	}
	if tk == nil || tk.Fuel != 1234 || tk.Tier != "cheap" {
		t.Fatalf("ticket = %+v", tk)
	}
	tk.Release()
	// bob has no assignment: untiered.
	if tk, err := g.Admit(bob, dig(2)); err != nil || tk != nil {
		t.Fatalf("unassigned owner: %v %v", tk, err)
	}
}

func TestGroupAssignment(t *testing.T) {
	faculty := names.Group("umn.edu", "faculty")
	e := policy.NewEngine()
	e.DefineGroup(faculty, alice)
	e.SetTierConfig(
		[]policy.Tier{{Name: "gold", MaxConcurrent: 1}},
		[]policy.TierAssignment{{Principal: faculty, Tier: "gold"}},
	)
	g := NewGate(e, nil)
	tk, err := g.Admit(alice, dig(1))
	if err != nil || tk == nil || tk.Tier != "gold" {
		t.Fatalf("group member: %v %v", tk, err)
	}
	tk.Release()
	if tk, err := g.Admit(bob, dig(2)); err != nil || tk != nil {
		t.Fatalf("non-member: %v %v", tk, err)
	}
}

// TestTierHotReloadEpoch asserts the tentpole's epoch-propagation
// property: a tier change published through the COW policy engine takes
// effect on the next admission, bumps the policy epoch, and never
// blocks or wedges admissions issued concurrently with the reload.
func TestTierHotReloadEpoch(t *testing.T) {
	clk := &fakeClock{}
	clk.advance(time.Hour)
	e := tieredEngine(
		policy.Tier{Name: "t", Rate: 1, Burst: 1},
		policy.TierAssignment{AnyPrincipal: true, Tier: "t"},
	)
	g := NewGate(e, clk.now)

	if _, err := g.Admit(alice, dig(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Admit(alice, dig(1)); err == nil {
		t.Fatal("rate=1 admitted twice at one instant")
	}

	before := e.Epoch()
	// Hot reload: widen the tier. No gate surgery, no bucket rebuild —
	// the next admission reads the new snapshot. (The old bucket's TAT
	// is one emission interval of the OLD rate ahead; advance past it so
	// the new burst window opens cleanly.)
	e.SetTierConfig(
		[]policy.Tier{{Name: "t", Rate: 1000, Burst: 100}},
		[]policy.TierAssignment{{AnyPrincipal: true, Tier: "t"}},
	)
	if e.Epoch() != before+1 {
		t.Fatalf("tier reload did not bump the policy epoch: %d -> %d", before, e.Epoch())
	}
	clk.advance(time.Second)
	for i := 0; i < 50; i++ {
		if _, err := g.Admit(alice, dig(1)); err != nil {
			t.Fatalf("post-reload admit %d shed: %v", i, err)
		}
	}
}

// TestStressAdmitDuringHotReload hammers Admit from many goroutines
// while another goroutine hot-reloads the tier configuration the whole
// time. Run under -race this is the satellite's required stress test:
// the admit path and the COW reload share no locks, so the race
// detector is the arbiter of their interleavings.
func TestStressAdmitDuringHotReload(t *testing.T) {
	e := tieredEngine(
		policy.Tier{Name: "t", Rate: 1e6, Burst: 1e6, MaxConcurrent: 1 << 30},
		policy.TierAssignment{AnyPrincipal: true, Tier: "t"},
	)
	g := NewGate(e, nil)

	stop := make(chan struct{})
	var reloads sync.WaitGroup
	reloads.Add(1)
	go func() {
		defer reloads.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Alternate tier shapes, including dropping the assignment
			// entirely (untiered window) and a zero-limit tier.
			switch i % 3 {
			case 0:
				e.SetTierConfig(
					[]policy.Tier{{Name: "t", Rate: 1e6, Burst: 1e6, MaxConcurrent: 1 << 30}},
					[]policy.TierAssignment{{AnyPrincipal: true, Tier: "t"}},
				)
			case 1:
				e.SetTierConfig([]policy.Tier{{Name: "t", MaxConcurrent: 4}},
					[]policy.TierAssignment{{AnyPrincipal: true, Tier: "t"}})
			case 2:
				e.SetTierConfig(nil, nil)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tk, err := g.Admit(alice, dig(byte(w)))
				if err != nil {
					var shed *ShedError
					if !errors.As(err, &shed) {
						t.Errorf("non-shed admission error: %v", err)
						return
					}
					continue
				}
				tk.Release()
			}
		}()
	}
	wg.Wait()
	close(stop)
	reloads.Wait()
}
