// Package agent defines the mobile agent object (§4): "an agent object
// is conceptually a collection of components. The basic component is
// its code ... Its state includes its credentials and a reference to
// the agent environment." Here the code is a bundle of VM modules, the
// state is the VM global table, and the environment reference is
// re-established by each server on arrival (the `host` field of Fig. 1
// never travels).
package agent

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/cred"
	"repro/internal/names"
	"repro/internal/vm"
	"repro/internal/vm/analysis"
)

// Status of an agent as seen by its owner.
type Status string

const (
	StatusCreated Status = "created"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Stop is one itinerary entry: the servers to try (alternatives, in
// order) and the entry function to run on arrival. Alternatives give
// the fault-tolerant "try the next one" pattern the paper's itinerary
// abstractions support.
type Stop struct {
	// Servers are tried in order until a transfer succeeds.
	Servers []names.Name
	// Entry is the function of the agent's main module to execute on
	// arrival at this stop (e.g. "main" or "on_arrival").
	Entry string
}

// Itinerary is an ordered list of stops with a cursor. Higher-level
// patterns (co-location with a named resource, dynamic routes chosen by
// the agent via the `go` primitive) build on this.
type Itinerary struct {
	Stops []Stop
	Next  int
}

// Current returns the upcoming stop, or ok=false when exhausted.
func (it *Itinerary) Current() (Stop, bool) {
	if it.Next < 0 || it.Next >= len(it.Stops) {
		return Stop{}, false
	}
	return it.Stops[it.Next], true
}

// Advance moves the cursor past the current stop.
func (it *Itinerary) Advance() { it.Next++ }

// Done reports whether all stops have been visited.
func (it *Itinerary) Done() bool { return it.Next >= len(it.Stops) }

// Abandon discards the remaining stops: the agent heads straight home.
// Servers call this when a visit fails or every alternative of a stop
// is exhausted.
func (it *Itinerary) Abandon() { it.Next = len(it.Stops) }

// Remaining counts unvisited stops.
func (it *Itinerary) Remaining() int {
	if it.Done() {
		return 0
	}
	return len(it.Stops) - it.Next
}

// Sequence builds a simple one-server-per-stop itinerary running entry
// at each.
func Sequence(entry string, servers ...names.Name) Itinerary {
	stops := make([]Stop, len(servers))
	for i, s := range servers {
		stops[i] = Stop{Servers: []names.Name{s}, Entry: entry}
	}
	return Itinerary{Stops: stops}
}

// Agent is the mobile agent: code + state + credentials + itinerary.
// The struct is the unit of migration — everything in it is
// serializable; host-side references (proxies, environment) never
// travel.
type Agent struct {
	// Name is the agent's global identity (matches the credentials).
	Name names.Name
	// Credentials are the tamperproof identity/rights record (§5.2).
	Credentials cred.Credentials
	// Code is the verified module bundle; MainModule names the module
	// whose entry functions the itinerary runs.
	Code       []vm.Module
	MainModule string
	// State is the agent's global-variable image. Initialized tracks
	// whether the synthetic __init__ has run (it runs exactly once,
	// at the first server).
	State       map[string]vm.Value
	Initialized bool
	// Itinerary drives migration; Hops counts completed transfers.
	Itinerary Itinerary
	Hops      int
	// PendingEntry is the function to run on next arrival when the
	// agent migrated via the go primitive (a detour outside the
	// itinerary); empty otherwise.
	PendingEntry string
	// Results accumulate values the agent reports (the report host
	// call); they return to the home site with the agent.
	Results []vm.Value
	// Log accumulates the agent's own log lines for its owner.
	Log []string
	// Manifest is the declared access manifest computed from the code
	// bundle at build time (internal/vm/analysis): everything the code
	// can possibly ask a host for. Servers running admission control
	// re-verify it against a fresh analysis of Code — the declaration
	// must cover the computed needs — and check it against local
	// policy before any VM starts. Nil on agents built before the
	// analyzer existed; admission then computes one on the spot.
	Manifest *analysis.Manifest

	// hostState carries server-side per-arrival state (the admission
	// ticket) from the arrival gate to the hosting loop, which run on
	// different call paths but share this pointer. Unexported, so gob
	// never serializes it: host-side state must not travel.
	hostState any
}

// SetHostState attaches server-side arrival state; TakeHostState
// removes and returns it. Both are called on a single goroutine's
// admit→host path, never concurrently.
func (a *Agent) SetHostState(v any) { a.hostState = v }

// TakeHostState returns the attached state and clears it.
func (a *Agent) TakeHostState() any {
	v := a.hostState
	a.hostState = nil
	return v
}

// ErrNoCode is returned when constructing an agent without modules.
var ErrNoCode = errors.New("agent: no code modules")

// ErrFusedCode is returned when an agent's code bundle carries fused
// superinstructions — prepared execution copies are process-local and
// must never be constructed into, or cross the wire inside, an agent.
var ErrFusedCode = errors.New("agent: bundle carries fused (non-canonical) bytecode")

// New assembles an agent. The bundle is verified here as well as at
// every receiving server (defence in depth).
func New(creds cred.Credentials, mainModule string, code []vm.Module, it Itinerary) (*Agent, error) {
	if len(code) == 0 {
		return nil, ErrNoCode
	}
	if vm.BundleHasFused(code) {
		return nil, ErrFusedCode
	}
	if err := vm.VerifyBundle(code); err != nil {
		return nil, err
	}
	found := false
	for i := range code {
		if code[i].Name == mainModule {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("agent: main module %q not in bundle", mainModule)
	}
	if len(creds.CodeDigest) > 0 {
		digest, err := BundleDigest(code)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(digest, creds.CodeDigest) {
			return nil, errors.New("agent: code bundle does not match the digest pinned in the credentials")
		}
	}
	return &Agent{
		Name:        creds.AgentName,
		Credentials: creds,
		Code:        code,
		MainModule:  mainModule,
		State:       make(map[string]vm.Value),
		Itinerary:   it,
	}, nil
}

// BundleDigest computes the SHA-256 digest of a code bundle's canonical
// gob encoding. The owner signs this digest inside the credentials
// (cred.Credentials.CodeDigest), so a malicious intermediate host cannot
// modify the agent's *code* without invalidating the credentials — the
// implementable half of the paper's agent-protection requirement ("the
// code and state of an agent must be protected against modification by
// malicious hosts", §2; state must stay mutable, code need not).
func BundleDigest(code []vm.Module) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(code); err != nil {
		return nil, fmt.Errorf("agent: digest: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return sum[:], nil
}

// Logf appends a formatted line to the agent's log, which travels home
// with it — the owner's only view of what happened on the tour.
func (a *Agent) Logf(format string, args ...any) {
	a.Log = append(a.Log, fmt.Sprintf(format, args...))
}

// SanitizeForTransfer strips host-bound values from the state: handles
// reference objects in the departing server's tables and are meaningless
// (and dangerous to honour) elsewhere. Called by the transfer layer
// before serialization.
func (a *Agent) SanitizeForTransfer() {
	for k, v := range a.State {
		a.State[k] = stripHandles(v)
	}
}

func stripHandles(v vm.Value) vm.Value {
	switch v.Kind {
	case vm.KindHandle:
		return vm.Nil()
	case vm.KindList:
		for i := range v.List {
			v.List[i] = stripHandles(v.List[i])
		}
		return v
	case vm.KindMap:
		for k, e := range v.Map {
			v.Map[k] = stripHandles(e)
		}
		return v
	default:
		return v
	}
}

// Encode serializes the agent with gob (the system's wire encoding).
// Only canonical bytecode may cross the wire: the fused
// superinstructions vm.Prepare rewrites into its process-local
// execution copies are rejected here, so a bug that ever routed a
// prepared module into an agent's Code fails loudly at the transfer
// choke point instead of shipping non-canonical code (which would break
// digest pinning and confuse remote verifiers).
func (a *Agent) Encode() ([]byte, error) {
	if vm.BundleHasFused(a.Code) {
		return nil, fmt.Errorf("agent: encode: %w", ErrFusedCode)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a); err != nil {
		return nil, fmt.Errorf("agent: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes an agent, rejecting non-canonical (fused)
// bytecode a malicious or buggy sender may have produced.
func Decode(data []byte) (*Agent, error) {
	var a Agent
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&a); err != nil {
		return nil, fmt.Errorf("agent: decode: %w", err)
	}
	if vm.BundleHasFused(a.Code) {
		return nil, fmt.Errorf("agent: decode: %w", ErrFusedCode)
	}
	return &a, nil
}
