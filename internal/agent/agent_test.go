package agent

import (
	"testing"
	"time"

	"repro/internal/asl"
	"repro/internal/cred"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/vm"
)

func testCreds(t *testing.T) cred.Credentials {
	t.Helper()
	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	owner, err := keys.NewIdentity(reg, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cred.Issue(owner, names.Agent("umn.edu", "a1"),
		names.Principal("umn.edu", "app"), cred.NewRightSet(cred.All), time.Hour, "home")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func compile(t *testing.T, src string) vm.Module {
	t.Helper()
	m, err := asl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return *m
}

func TestNewValidatesBundle(t *testing.T) {
	creds := testCreds(t)
	if _, err := New(creds, "m", nil, Itinerary{}); err != ErrNoCode {
		t.Fatalf("got %v", err)
	}
	mod := compile(t, "module m\nfunc main() { return 1 }")
	if _, err := New(creds, "other", []vm.Module{mod}, Itinerary{}); err == nil {
		t.Fatal("missing main module accepted")
	}
	bad := vm.Module{Name: "bad", Fns: []vm.Func{{Name: "f", Code: []vm.Instr{{Op: vm.OpAdd}}}}}
	if _, err := New(creds, "bad", []vm.Module{bad}, Itinerary{}); err == nil {
		t.Fatal("unverifiable bundle accepted")
	}
	a, err := New(creds, "m", []vm.Module{mod}, Itinerary{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != creds.AgentName {
		t.Fatal("name mismatch")
	}
}

func TestItineraryCursor(t *testing.T) {
	s1 := names.Server("a", "s1")
	s2 := names.Server("b", "s2")
	it := Sequence("main", s1, s2)
	if it.Done() || it.Remaining() != 2 {
		t.Fatal("fresh itinerary state wrong")
	}
	stop, ok := it.Current()
	if !ok || stop.Servers[0] != s1 || stop.Entry != "main" {
		t.Fatalf("current = %+v", stop)
	}
	it.Advance()
	stop, ok = it.Current()
	if !ok || stop.Servers[0] != s2 {
		t.Fatalf("current = %+v", stop)
	}
	it.Advance()
	if _, ok := it.Current(); ok || !it.Done() || it.Remaining() != 0 {
		t.Fatal("exhausted itinerary state wrong")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	creds := testCreds(t)
	mod := compile(t, "module m\nvar x = 5\nfunc main() { return x }")
	a, err := New(creds, "m", []vm.Module{mod}, Sequence("main", names.Server("a", "s1")))
	if err != nil {
		t.Fatal(err)
	}
	a.State["x"] = vm.I(42)
	a.State["trail"] = vm.L(vm.S("s0"), vm.S("s1"))
	a.Results = append(a.Results, vm.M(map[string]vm.Value{"price": vm.I(7)}))
	a.Hops = 3
	a.Initialized = true
	a.Log = append(a.Log, "visited s0")

	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != a.Name || b.Hops != 3 || !b.Initialized {
		t.Fatalf("metadata lost: %+v", b)
	}
	if !b.State["x"].Equal(vm.I(42)) || !b.State["trail"].Equal(a.State["trail"]) {
		t.Fatal("state lost")
	}
	if len(b.Results) != 1 || !b.Results[0].Equal(a.Results[0]) {
		t.Fatal("results lost")
	}
	if len(b.Code) != 1 || b.Code[0].Name != "m" {
		t.Fatal("code lost")
	}
	if b.Credentials.AgentName != creds.AgentName {
		t.Fatal("credentials lost")
	}
	// The decoded bundle still verifies and runs.
	if err := vm.VerifyBundle(b.Code); err != nil {
		t.Fatal(err)
	}
	env := vm.NewEnv()
	env.Globals = b.State
	v, err := vm.Run(env, &b.Code[0], "main")
	if err != nil || !v.Equal(vm.I(42)) {
		t.Fatalf("%v %v", v, err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a gob stream")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestSanitizeForTransferStripsHandles(t *testing.T) {
	creds := testCreds(t)
	mod := compile(t, "module m\nfunc main() { return 1 }")
	a, _ := New(creds, "m", []vm.Module{mod}, Itinerary{})
	a.State["h"] = vm.H(7)
	a.State["nested"] = vm.L(vm.I(1), vm.H(9), vm.M(map[string]vm.Value{"p": vm.H(3)}))
	a.State["keep"] = vm.S("data")
	a.SanitizeForTransfer()
	if a.State["h"].Kind != vm.KindNil {
		t.Fatal("top-level handle survived")
	}
	if a.State["nested"].List[1].Kind != vm.KindNil {
		t.Fatal("handle in list survived")
	}
	if a.State["nested"].List[2].Map["p"].Kind != vm.KindNil {
		t.Fatal("handle in map survived")
	}
	if !a.State["keep"].Equal(vm.S("data")) {
		t.Fatal("ordinary state damaged")
	}
}
