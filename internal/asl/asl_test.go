package asl

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vm"
)

// run compiles src and executes fn, failing the test on any error.
func run(t *testing.T, src, fn string, args ...vm.Value) vm.Value {
	t.Helper()
	m, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	env := vm.NewEnv()
	vm.InstallBuiltins(env)
	env.Resolver = vm.ModuleResolver{M: m}
	if _, err := vm.Run(env, m, InitFunc); err != nil {
		t.Fatalf("init: %v", err)
	}
	v, err := vm.Run(env, m, fn, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func expectCompileErr(t *testing.T, src, substr string) {
	t.Helper()
	_, err := Compile(src)
	if err == nil {
		t.Fatalf("compiled, want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not mention %q", err, substr)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	v := run(t, `module t
func main() { return 2 + 3 * 4 - 10 / 5 }`, "main")
	if !v.Equal(vm.I(12)) {
		t.Fatalf("got %v", v)
	}
}

func TestParenthesesAndUnary(t *testing.T) {
	v := run(t, `module t
func main() { return -(2 + 3) * 2 }`, "main")
	if !v.Equal(vm.I(-10)) {
		t.Fatalf("got %v", v)
	}
	v = run(t, `module t
func main() { return !(1 == 2) }`, "main")
	if !v.Equal(vm.B(true)) {
		t.Fatalf("got %v", v)
	}
}

func TestWhileLoopSum(t *testing.T) {
	v := run(t, `module t
func main(n) {
  var i = 1
  var acc = 0
  while i <= n {
    acc = acc + i
    i = i + 1
  }
  return acc
}`, "main", vm.I(100))
	if !v.Equal(vm.I(5050)) {
		t.Fatalf("got %v", v)
	}
}

func TestBreakContinue(t *testing.T) {
	// Sum odd numbers below 10, stopping at 7.
	v := run(t, `module t
func main() {
  var i = 0
  var acc = 0
  while true {
    i = i + 1
    if i == 7 { break }
    if i % 2 == 0 { continue }
    acc = acc + i
  }
  return acc
}`, "main")
	if !v.Equal(vm.I(1 + 3 + 5)) {
		t.Fatalf("got %v", v)
	}
}

func TestIfElseChain(t *testing.T) {
	src := `module t
func grade(x) {
  if x >= 90 { return "A" }
  else if x >= 80 { return "B" }
  else if x >= 70 { return "C" }
  else { return "F" }
}`
	for _, c := range []struct {
		in   int64
		want string
	}{{95, "A"}, {85, "B"}, {75, "C"}, {10, "F"}} {
		if v := run(t, src, "grade", vm.I(c.in)); !v.Equal(vm.S(c.want)) {
			t.Fatalf("grade(%d) = %v", c.in, v)
		}
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	v := run(t, `module t
func fib(n) {
  if n < 2 { return n }
  return fib(n - 1) + fib(n - 2)
}
func main() { return fib(15) }`, "main")
	if !v.Equal(vm.I(610)) {
		t.Fatalf("got %v", v)
	}
}

func TestForwardReference(t *testing.T) {
	v := run(t, `module t
func main() { return later(5) }
func later(x) { return x * 2 }`, "main")
	if !v.Equal(vm.I(10)) {
		t.Fatalf("got %v", v)
	}
}

func TestGlobalsInitAndMutate(t *testing.T) {
	src := `module t
var counter = 10
var name = "agent-" + "007"
func bump() {
  counter = counter + 1
  return counter
}
func getname() { return name }`
	m, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	env := vm.NewEnv()
	if _, err := vm.Run(env, m, InitFunc); err != nil {
		t.Fatal(err)
	}
	if !env.Globals["counter"].Equal(vm.I(10)) {
		t.Fatalf("counter init = %v", env.Globals["counter"])
	}
	if v, _ := vm.Run(env, m, "bump"); !v.Equal(vm.I(11)) {
		t.Fatalf("bump = %v", v)
	}
	if v, _ := vm.Run(env, m, "getname"); !v.Equal(vm.S("agent-007")) {
		t.Fatalf("getname = %v", v)
	}
	// State persists in the env, ready to migrate.
	if !env.Globals["counter"].Equal(vm.I(11)) {
		t.Fatal("global table not updated")
	}
}

func TestListsMapsIndexing(t *testing.T) {
	v := run(t, `module t
func main() {
  var l = [1, 2, 3]
  l[0] = 10
  var m = {"a": 1, "b": 2}
  m["c"] = l[0] + l[2]
  return m["c"]
}`, "main")
	if !v.Equal(vm.I(13)) {
		t.Fatalf("got %v", v)
	}
}

func TestNestedIndexAssignment(t *testing.T) {
	v := run(t, `module t
func main() {
  var grid = [[1, 2], [3, 4]]
  grid[1][0] = 99
  return grid[1][0] + grid[0][1]
}`, "main")
	if !v.Equal(vm.I(101)) {
		t.Fatalf("got %v", v)
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	// boom() would trap; short-circuit must avoid calling it.
	src := `module t
func boom() { return 1 / 0 }
func main() {
  if false && boom() { return "bad" }
  if true || boom() { return "ok" }
  return "unreachable"
}`
	if v := run(t, src, "main"); !v.Equal(vm.S("ok")) {
		t.Fatalf("got %v", v)
	}
}

func TestLogicalValueSemantics(t *testing.T) {
	v := run(t, `module t
func main() { return nil || "default" }`, "main")
	if !v.Equal(vm.S("default")) {
		t.Fatalf("got %v", v)
	}
	v = run(t, `module t
func main() { return "x" && "y" }`, "main")
	if !v.Equal(vm.S("y")) {
		t.Fatalf("got %v", v)
	}
}

func TestBuiltinsFromASL(t *testing.T) {
	v := run(t, `module t
func main() {
  var l = [1, 2]
  l = append(l, 3)
  return len(l) + len("abcd")
}`, "main")
	if !v.Equal(vm.I(7)) {
		t.Fatalf("got %v", v)
	}
}

func TestHostCallFallback(t *testing.T) {
	m, err := Compile(`module t
func main() { return get_quote("widget") }`)
	if err != nil {
		t.Fatal(err)
	}
	env := vm.NewEnv()
	env.Host["get_quote"] = func(args []vm.Value) (vm.Value, error) {
		return vm.I(int64(len(args[0].Str)) * 10), nil
	}
	v, err := vm.Run(env, m, "main")
	if err != nil || !v.Equal(vm.I(60)) {
		t.Fatalf("%v %v", v, err)
	}
}

func TestQualifiedCallCompilesToCallNamed(t *testing.T) {
	m, err := Compile(`module t
func main() { return lib:double(21) }`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	_, f := m.Fn("main")
	for _, ins := range f.Code {
		if ins.Op == vm.OpCallNamed {
			found = true
		}
	}
	if !found {
		t.Fatalf("no OpCallNamed generated:\n%s", m.Disassemble())
	}
}

func TestImplicitReturnNil(t *testing.T) {
	v := run(t, `module t
func main() { var x = 3 }`, "main")
	if !v.Equal(vm.Nil()) {
		t.Fatalf("got %v", v)
	}
	v = run(t, `module t
func main() { return }`, "main")
	if !v.Equal(vm.Nil()) {
		t.Fatalf("got %v", v)
	}
}

func TestComments(t *testing.T) {
	v := run(t, `module t  # the module
# a full-line comment
func main() {
  return 42  # answer
}`, "main")
	if !v.Equal(vm.I(42)) {
		t.Fatalf("got %v", v)
	}
}

func TestStringEscapes(t *testing.T) {
	v := run(t, `module t
func main() { return "a\nb\t\"c\\" }`, "main")
	if !v.Equal(vm.S("a\nb\t\"c\\")) {
		t.Fatalf("got %v", v)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`func main() {}`, "expected \"module\""},
		{`module t
func main() { return x }`, "undeclared variable"},
		{`module t
func main() { x = 1 }`, "assignment to undeclared"},
		{`module t
func main() { var a = 1 var a = 2 }`, "duplicate local"},
		{`module t
var g = 1
var g = 2`, "duplicate global"},
		{`module t
func f() {}
func f() {}`, "duplicate function"},
		{`module t
func f(a, a) {}`, "duplicate parameter"},
		{`module t
func __init__() {}`, "reserved"},
		{`module t
func main() { break }`, "break outside loop"},
		{`module t
func main() { continue }`, "continue outside loop"},
		{`module t
func f(x) { return x }
func main() { return f(1, 2) }`, "wants 1 args"},
		{`module t
func main() { return 1 +`, "unexpected"},
		{`module t
func main() { 3 = 4 }`, "invalid assignment target"},
		{`module t
func main() { return "unterminated }`, "unterminated string"},
		{`module t
func main() { return 12abc }`, "malformed number"},
		{`module t
func main() { return "bad\q" }`, "bad escape"},
		{`module t
func main() { return $ }`, "unexpected character"},
		{`module t
func main() {`, "unterminated block"},
	}
	for _, c := range cases {
		expectCompileErr(t, c.src, c.want)
	}
}

func TestMoreParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"module 42", "expected module name"},
		{"module t\nvar 7 = 1", "expected variable name"},
		{"module t\nvar x 1", `expected "="`},
		{"module t\nfunc 9() {}", "expected function name"},
		{"module t\nfunc f(7) {}", "expected parameter name"},
		{"module t\nfunc f(a b) {}", `expected ","`},
		{"module t\nfunc f() { if true { } else 3 }", `expected "{"`},
		{"module t\nfunc f() { return [1 2] }", `expected ","`},
		{"module t\nfunc f() { return {1: 2 } }", ""}, // non-str key is a runtime trap, parses fine
		{"module t\nfunc f() { return {\"a\" 2} }", `expected ":"`},
		{"module t\nfunc f() { return a[1 }", `expected "]"`},
		{"module t\nfunc f() { return (1 }", `expected ")"`},
		{"module t\nfunc f() { return g(1 2) }", `expected ","`},
		{"module t\nstray", "expected top-level"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if c.want == "" {
			if err != nil {
				t.Errorf("%q: unexpected error %v", c.src, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestMapLiteralNonStringKeyTraps(t *testing.T) {
	m, err := Compile("module t\nfunc main() { return {1: 2} }")
	if err != nil {
		t.Fatal(err)
	}
	env := vm.NewEnv()
	if _, err := vm.Run(env, m, "main"); !errors.Is(err, vm.ErrTrap) {
		t.Fatalf("got %v", err)
	}
}

func TestCompileErrorHasLine(t *testing.T) {
	_, err := Compile("module t\nfunc main() {\n  return x\n}")
	var aerr *Error
	if !errors.As(err, &aerr) {
		t.Fatalf("error type %T", err)
	}
	if aerr.Line != 3 {
		t.Fatalf("line = %d, want 3", aerr.Line)
	}
}

// Property test: random arithmetic expressions evaluate identically in
// the VM and in a direct Go evaluator. This exercises the lexer, parser,
// code generator, verifier and interpreter end to end.
type exprGen struct {
	r     *rand.Rand
	depth int
}

func (g *exprGen) gen() (string, int64) {
	if g.depth > 4 || g.r.Intn(3) == 0 {
		v := int64(g.r.Intn(100))
		return sprintInt(v), v
	}
	g.depth++
	defer func() { g.depth-- }()
	ls, lv := g.gen()
	rs, rv := g.gen()
	switch g.r.Intn(4) {
	case 0:
		return "(" + ls + " + " + rs + ")", lv + rv
	case 1:
		return "(" + ls + " - " + rs + ")", lv - rv
	case 2:
		return "(" + ls + " * " + rs + ")", lv * rv
	default:
		if rv == 0 {
			return "(" + ls + " + " + rs + ")", lv + rv
		}
		return "(" + ls + " / " + rs + ")", lv / rv
	}
}

func sprintInt(v int64) string {
	if v < 0 {
		return "(0 - " + sprintInt(-v) + ")"
	}
	s := ""
	if v == 0 {
		return "0"
	}
	for v > 0 {
		s = string(rune('0'+v%10)) + s
		v /= 10
	}
	return s
}

func TestQuickExprEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		g := &exprGen{r: rand.New(rand.NewSource(seed))}
		src, want := g.gen()
		m, err := Compile("module q\nfunc main() { return " + src + " }")
		if err != nil {
			return false
		}
		v, err := vm.Run(vm.NewEnv(), m, "main")
		return err == nil && v.Equal(vm.I(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every compiled module passes the verifier (Compile would
// fail otherwise) and disassembles without panicking.
func TestQuickCompiledModulesVerify(t *testing.T) {
	srcs := []string{
		`module a
var s = [1, 2, 3]
func main() { var t = 0 var i = 0 while i < len(s) { t = t + s[i] i = i + 1 } return t }`,
		`module b
func f(x, y) { return x % (y + 1) }
func main() { return f(17, 4) }`,
		`module c
var m = {"k": 5}
func main() { m["k"] = m["k"] * 2 return m["k"] }`,
	}
	for _, src := range srcs {
		m, err := Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", src[:8], err)
		}
		if err := vm.Verify(m); err != nil {
			t.Fatalf("verify: %v", err)
		}
		if m.Disassemble() == "" {
			t.Fatal("empty disassembly")
		}
	}
}
