package asl

// The AST. Nodes carry the source line for error reporting.

type file struct {
	name    string // module name
	globals []globalDecl
	funcs   []funcDecl
}

type globalDecl struct {
	line int
	name string
	init expr
}

type funcDecl struct {
	line   int
	name   string
	params []string
	body   []stmt
}

// Statements.

type stmt interface{ stmtLine() int }

type varStmt struct {
	line int
	name string
	init expr
}

type assignStmt struct {
	line int
	name string
	val  expr
}

type indexAssignStmt struct {
	line     int
	agg, idx expr
	val      expr
}

type ifStmt struct {
	line int
	cond expr
	then []stmt
	els  []stmt // nil when absent
}

type whileStmt struct {
	line int
	cond expr
	body []stmt
}

type returnStmt struct {
	line int
	val  expr // nil = return nil
}

type breakStmt struct{ line int }
type continueStmt struct{ line int }

type exprStmt struct {
	line int
	e    expr
}

func (s varStmt) stmtLine() int         { return s.line }
func (s assignStmt) stmtLine() int      { return s.line }
func (s indexAssignStmt) stmtLine() int { return s.line }
func (s ifStmt) stmtLine() int          { return s.line }
func (s whileStmt) stmtLine() int       { return s.line }
func (s returnStmt) stmtLine() int      { return s.line }
func (s breakStmt) stmtLine() int       { return s.line }
func (s continueStmt) stmtLine() int    { return s.line }
func (s exprStmt) stmtLine() int        { return s.line }

// Expressions.

type expr interface{ exprLine() int }

type intLit struct {
	line int
	val  int64
}

type strLit struct {
	line int
	val  string
}

type boolLit struct {
	line int
	val  bool
}

type nilLit struct{ line int }

type nameRef struct {
	line int
	name string
}

type listLit struct {
	line  int
	elems []expr
}

type mapLit struct {
	line int
	keys []expr
	vals []expr
}

type indexExpr struct {
	line     int
	agg, idx expr
}

type callExpr struct {
	line int
	name string
	args []expr
}

type unaryExpr struct {
	line int
	op   string // "-" or "!"
	x    expr
}

type binExpr struct {
	line int
	op   string
	l, r expr
}

func (e intLit) exprLine() int    { return e.line }
func (e strLit) exprLine() int    { return e.line }
func (e boolLit) exprLine() int   { return e.line }
func (e nilLit) exprLine() int    { return e.line }
func (e nameRef) exprLine() int   { return e.line }
func (e listLit) exprLine() int   { return e.line }
func (e mapLit) exprLine() int    { return e.line }
func (e indexExpr) exprLine() int { return e.line }
func (e callExpr) exprLine() int  { return e.line }
func (e unaryExpr) exprLine() int { return e.line }
func (e binExpr) exprLine() int   { return e.line }
