package asl

// The AST. Nodes carry their source position (line and column) for
// error reporting and for threading positions into compiled bytecode.

// pos is a source position. Embedded in every AST node; satisfies both
// the stmt and expr position accessors.
type pos struct {
	line int
	col  int
}

func (p pos) stmtLine() int { return p.line }
func (p pos) exprLine() int { return p.line }
func (p pos) at() pos       { return p }

// at builds the position of a token.
func at(t token) pos { return pos{t.line, t.col} }

type file struct {
	name    string // module name
	globals []globalDecl
	funcs   []funcDecl
}

type globalDecl struct {
	pos
	name string
	init expr
}

type funcDecl struct {
	pos
	name   string
	params []string
	body   []stmt
}

// Statements.

type stmt interface {
	stmtLine() int
	at() pos
}

type varStmt struct {
	pos
	name string
	init expr
}

type assignStmt struct {
	pos
	name string
	val  expr
}

type indexAssignStmt struct {
	pos
	agg, idx expr
	val      expr
}

type ifStmt struct {
	pos
	cond expr
	then []stmt
	els  []stmt // nil when absent
}

type whileStmt struct {
	pos
	cond expr
	body []stmt
}

type returnStmt struct {
	pos
	val expr // nil = return nil
}

type breakStmt struct{ pos }
type continueStmt struct{ pos }

type exprStmt struct {
	pos
	e expr
}

// Expressions.

type expr interface {
	exprLine() int
	at() pos
}

type intLit struct {
	pos
	val int64
}

type strLit struct {
	pos
	val string
}

type boolLit struct {
	pos
	val bool
}

type nilLit struct{ pos }

type nameRef struct {
	pos
	name string
}

type listLit struct {
	pos
	elems []expr
}

type mapLit struct {
	pos
	keys []expr
	vals []expr
}

type indexExpr struct {
	pos
	agg, idx expr
}

type callExpr struct {
	pos
	name string
	args []expr
}

type unaryExpr struct {
	pos
	op string // "-" or "!"
	x  expr
}

type binExpr struct {
	pos
	op   string
	l, r expr
}
