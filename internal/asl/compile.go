package asl

import (
	"fmt"

	"repro/internal/vm"
)

// InitFunc is the synthetic function that evaluates module-level `var`
// initializers. The server runs it exactly once, at first launch; after
// that the agent's global table is carried state and migrates as data.
const InitFunc = "__init__"

// Compile compiles ASL source into a verified VM module.
//
// Semantic errors do not stop compilation: the compiler records each
// diagnostic, emits stack-neutral recovery code, and keeps going, so a
// single run reports every error in the module. One error comes back as
// a bare *Error; several come back as an ErrorList (which unwraps to
// the individual *Error values).
func Compile(src string) (*vm.Module, error) {
	f, err := parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		m:       &vm.Module{Name: f.name},
		globals: make(map[string]bool),
		funcIdx: make(map[string]int),
		arity:   make(map[string]int),
	}
	for _, g := range f.globals {
		if c.globals[g.name] {
			c.errorf(g.pos, "duplicate global %q", g.name)
		}
		c.globals[g.name] = true
	}
	// Pre-register function indices so forward references compile.
	for _, fn := range f.funcs {
		if fn.name == InitFunc {
			c.errorf(fn.pos, "%s is reserved", InitFunc)
			continue
		}
		if _, dup := c.funcIdx[fn.name]; dup {
			c.errorf(fn.pos, "duplicate function %q", fn.name)
			continue
		}
		c.funcIdx[fn.name] = len(c.m.Fns)
		c.arity[fn.name] = len(fn.params)
		c.m.Fns = append(c.m.Fns, vm.Func{Name: fn.name, NParams: len(fn.params)})
	}
	// __init__ goes last so user function indices are stable.
	initIdx := len(c.m.Fns)
	c.m.Fns = append(c.m.Fns, vm.Func{Name: InitFunc})

	for _, fn := range f.funcs {
		idx, ok := c.funcIdx[fn.name]
		if !ok || c.m.Fns[idx].Code != nil {
			continue // duplicate or reserved; already reported
		}
		c.m.Fns[idx] = c.compileFunc(fn)
	}
	c.m.Fns[initIdx] = c.compileInit(f.globals)

	if err := c.err(); err != nil {
		return nil, err
	}
	if err := vm.Verify(c.m); err != nil {
		// A verifier rejection of compiler output is a compiler bug;
		// surface it loudly rather than shipping a broken module.
		return nil, fmt.Errorf("asl: internal error: generated code failed verification: %w", err)
	}
	return c.m, nil
}

type compiler struct {
	m       *vm.Module
	globals map[string]bool
	funcIdx map[string]int
	arity   map[string]int
	errs    ErrorList
}

// errorf records a diagnostic and lets compilation continue.
func (c *compiler) errorf(p pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)})
}

// err folds the accumulated diagnostics into one error value.
func (c *compiler) err() error {
	switch len(c.errs) {
	case 0:
		return nil
	case 1:
		return c.errs[0]
	default:
		return c.errs
	}
}

// fnCompiler holds per-function state.
type fnCompiler struct {
	c          *compiler
	code       []vm.Instr
	pcpos      []vm.Pos // source position per emitted instruction
	cur        pos      // position of the construct being compiled
	locals     map[string]int
	localNames []string // slot-ordered, params first
	nloc       int
	// loop patch stacks for break/continue.
	breaks    [][]int
	contTargs []int
}

func (c *compiler) newFn() *fnCompiler {
	return &fnCompiler{c: c, locals: make(map[string]int)}
}

// declLocal assigns the next slot to name, recording it in the
// slot-ordered name table.
func (fc *fnCompiler) declLocal(name string) int {
	slot := fc.nloc
	fc.nloc++
	fc.locals[name] = slot
	fc.localNames = append(fc.localNames, name)
	return slot
}

func (c *compiler) compileFunc(fn funcDecl) vm.Func {
	fc := c.newFn()
	fc.cur = fn.pos
	for _, p := range fn.params {
		if _, dup := fc.locals[p]; dup {
			c.errorf(fn.pos, "duplicate parameter %q", p)
			continue
		}
		fc.declLocal(p)
	}
	fc.stmts(fn.body)
	// Implicit `return nil` at the end of every function.
	fc.emit(vm.Instr{Op: vm.OpPushNil})
	fc.emit(vm.Instr{Op: vm.OpReturn})
	return vm.Func{
		Name: fn.name, NParams: len(fn.params), NLocals: fc.nloc,
		Code: fc.code, Pos: fc.pcpos, LocalNames: fc.localNames,
	}
}

func (c *compiler) compileInit(globals []globalDecl) vm.Func {
	fc := c.newFn()
	for _, g := range globals {
		fc.cur = g.pos
		fc.expr(g.init)
		fc.emit(vm.Instr{Op: vm.OpStoreGlobal, A: c.m.InternStr(g.name)})
	}
	fc.emit(vm.Instr{Op: vm.OpPushNil})
	fc.emit(vm.Instr{Op: vm.OpReturn})
	return vm.Func{
		Name: InitFunc, NLocals: fc.nloc,
		Code: fc.code, Pos: fc.pcpos, LocalNames: fc.localNames,
	}
}

func (fc *fnCompiler) emit(i vm.Instr) int {
	fc.code = append(fc.code, i)
	fc.pcpos = append(fc.pcpos, vm.Pos{Line: int32(fc.cur.line), Col: int32(fc.cur.col)})
	return len(fc.code) - 1
}

func (fc *fnCompiler) patch(at int, target int) {
	fc.code[at].A = int32(target)
}

func (fc *fnCompiler) here() int { return len(fc.code) }

func (fc *fnCompiler) stmts(ss []stmt) {
	for _, s := range ss {
		fc.stmt(s)
	}
}

func (fc *fnCompiler) stmt(s stmt) {
	fc.cur = s.at()
	switch st := s.(type) {
	case varStmt:
		if _, dup := fc.locals[st.name]; dup {
			fc.c.errorf(st.pos, "duplicate local %q", st.name)
			// Recover: compile the initializer into the existing slot.
			fc.expr(st.init)
			fc.emit(vm.Instr{Op: vm.OpStoreLocal, A: int32(fc.locals[st.name])})
			return
		}
		fc.expr(st.init)
		slot := fc.declLocal(st.name)
		fc.emit(vm.Instr{Op: vm.OpStoreLocal, A: int32(slot)})
	case assignStmt:
		fc.expr(st.val)
		if slot, ok := fc.locals[st.name]; ok {
			fc.emit(vm.Instr{Op: vm.OpStoreLocal, A: int32(slot)})
			return
		}
		if fc.c.globals[st.name] {
			fc.emit(vm.Instr{Op: vm.OpStoreGlobal, A: fc.c.m.InternStr(st.name)})
			return
		}
		fc.c.errorf(st.pos, "assignment to undeclared variable %q", st.name)
		fc.emit(vm.Instr{Op: vm.OpPop}) // discard the value; keep the stack balanced
	case indexAssignStmt:
		fc.expr(st.agg)
		fc.expr(st.idx)
		fc.expr(st.val)
		fc.emit(vm.Instr{Op: vm.OpSetIndex})
		fc.emit(vm.Instr{Op: vm.OpPop})
	case ifStmt:
		fc.expr(st.cond)
		jz := fc.emit(vm.Instr{Op: vm.OpJumpIfFalse})
		fc.stmts(st.then)
		if st.els == nil {
			fc.patch(jz, fc.here())
			return
		}
		jend := fc.emit(vm.Instr{Op: vm.OpJump})
		fc.patch(jz, fc.here())
		fc.stmts(st.els)
		fc.patch(jend, fc.here())
	case whileStmt:
		top := fc.here()
		fc.expr(st.cond)
		jz := fc.emit(vm.Instr{Op: vm.OpJumpIfFalse})
		fc.breaks = append(fc.breaks, nil)
		fc.contTargs = append(fc.contTargs, top)
		fc.stmts(st.body)
		fc.cur = st.at()
		fc.emit(vm.Instr{Op: vm.OpJump, A: int32(top)})
		end := fc.here()
		fc.patch(jz, end)
		for _, b := range fc.breaks[len(fc.breaks)-1] {
			fc.patch(b, end)
		}
		fc.breaks = fc.breaks[:len(fc.breaks)-1]
		fc.contTargs = fc.contTargs[:len(fc.contTargs)-1]
	case returnStmt:
		if st.val == nil {
			fc.emit(vm.Instr{Op: vm.OpPushNil})
		} else {
			fc.expr(st.val)
		}
		fc.cur = st.at()
		fc.emit(vm.Instr{Op: vm.OpReturn})
	case breakStmt:
		if len(fc.breaks) == 0 {
			fc.c.errorf(st.pos, "break outside loop")
			return
		}
		at := fc.emit(vm.Instr{Op: vm.OpJump})
		fc.breaks[len(fc.breaks)-1] = append(fc.breaks[len(fc.breaks)-1], at)
	case continueStmt:
		if len(fc.contTargs) == 0 {
			fc.c.errorf(st.pos, "continue outside loop")
			return
		}
		fc.emit(vm.Instr{Op: vm.OpJump, A: int32(fc.contTargs[len(fc.contTargs)-1])})
	case exprStmt:
		fc.expr(st.e)
		fc.emit(vm.Instr{Op: vm.OpPop})
	default:
		fc.c.errorf(s.at(), "unknown statement type %T", s)
	}
}

var binOps = map[string]vm.Opcode{
	"+": vm.OpAdd, "-": vm.OpSub, "*": vm.OpMul, "/": vm.OpDiv, "%": vm.OpMod,
	"==": vm.OpEq, "!=": vm.OpNe, "<": vm.OpLt, "<=": vm.OpLe, ">": vm.OpGt, ">=": vm.OpGe,
}

func (fc *fnCompiler) expr(e expr) {
	fc.cur = e.at()
	switch ex := e.(type) {
	case intLit:
		fc.emit(vm.Instr{Op: vm.OpPushInt, A: fc.c.m.InternInt(ex.val)})
	case strLit:
		fc.emit(vm.Instr{Op: vm.OpPushStr, A: fc.c.m.InternStr(ex.val)})
	case boolLit:
		if ex.val {
			fc.emit(vm.Instr{Op: vm.OpPushTrue})
		} else {
			fc.emit(vm.Instr{Op: vm.OpPushFalse})
		}
	case nilLit:
		fc.emit(vm.Instr{Op: vm.OpPushNil})
	case nameRef:
		if slot, ok := fc.locals[ex.name]; ok {
			fc.emit(vm.Instr{Op: vm.OpLoadLocal, A: int32(slot)})
		} else if fc.c.globals[ex.name] {
			fc.emit(vm.Instr{Op: vm.OpLoadGlobal, A: fc.c.m.InternStr(ex.name)})
		} else {
			fc.c.errorf(ex.pos, "undeclared variable %q", ex.name)
			fc.emit(vm.Instr{Op: vm.OpPushNil}) // recover with a placeholder value
		}
	case listLit:
		for _, el := range ex.elems {
			fc.expr(el)
		}
		fc.cur = ex.pos
		fc.emit(vm.Instr{Op: vm.OpMakeList, A: int32(len(ex.elems))})
	case mapLit:
		for i := range ex.keys {
			fc.expr(ex.keys[i])
			fc.expr(ex.vals[i])
		}
		fc.cur = ex.pos
		fc.emit(vm.Instr{Op: vm.OpMakeMap, A: int32(len(ex.keys))})
	case indexExpr:
		fc.expr(ex.agg)
		fc.expr(ex.idx)
		fc.cur = ex.pos
		fc.emit(vm.Instr{Op: vm.OpIndex})
	case unaryExpr:
		fc.expr(ex.x)
		fc.cur = ex.pos
		if ex.op == "-" {
			fc.emit(vm.Instr{Op: vm.OpNeg})
		} else {
			fc.emit(vm.Instr{Op: vm.OpNot})
		}
	case binExpr:
		fc.binExpr(ex)
	case callExpr:
		fc.callExpr(ex)
	default:
		fc.c.errorf(e.at(), "unknown expression type %T", e)
		fc.emit(vm.Instr{Op: vm.OpPushNil})
	}
}

func (fc *fnCompiler) binExpr(ex binExpr) {
	// Short-circuit logical operators keep the left value as the
	// result when it decides the outcome (truthy semantics).
	if ex.op == "&&" || ex.op == "||" {
		fc.expr(ex.l)
		fc.cur = ex.pos
		fc.emit(vm.Instr{Op: vm.OpDup})
		var j int
		if ex.op == "&&" {
			j = fc.emit(vm.Instr{Op: vm.OpJumpIfFalse})
		} else {
			j = fc.emit(vm.Instr{Op: vm.OpJumpIfTrue})
		}
		fc.emit(vm.Instr{Op: vm.OpPop})
		fc.expr(ex.r)
		fc.patch(j, fc.here())
		return
	}
	fc.expr(ex.l)
	fc.expr(ex.r)
	fc.cur = ex.pos
	op, ok := binOps[ex.op]
	if !ok {
		fc.c.errorf(ex.pos, "unknown operator %q", ex.op)
		// Recover: collapse the two operands into one placeholder.
		fc.emit(vm.Instr{Op: vm.OpPop})
		return
	}
	fc.emit(vm.Instr{Op: op})
}

// callExpr resolves calls in this order: same-module function →
// qualified "module:function" (namespace call) → host function. The
// host-call fallback is what binds agent programs to the server API.
func (fc *fnCompiler) callExpr(ex callExpr) {
	for _, a := range ex.args {
		fc.expr(a)
	}
	fc.cur = ex.pos
	if idx, ok := fc.c.funcIdx[ex.name]; ok {
		if want := fc.c.arity[ex.name]; want != len(ex.args) {
			fc.c.errorf(ex.pos, "%s wants %d args, got %d", ex.name, want, len(ex.args))
			// Recover: discard the args and push a placeholder result.
			for range ex.args {
				fc.emit(vm.Instr{Op: vm.OpPop})
			}
			fc.emit(vm.Instr{Op: vm.OpPushNil})
			return
		}
		fc.emit(vm.Instr{Op: vm.OpCall, A: int32(idx), B: int32(len(ex.args))})
		return
	}
	nameIdx := fc.c.m.InternStr(ex.name)
	for _, r := range ex.name {
		if r == ':' {
			fc.emit(vm.Instr{Op: vm.OpCallNamed, A: nameIdx, B: int32(len(ex.args))})
			return
		}
	}
	fc.emit(vm.Instr{Op: vm.OpHostCall, A: nameIdx, B: int32(len(ex.args))})
}
