package asl

import (
	"fmt"

	"repro/internal/vm"
)

// InitFunc is the synthetic function that evaluates module-level `var`
// initializers. The server runs it exactly once, at first launch; after
// that the agent's global table is carried state and migrates as data.
const InitFunc = "__init__"

// Compile compiles ASL source into a verified VM module.
func Compile(src string) (*vm.Module, error) {
	f, err := parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		m:       &vm.Module{Name: f.name},
		globals: make(map[string]bool),
		funcIdx: make(map[string]int),
		arity:   make(map[string]int),
	}
	for _, g := range f.globals {
		if c.globals[g.name] {
			return nil, errf(g.line, "duplicate global %q", g.name)
		}
		c.globals[g.name] = true
	}
	// Pre-register function indices so forward references compile.
	for _, fn := range f.funcs {
		if fn.name == InitFunc {
			return nil, errf(fn.line, "%s is reserved", InitFunc)
		}
		if _, dup := c.funcIdx[fn.name]; dup {
			return nil, errf(fn.line, "duplicate function %q", fn.name)
		}
		c.funcIdx[fn.name] = len(c.m.Fns)
		c.arity[fn.name] = len(fn.params)
		c.m.Fns = append(c.m.Fns, vm.Func{Name: fn.name, NParams: len(fn.params)})
	}
	// __init__ goes last so user function indices are stable.
	initIdx := len(c.m.Fns)
	c.m.Fns = append(c.m.Fns, vm.Func{Name: InitFunc})

	for i, fn := range f.funcs {
		compiled, err := c.compileFunc(fn)
		if err != nil {
			return nil, err
		}
		c.m.Fns[i] = compiled
	}
	initFn, err := c.compileInit(f.globals)
	if err != nil {
		return nil, err
	}
	c.m.Fns[initIdx] = initFn

	if err := vm.Verify(c.m); err != nil {
		// A verifier rejection of compiler output is a compiler bug;
		// surface it loudly rather than shipping a broken module.
		return nil, fmt.Errorf("asl: internal error: generated code failed verification: %w", err)
	}
	return c.m, nil
}

type compiler struct {
	m       *vm.Module
	globals map[string]bool
	funcIdx map[string]int
	arity   map[string]int
}

// fnCompiler holds per-function state.
type fnCompiler struct {
	c      *compiler
	code   []vm.Instr
	locals map[string]int
	nloc   int
	// loop patch stacks for break/continue.
	breaks    [][]int
	contTargs []int
}

func (c *compiler) compileFunc(fn funcDecl) (vm.Func, error) {
	fc := &fnCompiler{c: c, locals: make(map[string]int)}
	for _, p := range fn.params {
		if _, dup := fc.locals[p]; dup {
			return vm.Func{}, errf(fn.line, "duplicate parameter %q", p)
		}
		fc.locals[p] = fc.nloc
		fc.nloc++
	}
	if err := fc.stmts(fn.body); err != nil {
		return vm.Func{}, err
	}
	// Implicit `return nil` at the end of every function.
	fc.emit(vm.Instr{Op: vm.OpPushNil})
	fc.emit(vm.Instr{Op: vm.OpReturn})
	return vm.Func{Name: fn.name, NParams: len(fn.params), NLocals: fc.nloc, Code: fc.code}, nil
}

func (c *compiler) compileInit(globals []globalDecl) (vm.Func, error) {
	fc := &fnCompiler{c: c, locals: make(map[string]int)}
	for _, g := range globals {
		if err := fc.expr(g.init); err != nil {
			return vm.Func{}, err
		}
		fc.emit(vm.Instr{Op: vm.OpStoreGlobal, A: c.m.InternStr(g.name)})
	}
	fc.emit(vm.Instr{Op: vm.OpPushNil})
	fc.emit(vm.Instr{Op: vm.OpReturn})
	return vm.Func{Name: InitFunc, NLocals: fc.nloc, Code: fc.code}, nil
}

func (fc *fnCompiler) emit(i vm.Instr) int {
	fc.code = append(fc.code, i)
	return len(fc.code) - 1
}

func (fc *fnCompiler) patch(at int, target int) {
	fc.code[at].A = int32(target)
}

func (fc *fnCompiler) here() int { return len(fc.code) }

func (fc *fnCompiler) stmts(ss []stmt) error {
	for _, s := range ss {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *fnCompiler) stmt(s stmt) error {
	switch st := s.(type) {
	case varStmt:
		if _, dup := fc.locals[st.name]; dup {
			return errf(st.line, "duplicate local %q", st.name)
		}
		if err := fc.expr(st.init); err != nil {
			return err
		}
		slot := fc.nloc
		fc.nloc++
		fc.locals[st.name] = slot
		fc.emit(vm.Instr{Op: vm.OpStoreLocal, A: int32(slot)})
		return nil
	case assignStmt:
		if err := fc.expr(st.val); err != nil {
			return err
		}
		if slot, ok := fc.locals[st.name]; ok {
			fc.emit(vm.Instr{Op: vm.OpStoreLocal, A: int32(slot)})
			return nil
		}
		if fc.c.globals[st.name] {
			fc.emit(vm.Instr{Op: vm.OpStoreGlobal, A: fc.c.m.InternStr(st.name)})
			return nil
		}
		return errf(st.line, "assignment to undeclared variable %q", st.name)
	case indexAssignStmt:
		if err := fc.expr(st.agg); err != nil {
			return err
		}
		if err := fc.expr(st.idx); err != nil {
			return err
		}
		if err := fc.expr(st.val); err != nil {
			return err
		}
		fc.emit(vm.Instr{Op: vm.OpSetIndex})
		fc.emit(vm.Instr{Op: vm.OpPop})
		return nil
	case ifStmt:
		if err := fc.expr(st.cond); err != nil {
			return err
		}
		jz := fc.emit(vm.Instr{Op: vm.OpJumpIfFalse})
		if err := fc.stmts(st.then); err != nil {
			return err
		}
		if st.els == nil {
			fc.patch(jz, fc.here())
			return nil
		}
		jend := fc.emit(vm.Instr{Op: vm.OpJump})
		fc.patch(jz, fc.here())
		if err := fc.stmts(st.els); err != nil {
			return err
		}
		fc.patch(jend, fc.here())
		return nil
	case whileStmt:
		top := fc.here()
		if err := fc.expr(st.cond); err != nil {
			return err
		}
		jz := fc.emit(vm.Instr{Op: vm.OpJumpIfFalse})
		fc.breaks = append(fc.breaks, nil)
		fc.contTargs = append(fc.contTargs, top)
		if err := fc.stmts(st.body); err != nil {
			return err
		}
		fc.emit(vm.Instr{Op: vm.OpJump, A: int32(top)})
		end := fc.here()
		fc.patch(jz, end)
		for _, b := range fc.breaks[len(fc.breaks)-1] {
			fc.patch(b, end)
		}
		fc.breaks = fc.breaks[:len(fc.breaks)-1]
		fc.contTargs = fc.contTargs[:len(fc.contTargs)-1]
		return nil
	case returnStmt:
		if st.val == nil {
			fc.emit(vm.Instr{Op: vm.OpPushNil})
		} else if err := fc.expr(st.val); err != nil {
			return err
		}
		fc.emit(vm.Instr{Op: vm.OpReturn})
		return nil
	case breakStmt:
		if len(fc.breaks) == 0 {
			return errf(st.line, "break outside loop")
		}
		at := fc.emit(vm.Instr{Op: vm.OpJump})
		fc.breaks[len(fc.breaks)-1] = append(fc.breaks[len(fc.breaks)-1], at)
		return nil
	case continueStmt:
		if len(fc.contTargs) == 0 {
			return errf(st.line, "continue outside loop")
		}
		fc.emit(vm.Instr{Op: vm.OpJump, A: int32(fc.contTargs[len(fc.contTargs)-1])})
		return nil
	case exprStmt:
		if err := fc.expr(st.e); err != nil {
			return err
		}
		fc.emit(vm.Instr{Op: vm.OpPop})
		return nil
	default:
		return errf(s.stmtLine(), "unknown statement type %T", s)
	}
}

var binOps = map[string]vm.Opcode{
	"+": vm.OpAdd, "-": vm.OpSub, "*": vm.OpMul, "/": vm.OpDiv, "%": vm.OpMod,
	"==": vm.OpEq, "!=": vm.OpNe, "<": vm.OpLt, "<=": vm.OpLe, ">": vm.OpGt, ">=": vm.OpGe,
}

func (fc *fnCompiler) expr(e expr) error {
	switch ex := e.(type) {
	case intLit:
		fc.emit(vm.Instr{Op: vm.OpPushInt, A: fc.c.m.InternInt(ex.val)})
	case strLit:
		fc.emit(vm.Instr{Op: vm.OpPushStr, A: fc.c.m.InternStr(ex.val)})
	case boolLit:
		if ex.val {
			fc.emit(vm.Instr{Op: vm.OpPushTrue})
		} else {
			fc.emit(vm.Instr{Op: vm.OpPushFalse})
		}
	case nilLit:
		fc.emit(vm.Instr{Op: vm.OpPushNil})
	case nameRef:
		if slot, ok := fc.locals[ex.name]; ok {
			fc.emit(vm.Instr{Op: vm.OpLoadLocal, A: int32(slot)})
		} else if fc.c.globals[ex.name] {
			fc.emit(vm.Instr{Op: vm.OpLoadGlobal, A: fc.c.m.InternStr(ex.name)})
		} else {
			return errf(ex.line, "undeclared variable %q", ex.name)
		}
	case listLit:
		for _, el := range ex.elems {
			if err := fc.expr(el); err != nil {
				return err
			}
		}
		fc.emit(vm.Instr{Op: vm.OpMakeList, A: int32(len(ex.elems))})
	case mapLit:
		for i := range ex.keys {
			if err := fc.expr(ex.keys[i]); err != nil {
				return err
			}
			if err := fc.expr(ex.vals[i]); err != nil {
				return err
			}
		}
		fc.emit(vm.Instr{Op: vm.OpMakeMap, A: int32(len(ex.keys))})
	case indexExpr:
		if err := fc.expr(ex.agg); err != nil {
			return err
		}
		if err := fc.expr(ex.idx); err != nil {
			return err
		}
		fc.emit(vm.Instr{Op: vm.OpIndex})
	case unaryExpr:
		if err := fc.expr(ex.x); err != nil {
			return err
		}
		if ex.op == "-" {
			fc.emit(vm.Instr{Op: vm.OpNeg})
		} else {
			fc.emit(vm.Instr{Op: vm.OpNot})
		}
	case binExpr:
		return fc.binExpr(ex)
	case callExpr:
		return fc.callExpr(ex)
	default:
		return errf(e.exprLine(), "unknown expression type %T", e)
	}
	return nil
}

func (fc *fnCompiler) binExpr(ex binExpr) error {
	// Short-circuit logical operators keep the left value as the
	// result when it decides the outcome (truthy semantics).
	if ex.op == "&&" || ex.op == "||" {
		if err := fc.expr(ex.l); err != nil {
			return err
		}
		fc.emit(vm.Instr{Op: vm.OpDup})
		var j int
		if ex.op == "&&" {
			j = fc.emit(vm.Instr{Op: vm.OpJumpIfFalse})
		} else {
			j = fc.emit(vm.Instr{Op: vm.OpJumpIfTrue})
		}
		fc.emit(vm.Instr{Op: vm.OpPop})
		if err := fc.expr(ex.r); err != nil {
			return err
		}
		fc.patch(j, fc.here())
		return nil
	}
	if err := fc.expr(ex.l); err != nil {
		return err
	}
	if err := fc.expr(ex.r); err != nil {
		return err
	}
	op, ok := binOps[ex.op]
	if !ok {
		return errf(ex.line, "unknown operator %q", ex.op)
	}
	fc.emit(vm.Instr{Op: op})
	return nil
}

// callExpr resolves calls in this order: same-module function →
// qualified "module:function" (namespace call) → host function. The
// host-call fallback is what binds agent programs to the server API.
func (fc *fnCompiler) callExpr(ex callExpr) error {
	for _, a := range ex.args {
		if err := fc.expr(a); err != nil {
			return err
		}
	}
	if idx, ok := fc.c.funcIdx[ex.name]; ok {
		if want := fc.c.arity[ex.name]; want != len(ex.args) {
			return errf(ex.line, "%s wants %d args, got %d", ex.name, want, len(ex.args))
		}
		fc.emit(vm.Instr{Op: vm.OpCall, A: int32(idx), B: int32(len(ex.args))})
		return nil
	}
	nameIdx := fc.c.m.InternStr(ex.name)
	for _, r := range ex.name {
		if r == ':' {
			fc.emit(vm.Instr{Op: vm.OpCallNamed, A: nameIdx, B: int32(len(ex.args))})
			return nil
		}
	}
	fc.emit(vm.Instr{Op: vm.OpHostCall, A: nameIdx, B: int32(len(ex.args))})
	return nil
}
