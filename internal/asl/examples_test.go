package asl

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vm"
)

// TestExampleAgentsCompile pins the checked-in .asl sample agents: they
// must always compile and verify, so the CLI walkthroughs in the README
// cannot rot silently.
func TestExampleAgentsCompile(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "agents")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	compiled := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".asl" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		mod, err := Compile(string(src))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if err := vm.Verify(mod); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
		compiled++
	}
	if compiled < 2 {
		t.Fatalf("only %d sample agents found; expected at least 2", compiled)
	}
}

// TestQualifiedNameLexing pins the module:function token rule.
func TestQualifiedNameLexing(t *testing.T) {
	toks, err := lex("lib:fn other: x :y a:b:c")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	// "lib:fn" is one token; "other:" splits (colon not followed by
	// ident start... actually followed by space); ":y" is colon + y;
	// "a:b:c" is "a:b" plus ":" plus "c".
	want := []string{"lib:fn", "other", ":", "x", ":", "y", "a:b", ":", "c"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %q, want %q", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q (all: %q)", i, texts[i], want[i], texts)
		}
	}
}

// TestDoublyQualifiedCallRejected: a:b:c in call position must not
// silently mis-resolve.
func TestDoublyQualifiedCallRejected(t *testing.T) {
	if _, err := Compile("module t\nfunc main() { return a:b:c(1) }"); err == nil {
		t.Fatal("a:b:c parsed as a call")
	}
}

// TestBlockScopingIsFunctionLevel pins the documented scoping rule:
// `var` declares for the whole function, not the block.
func TestBlockScopingIsFunctionLevel(t *testing.T) {
	m, err := Compile(`module t
func main() {
  if true {
    var x = 5
  }
  return x
}`)
	if err != nil {
		t.Fatalf("function-level scoping should allow this: %v", err)
	}
	env := vmEnv(m)
	v, err := vmRun(env, m, "main")
	if err != nil || !v.Equal(vm.I(5)) {
		t.Fatalf("%v %v", v, err)
	}
	// ... and redeclaring the same name in a sibling block is a
	// duplicate, by the same rule.
	if _, err := Compile(`module t
func main() {
  if true { var x = 1 }
  if true { var x = 2 }
  return 0
}`); err == nil {
		t.Fatal("duplicate local across blocks accepted (scoping rule changed?)")
	}
}

func vmEnv(m *vm.Module) *vm.Env {
	env := vm.NewEnv()
	vm.InstallBuiltins(env)
	env.Resolver = vm.ModuleResolver{M: m}
	return env
}

func vmRun(env *vm.Env, m *vm.Module, fn string) (vm.Value, error) {
	if _, err := vm.Run(env, m, InitFunc); err != nil {
		return vm.Nil(), err
	}
	return vm.Run(env, m, fn)
}
