// Package asl implements the Agent Script Language: the source language
// mobile agents are written in. It stands in for Java in the original
// system — the paper's agents are programs whose code travels with them;
// ASL compiles to internal/vm bytecode, which is what actually migrates.
//
// The language is deliberately small: ints, strings, bools, nil, lists
// and maps; functions; `var`, assignment, `if`/`else`, `while`,
// `return`, `break`, `continue`. Module-level `var` declarations are the
// agent's *state* — they are compiled into a synthetic `__init__`
// function executed once at launch, and thereafter the global table
// migrates with the agent. Unresolved calls compile to host calls, which
// is how agent code reaches the server API (`go`, `get_resource`,
// `invoke`, `log`, ...).
package asl

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokStr
	tokPunct   // operators and delimiters
	tokKeyword // module var func if else while return break continue true false nil
)

var keywords = map[string]bool{
	"module": true, "var": true, "func": true, "if": true, "else": true,
	"while": true, "return": true, "break": true, "continue": true,
	"true": true, "false": true, "nil": true,
}

type token struct {
	kind tokKind
	text string
	line int
	col  int // 1-based byte column of the token's first character
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// Error is a source-position-annotated compilation error. Col is
// 1-based; 0 means the column is unknown.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("asl: line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("asl: line %d: %s", e.Line, e.Msg)
}

// ErrorList aggregates every diagnostic of a compilation, so tools can
// report them all instead of stopping at the first. It unwraps to the
// individual *Error values (errors.As finds the first one).
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 1 {
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0].Error(), len(l)-1)
}

// Unwrap exposes the individual errors to errors.Is/As.
func (l ErrorList) Unwrap() []error {
	out := make([]error, len(l))
	for i, e := range l {
		out[i] = e
	}
	return out
}

// AllErrors flattens err into its component *Error diagnostics. A
// non-ASL error yields a single position-less entry.
func AllErrors(err error) []*Error {
	if err == nil {
		return nil
	}
	var list ErrorList
	if errors.As(err, &list) {
		return list
	}
	var one *Error
	if errors.As(err, &one) {
		return []*Error{one}
	}
	return []*Error{{Msg: err.Error()}}
}

func errf(p pos, format string, args ...any) error {
	return &Error{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

// twoCharPunct lists multi-character operators, longest-match-first.
var twoCharPunct = []string{"==", "!=", "<=", ">=", "&&", "||"}

// lex splits src into tokens. '#' starts a comment to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	lineStart := 0 // index of the first byte of the current line
	i := 0
	// col reports the 1-based column of byte index idx on the current line.
	col := func(idx int) int { return idx - lineStart + 1 }
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			start := pos{line, col(i)}
			var sb strings.Builder
			i++
			for {
				if i >= len(src) {
					return nil, errf(start, "unterminated string")
				}
				ch := src[i]
				if ch == '"' {
					i++
					break
				}
				if ch == '\n' {
					return nil, errf(start, "newline in string")
				}
				if ch == '\\' {
					i++
					if i >= len(src) {
						return nil, errf(start, "unterminated escape")
					}
					switch src[i] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '"':
						sb.WriteByte('"')
					case '\\':
						sb.WriteByte('\\')
					default:
						return nil, errf(pos{line, col(i)}, "bad escape \\%c", src[i])
					}
					i++
					continue
				}
				sb.WriteByte(ch)
				i++
			}
			toks = append(toks, token{tokStr, sb.String(), start.line, start.col})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			if i < len(src) && (isIdentChar(src[i])) {
				return nil, errf(pos{line, col(start)}, "malformed number %q", src[start:i+1])
			}
			toks = append(toks, token{tokInt, src[start:i], line, col(start)})
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentChar(src[i]) {
				i++
			}
			word := src[start:i]
			// module-qualified call names like lib:fn are a single
			// identifier token when the colon is followed by an ident.
			if i+1 < len(src) && src[i] == ':' && isIdentStart(src[i+1]) {
				i++
				qstart := i
				for i < len(src) && isIdentChar(src[i]) {
					i++
				}
				word = word + ":" + src[qstart:i]
			}
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind, word, line, col(start)})
		default:
			matched := false
			for _, p := range twoCharPunct {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{tokPunct, p, line, col(i)})
					i += len(p)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("+-*/%()[]{},=<>!:", rune(c)) {
				toks = append(toks, token{tokPunct, string(c), line, col(i)})
				i++
				continue
			}
			if unicode.IsPrint(rune(c)) {
				return nil, errf(pos{line, col(i)}, "unexpected character %q", c)
			}
			return nil, errf(pos{line, col(i)}, "unexpected byte 0x%02x", c)
		}
	}
	toks = append(toks, token{tokEOF, "", line, col(len(src))})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
