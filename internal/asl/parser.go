package asl

import "strconv"

// parser is a recursive-descent parser with precedence climbing for
// binary expressions.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(kind tokKind, text string) bool {
	t := p.cur()
	if t.kind == kind && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if t.kind == kind && t.text == text {
		p.pos++
		return t, nil
	}
	return t, errf(at(t), "expected %q, found %s", text, t)
}

func parse(src string) (*file, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if _, err := p.expect(tokKeyword, "module"); err != nil {
		return nil, err
	}
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, errf(at(nameTok), "expected module name, found %s", nameTok)
	}
	f := &file{name: nameTok.text}
	for p.cur().kind != tokEOF {
		t := p.cur()
		switch {
		case t.kind == tokKeyword && t.text == "var":
			p.pos++
			g, err := p.parseGlobal(at(t))
			if err != nil {
				return nil, err
			}
			f.globals = append(f.globals, g)
		case t.kind == tokKeyword && t.text == "func":
			p.pos++
			fn, err := p.parseFunc(at(t))
			if err != nil {
				return nil, err
			}
			f.funcs = append(f.funcs, fn)
		default:
			return nil, errf(at(t), "expected top-level var or func, found %s", t)
		}
	}
	return f, nil
}

func (p *parser) parseGlobal(declPos pos) (globalDecl, error) {
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return globalDecl{}, errf(at(nameTok), "expected variable name, found %s", nameTok)
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return globalDecl{}, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return globalDecl{}, err
	}
	return globalDecl{pos: declPos, name: nameTok.text, init: e}, nil
}

func (p *parser) parseFunc(declPos pos) (funcDecl, error) {
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return funcDecl{}, errf(at(nameTok), "expected function name, found %s", nameTok)
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return funcDecl{}, err
	}
	var params []string
	for !p.accept(tokPunct, ")") {
		if len(params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return funcDecl{}, err
			}
		}
		pt := p.next()
		if pt.kind != tokIdent {
			return funcDecl{}, errf(at(pt), "expected parameter name, found %s", pt)
		}
		params = append(params, pt.text)
	}
	body, err := p.parseBlock()
	if err != nil {
		return funcDecl{}, err
	}
	return funcDecl{pos: declPos, name: nameTok.text, params: params, body: body}, nil
}

func (p *parser) parseBlock() ([]stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var out []stmt
	for !p.accept(tokPunct, "}") {
		if p.cur().kind == tokEOF {
			return nil, errf(at(p.cur()), "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) parseStmt() (stmt, error) {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "var":
			p.pos++
			g, err := p.parseGlobal(at(t)) // same shape: name = expr
			if err != nil {
				return nil, err
			}
			return varStmt{pos: g.pos, name: g.name, init: g.init}, nil
		case "if":
			p.pos++
			return p.parseIf(at(t))
		case "while":
			p.pos++
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			return whileStmt{pos: at(t), cond: cond, body: body}, nil
		case "return":
			p.pos++
			// `return` directly followed by `}` returns nil.
			if p.cur().kind == tokPunct && p.cur().text == "}" {
				return returnStmt{pos: at(t)}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return returnStmt{pos: at(t), val: e}, nil
		case "break":
			p.pos++
			return breakStmt{pos: at(t)}, nil
		case "continue":
			p.pos++
			return continueStmt{pos: at(t)}, nil
		}
	}
	// assignment or expression statement
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokPunct, "=") {
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		switch lhs := e.(type) {
		case nameRef:
			return assignStmt{pos: lhs.pos, name: lhs.name, val: val}, nil
		case indexExpr:
			return indexAssignStmt{pos: lhs.pos, agg: lhs.agg, idx: lhs.idx, val: val}, nil
		default:
			return nil, errf(at(t), "invalid assignment target")
		}
	}
	return exprStmt{pos: at(t), e: e}, nil
}

func (p *parser) parseIf(ifPos pos) (stmt, error) {
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	var els []stmt
	if p.accept(tokKeyword, "else") {
		if p.cur().kind == tokKeyword && p.cur().text == "if" {
			elifTok := p.next()
			nested, err := p.parseIf(at(elifTok))
			if err != nil {
				return nil, err
			}
			els = []stmt{nested}
		} else {
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
			if els == nil {
				els = []stmt{}
			}
		}
	}
	return ifStmt{pos: ifPos, cond: cond, then: then, els: els}, nil
}

// Binary operator precedence, loosest first.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) parseExpr() (expr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = binExpr{pos: at(t), op: t.text, l: lhs, r: rhs}
	}
}

func (p *parser) parseUnary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{pos: at(t), op: t.text, x: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokPunct && t.text == "[" {
			p.pos++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			e = indexExpr{pos: at(t), agg: e, idx: idx}
			continue
		}
		return e, nil
	}
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.next()
	switch {
	case t.kind == tokInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(at(t), "bad integer %q", t.text)
		}
		return intLit{pos: at(t), val: v}, nil
	case t.kind == tokStr:
		return strLit{pos: at(t), val: t.text}, nil
	case t.kind == tokKeyword && t.text == "true":
		return boolLit{pos: at(t), val: true}, nil
	case t.kind == tokKeyword && t.text == "false":
		return boolLit{pos: at(t), val: false}, nil
	case t.kind == tokKeyword && t.text == "nil":
		return nilLit{pos: at(t)}, nil
	case t.kind == tokIdent:
		if p.cur().kind == tokPunct && p.cur().text == "(" {
			p.pos++
			var args []expr
			for !p.accept(tokPunct, ")") {
				if len(args) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			return callExpr{pos: at(t), name: t.text, args: args}, nil
		}
		return nameRef{pos: at(t), name: t.text}, nil
	case t.kind == tokPunct && t.text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokPunct && t.text == "[":
		var elems []expr
		for !p.accept(tokPunct, "]") {
			if len(elems) > 0 {
				if _, err := p.expect(tokPunct, ","); err != nil {
					return nil, err
				}
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		return listLit{pos: at(t), elems: elems}, nil
	case t.kind == tokPunct && t.text == "{":
		var keys, vals []expr
		for !p.accept(tokPunct, "}") {
			if len(keys) > 0 {
				if _, err := p.expect(tokPunct, ","); err != nil {
					return nil, err
				}
			}
			k, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ":"); err != nil {
				return nil, err
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			keys = append(keys, k)
			vals = append(vals, v)
		}
		return mapLit{pos: at(t), keys: keys, vals: vals}, nil
	default:
		return nil, errf(at(t), "unexpected %s", t)
	}
}
