// Package baseline implements the three alternative access-control
// designs the paper surveys in §5.4 and argues against, so that the
// proxy approach can be compared quantitatively (experiments C1/C2):
//
//  1. SecMgrDesign — "check all resource accesses using the security
//     manager": every invocation consults the server's policy engine.
//  2. WrapperDesign — "each resource is protected by encapsulating it
//     in a wrapper object ... The wrapper accepts requests for the
//     resource and determines whether or not to allow the access based
//     on the client's identity. For this it needs to maintain an access
//     control list." One wrapper per resource, ACL consulted per call.
//  3. DualEnvDesign — the Safe-Tcl model: "two execution environments —
//     a safe one which hosts the agent, and a more powerful trusted one
//     which provides access to resources ... it may require a
//     transition across system-level protection domains on every
//     resource access." The domain transition is modeled by a
//     synchronous channel round trip to a trusted goroutine.
//
// ProxyDesign adapts the real implementation (internal/resource) to the
// same interface. All four run the same method tables, so benchmark
// differences isolate the access-control mechanism.
package baseline

import (
	"fmt"
	"sync"

	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/vm"
)

// Accessor is the agent-side view every design hands out: invoke a
// method on the protected resource.
type Accessor interface {
	Invoke(caller domain.ID, method string, args []vm.Value) (vm.Value, error)
}

// Design is one access-control architecture over a fixed resource.
type Design interface {
	// Name identifies the design in benchmark tables.
	Name() string
	// Bind grants one agent access and returns its accessor. For the
	// proxy design this creates the per-agent proxy (the setup cost
	// C2 measures); for the others it is cheap or free.
	Bind(caller domain.ID, creds *cred.Credentials) (Accessor, error)
}

// --- shared test resource ----------------------------------------------

// NewTestResource returns the method table and resource definition used
// by all four designs in the benchmarks: a counter with get/add.
func NewTestResource(def *resource.Def) (map[string]resource.Method, *resource.Def) {
	return def.Methods, def
}

// --- 1. security-manager-mediated design --------------------------------

// SecMgrDesign consults the policy engine on every invocation. The
// paper's objection: "the security manager may tend to become an
// excessively large module" — and, as the benches show, the decision
// cost is paid per call rather than per binding.
type SecMgrDesign struct {
	Def    *resource.Def
	Policy *policy.Engine
	// credsOf maps a caller's domain to its credentials, standing in
	// for the domain-database lookup the monitor performs per call.
	mu      sync.RWMutex
	credsOf map[domain.ID]*cred.Credentials
}

// NewSecMgrDesign builds the design.
func NewSecMgrDesign(def *resource.Def, eng *policy.Engine) *SecMgrDesign {
	return &SecMgrDesign{Def: def, Policy: eng, credsOf: make(map[domain.ID]*cred.Credentials)}
}

// Name implements Design.
func (d *SecMgrDesign) Name() string { return "secmgr" }

// Bind implements Design: registration only.
func (d *SecMgrDesign) Bind(caller domain.ID, creds *cred.Credentials) (Accessor, error) {
	d.mu.Lock()
	d.credsOf[caller] = creds
	d.mu.Unlock()
	return secMgrAccessor{d: d}, nil
}

type secMgrAccessor struct{ d *SecMgrDesign }

func (a secMgrAccessor) Invoke(caller domain.ID, method string, args []vm.Value) (vm.Value, error) {
	a.d.mu.RLock()
	creds := a.d.credsOf[caller]
	a.d.mu.RUnlock()
	if creds == nil {
		return vm.Nil(), fmt.Errorf("baseline: secmgr: unknown domain %s", caller)
	}
	// Full policy decision on EVERY access.
	grant := a.d.Policy.Decide(creds, a.d.Def.Path, a.d.Def.MethodNames())
	if !grant.Methods[method] {
		return vm.Nil(), resource.ErrMethodDisabled
	}
	fn := a.d.Def.Methods[method]
	if fn == nil {
		return vm.Nil(), resource.ErrUnknownMethod
	}
	return fn(args)
}

// --- 2. wrapper design ---------------------------------------------------

// WrapperDesign keeps one wrapper per resource with an ACL keyed by
// caller identity, checked on every call. Binding is a cheap ACL
// insertion (computed once from policy), the per-call cost is the ACL
// lookup — cheaper than secmgr, dearer than a proxy's pre-narrowed
// enable set plus, as §5.4 notes, "all clients must be subjected to the
// same access control mechanism".
type WrapperDesign struct {
	Def    *resource.Def
	Policy *policy.Engine

	mu  sync.RWMutex
	acl map[domain.ID]map[string]bool
}

// NewWrapperDesign builds the design.
func NewWrapperDesign(def *resource.Def, eng *policy.Engine) *WrapperDesign {
	return &WrapperDesign{Def: def, Policy: eng, acl: make(map[domain.ID]map[string]bool)}
}

// Name implements Design.
func (d *WrapperDesign) Name() string { return "wrapper" }

// Bind implements Design: one policy decision, stored in the ACL.
func (d *WrapperDesign) Bind(caller domain.ID, creds *cred.Credentials) (Accessor, error) {
	grant := d.Policy.Decide(creds, d.Def.Path, d.Def.MethodNames())
	if grant.Empty() {
		return nil, resource.ErrNoAccess
	}
	d.mu.Lock()
	d.acl[caller] = grant.Methods
	d.mu.Unlock()
	return wrapperAccessor{d: d}, nil
}

type wrapperAccessor struct{ d *WrapperDesign }

func (a wrapperAccessor) Invoke(caller domain.ID, method string, args []vm.Value) (vm.Value, error) {
	// ACL lookup under the wrapper's (shared!) lock on every call.
	a.d.mu.RLock()
	allowed := a.d.acl[caller]
	ok := allowed != nil && allowed[method]
	a.d.mu.RUnlock()
	if !ok {
		return vm.Nil(), resource.ErrMethodDisabled
	}
	fn := a.d.Def.Methods[method]
	if fn == nil {
		return vm.Nil(), resource.ErrUnknownMethod
	}
	return fn(args)
}

// --- 3. dual-environment (Safe Tcl) design -------------------------------

// DualEnvDesign hosts the resource behind a trusted goroutine; each
// access is a synchronous request/response across that boundary — the
// "transition across system-level protection domains on every resource
// access" the paper warns about.
type DualEnvDesign struct {
	Def    *resource.Def
	Policy *policy.Engine

	reqs chan dualReq
	once sync.Once

	mu  sync.RWMutex
	acl map[domain.ID]map[string]bool
}

type dualReq struct {
	caller domain.ID
	method string
	args   []vm.Value
	reply  chan dualResp
}

type dualResp struct {
	val vm.Value
	err error
}

// NewDualEnvDesign builds the design and starts the trusted
// environment.
func NewDualEnvDesign(def *resource.Def, eng *policy.Engine) *DualEnvDesign {
	d := &DualEnvDesign{
		Def:    def,
		Policy: eng,
		reqs:   make(chan dualReq),
		acl:    make(map[domain.ID]map[string]bool),
	}
	go d.trustedLoop()
	return d
}

// trustedLoop is the trusted environment: it alone touches the
// resource.
func (d *DualEnvDesign) trustedLoop() {
	for req := range d.reqs {
		d.mu.RLock()
		allowed := d.acl[req.caller]
		ok := allowed != nil && allowed[req.method]
		d.mu.RUnlock()
		var resp dualResp
		switch {
		case !ok:
			resp.err = resource.ErrMethodDisabled
		default:
			fn := d.Def.Methods[req.method]
			if fn == nil {
				resp.err = resource.ErrUnknownMethod
			} else {
				resp.val, resp.err = fn(req.args)
			}
		}
		req.reply <- resp
	}
}

// Close stops the trusted environment.
func (d *DualEnvDesign) Close() {
	d.once.Do(func() { close(d.reqs) })
}

// Name implements Design.
func (d *DualEnvDesign) Name() string { return "dualenv" }

// Bind implements Design.
func (d *DualEnvDesign) Bind(caller domain.ID, creds *cred.Credentials) (Accessor, error) {
	grant := d.Policy.Decide(creds, d.Def.Path, d.Def.MethodNames())
	if grant.Empty() {
		return nil, resource.ErrNoAccess
	}
	d.mu.Lock()
	d.acl[caller] = grant.Methods
	d.mu.Unlock()
	return dualAccessor{d: d}, nil
}

type dualAccessor struct{ d *DualEnvDesign }

func (a dualAccessor) Invoke(caller domain.ID, method string, args []vm.Value) (vm.Value, error) {
	reply := make(chan dualResp, 1)
	a.d.reqs <- dualReq{caller: caller, method: method, args: args, reply: reply}
	resp := <-reply
	return resp.val, resp.err
}

// --- 3½. the literal Figure-5 proxy --------------------------------------

// Fig5Design is the paper's proxy reduced to exactly what Figure 5
// shows: a per-agent object holding the resource reference and an
// immutable enabled-method set; the per-call screen is one identity
// comparison plus one map lookup. It isolates the cost of the proxy
// *mechanism* from the cost of the §5.5 extensions (accounting, quotas,
// expiry) that the production Proxy adds, and is the variant the
// paper's "minimal amount of computation" claim describes.
type Fig5Design struct {
	Def    *resource.Def
	Policy *policy.Engine
}

// NewFig5Design builds the design.
func NewFig5Design(def *resource.Def, eng *policy.Engine) *Fig5Design {
	return &Fig5Design{Def: def, Policy: eng}
}

// Name implements Design.
func (d *Fig5Design) Name() string { return "proxy_fig5" }

// Bind implements Design.
func (d *Fig5Design) Bind(caller domain.ID, creds *cred.Credentials) (Accessor, error) {
	grant := d.Policy.Decide(creds, d.Def.Path, d.Def.MethodNames())
	if grant.Empty() {
		return nil, resource.ErrNoAccess
	}
	enabled := make(map[string]resource.Method, len(grant.Methods))
	for m, ok := range grant.Methods {
		if ok {
			enabled[m] = d.Def.Methods[m]
		}
	}
	return &fig5Proxy{bound: caller, enabled: enabled}, nil
}

// fig5Proxy resolves the method function directly from the enabled map,
// fusing the isEnabled check and the dispatch.
type fig5Proxy struct {
	bound   domain.ID
	enabled map[string]resource.Method
}

func (p *fig5Proxy) Invoke(caller domain.ID, method string, args []vm.Value) (vm.Value, error) {
	if caller != p.bound {
		return vm.Nil(), resource.ErrNotHolder
	}
	fn := p.enabled[method]
	if fn == nil {
		return vm.Nil(), resource.ErrMethodDisabled
	}
	return fn(args)
}

// --- 4. the paper's proxy design (adapter) -------------------------------

// ProxyDesign adapts internal/resource to the Design interface.
type ProxyDesign struct {
	Def    *resource.Def
	Policy *policy.Engine
}

// NewProxyDesign builds the adapter.
func NewProxyDesign(def *resource.Def, eng *policy.Engine) *ProxyDesign {
	return &ProxyDesign{Def: def, Policy: eng}
}

// Name implements Design.
func (d *ProxyDesign) Name() string { return "proxy" }

// Bind implements Design: this is where the proxy is created — the
// per-agent setup cost the paper acknowledges ("a proxy instance must
// be created for each agent that accesses the resource").
func (d *ProxyDesign) Bind(caller domain.ID, creds *cred.Credentials) (Accessor, error) {
	return d.Def.GetProxy(resource.Request{Caller: caller, Creds: creds, Policy: d.Policy})
}
