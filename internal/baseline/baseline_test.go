package baseline

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/vm"
)

const (
	agentDom = domain.ID(2)
	otherDom = domain.ID(3)
)

func counterDef() *resource.Def {
	var (
		mu  sync.Mutex
		val int64
	)
	return &resource.Def{
		ResourceImpl: resource.NewImpl(names.Resource("acme.com", "counter"),
			names.Principal("acme.com", "admin"), ""),
		Path: "counter",
		Methods: map[string]resource.Method{
			"get": func([]vm.Value) (vm.Value, error) {
				mu.Lock()
				defer mu.Unlock()
				return vm.I(val), nil
			},
			"add": func(args []vm.Value) (vm.Value, error) {
				mu.Lock()
				defer mu.Unlock()
				val += args[0].Int
				return vm.I(val), nil
			},
		},
	}
}

func testCredsAndPolicy(t *testing.T, allowed ...string) (*cred.Credentials, *policy.Engine) {
	t.Helper()
	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	owner, err := keys.NewIdentity(reg, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cred.Issue(owner, names.Agent("umn.edu", "a1"),
		names.Principal("umn.edu", "app"), cred.NewRightSet(cred.All), time.Hour, "home")
	if err != nil {
		t.Fatal(err)
	}
	eng := policy.NewEngine()
	if len(allowed) == 0 {
		allowed = []string{"*"}
	}
	eng.AddRule(policy.Rule{AnyPrincipal: true, Resource: "counter", Methods: allowed})
	return &c, eng
}

// designs builds all four over fresh resources with the same policy.
func designs(t *testing.T, allowed ...string) []Design {
	t.Helper()
	creds, eng := testCredsAndPolicy(t, allowed...)
	_ = creds
	dual := NewDualEnvDesign(counterDef(), eng)
	t.Cleanup(dual.Close)
	return []Design{
		NewProxyDesign(counterDef(), eng),
		NewFig5Design(counterDef(), eng),
		NewWrapperDesign(counterDef(), eng),
		NewSecMgrDesign(counterDef(), eng),
		dual,
	}
}

// TestAllDesignsEnforceSameDecisions: the four architectures must agree
// on allow/deny for identical policies — they differ only in cost.
func TestAllDesignsEnforceSameDecisions(t *testing.T) {
	creds, _ := testCredsAndPolicy(t)
	for _, d := range designs(t, "get") {
		acc, err := d.Bind(agentDom, creds)
		if err != nil {
			t.Fatalf("%s: bind: %v", d.Name(), err)
		}
		if _, err := acc.Invoke(agentDom, "get", nil); err != nil {
			t.Errorf("%s: allowed method rejected: %v", d.Name(), err)
		}
		if _, err := acc.Invoke(agentDom, "add", []vm.Value{vm.I(1)}); !errors.Is(err, resource.ErrMethodDisabled) {
			t.Errorf("%s: denied method allowed: %v", d.Name(), err)
		}
		if _, err := acc.Invoke(agentDom, "bogus", nil); err == nil {
			t.Errorf("%s: unknown method allowed", d.Name())
		}
	}
}

func TestAllDesignsProduceWorkingAccess(t *testing.T) {
	creds, _ := testCredsAndPolicy(t)
	for _, d := range designs(t) {
		acc, err := d.Bind(agentDom, creds)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		for i := 0; i < 3; i++ {
			if _, err := acc.Invoke(agentDom, "add", []vm.Value{vm.I(2)}); err != nil {
				t.Fatalf("%s: %v", d.Name(), err)
			}
		}
		v, err := acc.Invoke(agentDom, "get", nil)
		if err != nil || !v.Equal(vm.I(6)) {
			t.Fatalf("%s: get = %v, %v", d.Name(), v, err)
		}
	}
}

func TestWrapperAndDualDenyUnboundCallers(t *testing.T) {
	creds, eng := testCredsAndPolicy(t)
	wrapper := NewWrapperDesign(counterDef(), eng)
	acc, err := wrapper.Bind(agentDom, creds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Invoke(otherDom, "get", nil); !errors.Is(err, resource.ErrMethodDisabled) {
		t.Fatalf("wrapper: unbound caller allowed: %v", err)
	}
	dual := NewDualEnvDesign(counterDef(), eng)
	defer dual.Close()
	acc2, err := dual.Bind(agentDom, creds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc2.Invoke(otherDom, "get", nil); !errors.Is(err, resource.ErrMethodDisabled) {
		t.Fatalf("dualenv: unbound caller allowed: %v", err)
	}
}

func TestSecMgrTracksPolicyChangesInstantly(t *testing.T) {
	// The one advantage of checking policy per call: revocation by
	// policy edit is instant, no proxy revocation needed. Verify the
	// behaviour difference is real.
	creds, eng := testCredsAndPolicy(t)
	sm := NewSecMgrDesign(counterDef(), eng)
	acc, _ := sm.Bind(agentDom, creds)
	if _, err := acc.Invoke(agentDom, "get", nil); err != nil {
		t.Fatal(err)
	}
	eng.SetRules(nil) // operator wipes the policy
	if _, err := acc.Invoke(agentDom, "get", nil); !errors.Is(err, resource.ErrMethodDisabled) {
		t.Fatalf("secmgr ignored the policy change: %v", err)
	}
}

func TestProxyBindFailsOnEmptyGrant(t *testing.T) {
	creds, _ := testCredsAndPolicy(t)
	emptyEng := policy.NewEngine()
	p := NewProxyDesign(counterDef(), emptyEng)
	if _, err := p.Bind(agentDom, creds); !errors.Is(err, resource.ErrNoAccess) {
		t.Fatalf("got %v", err)
	}
	f := NewFig5Design(counterDef(), emptyEng)
	if _, err := f.Bind(agentDom, creds); !errors.Is(err, resource.ErrNoAccess) {
		t.Fatalf("fig5: got %v", err)
	}
}

func TestFig5ProxyConfinement(t *testing.T) {
	creds, eng := testCredsAndPolicy(t)
	d := NewFig5Design(counterDef(), eng)
	acc, err := d.Bind(agentDom, creds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Invoke(otherDom, "get", nil); !errors.Is(err, resource.ErrNotHolder) {
		t.Fatalf("stolen fig5 proxy worked: %v", err)
	}
	if _, err := acc.Invoke(agentDom, "get", nil); err != nil {
		t.Fatal(err)
	}
}

func TestDualEnvConcurrentCallers(t *testing.T) {
	creds, eng := testCredsAndPolicy(t)
	dual := NewDualEnvDesign(counterDef(), eng)
	defer dual.Close()
	acc, err := dual.Bind(agentDom, creds)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := acc.Invoke(agentDom, "add", []vm.Value{vm.I(1)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, _ := acc.Invoke(agentDom, "get", nil)
	if !v.Equal(vm.I(800)) {
		t.Fatalf("counter = %v", v)
	}
}
