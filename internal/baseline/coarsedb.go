package baseline

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/names"
)

// CoarseDomainDB preserves the pre-shard domain database design: one
// RWMutex over a single map of records, with usage recorded into the
// database on every invocation. It exists as the benchmark baseline for
// experiment C12 — the visit-throughput comparison that motivated
// sharding the real database (internal/domain) and batching usage into
// the visit. Functionally it matches the subset of domain.Database the
// hosting path exercises per visit: Admit, AddBinding, RecordUse /
// FlushUsage, Remove.
type CoarseDomainDB struct {
	mu      sync.RWMutex
	next    uint64
	byID    map[domain.ID]*domain.Record
	byAgent map[names.Name]domain.ID
}

// NewCoarseDomainDB creates an empty coarse-locked database.
func NewCoarseDomainDB() *CoarseDomainDB {
	return &CoarseDomainDB{
		next:    uint64(domain.ServerID),
		byID:    make(map[domain.ID]*domain.Record),
		byAgent: make(map[names.Name]domain.ID),
	}
}

// Admit mirrors domain.Database.Admit under the single lock.
func (db *CoarseDomainDB) Admit(caller domain.ID, c *cred.Credentials) (domain.ID, error) {
	if caller != domain.ServerID {
		return domain.NoDomain, domain.ErrNotServerDomain
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.next++
	id := domain.ID(db.next)
	db.byID[id] = &domain.Record{
		Domain:      id,
		AgentName:   c.AgentName,
		Owner:       c.Owner,
		Creator:     c.Creator,
		HomeSite:    c.HomeSite,
		Arrived:     time.Now(),
		Status:      domain.StatusRunning,
		Credentials: c,
		Bindings:    make(map[string]*domain.Binding),
	}
	db.byAgent[c.AgentName] = id
	return id, nil
}

// AddBinding mirrors domain.Database.AddBinding.
func (db *CoarseDomainDB) AddBinding(caller, id domain.ID, b *domain.Binding) error {
	if caller != domain.ServerID {
		return domain.ErrNotServerDomain
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", domain.ErrNoSuchDomain, id)
	}
	rec.Bindings[b.ResourcePath] = b
	return nil
}

// RecordUse is the pre-shard per-invocation accounting write: every
// metered call takes the one database lock. This is the cost C12's
// baseline column carries and the sharded+batched design removes.
func (db *CoarseDomainDB) RecordUse(caller, id domain.ID, resourcePath string, charge uint64) error {
	if caller != domain.ServerID {
		return domain.ErrNotServerDomain
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", domain.ErrNoSuchDomain, id)
	}
	b, ok := rec.Bindings[resourcePath]
	if !ok {
		return fmt.Errorf("baseline: no binding for %s in %s", resourcePath, id)
	}
	b.Invocations++
	b.Charge += charge
	return nil
}

// FlushUsage matches the sharded database's signature so both designs
// satisfy one benchmark interface; under the coarse design a departure
// settles the already-recorded rows, so only the charge total is
// computed.
func (db *CoarseDomainDB) FlushUsage(caller, id domain.ID, batch []domain.Usage) (uint64, error) {
	if caller != domain.ServerID {
		return 0, domain.ErrNotServerDomain
	}
	var total uint64
	db.mu.RLock()
	rec, ok := db.byID[id]
	if ok {
		for _, b := range rec.Bindings {
			total += b.Charge
		}
	}
	db.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", domain.ErrNoSuchDomain, id)
	}
	_ = batch
	return total, nil
}

// Remove mirrors domain.Database.Remove.
func (db *CoarseDomainDB) Remove(caller, id domain.ID) error {
	if caller != domain.ServerID {
		return domain.ErrNotServerDomain
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", domain.ErrNoSuchDomain, id)
	}
	delete(db.byID, id)
	if cur, ok := db.byAgent[rec.AgentName]; ok && cur == id {
		delete(db.byAgent, rec.AgentName)
	}
	return nil
}

// Count reports live domains.
func (db *CoarseDomainDB) Count() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.byID)
}
