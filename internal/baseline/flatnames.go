package baseline

import (
	"fmt"
	"sync"

	"repro/internal/names"
)

// FlatNameService preserves the pre-federation name service design: one
// RWMutex over a single map of bindings, consulted on every dispatch
// and remote host call. It exists as the benchmark baseline for
// experiment C15 — the resolution-throughput comparison that motivated
// sharding the authoritative store (internal/names.Service) and putting
// a lease-caching resolver in front of it on every server. It matches
// the seed names.Service surface the dispatch path exercised: Bind,
// Unbind, Lookup, plus names.Directory so it can stand in for the real
// store under a Resolver in A/B runs (leases degenerate to "forever").
type FlatNameService struct {
	mu       sync.RWMutex
	bindings map[names.Name]names.Location
}

// NewFlatNameService returns an empty single-map name service.
func NewFlatNameService() *FlatNameService {
	return &FlatNameService{bindings: make(map[names.Name]names.Location)}
}

// Bind registers or replaces the location of a name.
func (s *FlatNameService) Bind(n names.Name, loc names.Location) error {
	if err := n.Valid(); err != nil {
		return fmt.Errorf("baseline: flat bind: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bindings[n] = loc
	return nil
}

// BindReplica collapses to Bind: the flat design predates multi-location
// bindings, so the newest replica simply becomes the binding.
func (s *FlatNameService) BindReplica(n names.Name, loc names.Location) error {
	return s.Bind(n, loc)
}

// Unbind removes a binding; unbinding an absent name is a no-op.
func (s *FlatNameService) Unbind(n names.Name) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.bindings, n)
}

// Lookup resolves a name to its current location under the read lock —
// the seed hot path C15 measures against.
func (s *FlatNameService) Lookup(n names.Name) (names.Location, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.bindings[n]
	if !ok {
		return names.Location{}, fmt.Errorf("%w: %s", names.ErrNotBound, n)
	}
	return loc, nil
}

// Resolve adapts Lookup to the names.Directory surface. The flat design
// has no leases; it grants the default so resolvers layered above
// behave identically.
func (s *FlatNameService) Resolve(n names.Name) (names.Binding, error) {
	loc, err := s.Lookup(n)
	if err != nil {
		return names.Binding{}, err
	}
	return names.Binding{
		Locations: []names.Location{loc},
		Epoch:     1,
		Lease:     names.DefaultLease,
	}, nil
}

// Snapshot returns a copy of all current bindings, for status queries.
func (s *FlatNameService) Snapshot() map[names.Name]names.Location {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[names.Name]names.Location, len(s.bindings))
	for k, v := range s.bindings {
		out[k] = v
	}
	return out
}

// Len reports the number of bound names.
func (s *FlatNameService) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bindings)
}
