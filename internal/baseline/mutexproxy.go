package baseline

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/vm"
)

// MutexProxyDesign preserves the pre-copy-on-write production proxy:
// every invocation takes a per-proxy sync.Mutex to run the §5.5 screen
// (revocation, expiry, holder, enable set, quota) and bump the
// accounting counters. It exists so the C8 contended-access experiment
// can compare the lock-free snapshot design in internal/resource
// against the design it replaced, on the same method tables.
type MutexProxyDesign struct {
	Def    *resource.Def
	Policy *policy.Engine
}

// NewMutexProxyDesign builds the design.
func NewMutexProxyDesign(def *resource.Def, eng *policy.Engine) *MutexProxyDesign {
	return &MutexProxyDesign{Def: def, Policy: eng}
}

// Name implements Design.
func (d *MutexProxyDesign) Name() string { return "proxy_mutex" }

// Bind implements Design: one policy decision, then a per-agent proxy
// whose mutable control state sits behind a mutex.
func (d *MutexProxyDesign) Bind(caller domain.ID, creds *cred.Credentials) (Accessor, error) {
	grant := d.Policy.Decide(creds, d.Def.Path, d.Def.MethodNames())
	if grant.Empty() {
		return nil, resource.ErrNoAccess
	}
	enabled := make(map[string]bool, len(grant.Methods))
	for m, ok := range grant.Methods {
		if ok {
			enabled[m] = true
		}
	}
	expiry := creds.EffectiveExpiry()
	if !grant.Expiry.IsZero() && grant.Expiry.Before(expiry) {
		expiry = grant.Expiry
	}
	return &mutexProxy{
		def:       d.Def,
		bound:     caller,
		enabled:   enabled,
		expiry:    expiry,
		quota:     grant.Quota,
		perMethod: make(map[string]uint64),
	}, nil
}

// mutexProxy is the old production proxy, field for field.
type mutexProxy struct {
	def       *resource.Def
	bound     domain.ID
	mu        sync.Mutex
	enabled   map[string]bool
	expiry    time.Time
	revoked   bool
	quota     policy.Quota
	inv       uint64
	charge    uint64
	perMethod map[string]uint64
}

// Invoke runs the full screen and accounting under the proxy mutex,
// exactly as the pre-refactor implementation did.
func (p *mutexProxy) Invoke(caller domain.ID, method string, args []vm.Value) (vm.Value, error) {
	cost := p.def.Costs[method]
	if cost == 0 {
		cost = resource.DefaultCost
	}
	p.mu.Lock()
	if err := p.screen(caller, method, cost); err != nil {
		p.mu.Unlock()
		return vm.Nil(), err
	}
	p.inv++
	p.charge += cost
	p.perMethod[method]++
	fn := p.def.Methods[method]
	p.mu.Unlock()
	return fn(args)
}

// screen performs all access checks; the caller holds p.mu.
func (p *mutexProxy) screen(caller domain.ID, method string, cost uint64) error {
	if p.revoked {
		return resource.ErrRevoked
	}
	if !p.expiry.IsZero() && time.Now().After(p.expiry) {
		return resource.ErrProxyExpired
	}
	if caller != p.bound {
		return fmt.Errorf("%w: bound to %s, invoked from %s", resource.ErrNotHolder, p.bound, caller)
	}
	if _, exists := p.def.Methods[method]; !exists {
		return fmt.Errorf("%w: %q", resource.ErrUnknownMethod, method)
	}
	if !p.enabled[method] {
		return fmt.Errorf("%w: %q", resource.ErrMethodDisabled, method)
	}
	if q := p.quota.MaxInvocations; q != 0 && p.inv >= q {
		return fmt.Errorf("%w: %d invocations", resource.ErrQuota, q)
	}
	if q := p.quota.MaxCharge; q != 0 && p.charge+cost > q {
		return fmt.Errorf("%w: charge limit %d", resource.ErrQuota, q)
	}
	return nil
}

// Revoke invalidates the proxy (used by the stress tests to keep the
// baseline honest about control-plane semantics).
func (p *mutexProxy) Revoke() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.revoked = true
}
