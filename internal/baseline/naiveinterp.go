package baseline

import (
	"fmt"

	"repro/internal/vm"
)

// NaiveInterp preserves the original (pre-fast-path) VM interpreter so
// the C14 benchmark can compare the optimized vm.Run against it, the
// same role MutexProxyDesign and CoarseDomainDB play for their
// refactors. It executes canonical (unfused) bytecode only: fused
// superinstructions produced by vm.Prepare trap as unknown opcodes,
// exactly as this interpreter behaved before they existed.
//
// Behavioral contract (what the differential fuzzer in internal/vm
// asserts against the fast interpreter):
//
//   - one Meter.Charge(1) per executed instruction, so Used() counts
//     every dispatched instruction including the failing charge;
//   - per-frame locals/stack slices allocated per call (the allocation
//     profile the arena rewrite eliminates);
//   - identical trap conditions, error classes, and result values.
//
// The only deliberate deviation from the seed code: MaxFrames == 0 is
// defaulted in a local instead of being written back to the caller's
// shared Env (that write-back was a bug, fixed in both interpreters).
type NaiveInterp struct{}

type nframe struct {
	m      *vm.Module
	f      *vm.Func
	ip     int
	locals []vm.Value
	stack  []vm.Value
}

func ntrap(m *vm.Module, f *vm.Func, pc int, format string, args ...any) error {
	return fmt.Errorf("%w: %s.%s@%d: %s", vm.ErrTrap, m.Name, f.Name, pc, fmt.Sprintf(format, args...))
}

// Run executes function fname of module m exactly as the seed
// interpreter did. The module must already be verified.
func (NaiveInterp) Run(env *vm.Env, m *vm.Module, fname string, args ...vm.Value) (vm.Value, error) {
	_, f := m.Fn(fname)
	if f == nil {
		return vm.Nil(), fmt.Errorf("%w: %s.%s", vm.ErrNoFunction, m.Name, fname)
	}
	if len(args) != f.NParams {
		return vm.Nil(), fmt.Errorf("%w: %s.%s wants %d args, got %d", vm.ErrTrap, m.Name, fname, f.NParams, len(args))
	}
	maxFrames := env.MaxFrames
	if maxFrames == 0 {
		maxFrames = vm.DefaultMaxFrames
	}
	frames := make([]*nframe, 0, 8)
	frames = append(frames, newNFrame(m, f, args))

	for {
		fr := frames[len(frames)-1]
		if err := env.Meter.Charge(1); err != nil {
			return vm.Nil(), err
		}
		ins := fr.f.Code[fr.ip]
		fr.ip++
		switch ins.Op {
		case vm.OpNop:
		case vm.OpPushInt:
			fr.push(vm.I(fr.m.Ints[ins.A]))
		case vm.OpPushStr:
			fr.push(vm.S(fr.m.Strs[ins.A]))
		case vm.OpPushTrue:
			fr.push(vm.B(true))
		case vm.OpPushFalse:
			fr.push(vm.B(false))
		case vm.OpPushNil:
			fr.push(vm.Nil())
		case vm.OpLoadLocal:
			fr.push(fr.locals[ins.A])
		case vm.OpStoreLocal:
			fr.locals[ins.A] = fr.pop()
		case vm.OpLoadGlobal:
			fr.push(env.Globals[fr.m.Strs[ins.A]])
		case vm.OpStoreGlobal:
			env.Globals[fr.m.Strs[ins.A]] = fr.pop()
		case vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMod:
			b, a := fr.pop(), fr.pop()
			v, err := narith(fr, ins.Op, a, b)
			if err != nil {
				return vm.Nil(), err
			}
			fr.push(v)
		case vm.OpNeg:
			a := fr.pop()
			if a.Kind != vm.KindInt {
				return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "neg of %s", a.Kind)
			}
			fr.push(vm.I(-a.Int))
		case vm.OpEq:
			b, a := fr.pop(), fr.pop()
			fr.push(vm.B(a.Equal(b)))
		case vm.OpNe:
			b, a := fr.pop(), fr.pop()
			fr.push(vm.B(!a.Equal(b)))
		case vm.OpLt, vm.OpLe, vm.OpGt, vm.OpGe:
			b, a := fr.pop(), fr.pop()
			v, err := ncompare(fr, ins.Op, a, b)
			if err != nil {
				return vm.Nil(), err
			}
			fr.push(v)
		case vm.OpNot:
			fr.push(vm.B(!fr.pop().Truthy()))
		case vm.OpJump:
			fr.ip = int(ins.A)
		case vm.OpJumpIfFalse:
			if !fr.pop().Truthy() {
				fr.ip = int(ins.A)
			}
		case vm.OpJumpIfTrue:
			if fr.pop().Truthy() {
				fr.ip = int(ins.A)
			}
		case vm.OpCall:
			callee := &fr.m.Fns[ins.A]
			if len(frames) >= maxFrames {
				return vm.Nil(), vm.ErrStackOverflow
			}
			args := fr.popN(int(ins.B))
			frames = append(frames, newNFrame(fr.m, callee, args))
		case vm.OpCallNamed:
			name := fr.m.Strs[ins.A]
			if env.Resolver == nil {
				return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "no resolver for %q", name)
			}
			cm, cf, err := env.Resolver.ResolveFunc(name)
			if err != nil {
				return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "resolve %q: %v", name, err)
			}
			if cf.NParams != int(ins.B) {
				return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "%q wants %d args, got %d", name, cf.NParams, ins.B)
			}
			if len(frames) >= maxFrames {
				return vm.Nil(), vm.ErrStackOverflow
			}
			args := fr.popN(int(ins.B))
			frames = append(frames, newNFrame(cm, cf, args))
		case vm.OpHostCall:
			name := fr.m.Strs[ins.A]
			hf := env.Host[name]
			if hf == nil {
				return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "no host function %q", name)
			}
			args := fr.popN(int(ins.B))
			v, err := hf(args)
			if err != nil {
				return vm.Nil(), err
			}
			fr.push(v)
		case vm.OpReturn:
			v := fr.pop()
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				return v, nil
			}
			frames[len(frames)-1].push(v)
		case vm.OpPop:
			fr.pop()
		case vm.OpDup:
			v := fr.pop()
			fr.push(v)
			fr.push(v)
		case vm.OpMakeList:
			elems := fr.popN(int(ins.A))
			fr.push(vm.L(elems...))
		case vm.OpIndex:
			idx, agg := fr.pop(), fr.pop()
			v, err := nindex(fr, agg, idx)
			if err != nil {
				return vm.Nil(), err
			}
			fr.push(v)
		case vm.OpSetIndex:
			val, idx, agg := fr.pop(), fr.pop(), fr.pop()
			if err := nsetIndex(fr, agg, idx, val); err != nil {
				return vm.Nil(), err
			}
			fr.push(vm.Nil())
		case vm.OpMakeMap:
			kvs := fr.popN(2 * int(ins.A))
			mm := make(map[string]vm.Value, ins.A)
			for i := 0; i < len(kvs); i += 2 {
				if kvs[i].Kind != vm.KindStr {
					return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "map key is %s, want str", kvs[i].Kind)
				}
				mm[kvs[i].Str] = kvs[i+1]
			}
			fr.push(vm.M(mm))
		case vm.OpHalt:
			return fr.pop(), nil
		default:
			return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "unknown opcode %d", ins.Op)
		}
	}
}

func newNFrame(m *vm.Module, f *vm.Func, args []vm.Value) *nframe {
	locals := make([]vm.Value, f.NLocals)
	copy(locals, args)
	return &nframe{m: m, f: f, locals: locals, stack: make([]vm.Value, 0, 16)}
}

func (fr *nframe) push(v vm.Value) { fr.stack = append(fr.stack, v) }

func (fr *nframe) pop() vm.Value {
	v := fr.stack[len(fr.stack)-1]
	fr.stack = fr.stack[:len(fr.stack)-1]
	return v
}

// popN pops n values and returns them in push order.
func (fr *nframe) popN(n int) []vm.Value {
	out := make([]vm.Value, n)
	copy(out, fr.stack[len(fr.stack)-n:])
	fr.stack = fr.stack[:len(fr.stack)-n]
	return out
}

func narith(fr *nframe, op vm.Opcode, a, b vm.Value) (vm.Value, error) {
	// String concatenation rides on Add.
	if op == vm.OpAdd && a.Kind == vm.KindStr && b.Kind == vm.KindStr {
		return vm.S(a.Str + b.Str), nil
	}
	if a.Kind != vm.KindInt || b.Kind != vm.KindInt {
		return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "%s of %s and %s", op, a.Kind, b.Kind)
	}
	switch op {
	case vm.OpAdd:
		return vm.I(a.Int + b.Int), nil
	case vm.OpSub:
		return vm.I(a.Int - b.Int), nil
	case vm.OpMul:
		return vm.I(a.Int * b.Int), nil
	case vm.OpDiv:
		if b.Int == 0 {
			return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "division by zero")
		}
		return vm.I(a.Int / b.Int), nil
	case vm.OpMod:
		if b.Int == 0 {
			return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "modulo by zero")
		}
		return vm.I(a.Int % b.Int), nil
	}
	return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "bad arith op")
}

func ncompare(fr *nframe, op vm.Opcode, a, b vm.Value) (vm.Value, error) {
	var c int
	switch {
	case a.Kind == vm.KindInt && b.Kind == vm.KindInt:
		switch {
		case a.Int < b.Int:
			c = -1
		case a.Int > b.Int:
			c = 1
		}
	case a.Kind == vm.KindStr && b.Kind == vm.KindStr:
		switch {
		case a.Str < b.Str:
			c = -1
		case a.Str > b.Str:
			c = 1
		}
	default:
		return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "%s of %s and %s", op, a.Kind, b.Kind)
	}
	switch op {
	case vm.OpLt:
		return vm.B(c < 0), nil
	case vm.OpLe:
		return vm.B(c <= 0), nil
	case vm.OpGt:
		return vm.B(c > 0), nil
	case vm.OpGe:
		return vm.B(c >= 0), nil
	}
	return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "bad compare op")
}

func nindex(fr *nframe, agg, idx vm.Value) (vm.Value, error) {
	switch agg.Kind {
	case vm.KindList:
		if idx.Kind != vm.KindInt {
			return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "list index is %s", idx.Kind)
		}
		if idx.Int < 0 || idx.Int >= int64(len(agg.List)) {
			return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "index %d out of range (len %d)", idx.Int, len(agg.List))
		}
		return agg.List[idx.Int], nil
	case vm.KindMap:
		if idx.Kind != vm.KindStr {
			return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "map key is %s", idx.Kind)
		}
		return agg.Map[idx.Str], nil
	case vm.KindStr:
		if idx.Kind != vm.KindInt {
			return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "string index is %s", idx.Kind)
		}
		if idx.Int < 0 || idx.Int >= int64(len(agg.Str)) {
			return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "index %d out of range (len %d)", idx.Int, len(agg.Str))
		}
		return vm.S(string(agg.Str[idx.Int])), nil
	default:
		return vm.Nil(), ntrap(fr.m, fr.f, fr.ip-1, "cannot index %s", agg.Kind)
	}
}

func nsetIndex(fr *nframe, agg, idx, val vm.Value) error {
	switch agg.Kind {
	case vm.KindList:
		if idx.Kind != vm.KindInt {
			return ntrap(fr.m, fr.f, fr.ip-1, "list index is %s", idx.Kind)
		}
		if idx.Int < 0 || idx.Int >= int64(len(agg.List)) {
			return ntrap(fr.m, fr.f, fr.ip-1, "index %d out of range (len %d)", idx.Int, len(agg.List))
		}
		agg.List[idx.Int] = val
		return nil
	case vm.KindMap:
		if idx.Kind != vm.KindStr {
			return ntrap(fr.m, fr.f, fr.ip-1, "map key is %s", idx.Kind)
		}
		agg.Map[idx.Str] = val
		return nil
	default:
		return ntrap(fr.m, fr.f, fr.ip-1, "cannot set-index %s", agg.Kind)
	}
}
