package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/names"
	"repro/internal/server"
	"repro/internal/vm"
	"repro/internal/vm/analysis"
)

// greedySource asks for the counter resource and bumps it: the workload
// of every admission test below. Whether it is over-privileged depends
// solely on the hosting server's policy.
const greedySource = `module greedy
func main() {
  log("started")
  var c = get_resource("ajanta:resource:umn.edu/counter")
  report(invoke(c, "add", 1))
}`

// TestAdmissionRejectsOverPrivileged: under AdmissionEnforce, an agent
// whose manifest demands a resource the policy grants it nothing on is
// rejected at the arrival gate — fail-closed, with zero VM instructions
// executed (the agent's very first statement, log("started"), never
// runs).
func TestAdmissionRejectsOverPrivileged(t *testing.T) {
	p := mustPlatform(t)
	// Default-deny policy: no rules at all.
	site, err := p.StartServer("site", "site:7000", ServerConfig{
		Admission: server.AdmissionEnforce,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(site, CounterResource(names.Resource("umn.edu", "counter"), "counter")); err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("mallory")
	a, err := p.BuildAgent(AgentSpec{
		Owner:     owner,
		Name:      "greedy",
		Source:    greedySource,
		Itinerary: agent.Sequence("main", site.Name()),
		Home:      site,
	})
	if err != nil {
		t.Fatal(err)
	}
	// BuildAgent attached the computed manifest; the demand is visible
	// before anything runs.
	if a.Manifest == nil || !contains(a.Manifest.Resources, "ajanta:resource:umn.edu/counter") {
		t.Fatalf("built manifest = %v", a.Manifest)
	}

	err = site.LaunchLocal(a)
	if !errors.Is(err, server.ErrAdmission) {
		t.Fatalf("LaunchLocal = %v, want ErrAdmission", err)
	}
	// Zero instructions executed: the first statement's log line never
	// appeared, no visit was hosted, and the rejection was counted.
	if len(a.Log) != 0 || len(a.Results) != 0 {
		t.Fatalf("rejected agent ran: log=%v results=%v", a.Log, a.Results)
	}
	st := site.Stats()
	if st.Arrivals != 0 {
		t.Fatalf("arrivals = %d, want 0", st.Arrivals)
	}
	if st.AdmissionRejects != 1 {
		t.Fatalf("admission rejects = %d, want 1", st.AdmissionRejects)
	}
}

// TestAdmissionAdmitsGranted: the same agent is admitted and completes
// its visit when the policy grants its owner the resource — enforcement
// rejects over-privilege, not privilege.
func TestAdmissionAdmitsGranted(t *testing.T) {
	p := mustPlatform(t)
	site, err := p.StartServer("site", "site:7000", ServerConfig{
		Admission: server.AdmissionEnforce,
		Rules:     openRules("counter"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(site, CounterResource(names.Resource("umn.edu", "counter"), "counter")); err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner:     owner,
		Name:      "granted",
		Source:    greedySource,
		Itinerary: agent.Sequence("main", site.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || !back.Results[0].Equal(vm.I(1)) {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	if got := site.Stats().AdmissionRejects; got != 0 {
		t.Fatalf("admission rejects = %d, want 0", got)
	}
}

// TestAdmissionRejectsUnderDeclaredManifest: a carried manifest that
// does not cover the code's computed needs (an agent lying about what
// it will ask for) is rejected even when the policy would have granted
// the real needs.
func TestAdmissionRejectsUnderDeclaredManifest(t *testing.T) {
	p := mustPlatform(t)
	site, err := p.StartServer("site", "site:7000", ServerConfig{
		Admission: server.AdmissionEnforce,
		Rules:     openRules("counter"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(site, CounterResource(names.Resource("umn.edu", "counter"), "counter")); err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner:     owner,
		Name:      "liar",
		Source:    greedySource,
		Itinerary: agent.Sequence("main", site.Name()),
		Home:      site,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Manifest = &analysis.Manifest{} // declares: "I talk to no one"
	err = site.LaunchLocal(a)
	if !errors.Is(err, server.ErrAdmission) {
		t.Fatalf("LaunchLocal = %v, want ErrAdmission", err)
	}
	if !strings.Contains(err.Error(), "cover") {
		t.Fatalf("rejection reason = %v, want under-declaration", err)
	}
}

// TestAdmissionWildcardNeedsWildcardRule: a get_resource target the
// analyzer cannot resolve widens the manifest to "*"; enforcement then
// demands an explicit wildcard-resource rule.
func TestAdmissionWildcardNeedsWildcardRule(t *testing.T) {
	// The resource name is built from a runtime value, so the manifest
	// entry is "*".
	const dynamicSource = `module dyn
func main() {
  var c = get_resource(server_name())
}`
	t.Run("no-wildcard-rule", func(t *testing.T) {
		p := mustPlatform(t)
		site, err := p.StartServer("site", "site:7000", ServerConfig{
			Admission: server.AdmissionEnforce,
			Rules:     openRules("counter"), // named grants only
		})
		if err != nil {
			t.Fatal(err)
		}
		owner, _ := p.NewOwner("alice")
		a, err := p.BuildAgent(AgentSpec{
			Owner:     owner,
			Name:      "dyn",
			Source:    dynamicSource,
			Itinerary: agent.Sequence("main", site.Name()),
			Home:      site,
		})
		if err != nil {
			t.Fatal(err)
		}
		if a.Manifest == nil || !contains(a.Manifest.Resources, analysis.Wildcard) {
			t.Fatalf("manifest = %v, want wildcard resource", a.Manifest)
		}
		if err := site.LaunchLocal(a); !errors.Is(err, server.ErrAdmission) {
			t.Fatalf("LaunchLocal = %v, want ErrAdmission", err)
		}
	})
	t.Run("wildcard-rule", func(t *testing.T) {
		p := mustPlatform(t)
		site, err := p.StartServer("site", "site:7000", ServerConfig{
			Admission: server.AdmissionEnforce,
			Rules:     openRules("*"),
		})
		if err != nil {
			t.Fatal(err)
		}
		owner, _ := p.NewOwner("alice")
		a, err := p.BuildAgent(AgentSpec{
			Owner:     owner,
			Name:      "dyn2",
			Source:    dynamicSource,
			Itinerary: agent.Sequence("main", site.Name()),
			Home:      site,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := site.LaunchLocal(a); err != nil {
			t.Fatalf("LaunchLocal = %v, want admitted", err)
		}
	})
}

// TestAdmissionRejectsOverNetwork: the admission check guards the
// network arrival path too — an over-privileged agent dispatched from
// its home server is turned away by the remote site (the rejection
// travels back through the transfer ack) and comes home failed without
// ever having run there.
func TestAdmissionRejectsOverNetwork(t *testing.T) {
	p := mustPlatform(t)
	site, err := p.StartServer("site", "site:7000", ServerConfig{
		Admission: server.AdmissionEnforce, // default deny
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(site, CounterResource(names.Resource("umn.edu", "counter"), "counter")); err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("mallory")
	a, err := p.BuildAgent(AgentSpec{
		Owner:     owner,
		Name:      "greedy-remote",
		Source:    greedySource,
		Itinerary: agent.Sequence("main", site.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 0 {
		t.Fatalf("rejected agent reported results: %v", back.Results)
	}
	st := site.Stats()
	if st.Arrivals != 0 {
		t.Fatalf("site arrivals = %d, want 0", st.Arrivals)
	}
	if st.AdmissionRejects == 0 {
		t.Fatal("site counted no admission rejects")
	}
}

// contains reports list membership (test helper; the manifest's lists
// are small and sorted).
func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
