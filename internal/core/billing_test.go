package core

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/sandbox"
	"repro/internal/vm"
)

// pricedCounter is a counter whose add costs 10 and get costs 1.
func pricedCounter(rn names.Name, path string) *resource.Def {
	def := CounterResource(rn, path)
	def.Costs = map[string]uint64{"add": 10, "get": 1}
	return def
}

// TestBillingLedger: the paper's electronic-commerce requirement —
// per-method charges accumulate into the server's per-owner ledger when
// the agent departs.
func TestBillingLedger(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{Rules: openRules("counter")})
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(srv, pricedCounter(names.Resource("umn.edu", "counter"), "counter")); err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner, Name: "customer",
		Source: `module c
func main() {
  var ctr = get_resource("ajanta:resource:umn.edu/counter")
  invoke(ctr, "add", 5)   # 10
  invoke(ctr, "add", 5)   # 10
  report(invoke(ctr, "get"))  # 1
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LaunchAndWait(home, a, waitTime); err != nil {
		t.Fatal(err)
	}
	if got := srv.Charges(owner.Name); got != 21 {
		t.Fatalf("charges = %d, want 21", got)
	}
	// A second visit accumulates.
	b, err := p.BuildAgent(AgentSpec{
		Owner: owner, Name: "customer2",
		Source: `module c
func main() {
  var ctr = get_resource("ajanta:resource:umn.edu/counter")
  invoke(ctr, "get")
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LaunchAndWait(home, b, waitTime); err != nil {
		t.Fatal(err)
	}
	if got := srv.Charges(owner.Name); got != 22 {
		t.Fatalf("charges = %d, want 22", got)
	}
	// Other owners are not billed.
	other, _ := p.NewOwner("bob")
	if got := srv.Charges(other.Name); got != 0 {
		t.Fatalf("bob charged %d", got)
	}
}

// TestDeniedCallsAreStillCharged: the proxy charges on admission to the
// method, so quota-exceeding attempts do not bill, but failing method
// bodies do. (This test pins the billing semantics so they do not drift
// silently.)
func TestBillingSemanticsDeniedVsFailed(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{
		Rules: []policy.Rule{{AnyPrincipal: true, Resource: "counter", Methods: []string{"get"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(srv, pricedCounter(names.Resource("umn.edu", "counter"), "counter")); err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner, Name: "prober",
		Source: `module pr
func main() {
  var ctr = get_resource("ajanta:resource:umn.edu/counter")
  invoke(ctr, "get")   # allowed: billed 1
  invoke(ctr, "add", 1)  # disabled: aborts the agent, not billed
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LaunchAndWait(home, a, waitTime); err != nil {
		t.Fatal(err)
	}
	if got := srv.Charges(owner.Name); got != 1 {
		t.Fatalf("charges = %d, want 1 (denied call must not bill)", got)
	}
}

// TestSecurityManagerAuditTrail: a hosted visit leaves mediation events
// in the reference monitor's audit log.
func TestSecurityManagerAuditTrail(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{InstalledResourcePolicy: true})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner, Name: "auditable",
		Source: `module au
func main() {
  install_resource("ajanta:resource:umn.edu/thing", "svc", "thing")
}`,
		ExtraSources: []string{"module svc\nfunc ping() { return 1 }"},
		Itinerary:    agent.Sequence("main", srv.Name()),
		Home:         home,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LaunchAndWait(home, a, waitTime); err != nil {
		t.Fatal(err)
	}
	var sawAdmit, sawRegister bool
	for _, d := range srv.SecurityManager().Audit() {
		if d.Op == sandbox.OpDomainDBUpdate && d.Caller == domain.ServerID {
			sawAdmit = true
		}
		if d.Op == sandbox.OpRegistryRegister && d.Caller != domain.ServerID && d.Allowed {
			sawRegister = true
		}
	}
	if !sawAdmit || !sawRegister {
		t.Fatalf("audit missing events: admit=%v register=%v", sawAdmit, sawRegister)
	}
	allows, denies := srv.SecurityManager().Stats()
	if allows == 0 {
		t.Fatalf("stats: %d/%d", allows, denies)
	}
	_ = vm.Nil() // keep vm import for the shared test helpers' signature
}
