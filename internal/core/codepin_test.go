package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/asl"
	"repro/internal/cred"
	"repro/internal/names"
	"repro/internal/vm"
)

// TestCodePinningBlocksPatchedAgents: a malicious host patches the
// agent's code en route; the next server's admission check catches the
// mismatch against the owner-signed digest (§2 agent-code integrity).
func TestCodePinningBlocksPatchedAgents(t *testing.T) {
	p := mustPlatform(t)
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner, Name: "pinned",
		Source:    "module m\nfunc main() { report(1) }",
		Itinerary: agent.Sequence("main", home.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Credentials.CodeDigest) == 0 {
		t.Fatal("BuildAgent did not pin the code")
	}
	// The "malicious host": swap in a patched module that reports 666.
	evil, err := asl.Compile("module m\nfunc main() { report(666) }")
	if err != nil {
		t.Fatal(err)
	}
	a.Code = []vm.Module{*evil}
	if err := home.LaunchLocal(a); err == nil {
		t.Fatal("patched agent admitted")
	}
}

func TestCodePinningSurvivesTour(t *testing.T) {
	// The pinned digest must hold across genuine migrations — state
	// changes, code does not.
	p := mustPlatform(t)
	s1, err := p.StartServer("s1", "s1:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.StartServer("s2", "s2:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner, Name: "tourist",
		Source: `module m
var n = 0
func visit() { n = n + 1 }`,
		Itinerary: agent.Sequence("visit", s1.Name(), s2.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if !back.State["n"].Equal(vm.I(2)) {
		t.Fatalf("n = %v, log = %v", back.State["n"], back.Log)
	}
	digest, err := agent.BundleDigest(back.Code)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(digest, back.Credentials.CodeDigest) {
		t.Fatal("digest drifted over a clean tour")
	}
}

// TestBundleDigestProperties: digest is deterministic and sensitive to
// any code change.
func TestBundleDigestProperties(t *testing.T) {
	m1, err := asl.Compile("module a\nfunc f() { return 1 }")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := asl.Compile("module a\nfunc f() { return 2 }")
	if err != nil {
		t.Fatal(err)
	}
	d1a, err := agent.BundleDigest([]vm.Module{*m1})
	if err != nil {
		t.Fatal(err)
	}
	d1b, _ := agent.BundleDigest([]vm.Module{*m1})
	d2, _ := agent.BundleDigest([]vm.Module{*m2})
	if !bytes.Equal(d1a, d1b) {
		t.Fatal("digest not deterministic")
	}
	if bytes.Equal(d1a, d2) {
		t.Fatal("digest insensitive to code change")
	}
}

// TestIssueForCodeSignatureCoversDigest: flipping the digest after issue
// invalidates the credentials.
func TestIssueForCodeSignatureCoversDigest(t *testing.T) {
	p := mustPlatform(t)
	owner, _ := p.NewOwner("alice")
	digest := bytes.Repeat([]byte{7}, 32)
	c, err := cred.IssueForCode(owner, names.Agent(p.Authority, "x"), owner.Name,
		cred.NewRightSet(cred.All), time.Hour, "home", digest)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(p.CA.Verifier(), time.Now()); err != nil {
		t.Fatal(err)
	}
	c.CodeDigest[0] ^= 0xFF
	if err := c.Verify(p.CA.Verifier(), time.Now()); err == nil {
		t.Fatal("digest tampering not detected")
	}
}
