package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/names"
	"repro/internal/vm"
)

// TestColocatePrimitive: the §4 higher-level abstraction — an agent
// migrates to a resource's location knowing only the resource's global
// name, then binds to it locally.
func TestColocatePrimitive(t *testing.T) {
	p := mustPlatform(t)
	// The resource lives on a server the agent never names.
	hidden, err := p.StartServer("hidden", "hidden:7000", ServerConfig{Rules: openRules("counter")})
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(hidden, CounterResource(names.Resource("umn.edu", "counter"), "counter")); err != nil {
		t.Fatal(err)
	}
	entry, err := p.StartServer("entrypoint", "entry:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "colocator",
		Source: `module co
func main() {
  # We only know the resource's name, not where it lives.
  colocate("ajanta:resource:umn.edu/counter", "work")
  report("unreachable")
}
func work() {
  var c = get_resource("ajanta:resource:umn.edu/counter")
  invoke(c, "add", 9)
  report(invoke(c, "get"))
  report(server_name())
}`,
		Itinerary: agent.Sequence("main", entry.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 2 {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	if !back.Results[0].Equal(vm.I(9)) {
		t.Fatalf("counter = %v", back.Results[0])
	}
	if !strings.Contains(back.Results[1].Str, "hidden") {
		t.Fatalf("worked at %v, want hidden", back.Results[1])
	}
}

// TestColocateUnknownResource: co-locating with an unbound name fails
// visibly.
func TestColocateUnknownResource(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "lost",
		Source: `module lost
func main() {
  colocate("ajanta:resource:umn.edu/ghost", "work")
}
func work() { }`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(back.Log, "\n"), "not bound") {
		t.Fatalf("log = %v", back.Log)
	}
}

// TestMailboxDiscoverableByName: make_mailbox publishes the mailbox in
// the name service, so a peer can colocate with it from another server.
func TestMailboxDiscoverableByName(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{Fuel: 200_000_000})
	if err != nil {
		t.Fatal(err)
	}
	elsewhere, err := p.StartServer("s2", "s2:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := p.NewOwner("alice")
	bob, _ := p.NewOwner("bob")

	receiver, err := p.BuildAgent(AgentSpec{
		Owner: alice,
		Name:  "rx",
		Source: `module rx
func main() {
  make_mailbox("ajanta:resource:umn.edu/rx-mbox", "rx-mbox")
  var msg = nil
  while msg == nil { msg = recv() }
  report(msg)
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	rxCh, err := p.Launch(home, receiver)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Registry().Len() == 1 })

	// Bob's courier starts at a DIFFERENT server and finds the
	// mailbox by name.
	courier, err := p.BuildAgent(AgentSpec{
		Owner: bob,
		Name:  "courier",
		Source: `module courier
func main() {
  colocate("ajanta:resource:umn.edu/rx-mbox", "deliver")
}
func deliver() {
  var mb = get_resource("ajanta:resource:umn.edu/rx-mbox")
  invoke(mb, "send", "found you")
}`,
		Itinerary: agent.Sequence("main", elsewhere.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LaunchAndWait(home, courier, waitTime); err != nil {
		t.Fatal(err)
	}
	back := <-rxCh
	if len(back.Results) != 1 || !back.Results[0].Equal(vm.S("found you")) {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(waitTime)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
