package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/domain"
	"repro/internal/vm"
)

// TestAgentMonitorsAndKillsSibling: one of a user's agents observes and
// stops another agent of the same owner via the §4 control primitives.
func TestAgentMonitorsAndKillsSibling(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{Fuel: 0}) // unlimited
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")

	runaway, err := p.BuildAgent(AgentSpec{
		Owner: owner, Name: "runaway",
		Source:    "module r\nfunc main() { while true { } }",
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	runCh, err := p.Launch(home, runaway)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitTime)
	for {
		if st, ok := srv.AgentStatus(runaway.Name); ok && st == domain.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("runaway never started")
		}
		time.Sleep(time.Millisecond)
	}

	guardian, err := p.BuildAgent(AgentSpec{
		Owner: owner, Name: "guardian",
		Source: `module g
func main() {
  report(agent_status("ajanta:agent:umn.edu/runaway"))
  report(kill_agent("ajanta:agent:umn.edu/runaway"))
  report(agent_status("ajanta:agent:umn.edu/nonexistent"))
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, guardian, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 3 {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	if !back.Results[0].Equal(vm.S("running")) {
		t.Fatalf("status = %v", back.Results[0])
	}
	if !back.Results[1].Equal(vm.B(true)) {
		t.Fatalf("kill = %v", back.Results[1])
	}
	if back.Results[2].Kind != vm.KindNil {
		t.Fatalf("status of unknown agent = %v", back.Results[2])
	}
	select {
	case dead := <-runCh:
		if !strings.Contains(strings.Join(dead.Log, "\n"), "killed") {
			t.Fatalf("log = %v", dead.Log)
		}
	case <-time.After(waitTime):
		t.Fatal("killed runaway never came home")
	}
}

// TestAgentCannotKillForeignAgent: the ownership check blocks control of
// another user's agent.
func TestAgentCannotKillForeignAgent(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{Fuel: 0})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := p.NewOwner("alice")
	mallory, _ := p.NewOwner("mallory")

	victim, err := p.BuildAgent(AgentSpec{
		Owner: alice, Name: "victim",
		Source:    "module v\nfunc main() { while true { } }",
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	vicCh, err := p.Launch(home, victim)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitTime)
	for {
		if st, ok := srv.AgentStatus(victim.Name); ok && st == domain.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never started")
		}
		time.Sleep(time.Millisecond)
	}

	assassin, err := p.BuildAgent(AgentSpec{
		Owner: mallory, Name: "assassin",
		Source: `module a
func main() {
  kill_agent("ajanta:agent:umn.edu/victim")
  report("should not get here")
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, assassin, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 0 {
		t.Fatalf("assassin succeeded: %v", back.Results)
	}
	if !strings.Contains(strings.Join(back.Log, "\n"), "not the owner") {
		t.Fatalf("log = %v", back.Log)
	}
	// Victim still running; clean up via its owner.
	if st, _ := srv.AgentStatus(victim.Name); st != domain.StatusRunning {
		t.Fatalf("victim status = %v", st)
	}
	if err := srv.Kill(alice.Name, victim.Name); err != nil {
		t.Fatal(err)
	}
	<-vicCh
}
