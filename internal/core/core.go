// Package core is the platform facade: it wires the substrates — CA,
// name service, simulated or real network, agent servers — into a
// running mobile-agent platform and offers one-call helpers for the
// common flows (start a server, build an agent from ASL source, launch
// it and await its homecoming). The examples and the public ajanta
// package sit on top of this.
package core

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/agent"
	"repro/internal/asl"
	"repro/internal/cred"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/retry"
	"repro/internal/server"
	"repro/internal/transfer"
	"repro/internal/vm"
	"repro/internal/vm/analysis"
)

// DefaultTTL is the default credential lifetime for launched agents.
const DefaultTTL = time.Hour

// Platform is one administrative domain's worth of infrastructure:
// a certification authority, a name service, a network, and any number
// of agent servers.
type Platform struct {
	Authority string
	CA        *keys.Registry
	NS        *names.Service
	Net       *netsim.Network

	servers map[names.Name]*server.Server
	useTCP  bool
}

// NewPlatform creates a platform whose servers communicate over the
// in-memory simulated network.
func NewPlatform(authority string) (*Platform, error) {
	return NewPlatformWithLease(authority, 0)
}

// NewPlatformWithLease is NewPlatform with an explicit name-service
// lease TTL (0 = names.DefaultLease). Short leases make every server's
// resolver cache expire and re-fetch continuously — the rebind-churn
// regime the cluster load harness (internal/loadharness) scripts to
// stress directory convergence under load.
func NewPlatformWithLease(authority string, lease time.Duration) (*Platform, error) {
	ca, err := keys.NewRegistry(names.Principal(authority, "ca"))
	if err != nil {
		return nil, err
	}
	return &Platform{
		Authority: authority,
		CA:        ca,
		NS:        names.NewServiceWithLease(lease),
		Net:       netsim.NewNetwork(),
		servers:   make(map[names.Name]*server.Server),
	}, nil
}

// NewTCPPlatform creates a platform whose servers listen on real TCP
// addresses (used by the cmd/ tools).
func NewTCPPlatform(authority string) (*Platform, error) {
	p, err := NewPlatform(authority)
	if err != nil {
		return nil, err
	}
	p.useTCP = true
	return p, nil
}

// NewTCPPlatformWithCA creates a TCP platform around an imported CA,
// enabling multi-process deployments: every process importing the same
// CA state issues certificates the others trust.
func NewTCPPlatformWithCA(authority string, ca *keys.Registry) *Platform {
	return &Platform{
		Authority: authority,
		CA:        ca,
		NS:        names.NewService(),
		Net:       netsim.NewNetwork(),
		servers:   make(map[names.Name]*server.Server),
		useTCP:    true,
	}
}

// BindPeer registers another process's server in this platform's name
// service so local servers can dispatch agents to it.
func (p *Platform) BindPeer(shortName, addr string) error {
	n := names.Server(p.Authority, shortName)
	return p.NS.Bind(n, names.Location{Address: addr, ServerName: n})
}

// ServerConfig tunes one server.
type ServerConfig struct {
	// Fuel is the per-visit instruction budget (0 = vm.DefaultFuel).
	Fuel uint64
	// MaxAgents caps concurrent visitors (0 = unlimited).
	MaxAgents int
	// Rules seed the server's security policy.
	Rules []policy.Rule
	// Tiers and TierAssignments seed the admission-tier configuration
	// (per-principal rate limiting, concurrent-visit caps and fuel
	// quotas at the arrival gate — PROTOCOLS.md §3.3).
	Tiers           []policy.Tier
	TierAssignments []policy.TierAssignment
	// TrustedSources are ASL sources compiled into the server's
	// trusted module set (the local class path).
	TrustedSources []string
	// StrictNamespaces rejects bundles that shadow trusted modules.
	StrictNamespaces bool
	// InstalledResourcePolicy opens dynamically installed resources
	// to all principals (demo default).
	InstalledResourcePolicy bool
	// DispatchRestriction makes this server narrow the rights of
	// every agent it forwards (§5.2's subcontract delegation).
	DispatchRestriction cred.RightSet
	// Retry tunes dispatch fault tolerance (zero fields = defaults).
	Retry retry.Policy
	// RedeliverEvery is the dead-letter redelivery period
	// (0 = server.DefaultRedeliverEvery).
	RedeliverEvery time.Duration
	// Admission selects manifest-based admission control at the
	// arrival gate (server.AdmissionOff / server.AdmissionEnforce).
	Admission server.AdmissionMode
	// ChannelPool tunes the outbound persistent-channel pool (zero
	// fields = pool defaults; Disabled = dial per transfer).
	ChannelPool transfer.PoolConfig
}

// StartServer creates, configures and starts an agent server.
func (p *Platform) StartServer(shortName, addr string, sc ServerConfig) (*server.Server, error) {
	id, err := keys.NewIdentity(p.CA, names.Server(p.Authority, shortName), 24*time.Hour)
	if err != nil {
		return nil, err
	}
	eng := policy.NewEngine()
	eng.SetRules(sc.Rules)
	if len(sc.Tiers) > 0 || len(sc.TierAssignments) > 0 {
		eng.SetTierConfig(sc.Tiers, sc.TierAssignments)
	}

	cfg := server.Config{
		Identity:                id,
		Verifier:                p.CA.Verifier(),
		Address:                 addr,
		NameService:             p.NS,
		Policy:                  eng,
		Fuel:                    sc.Fuel,
		MaxAgents:               sc.MaxAgents,
		StrictNamespaces:        sc.StrictNamespaces,
		InstalledResourcePolicy: sc.InstalledResourcePolicy,
		DispatchRestriction:     sc.DispatchRestriction,
		Retry:                   sc.Retry,
		RedeliverEvery:          sc.RedeliverEvery,
		Admission:               sc.Admission,
		ChannelPool:             sc.ChannelPool,
	}
	if p.useTCP {
		cfg.Dial = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
		cfg.Listen = func(a string) (net.Listener, error) { return net.Listen("tcp", a) }
	} else {
		// Dial as this server's own address so per-link fault
		// injection (drops, partitions) can target server pairs.
		self := addr
		cfg.Dial = func(a string) (net.Conn, error) { return p.Net.DialFrom(self, a) }
		cfg.Listen = func(a string) (net.Listener, error) { return p.Net.Listen(a) }
		// The simulated per-link latency matrix doubles as the
		// proximity estimate for location-aware routing: resolvers
		// rank multi-location answers and dispatch ranks itinerary
		// alternatives nearest-first. Until a matrix is attached
		// (Net.SetLatencyMatrix) every link reads 0 — unmeasured —
		// and routing keeps itinerary order.
		cfg.Proximity = p.Net.Latency
	}

	if len(sc.TrustedSources) > 0 {
		mods := make([]*vm.Module, 0, len(sc.TrustedSources))
		for _, src := range sc.TrustedSources {
			m, err := asl.Compile(src)
			if err != nil {
				return nil, fmt.Errorf("core: trusted source: %w", err)
			}
			mods = append(mods, m)
		}
		ts, err := newTrustedSet(mods)
		if err != nil {
			return nil, err
		}
		cfg.Trusted = ts
	}

	s, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Start(); err != nil {
		return nil, err
	}
	p.servers[s.Name()] = s
	return s, nil
}

// Server returns a started server by its global name.
func (p *Platform) Server(n names.Name) (*server.Server, bool) {
	s, ok := p.servers[n]
	return s, ok
}

// Servers lists all started servers.
func (p *Platform) Servers() []*server.Server {
	out := make([]*server.Server, 0, len(p.servers))
	for _, s := range p.servers {
		out = append(out, s)
	}
	return out
}

// StopAll shuts every server down.
func (p *Platform) StopAll() {
	for _, s := range p.servers {
		s.Stop()
	}
}

// NewOwner certifies a human principal under the platform CA.
func (p *Platform) NewOwner(shortName string) (keys.Identity, error) {
	return keys.NewIdentity(p.CA, names.Principal(p.Authority, shortName), 24*time.Hour)
}

// AgentSpec describes an agent to build.
type AgentSpec struct {
	// Owner is the launching principal's identity.
	Owner keys.Identity
	// Name is the agent's short name (unique per authority).
	Name string
	// Source is the agent's main module in ASL; ExtraSources are
	// additional modules carried in the bundle.
	Source       string
	ExtraSources []string
	// Rights are the privileges the owner delegates (§5.2); empty
	// means everything ("*").
	Rights cred.RightSet
	// TTL bounds the credentials (0 = DefaultTTL).
	TTL time.Duration
	// Itinerary is the planned tour; agents using go() may leave it
	// empty.
	Itinerary agent.Itinerary
	// Home is the server the agent returns to; required.
	Home *server.Server
}

// BuildAgent compiles the sources, issues credentials and assembles the
// agent.
func (p *Platform) BuildAgent(spec AgentSpec) (*agent.Agent, error) {
	if spec.Home == nil {
		return nil, errors.New("core: agent needs a home server")
	}
	main, err := asl.Compile(spec.Source)
	if err != nil {
		return nil, err
	}
	bundle := []vm.Module{*main}
	for _, src := range spec.ExtraSources {
		m, err := asl.Compile(src)
		if err != nil {
			return nil, err
		}
		bundle = append(bundle, *m)
	}
	rights := spec.Rights
	if rights.IsEmpty() {
		rights = cred.NewRightSet(cred.All)
	}
	ttl := spec.TTL
	if ttl == 0 {
		ttl = DefaultTTL
	}
	agentName, err := names.New(names.KindAgent, p.Authority, spec.Name)
	if err != nil {
		return nil, fmt.Errorf("core: agent name: %w", err)
	}
	// Pin the code bundle under the owner's signature so no host on
	// the tour can modify the agent's code undetected.
	digest, err := agent.BundleDigest(bundle)
	if err != nil {
		return nil, err
	}
	creds, err := cred.IssueForCode(spec.Owner, agentName,
		spec.Owner.Name, rights, ttl, spec.Home.Address(), digest)
	if err != nil {
		return nil, err
	}
	a, err := agent.New(creds, main.Name, bundle, spec.Itinerary)
	if err != nil {
		return nil, err
	}
	// Attach the declared access manifest: the static analyzer's
	// over-approximation of everything the bundle can ask a host for.
	// Servers enforcing admission re-verify it against their own
	// analysis before hosting the agent.
	man, err := analysis.ComputeManifest(bundle)
	if err != nil {
		return nil, fmt.Errorf("core: manifest: %w", err)
	}
	a.Manifest = man
	return a, nil
}

// Launch submits the agent at its home server and returns the channel
// that receives it when it completes its journey.
func (p *Platform) Launch(home *server.Server, a *agent.Agent) (<-chan *agent.Agent, error) {
	ch := home.Await(a.Name)
	if err := home.LaunchLocal(a); err != nil {
		return nil, err
	}
	return ch, nil
}

// LaunchAndWait launches the agent and blocks until homecoming or
// timeout.
func (p *Platform) LaunchAndWait(home *server.Server, a *agent.Agent, timeout time.Duration) (*agent.Agent, error) {
	ch, err := p.Launch(home, a)
	if err != nil {
		return nil, err
	}
	back, ok := awaitWithTimeout(ch, timeout)
	if !ok {
		return nil, fmt.Errorf("core: agent %s did not return within %v", a.Name, timeout)
	}
	return back, nil
}

// awaitWithTimeout waits for a homecoming on ch for at most timeout,
// riding the shared coarse clock (resource.CoarseSleep) instead of
// allocating a time.Timer per launch — the same consolidation the
// retry backoffs and transfer deadlines use (docs/PROTOCOLS.md §8.2).
// Resolution is the coarse tick (~1ms), which is noise against any
// realistic journey timeout. ok is false when the timeout fired first.
func awaitWithTimeout(ch <-chan *agent.Agent, timeout time.Duration) (back *agent.Agent, ok bool) {
	// Fast path: already home.
	select {
	case back = <-ch:
		return back, true
	default:
	}
	arrived := make(chan struct{})
	defer close(arrived) // cancels the sleeper's wait promptly
	timedOut := make(chan struct{})
	go func() {
		if canceled := resource.CoarseSleep(timeout, arrived); !canceled {
			close(timedOut)
		}
	}()
	select {
	case back = <-ch:
		return back, true
	case <-timedOut:
		return nil, false
	}
}
