package core

import (
	"net"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/vm"
)

// freePort grabs an ephemeral TCP port and releases it for reuse.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// TestMultiProcessDeployment emulates separate OS processes: two
// platforms that share nothing but exported CA state and TCP, with an
// agent touring servers in both trust domains (codifying the
// ajanta-server -ca-out / -ca-in workflow).
func TestMultiProcessDeployment(t *testing.T) {
	// "Process" A: creates the CA, runs server alpha with a counter.
	pA, err := NewTCPPlatform("example.org")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pA.StopAll)
	caData, err := pA.CA.Export()
	if err != nil {
		t.Fatal(err)
	}
	alphaAddr := freePort(t)
	open := []policy.Rule{{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"}}}
	alpha, err := pA.StartServer("alpha", alphaAddr, ServerConfig{Rules: open})
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(alpha, CounterResource(
		names.Resource("example.org", "counter-alpha"), "counter")); err != nil {
		t.Fatal(err)
	}

	// "Process" B: imports the CA, runs server beta with a counter.
	regB, err := keys.ImportRegistry(caData)
	if err != nil {
		t.Fatal(err)
	}
	pB := NewTCPPlatformWithCA("example.org", regB)
	t.Cleanup(pB.StopAll)
	betaAddr := freePort(t)
	beta, err := pB.StartServer("beta", betaAddr, ServerConfig{Rules: open})
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(beta, CounterResource(
		names.Resource("example.org", "counter-beta"), "counter")); err != nil {
		t.Fatal(err)
	}
	// Each process knows the other only by peer configuration.
	if err := pA.BindPeer("beta", betaAddr); err != nil {
		t.Fatal(err)
	}
	if err := pB.BindPeer("alpha", alphaAddr); err != nil {
		t.Fatal(err)
	}

	// "Process" C: the launcher, with its own home server.
	regC, err := keys.ImportRegistry(caData)
	if err != nil {
		t.Fatal(err)
	}
	pC := NewTCPPlatformWithCA("example.org", regC)
	t.Cleanup(pC.StopAll)
	homeAddr := freePort(t)
	home, err := pC.StartServer("launch-home", homeAddr, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pC.BindPeer("alpha", alphaAddr); err != nil {
		t.Fatal(err)
	}
	if err := pC.BindPeer("beta", betaAddr); err != nil {
		t.Fatal(err)
	}
	owner, err := pC.NewOwner("traveller")
	if err != nil {
		t.Fatal(err)
	}
	a, err := pC.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "cross-process",
		Source: `module x
var total = 0
func visit() {
  var parts = split(server_name(), "/")
  var short = parts[len(parts) - 1]
  var c = get_resource("ajanta:resource:example.org/counter-" + short)
  invoke(c, "add", 21)
  total = total + invoke(c, "get")
}`,
		Itinerary: agent.Sequence("visit",
			names.Server("example.org", "alpha"),
			names.Server("example.org", "beta")),
		Home: home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := pC.LaunchAndWait(home, a, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !back.State["total"].Equal(vm.I(42)) {
		t.Fatalf("total = %v, log = %v", back.State["total"], back.Log)
	}
	if back.Hops != 2 { // home->alpha, alpha->beta (homecoming not counted)
		t.Fatalf("hops = %d", back.Hops)
	}
	// Both trust domains hosted the agent.
	if alpha.Arrivals() != 1 || beta.Arrivals() != 1 {
		t.Fatalf("arrivals: alpha=%d beta=%d", alpha.Arrivals(), beta.Arrivals())
	}
}

// TestCrossProcessTrustRequiresSharedCA: a platform with a DIFFERENT CA
// cannot send agents into the deployment — the transfer handshake fails.
func TestCrossProcessTrustRequiresSharedCA(t *testing.T) {
	pA, err := NewTCPPlatform("example.org")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pA.StopAll)
	alphaAddr := freePort(t)
	if _, err := pA.StartServer("alpha", alphaAddr, ServerConfig{}); err != nil {
		t.Fatal(err)
	}

	rogue, err := NewTCPPlatform("example.org") // different CA!
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rogue.StopAll)
	homeAddr := freePort(t)
	home, err := rogue.StartServer("rogue-home", homeAddr, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rogue.BindPeer("alpha", alphaAddr); err != nil {
		t.Fatal(err)
	}
	owner, _ := rogue.NewOwner("mallory")
	a, err := rogue.BuildAgent(AgentSpec{
		Owner: owner, Name: "infiltrator",
		Source:    "module i\nfunc visit() { report(1) }",
		Itinerary: agent.Sequence("visit", names.Server("example.org", "alpha")),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := rogue.LaunchAndWait(home, a, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 0 {
		t.Fatalf("infiltrator ran: %v", back.Results)
	}
}
