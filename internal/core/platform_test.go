package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/vm"
)

const waitTime = 10 * time.Second

// openRules grants every principal full access to the given resources.
func openRules(paths ...string) []policy.Rule {
	rules := make([]policy.Rule, len(paths))
	for i, p := range paths {
		rules[i] = policy.Rule{AnyPrincipal: true, Resource: p, Methods: []string{"*"}}
	}
	return rules
}

func mustPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform("umn.edu")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.StopAll)
	return p
}

// TestFigure1ServerStructure: a server exposes every Fig. 1 component
// and hosts a trivial agent end to end.
func TestFigure1ServerStructure(t *testing.T) {
	p := mustPlatform(t)
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	desc := home.Describe()
	for _, want := range []string{"agent environment", "resource registry",
		"domain database", "security manager", "agent transfer"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
	owner, err := p.NewOwner("alice")
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "hello",
		Source: `module hello
func main() {
  report("hello from " + server_name())
}`,
		Itinerary: agent.Sequence("main", home.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || !strings.Contains(back.Results[0].Str, "home") {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
}

// TestFigure6BindingProtocol: the six-step resource binding — register,
// request, lookup, getProxy upcall, proxy return, mediated invocation.
func TestFigure6BindingProtocol(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{Rules: openRules("counter")})
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(srv, CounterResource(names.Resource("umn.edu", "counter"), "counter")); err != nil {
		t.Fatal(err) // step 1
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "binder",
		Source: `module binder
func main() {
  var c = get_resource("ajanta:resource:umn.edu/counter")  # steps 2-5
  invoke(c, "add", 5)                                      # step 6
  invoke(c, "add", 2)
  report(invoke(c, "get"))
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || !back.Results[0].Equal(vm.I(7)) {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
}

// TestMultiHopTour: the canonical shopping tour — visit three servers,
// aggregate state across hops, return with the best offer.
func TestMultiHopTour(t *testing.T) {
	p := mustPlatform(t)
	prices := map[string]int64{"s1": 120, "s2": 95, "s3": 110}
	var servers []names.Name
	for short, price := range map[string]int64{"s1": prices["s1"], "s2": prices["s2"], "s3": prices["s3"]} {
		srv, err := p.StartServer(short, short+":7000", ServerConfig{Rules: openRules("quotes")})
		if err != nil {
			t.Fatal(err)
		}
		q := QuoteResource(names.Resource("umn.edu", "quotes-"+short), "quotes",
			map[string]int64{"widget": price})
		if err := InstallResource(srv, q); err != nil {
			t.Fatal(err)
		}
	}
	// Deterministic visiting order.
	for _, short := range []string{"s1", "s2", "s3"} {
		servers = append(servers, names.Server("umn.edu", short))
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "shopper",
		Source: `module shopper
var best = 999999
var where = ""
func visit() {
  # Each server registers its quote service under a name derived from
  # its own short name; discover it via the server name.
  var parts = split(server_name(), "/")
  var short = parts[len(parts) - 1]
  var q = get_resource("ajanta:resource:umn.edu/quotes-" + short)
  var price = invoke(q, "quote", "widget")
  log("quote at " + short + ": " + str(price))
  if price != nil && price < best {
    best = price
    where = short
  }
}`,
		Itinerary: agent.Sequence("visit", servers...),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if !back.State["best"].Equal(vm.I(95)) || !back.State["where"].Equal(vm.S("s2")) {
		t.Fatalf("best = %v at %v; log = %v", back.State["best"], back.State["where"], back.Log)
	}
	if back.Hops < 3 {
		t.Fatalf("hops = %d", back.Hops)
	}
}

// TestGoPrimitive: dynamic routing via the go host call instead of a
// pre-planned itinerary.
func TestGoPrimitive(t *testing.T) {
	p := mustPlatform(t)
	if _, err := p.StartServer("s1", "s1:7000", ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartServer("s2", "s2:7000", ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "roamer",
		Source: `module roamer
var trail = []
func main() {
  trail = append(trail, server_name())
  go("ajanta:server:umn.edu/s2", "second")
  report("unreachable")  # never runs: go does not return
}
func second() {
  trail = append(trail, server_name())
  report(trail)
}`,
		Itinerary: agent.Sequence("main", names.Server("umn.edu", "s1")),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	trail := back.Results[0]
	if len(trail.List) != 2 ||
		!strings.Contains(trail.List[0].Str, "s1") ||
		!strings.Contains(trail.List[1].Str, "s2") {
		t.Fatalf("trail = %v", trail)
	}
}

// TestC9_DynamicInstall: an agent installs a resource implemented by
// its own code and terminates; a later agent uses the resource.
func TestC9_DynamicInstall(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{InstalledResourcePolicy: true})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("provider")

	installer, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "installer",
		Source: `module installer
func main() {
  install_resource("ajanta:resource:umn.edu/dict", "dictsvc", "dict")
  report("installed")
}`,
		ExtraSources: []string{`module dictsvc
var table = {"ajanta": "a Java-based mobile agent system"}
func define(word) { return table[word] }
func add(word, meaning) { table[word] = meaning return true }`},
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LaunchAndWait(home, installer, waitTime); err != nil {
		t.Fatal(err)
	}
	if srv.Registry().Len() != 1 {
		t.Fatalf("registry len = %d", srv.Registry().Len())
	}

	client, _ := p.NewOwner("client")
	user, err := p.BuildAgent(AgentSpec{
		Owner: client,
		Name:  "lookup",
		Source: `module lookup
func main() {
  var d = get_resource("ajanta:resource:umn.edu/dict")
  invoke(d, "add", "proxy", "a protected reference")
  report(invoke(d, "define", "ajanta"))
  report(invoke(d, "define", "proxy"))
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, user, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 2 ||
		!back.Results[0].Equal(vm.S("a Java-based mobile agent system")) ||
		!back.Results[1].Equal(vm.S("a protected reference")) {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
}

// TestMailboxCommunication: co-located agents communicate through the
// proxy-protected mailbox resource.
func TestMailboxCommunication(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{Fuel: 200_000_000})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := p.NewOwner("alice")
	bob, _ := p.NewOwner("bob")

	receiver, err := p.BuildAgent(AgentSpec{
		Owner: alice,
		Name:  "receiver",
		Source: `module receiver
func main() {
  make_mailbox("ajanta:resource:umn.edu/alice-mbox", "alice-mbox")
  var msg = nil
  while msg == nil {
    msg = recv()
  }
  report(msg)
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	recvCh, err := p.Launch(home, receiver)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the mailbox to appear before launching the sender.
	deadline := time.Now().Add(waitTime)
	for srv.Registry().Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("mailbox never registered")
		}
		time.Sleep(time.Millisecond)
	}

	sender, err := p.BuildAgent(AgentSpec{
		Owner: bob,
		Name:  "sender",
		Source: `module sender
func main() {
  var mb = get_resource("ajanta:resource:umn.edu/alice-mbox")
  invoke(mb, "send", "greetings from bob")
  report("sent")
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LaunchAndWait(home, sender, waitTime); err != nil {
		t.Fatal(err)
	}

	select {
	case back := <-recvCh:
		if len(back.Results) != 1 || !back.Results[0].Equal(vm.S("greetings from bob")) {
			t.Fatalf("results = %v, log = %v", back.Results, back.Log)
		}
	case <-time.After(waitTime):
		t.Fatal("receiver never returned")
	}
}

// TestMailboxSenderCannotDrain: policy lets strangers send but not read
// another agent's mail.
func TestMailboxSenderCannotDrain(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{Fuel: 200_000_000})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := p.NewOwner("alice")
	mallory, _ := p.NewOwner("mallory")

	receiver, err := p.BuildAgent(AgentSpec{
		Owner: alice,
		Name:  "receiver2",
		Source: `module receiver
func main() {
  make_mailbox("ajanta:resource:umn.edu/mbox2", "mbox2")
  var msg = nil
  while msg == nil {
    msg = recv()
  }
  report(msg)
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	recvCh, err := p.Launch(home, receiver)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitTime)
	for srv.Registry().Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("mailbox never registered")
		}
		time.Sleep(time.Millisecond)
	}

	snoop, err := p.BuildAgent(AgentSpec{
		Owner: mallory,
		Name:  "snoop",
		Source: `module snoop
func main() {
  var mb = get_resource("ajanta:resource:umn.edu/mbox2")
  var allowed = resource_methods(mb)
  report(allowed)
  invoke(mb, "send", "bait")
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, snoop, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	allowed := back.Results[0]
	if len(allowed.List) != 1 || !allowed.List[0].Equal(vm.S("send")) {
		t.Fatalf("mallory's enabled methods = %v, want [send]", allowed)
	}
	<-recvCh // unblock the receiver (it got "bait")
}

// TestC7_QuotaDoS: a runaway agent is stopped by the instruction meter.
func TestC7_QuotaDoS(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{Fuel: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "spinner",
		Source: `module spinner
func main() {
  while true { }
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(back.Log, "\n")
	if !strings.Contains(joined, "quota exhausted") {
		t.Fatalf("log = %v", back.Log)
	}
	if st, ok := srv.AgentStatus(a.Name); !ok || st != domain.StatusFailed {
		t.Fatalf("status = %v, %v", st, ok)
	}
}

// TestKillAgent: the owner aborts a long-running agent via the server's
// control interface; foreign principals cannot.
func TestKillAgent(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{Fuel: 0}) // unlimited
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	mallory, _ := p.NewOwner("mallory")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "longrunner",
		Source: `module longrunner
func main() { while true { } }`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := p.Launch(home, a)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is hosted at s1.
	deadline := time.Now().Add(waitTime)
	for {
		if st, ok := srv.AgentStatus(a.Name); ok && st == domain.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("agent never started at s1")
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Kill(mallory.Name, a.Name); err == nil {
		t.Fatal("foreign principal killed the agent")
	}
	if err := srv.Kill(owner.Name, a.Name); err != nil {
		t.Fatal(err)
	}
	select {
	case back := <-ch:
		if !strings.Contains(strings.Join(back.Log, "\n"), "killed") {
			t.Fatalf("log = %v", back.Log)
		}
	case <-time.After(waitTime):
		t.Fatal("killed agent never came home")
	}
	if st, _ := srv.AgentStatus(a.Name); st != domain.StatusKilled {
		t.Fatalf("status = %v", st)
	}
}

// TestOwnerRestrictedAgent: the owner delegates a subset of rights; the
// proxy the agent receives reflects the restriction.
func TestOwnerRestrictedAgent(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{Rules: openRules("counter")})
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(srv, CounterResource(names.Resource("umn.edu", "counter"), "counter")); err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner:  owner,
		Name:   "readonly",
		Rights: cred.NewRightSet("counter.get"),
		Source: `module readonly
func main() {
  var c = get_resource("ajanta:resource:umn.edu/counter")
  report(resource_methods(c))
  report(invoke(c, "get"))
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 2 {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	methods := back.Results[0]
	if len(methods.List) != 1 || !methods.List[0].Equal(vm.S("get")) {
		t.Fatalf("enabled = %v", methods)
	}
}

// TestItineraryAlternatives: the first alternative of a stop is
// unreachable; the agent proceeds via the fallback server.
func TestItineraryAlternatives(t *testing.T) {
	p := mustPlatform(t)
	backup, err := p.StartServer("backup", "backup:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "fallback",
		Source: `module fallback
func main() { report(server_name()) }`,
		Itinerary: agent.Itinerary{Stops: []agent.Stop{{
			Servers: []names.Name{names.Server("umn.edu", "ghost"), backup.Name()},
			Entry:   "main",
		}}},
		Home: home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || !strings.Contains(back.Results[0].Str, "backup") {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
}

// TestAdmitRejectsTamperedAgent: an agent whose rights were widened en
// route is rejected at admission.
func TestAdmitRejectsTamperedAgent(t *testing.T) {
	p := mustPlatform(t)
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner:  owner,
		Name:   "tampered",
		Rights: cred.NewRightSet("counter.get"),
		Source: `module t
func main() { report(1) }`,
		Itinerary: agent.Sequence("main", home.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Credentials.Rights = cred.NewRightSet(cred.All) // widen rights
	if err := home.LaunchLocal(a); err == nil {
		t.Fatal("tampered agent admitted")
	}
	b, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "renamed",
		Source: `module t
func main() { report(1) }`,
		Itinerary: agent.Sequence("main", home.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Name = names.Agent("umn.edu", "impostor") // identity mismatch
	if err := home.LaunchLocal(b); err == nil {
		t.Fatal("agent with mismatched identity admitted")
	}
}

// TestAccessDeniedSurfacesInLog: an agent requesting a resource its
// rights do not cover fails visibly, not silently.
func TestAccessDeniedSurfacesInLog(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{}) // default-deny policy
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(srv, CounterResource(names.Resource("umn.edu", "counter"), "counter")); err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "denied",
		Source: `module denied
func main() {
  var c = get_resource("ajanta:resource:umn.edu/counter")
  report(invoke(c, "get"))
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 0 {
		t.Fatalf("denied agent produced results: %v", back.Results)
	}
	if !strings.Contains(strings.Join(back.Log, "\n"), "access denied") {
		t.Fatalf("log = %v", back.Log)
	}
}

// TestStateMigratesCodeDoesNotRerunInit: module initializers run once;
// mutated globals travel.
func TestStateMigratesCodeDoesNotRerunInit(t *testing.T) {
	p := mustPlatform(t)
	if _, err := p.StartServer("s1", "s1:7000", ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartServer("s2", "s2:7000", ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "statecarrier",
		Source: `module sc
var inits = 0   # would reset at each hop if __init__ re-ran
var visits = 0
func visit() {
  visits = visits + 1
}`,
		Itinerary: agent.Sequence("visit",
			names.Server("umn.edu", "s1"), names.Server("umn.edu", "s2")),
		Home: home,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-set inits through __init__ semantics: bump it in init by
	// compiling a variant is overkill — instead verify Initialized and
	// that visits accumulated across both servers.
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Initialized {
		t.Fatal("agent lost initialization flag")
	}
	if !back.State["visits"].Equal(vm.I(2)) {
		t.Fatalf("visits = %v, log = %v", back.State["visits"], back.Log)
	}
}
