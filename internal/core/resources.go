package core

import (
	"sync"

	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/vm"
)

// InstallResource registers a server-owned resource (done by the
// service provider before agents arrive — Fig. 6 step 1) and publishes
// its location in the name service.
func InstallResource(s *server.Server, def *resource.Def) error {
	return s.InstallResource(registry.Entry{
		Name:           def.ResourceName(),
		Resource:       def,
		AP:             def,
		OwnerDomain:    domain.ServerID,
		OwnerPrincipal: def.ResourceOwner(),
	})
}

// QuoteResource builds a price-quote service: quote(item) returns the
// item's price, items() lists the catalogue. It is the workload of the
// shopping example and several experiments.
func QuoteResource(rn names.Name, path string, prices map[string]int64) *resource.Def {
	return &resource.Def{
		ResourceImpl: resource.NewImpl(rn,
			names.Principal(rn.Authority, "merchant"), "price quote service"),
		Path: path,
		Methods: map[string]resource.Method{
			"quote": func(args []vm.Value) (vm.Value, error) {
				if len(args) != 1 || args[0].Kind != vm.KindStr {
					return vm.Nil(), server.ErrBadArg
				}
				price, ok := prices[args[0].Str]
				if !ok {
					return vm.Nil(), nil
				}
				return vm.I(price), nil
			},
			"items": func(args []vm.Value) (vm.Value, error) {
				out := make([]vm.Value, 0, len(prices))
				for item := range prices {
					out = append(out, vm.S(item))
				}
				return vm.L(out...), nil
			},
		},
	}
}

// CounterResource builds a shared counter with get/add/reset methods —
// the minimal stateful resource used by tests and the quickstart.
func CounterResource(rn names.Name, path string) *resource.Def {
	var (
		mu  sync.Mutex
		val int64
	)
	return &resource.Def{
		ResourceImpl: resource.NewImpl(rn,
			names.Principal(rn.Authority, "admin"), "shared counter"),
		Path: path,
		Methods: map[string]resource.Method{
			"get": func(args []vm.Value) (vm.Value, error) {
				mu.Lock()
				defer mu.Unlock()
				return vm.I(val), nil
			},
			"add": func(args []vm.Value) (vm.Value, error) {
				if len(args) != 1 || args[0].Kind != vm.KindInt {
					return vm.Nil(), server.ErrBadArg
				}
				mu.Lock()
				defer mu.Unlock()
				val += args[0].Int
				return vm.I(val), nil
			},
			"reset": func(args []vm.Value) (vm.Value, error) {
				mu.Lock()
				defer mu.Unlock()
				val = 0
				return vm.Nil(), nil
			},
		},
	}
}

// RecordStoreResource builds a dataset resource for the communication
// experiment (C3): count() reports the record count, fetch(i) returns
// record i, and scan(threshold) returns the indices of all records
// whose score exceeds the threshold (server-side filtering, what a
// mobile agent or REV program exploits).
func RecordStoreResource(rn names.Name, path string, scores []int64, payload string) *resource.Def {
	return &resource.Def{
		ResourceImpl: resource.NewImpl(rn,
			names.Principal(rn.Authority, "dba"), "record store"),
		Path: path,
		Methods: map[string]resource.Method{
			"count": func(args []vm.Value) (vm.Value, error) {
				return vm.I(int64(len(scores))), nil
			},
			"fetch": func(args []vm.Value) (vm.Value, error) {
				if len(args) != 1 || args[0].Kind != vm.KindInt {
					return vm.Nil(), server.ErrBadArg
				}
				i := args[0].Int
				if i < 0 || i >= int64(len(scores)) {
					return vm.Nil(), server.ErrBadArg
				}
				return vm.M(map[string]vm.Value{
					"score":   vm.I(scores[i]),
					"payload": vm.S(payload),
				}), nil
			},
			"scan": func(args []vm.Value) (vm.Value, error) {
				if len(args) != 1 || args[0].Kind != vm.KindInt {
					return vm.Nil(), server.ErrBadArg
				}
				var hits []vm.Value
				for i, sc := range scores {
					if sc > args[0].Int {
						hits = append(hits, vm.I(int64(i)))
					}
				}
				return vm.L(hits...), nil
			},
		},
	}
}
