package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/cred"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/vm"
)

// TestDispatchRestrictionNarrowsRights: a forwarding server appends a
// delegation link (§5.2's subcontract); the downstream server's proxy
// reflects the narrowed rights, and the chain verifies end to end.
func TestDispatchRestrictionNarrowsRights(t *testing.T) {
	p := mustPlatform(t)
	// gateway forwards agents but strips everything except counter.get.
	gateway, err := p.StartServer("gateway", "gw:7000", ServerConfig{
		DispatchRestriction: cred.NewRightSet("counter.get"),
	})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := p.StartServer("inner", "inner:7000", ServerConfig{
		Rules: openRules("counter"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(inner, CounterResource(names.Resource("umn.edu", "counter"), "counter")); err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "subcontract",
		Source: `module sc
func noop() { }
func probe() {
  var c = get_resource("ajanta:resource:umn.edu/counter")
  report(resource_methods(c))
}`,
		Itinerary: agent.Sequence("", names.Name{}), // replaced below
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Itinerary = agent.Itinerary{Stops: []agent.Stop{
		{Servers: []names.Name{gateway.Name()}, Entry: "noop"},
		{Servers: []names.Name{inner.Name()}, Entry: "probe"},
	}}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	methods := back.Results[0]
	if len(methods.List) != 1 || !methods.List[0].Equal(vm.S("get")) {
		t.Fatalf("enabled after subcontract = %v, want [get]", methods)
	}
	// The chain carries the gateway's signed link and still verifies.
	if len(back.Credentials.Delegations) == 0 {
		t.Fatal("no delegation link recorded")
	}
	if back.Credentials.Delegations[0].Delegator != gateway.Name() {
		t.Fatalf("delegator = %v", back.Credentials.Delegations[0].Delegator)
	}
	if err := back.Credentials.Verify(p.CA.Verifier(), time.Now()); err != nil {
		t.Fatalf("chain broken: %v", err)
	}
}

// TestImpostorModuleLive: an agent ships a module shadowing the server's
// trusted library; the trusted code wins at the hosting server (C11 on
// the full platform).
func TestImpostorModuleLive(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{
		TrustedSources: []string{`module stdlib
func audit() { return "trusted-audit" }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("mallory")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "impostor-carrier",
		Source: `module app
func main() { report(stdlib:audit()) }`,
		ExtraSources: []string{`module stdlib
func audit() { return "impostor-audit" }`},
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || !back.Results[0].Equal(vm.S("trusted-audit")) {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
}

// TestStrictNamespaceRejectsShadowing: with StrictNamespaces the same
// bundle is turned away and the agent fails home.
func TestStrictNamespaceRejectsShadowing(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{
		StrictNamespaces: true,
		TrustedSources: []string{`module stdlib
func audit() { return "trusted" }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("mallory")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "strict-reject",
		Source: `module app
func main() { report(1) }`,
		ExtraSources: []string{`module stdlib
func audit() { return "impostor" }`},
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 0 {
		t.Fatalf("shadowing bundle executed: %v", back.Results)
	}
	if !strings.Contains(strings.Join(back.Log, "\n"), "shadows a trusted module") {
		t.Fatalf("log = %v", back.Log)
	}
}

// TestTrustedModulesCallable: agents may call the server's trusted
// library explicitly.
func TestTrustedModulesCallable(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{
		TrustedSources: []string{`module mathlib
func cube(x) { return x * x * x }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner,
		Name:  "libuser",
		Source: `module app
func main() { report(mathlib:cube(7)) }`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || !back.Results[0].Equal(vm.I(343)) {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
}

// TestMaxAgentsCapacity: admission control rejects agents beyond the
// configured capacity, and the rejection surfaces at the sender.
func TestMaxAgentsCapacity(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{MaxAgents: 1, Fuel: 0})
	if err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	spinner, err := p.BuildAgent(AgentSpec{
		Owner: owner, Name: "occupier",
		Source:    "module s\nfunc main() { while true { } }",
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	occCh, err := p.Launch(home, spinner)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitTime)
	for {
		if st, ok := srv.AgentStatus(spinner.Name); ok && st == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("occupier never started")
		}
		time.Sleep(time.Millisecond)
	}

	second, err := p.BuildAgent(AgentSpec{
		Owner: owner, Name: "turned-away",
		Source:    "module t\nfunc main() { report(1) }",
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, second, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 0 {
		t.Fatal("agent ran despite capacity limit")
	}
	if !strings.Contains(strings.Join(back.Log, "\n"), "capacity") {
		t.Fatalf("log = %v", back.Log)
	}
	// Release the occupier.
	if err := srv.Kill(owner.Name, spinner.Name); err != nil {
		t.Fatal(err)
	}
	<-occCh
}

// TestPolicyQuotaThroughPlatform: a policy quota limits an agent's
// proxy invocations end to end.
func TestPolicyQuotaThroughPlatform(t *testing.T) {
	p := mustPlatform(t)
	srv, err := p.StartServer("s1", "s1:7000", ServerConfig{
		Rules: []policy.Rule{{
			AnyPrincipal: true, Resource: "counter", Methods: []string{"*"},
			Quota: policy.Quota{MaxInvocations: 3},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallResource(srv, CounterResource(names.Resource("umn.edu", "counter"), "counter")); err != nil {
		t.Fatal(err)
	}
	home, err := p.StartServer("home", "home:7000", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := p.NewOwner("alice")
	a, err := p.BuildAgent(AgentSpec{
		Owner: owner, Name: "greedy",
		Source: `module g
func main() {
  var c = get_resource("ajanta:resource:umn.edu/counter")
  var i = 0
  while i < 10 {
    invoke(c, "add", 1)
    i = i + 1
  }
}`,
		Itinerary: agent.Sequence("main", srv.Name()),
		Home:      home,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.LaunchAndWait(home, a, waitTime)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(back.Log, "\n"), "quota") {
		t.Fatalf("log = %v", back.Log)
	}
}
