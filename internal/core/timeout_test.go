package core

import (
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/names"
)

// TestAwaitWithTimeoutExpires verifies the coarse-clock wait still
// enforces the deadline: with nothing ever sent on the channel the call
// must return ok=false, and within a few ticks of the requested
// timeout, not hang.
func TestAwaitWithTimeoutExpires(t *testing.T) {
	ch := make(chan *agent.Agent)
	start := time.Now()
	back, ok := awaitWithTimeout(ch, 20*time.Millisecond)
	if ok {
		t.Fatalf("expected timeout, got agent %v", back)
	}
	if back != nil {
		t.Fatalf("timed-out wait returned non-nil agent %v", back)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, far beyond the 20ms deadline", elapsed)
	}
}

// TestAwaitWithTimeoutDelivers verifies a homecoming during the wait
// wins over the deadline.
func TestAwaitWithTimeoutDelivers(t *testing.T) {
	ch := make(chan *agent.Agent, 1)
	want := &agent.Agent{Name: names.Agent("umn.edu", "homebound")}
	go func() {
		time.Sleep(5 * time.Millisecond)
		ch <- want
	}()
	back, ok := awaitWithTimeout(ch, 5*time.Second)
	if !ok {
		t.Fatal("expected delivery before the 5s deadline, got timeout")
	}
	if back != want {
		t.Fatalf("got agent %v, want %v", back, want)
	}
}

// TestAwaitWithTimeoutFastPath verifies an agent already buffered on the
// channel is returned without consulting the clock at all.
func TestAwaitWithTimeoutFastPath(t *testing.T) {
	ch := make(chan *agent.Agent, 1)
	want := &agent.Agent{Name: names.Agent("umn.edu", "early")}
	ch <- want
	back, ok := awaitWithTimeout(ch, 0)
	if !ok || back != want {
		t.Fatalf("fast path: got (%v, %v), want (%v, true)", back, ok, want)
	}
}
