package core

import (
	"repro/internal/loader"
	"repro/internal/vm"
)

// newTrustedSet wraps loader.NewTrustedSet for variadic module slices.
func newTrustedSet(mods []*vm.Module) (*loader.TrustedSet, error) {
	return loader.NewTrustedSet(mods...)
}
