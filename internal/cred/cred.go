package cred

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/keys"
	"repro/internal/names"
)

// Errors reported by credential verification.
var (
	ErrBadCredSignature = errors.New("cred: credential signature invalid")
	ErrCredExpired      = errors.New("cred: credentials expired")
	ErrRightsEscalation = errors.New("cred: delegation attempts to widen rights")
	ErrBrokenChain      = errors.New("cred: delegation chain broken")
)

// Credentials associate an agent's identity with those of its owner and
// creator in a tamperproof manner (§5.2). The base record is signed by
// the owner; each subsequent Delegation link (a server forwarding the
// agent "like a subcontract") is signed by the delegating server and may
// only narrow the rights.
type Credentials struct {
	// AgentName is the agent's own global identity.
	AgentName names.Name
	// Owner is the human user the agent represents; Creator is the
	// application or agent that constructed it (the paper keeps the
	// two distinct).
	Owner   names.Name
	Creator names.Name
	// OwnerCert is the owner's public-key certificate, included so a
	// receiving server can verify the signature without a directory
	// round trip.
	OwnerCert keys.Certificate
	// Rights is the privilege set the owner delegated to the agent.
	Rights RightSet
	// IssuedAt / Expiry bound the lifetime: "the credentials could
	// have an expiration time so that stolen credentials cannot be
	// misused indefinitely."
	IssuedAt time.Time
	Expiry   time.Time
	// HomeSite is the address agents report results back to.
	HomeSite string
	// CodeDigest, when set, is the SHA-256 digest of the agent's code
	// bundle at issue time. Receiving servers recompute and compare,
	// so no intermediate host can swap or patch the agent's code
	// without invalidating the owner's signature (§2's agent-code
	// integrity requirement). Empty means "not pinned" (e.g. agents
	// whose code is assembled after issue).
	CodeDigest []byte
	// Signature is the owner's signature over all of the above.
	Signature []byte

	// Delegations is the (possibly empty) cascade of restrictions
	// applied by intermediate servers.
	Delegations []Delegation
}

// Delegation is one link in a cascaded-delegation chain: the delegator
// (a server the agent visited) restricts the effective rights and signs
// the restriction together with the hash chain so links cannot be
// removed or reordered.
type Delegation struct {
	Delegator names.Name
	// Cert is the delegator's certificate, carried for offline
	// verification just like the owner's.
	Cert keys.Certificate
	// Rights is the restricted right set effective after this link.
	Rights RightSet
	// Expiry may further shorten the credential lifetime; the zero
	// time means "unchanged".
	Expiry    time.Time
	Signature []byte
}

func writeField(b *bytes.Buffer, p []byte) {
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
	b.Write(lenBuf[:])
	b.Write(p)
}

// baseTBS is the deterministic to-be-signed encoding of the base record.
func (c *Credentials) baseTBS() []byte {
	var b bytes.Buffer
	writeField(&b, []byte(c.AgentName.String()))
	writeField(&b, []byte(c.Owner.String()))
	writeField(&b, []byte(c.Creator.String()))
	writeField(&b, c.OwnerCert.PublicKey)
	writeField(&b, []byte(c.Rights.String()))
	writeField(&b, []byte(c.IssuedAt.UTC().Format(time.RFC3339Nano)))
	writeField(&b, []byte(c.Expiry.UTC().Format(time.RFC3339Nano)))
	writeField(&b, []byte(c.HomeSite))
	writeField(&b, c.CodeDigest)
	return b.Bytes()
}

// delegationTBS covers the base signature and every prior link, chaining
// the links so none can be dropped without invalidating later ones.
func (c *Credentials) delegationTBS(upto int) []byte {
	var b bytes.Buffer
	writeField(&b, c.Signature)
	for i := 0; i <= upto; i++ {
		d := c.Delegations[i]
		writeField(&b, []byte(d.Delegator.String()))
		writeField(&b, []byte(d.Rights.String()))
		writeField(&b, []byte(d.Expiry.UTC().Format(time.RFC3339Nano)))
		if i < upto {
			writeField(&b, d.Signature)
		}
	}
	return b.Bytes()
}

// Issue creates owner-signed credentials for an agent without pinning
// its code (see IssueForCode).
func Issue(owner keys.Identity, agentName, creator names.Name, rights RightSet, validFor time.Duration, homeSite string) (Credentials, error) {
	return IssueForCode(owner, agentName, creator, rights, validFor, homeSite, nil)
}

// IssueForCode creates owner-signed credentials that additionally pin
// the agent's code-bundle digest, giving the agent's code end-to-end
// integrity across untrusted intermediate hosts.
func IssueForCode(owner keys.Identity, agentName, creator names.Name, rights RightSet, validFor time.Duration, homeSite string, codeDigest []byte) (Credentials, error) {
	if err := agentName.Valid(); err != nil {
		return Credentials{}, fmt.Errorf("cred: issue: %w", err)
	}
	now := time.Now()
	c := Credentials{
		AgentName:  agentName,
		Owner:      owner.Name,
		Creator:    creator,
		OwnerCert:  owner.Cert,
		Rights:     rights,
		IssuedAt:   now,
		Expiry:     now.Add(validFor),
		HomeSite:   homeSite,
		CodeDigest: append([]byte(nil), codeDigest...),
	}
	c.Signature = owner.Keys.Sign(c.baseTBS())
	return c, nil
}

// Delegate appends a restriction link signed by the delegating server.
// The new rights must be a subset of the currently effective rights;
// otherwise ErrRightsEscalation is returned and the credentials are
// unchanged. An optional earlier expiry may be applied (zero = keep).
func (c *Credentials) Delegate(delegator keys.Identity, restricted RightSet, expiry time.Time) error {
	if !restricted.SubsetOf(c.EffectiveRights()) {
		return ErrRightsEscalation
	}
	d := Delegation{
		Delegator: delegator.Name,
		Cert:      delegator.Cert,
		Rights:    restricted,
		Expiry:    expiry,
	}
	c.Delegations = append(c.Delegations, d)
	idx := len(c.Delegations) - 1
	c.Delegations[idx].Signature = delegator.Keys.Sign(c.delegationTBS(idx))
	return nil
}

// EffectiveRights returns the rights after applying every delegation
// link: the last link's set, or the base set when no delegations exist.
func (c *Credentials) EffectiveRights() RightSet {
	if n := len(c.Delegations); n > 0 {
		return c.Delegations[n-1].Rights
	}
	return c.Rights
}

// EffectiveExpiry returns the earliest applicable expiry.
func (c *Credentials) EffectiveExpiry() time.Time {
	e := c.Expiry
	for _, d := range c.Delegations {
		if !d.Expiry.IsZero() && d.Expiry.Before(e) {
			e = d.Expiry
		}
	}
	return e
}

// Verify checks the full credential chain at time `at`:
//
//  1. the owner's certificate is valid (CA signature, window, revocation),
//  2. the base record is signed by the owner's certified key,
//  3. the credentials have not expired,
//  4. every delegation link has a valid certificate, a valid chained
//     signature, and only narrows the rights of its predecessor.
//
// This is what a receiving server runs before admitting an agent.
func (c *Credentials) Verify(v keys.Verifier, at time.Time) error {
	if err := v.Check(c.OwnerCert, at); err != nil {
		return fmt.Errorf("cred: owner cert: %w", err)
	}
	if c.OwnerCert.Subject != c.Owner {
		return fmt.Errorf("%w: owner cert subject %s != owner %s", ErrBadCredSignature, c.OwnerCert.Subject, c.Owner)
	}
	if !keys.Verify(ed25519.PublicKey(c.OwnerCert.PublicKey), c.baseTBS(), c.Signature) {
		return fmt.Errorf("%w: base record", ErrBadCredSignature)
	}
	if at.After(c.EffectiveExpiry()) {
		return ErrCredExpired
	}
	prev := c.Rights
	for i, d := range c.Delegations {
		if err := v.Check(d.Cert, at); err != nil {
			return fmt.Errorf("cred: delegation %d cert: %w", i, err)
		}
		if d.Cert.Subject != d.Delegator {
			return fmt.Errorf("%w: delegation %d subject mismatch", ErrBrokenChain, i)
		}
		if !keys.Verify(ed25519.PublicKey(d.Cert.PublicKey), c.delegationTBS(i), d.Signature) {
			return fmt.Errorf("%w: delegation %d signature", ErrBrokenChain, i)
		}
		if !d.Rights.SubsetOf(prev) {
			return fmt.Errorf("%w: delegation %d", ErrRightsEscalation, i)
		}
		prev = d.Rights
	}
	return nil
}

// Permits reports whether the effective rights allow r. Callers must
// Verify first; Permits is pure policy arithmetic.
func (c *Credentials) Permits(r Right) bool {
	return c.EffectiveRights().Permits(r)
}

// Digest identifies a credential chain by what a policy decision (or an
// admission tier) actually depends on: the owner principal and the
// effective (post-delegation) right set. Two agents of the same owner
// carrying the same delegated rights share a digest; a delegation link
// that narrows the rights changes it.
type Digest [sha256.Size]byte

// IsZero reports whether the digest is unset.
func (d Digest) IsZero() bool { return d == Digest{} }

// Digest returns the credential-semantics digest: SHA-256 over the
// owner name and the effective right set (length-prefixed fields, so
// adjacent values cannot collide). It is stable across hops — servers
// that merely forward the agent leave it unchanged — and changes
// exactly when a delegation link narrows the rights. Both the policy
// decision cache and the admission rate limiter key on it: the grant
// and the tier depend on nothing else about the chain.
func (c *Credentials) Digest() Digest {
	var b bytes.Buffer
	writeField(&b, []byte(c.Owner.String()))
	writeField(&b, []byte(c.EffectiveRights().String()))
	return sha256.Sum256(b.Bytes())
}
