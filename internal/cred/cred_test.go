package cred

import (
	"errors"
	"testing"
	"time"

	"repro/internal/keys"
	"repro/internal/names"
)

type fixture struct {
	reg     *keys.Registry
	v       keys.Verifier
	owner   keys.Identity
	server1 keys.Identity
	server2 keys.Identity
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(n names.Name) keys.Identity {
		id, err := keys.NewIdentity(reg, n, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	return &fixture{
		reg:     reg,
		v:       reg.Verifier(),
		owner:   mk(names.Principal("umn.edu", "tripathi")),
		server1: mk(names.Server("acme.com", "s1")),
		server2: mk(names.Server("bbb.org", "s2")),
	}
}

func issue(t *testing.T, f *fixture, rights RightSet) Credentials {
	t.Helper()
	c, err := Issue(f.owner, names.Agent("umn.edu", "shopper-1"),
		names.Principal("umn.edu", "launcher-app"), rights, time.Hour, "home:7000")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestIssueAndVerify(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet("db/quotes.get", "buf.*"))
	if err := c.Verify(f.v, time.Now()); err != nil {
		t.Fatalf("fresh credentials rejected: %v", err)
	}
	if !c.Permits("buf.put") || c.Permits("db/quotes.put") {
		t.Fatal("rights arithmetic wrong")
	}
}

func TestVerifyRejectsExpired(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet(All))
	if err := c.Verify(f.v, time.Now().Add(2*time.Hour)); !errors.Is(err, ErrCredExpired) {
		// Certificate expiry may trip first; either rejection is correct,
		// but we want *a* rejection.
		if err == nil {
			t.Fatal("expired credentials accepted")
		}
	}
}

func TestVerifyRejectsTamperedRights(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet("buf.get"))
	c.Rights = NewRightSet("buf.*") // malicious host widens rights
	if err := c.Verify(f.v, time.Now()); err == nil {
		t.Fatal("tampered rights accepted")
	}
}

func TestVerifyRejectsTamperedIdentity(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet(All))
	c.AgentName = names.Agent("evil.org", "impostor")
	if err := c.Verify(f.v, time.Now()); err == nil {
		t.Fatal("tampered agent name accepted")
	}
}

func TestVerifyRejectsOwnerSwap(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet(All))
	// Mallory substitutes her own (validly certified!) identity as owner.
	mallory, err := keys.NewIdentity(f.reg, names.Principal("evil.org", "mallory"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c.Owner = mallory.Name
	c.OwnerCert = mallory.Cert
	if err := c.Verify(f.v, time.Now()); err == nil {
		t.Fatal("owner substitution accepted")
	}
}

func TestVerifyRejectsRevokedOwner(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet(All))
	f.reg.Revoke(f.owner.Name)
	if err := c.Verify(f.v, time.Now()); err == nil {
		t.Fatal("credentials of revoked owner accepted")
	}
}

func TestDelegateNarrows(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet("buf.*", "db.get"))
	if err := c.Delegate(f.server1, NewRightSet("buf.get"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(f.v, time.Now()); err != nil {
		t.Fatalf("delegated credentials rejected: %v", err)
	}
	if c.Permits("buf.put") || c.Permits("db.get") {
		t.Fatal("delegation did not narrow rights")
	}
	if !c.Permits("buf.get") {
		t.Fatal("delegation lost the retained right")
	}
}

func TestDelegateRejectsEscalation(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet("buf.get"))
	if err := c.Delegate(f.server1, NewRightSet("buf.*"), time.Time{}); !errors.Is(err, ErrRightsEscalation) {
		t.Fatalf("got %v, want ErrRightsEscalation", err)
	}
}

func TestVerifyRejectsForgedEscalationLink(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet("buf.get"))
	// A malicious server appends a widening link signed by itself,
	// bypassing Delegate's local check.
	d := Delegation{
		Delegator: f.server1.Name,
		Cert:      f.server1.Cert,
		Rights:    NewRightSet(All),
	}
	c.Delegations = append(c.Delegations, d)
	c.Delegations[0].Signature = f.server1.Keys.Sign(c.delegationTBS(0))
	if err := c.Verify(f.v, time.Now()); !errors.Is(err, ErrRightsEscalation) {
		t.Fatalf("got %v, want ErrRightsEscalation", err)
	}
}

func TestVerifyRejectsDroppedLink(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet("buf.*", "db.*"))
	if err := c.Delegate(f.server1, NewRightSet("buf.get"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delegate(f.server2, NewRightSet("buf.get"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	// The agent (or a colluding host) removes server1's restriction
	// to recover rights. The chained signatures must catch this.
	c.Delegations = c.Delegations[1:]
	if err := c.Verify(f.v, time.Now()); err == nil {
		t.Fatal("dropped delegation link accepted")
	}
}

func TestVerifyRejectsReorderedLinks(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet("buf.*"))
	_ = c.Delegate(f.server1, NewRightSet("buf.get", "buf.len"), time.Time{})
	_ = c.Delegate(f.server2, NewRightSet("buf.get"), time.Time{})
	c.Delegations[0], c.Delegations[1] = c.Delegations[1], c.Delegations[0]
	if err := c.Verify(f.v, time.Now()); err == nil {
		t.Fatal("reordered delegation chain accepted")
	}
}

func TestDelegationExpiryShortens(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet("buf.get"))
	soon := time.Now().Add(time.Minute)
	if err := c.Delegate(f.server1, NewRightSet("buf.get"), soon); err != nil {
		t.Fatal(err)
	}
	if !c.EffectiveExpiry().Equal(soon) {
		t.Fatalf("effective expiry = %v, want %v", c.EffectiveExpiry(), soon)
	}
	if err := c.Verify(f.v, time.Now().Add(2*time.Minute)); err == nil {
		t.Fatal("credentials accepted past delegation expiry")
	}
	if err := c.Verify(f.v, time.Now()); err != nil {
		t.Fatalf("credentials rejected before expiry: %v", err)
	}
}

func TestMultiHopDelegationChain(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet("a.*", "b.*", "c.*"))
	_ = c.Delegate(f.server1, NewRightSet("a.*", "b.*"), time.Time{})
	_ = c.Delegate(f.server2, NewRightSet("a.x"), time.Time{})
	if err := c.Verify(f.v, time.Now()); err != nil {
		t.Fatalf("3-hop chain rejected: %v", err)
	}
	if !c.Permits("a.x") || c.Permits("a.y") || c.Permits("b.x") {
		t.Fatal("multi-hop narrowing incorrect")
	}
}
