package cred

import (
	"testing"
	"time"

	"repro/internal/names"
)

// The digest keys the policy decision cache and the admission rate
// limiter, so its stability properties are load-bearing: stable across
// hops, shared across agents of one owner with the same rights, changed
// by any delegation that narrows the rights.

func TestDigestStableAcrossHops(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet("db/quotes.get", "buf.*"))
	d1 := c.Digest()
	if d1.IsZero() {
		t.Fatal("digest of issued credentials is zero")
	}
	// Forwarding without delegation (the common hop) leaves the chain —
	// and therefore the digest — untouched.
	if d2 := c.Digest(); d2 != d1 {
		t.Fatal("digest not deterministic")
	}
}

func TestDigestSharedAcrossAgentsOfOneOwner(t *testing.T) {
	f := newFixture(t)
	rights := NewRightSet("db/quotes.get")
	a, err := Issue(f.owner, names.Agent("umn.edu", "shopper-1"),
		names.Principal("umn.edu", "app"), rights, time.Hour, "home:1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Issue(f.owner, names.Agent("umn.edu", "shopper-2"),
		names.Principal("umn.edu", "app"), rights, time.Hour, "home:2")
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatal("two agents of one owner with identical rights must share a digest")
	}
}

func TestDigestChangesOnDelegation(t *testing.T) {
	f := newFixture(t)
	c := issue(t, f, NewRightSet("db/quotes.get", "buf.*"))
	before := c.Digest()
	if err := c.Delegate(f.server1, NewRightSet("db/quotes.get"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	after := c.Digest()
	if after == before {
		t.Fatal("narrowing delegation must change the digest")
	}
	// A second delegation to the *same* right set keeps the digest: the
	// decision inputs (owner, effective rights) are unchanged.
	if err := c.Delegate(f.server2, NewRightSet("db/quotes.get"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if c.Digest() != after {
		t.Fatal("delegation preserving the effective rights must preserve the digest")
	}
}

func TestDigestDiffersAcrossOwners(t *testing.T) {
	f := newFixture(t)
	rights := NewRightSet("db/quotes.get")
	a, err := Issue(f.owner, names.Agent("umn.edu", "shopper-1"),
		names.Principal("umn.edu", "app"), rights, time.Hour, "home:1")
	if err != nil {
		t.Fatal(err)
	}
	other := f.server1 // any second principal identity
	b, err := Issue(other, names.Agent("acme.com", "shopper-9"),
		names.Principal("acme.com", "app"), rights, time.Hour, "home:3")
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == b.Digest() {
		t.Fatal("different owners with equal rights must not collide")
	}
}
