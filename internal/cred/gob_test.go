package cred

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/keys"
	"repro/internal/names"
)

// Property: right sets survive gob round trips with identical
// permission semantics (this is what makes signed credentials stable
// across migration).
func TestQuickRightSetGobRoundTrip(t *testing.T) {
	probe := []Right{"a.x", "a.*", "b.y", "*", "c"}
	f := func(seed int64) bool {
		rs := randomRightSet(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(rs); err != nil {
			return false
		}
		var got RightSet
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
			return false
		}
		for _, p := range probe {
			if got.Permits(p) != rs.Permits(p) {
				return false
			}
		}
		return got.String() == rs.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCredentialsGobSurvivesVerification: a credential chain that is
// serialized and deserialized still verifies — i.e. the signed byte
// encodings are stable under gob, which is what agent migration relies
// on.
func TestCredentialsGobSurvivesVerification(t *testing.T) {
	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	owner, err := keys.NewIdentity(reg, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := keys.NewIdentity(reg, names.Server("umn.edu", "s1"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Issue(owner, names.Agent("umn.edu", "a1"),
		owner.Name, NewRightSet("a.*", "b.x"), time.Hour, "home")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delegate(srv, NewRightSet("a.x"), time.Now().Add(30*time.Minute)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&c); err != nil {
		t.Fatal(err)
	}
	var got Credentials
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(reg.Verifier(), time.Now()); err != nil {
		t.Fatalf("decoded credentials fail verification: %v", err)
	}
	if !got.Permits("a.x") || got.Permits("a.y") || got.Permits("b.x") {
		t.Fatal("decoded rights differ")
	}
	if !got.EffectiveExpiry().Equal(c.EffectiveExpiry()) {
		t.Fatal("effective expiry changed")
	}
}
