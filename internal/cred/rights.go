// Package cred implements agent credentials (§5.2 of the paper): a
// tamperproof association between an agent's identity, its owner, its
// creator, the owner's public-key certificate, and the (possibly
// restricted) set of rights delegated to the agent, with an expiration
// time. It also implements cascaded delegation, in which a server
// forwards an agent "like a subcontract", further restricting its
// rights (the paper cites Sollins' cascaded authentication and Neuman's
// proxy-based delegation for this).
package cred

import (
	"sort"
	"strings"
)

// A Right names one permission in "resource-path.method" form, e.g.
// "db/quotes.get". Two wildcards are supported: "*" grants everything
// and "<resource-path>.*" grants every method of one resource. Rights
// are compared textually; policy (internal/policy) decides what a right
// means for a concrete resource.
type Right string

// Wildcard rights.
const (
	All Right = "*"
)

// Method splits a right into its resource and method parts. A right
// with no dot is treated as a resource-wide grant.
func (r Right) parts() (resource, method string) {
	s := string(r)
	i := strings.LastIndex(s, ".")
	if i < 0 {
		return s, "*"
	}
	return s[:i], s[i+1:]
}

// Implies reports whether holding r implies holding other, accounting
// for wildcards. Implies is reflexive and transitive.
func (r Right) Implies(other Right) bool {
	if r == All || r == other {
		return true
	}
	rRes, rMeth := r.parts()
	oRes, oMeth := other.parts()
	if rRes != oRes && rRes != "*" {
		return false
	}
	return rMeth == "*" || rMeth == oMeth
}

// RightSet is an immutable-by-convention set of rights. The zero value
// is the empty set (no rights).
type RightSet struct {
	rights map[Right]bool
}

// NewRightSet builds a set from the given rights, deduplicating.
func NewRightSet(rs ...Right) RightSet {
	m := make(map[Right]bool, len(rs))
	for _, r := range rs {
		if r != "" {
			m[r] = true
		}
	}
	return RightSet{rights: m}
}

// Permits reports whether the set contains a right implying r.
func (s RightSet) Permits(r Right) bool {
	if s.rights[r] {
		return true
	}
	for held := range s.rights {
		if held.Implies(r) {
			return true
		}
	}
	return false
}

// Restrict returns the set of rights permitted by both s and other:
// every explicit right of either side that the other side also permits.
// Restrict is the monotone-narrowing operation used when delegating: a
// delegate can never hold more than the delegator.
func (s RightSet) Restrict(other RightSet) RightSet {
	out := make(map[Right]bool)
	for r := range s.rights {
		if other.Permits(r) {
			out[r] = true
		}
	}
	for r := range other.rights {
		if s.Permits(r) {
			out[r] = true
		}
	}
	return RightSet{rights: out}
}

// SubsetOf reports whether every right in s is permitted by other.
func (s RightSet) SubsetOf(other RightSet) bool {
	for r := range s.rights {
		if !other.Permits(r) {
			return false
		}
	}
	return true
}

// IsEmpty reports whether the set permits nothing.
func (s RightSet) IsEmpty() bool { return len(s.rights) == 0 }

// Len returns the number of explicit rights in the set.
func (s RightSet) Len() int { return len(s.rights) }

// List returns the explicit rights in sorted order (for deterministic
// serialization and signing).
func (s RightSet) List() []Right {
	out := make([]Right, 0, len(s.rights))
	for r := range s.rights {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set as a comma-separated sorted list.
func (s RightSet) String() string {
	rs := s.List()
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = string(r)
	}
	return strings.Join(parts, ",")
}

// GobEncode serializes the set via its canonical textual form, so
// credentials (which carry right sets) survive agent migration.
func (s RightSet) GobEncode() ([]byte, error) {
	return []byte(s.String()), nil
}

// GobDecode implements gob.GobDecoder.
func (s *RightSet) GobDecode(data []byte) error {
	*s = ParseRightSet(string(data))
	return nil
}

// ParseRightSet parses the String form; empty input yields the empty set.
func ParseRightSet(s string) RightSet {
	if s == "" {
		return NewRightSet()
	}
	parts := strings.Split(s, ",")
	rs := make([]Right, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			rs = append(rs, Right(p))
		}
	}
	return NewRightSet(rs...)
}
