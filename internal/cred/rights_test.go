package cred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRightImplies(t *testing.T) {
	cases := []struct {
		holder, want Right
		implies      bool
	}{
		{"db/quotes.get", "db/quotes.get", true},
		{"db/quotes.get", "db/quotes.put", false},
		{"db/quotes.*", "db/quotes.get", true},
		{"db/quotes.*", "db/other.get", false},
		{"*", "anything.at.all", true},
		{"db/quotes", "db/quotes.get", true}, // bare resource = resource-wide
		{"db/quotes.get", "db/quotes.*", false},
		{"db/quotes.get", "db/quotes", false},
	}
	for _, c := range cases {
		if got := c.holder.Implies(c.want); got != c.implies {
			t.Errorf("%q implies %q = %v, want %v", c.holder, c.want, got, c.implies)
		}
	}
}

func TestRightSetPermits(t *testing.T) {
	s := NewRightSet("db/quotes.get", "buf.*")
	for _, r := range []Right{"db/quotes.get", "buf.put", "buf.get"} {
		if !s.Permits(r) {
			t.Errorf("set should permit %q", r)
		}
	}
	for _, r := range []Right{"db/quotes.put", "other.get"} {
		if s.Permits(r) {
			t.Errorf("set should not permit %q", r)
		}
	}
}

func TestRightSetRestrict(t *testing.T) {
	a := NewRightSet("buf.*", "db.get")
	b := NewRightSet("buf.get", "db.*")
	got := a.Restrict(b)
	if !got.Permits("buf.get") || !got.Permits("db.get") {
		t.Fatalf("restrict lost common rights: %v", got)
	}
	if got.Permits("buf.put") {
		t.Fatal("restrict kept buf.put, permitted by only one side")
	}
}

func TestRightSetSubsetOf(t *testing.T) {
	small := NewRightSet("buf.get")
	big := NewRightSet("buf.*")
	if !small.SubsetOf(big) {
		t.Fatal("buf.get should be subset of buf.*")
	}
	if big.SubsetOf(small) {
		t.Fatal("buf.* should not be subset of buf.get")
	}
	if !NewRightSet().SubsetOf(small) {
		t.Fatal("empty set is subset of everything")
	}
}

func TestRightSetStringRoundTrip(t *testing.T) {
	s := NewRightSet("b.x", "a.y", "c.*")
	got := ParseRightSet(s.String())
	if got.String() != s.String() {
		t.Fatalf("round trip: %q != %q", got.String(), s.String())
	}
	if s.String() != "a.y,b.x,c.*" {
		t.Fatalf("String not sorted: %q", s.String())
	}
	if !ParseRightSet("").IsEmpty() {
		t.Fatal("empty parse should be empty set")
	}
}

// randomRightSet builds a small random right set over a fixed vocabulary.
func randomRightSet(r *rand.Rand) RightSet {
	vocab := []Right{"a.x", "a.y", "a.*", "b.x", "b.*", "*", "c.z"}
	n := r.Intn(4)
	rs := make([]Right, n)
	for i := range rs {
		rs[i] = vocab[r.Intn(len(vocab))]
	}
	return NewRightSet(rs...)
}

// Property: Restrict is commutative (as a permission predicate) and
// never grants a right that either input denies.
func TestQuickRestrictSound(t *testing.T) {
	probe := []Right{"a.x", "a.y", "b.x", "c.z", "d.q"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomRightSet(rng), randomRightSet(rng)
		ab, ba := a.Restrict(b), b.Restrict(a)
		for _, p := range probe {
			if ab.Permits(p) != ba.Permits(p) {
				return false // not commutative
			}
			if ab.Permits(p) && !(a.Permits(p) && b.Permits(p)) {
				return false // escalation
			}
			if a.Permits(p) && b.Permits(p) && !ab.Permits(p) {
				return false // lost a common right
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: Restrict with self is identity on the permission predicate,
// and the result is always a subset of both inputs.
func TestQuickRestrictIdempotentSubset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomRightSet(rng), randomRightSet(rng)
		self := a.Restrict(a)
		for _, p := range []Right{"a.x", "b.x", "c.z"} {
			if self.Permits(p) != a.Permits(p) {
				return false
			}
		}
		ab := a.Restrict(b)
		return ab.SubsetOf(a) && ab.SubsetOf(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
