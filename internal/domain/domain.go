// Package domain implements protection domains and the per-server
// domain database (§5.3). In Ajanta the Java security manager
// distinguishes domains by thread group; Go has no thread groups, so a
// domain is identified by an unforgeable ID token minted by the server
// and carried in the execution environment of each activity. Agent code
// running in the VM can never see or fabricate an ID — it only flows
// through trusted host-call plumbing — which gives the same property as
// thread-group-based identification: the monitor always knows which
// domain the calling activity belongs to.
package domain

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cred"
	"repro/internal/names"
)

// ID identifies a protection domain within one server. IDs are never
// reused during a server's lifetime. The zero ID is invalid; ServerID
// (1) is the server's own domain.
type ID uint64

// NoDomain is the invalid zero domain.
const NoDomain ID = 0

// ServerID is the server's own protection domain, under which all
// trusted server activities execute.
const ServerID ID = 1

// String renders the ID for logs.
func (id ID) String() string {
	switch id {
	case NoDomain:
		return "domain(none)"
	case ServerID:
		return "domain(server)"
	default:
		return fmt.Sprintf("domain(%d)", uint64(id))
	}
}

// Status describes an agent's execution state, reported to owner status
// queries (§4: the domain database "responds to status queries from
// their owners").
type Status string

const (
	StatusRunning    Status = "running"
	StatusSuspended  Status = "suspended"
	StatusDeparted   Status = "departed"
	StatusTerminated Status = "terminated"
	StatusFailed     Status = "failed"
	StatusKilled     Status = "killed"
)

// Record is one agent's entry in the domain database: "for each agent,
// it stores several items of information including its thread-group
// [here: domain ID], owner, creator, and home-site address. It also
// includes access authorization for various server resources, usage
// limits and current usage."
type Record struct {
	Domain    ID
	AgentName names.Name
	Owner     names.Name
	Creator   names.Name
	HomeSite  string
	Arrived   time.Time
	Status    Status
	// Credentials as verified on arrival; grants are derived from
	// these plus server policy.
	Credentials *cred.Credentials
	// Bindings lists the resources this agent currently holds proxies
	// for, with usage counters ("information about the binding
	// objects is also maintained here", §5.3).
	Bindings map[string]*Binding
}

// Binding records one live resource grant.
type Binding struct {
	ResourcePath string
	GrantedAt    time.Time
	Invocations  uint64
	Charge       uint64
	// Revoker lets the server revoke the proxy through the database
	// without holding a typed reference.
	Revoker func()
}

// Database is the server's domain database. Mutations require the
// caller to present the server's own domain ID: "this database can be
// updated only by a thread executing in the server's protection domain"
// (§5.3).
type Database struct {
	next atomic.Uint64

	mu      sync.RWMutex
	byID    map[ID]*Record
	byAgent map[names.Name]ID
}

// ErrNotServerDomain is returned when a non-server domain attempts a
// database mutation.
var ErrNotServerDomain = errors.New("domain: database mutation requires server domain")

// ErrNoSuchDomain is returned for lookups of unknown domains.
var ErrNoSuchDomain = errors.New("domain: no such domain")

// NewDatabase creates an empty database. Domain IDs start after
// ServerID.
func NewDatabase() *Database {
	db := &Database{
		byID:    make(map[ID]*Record),
		byAgent: make(map[names.Name]ID),
	}
	db.next.Store(uint64(ServerID))
	return db
}

// Admit creates a new protection domain for an arriving agent and
// records it. Only the server domain may admit.
func (db *Database) Admit(caller ID, c *cred.Credentials) (ID, error) {
	if caller != ServerID {
		return NoDomain, ErrNotServerDomain
	}
	id := ID(db.next.Add(1))
	rec := &Record{
		Domain:      id,
		AgentName:   c.AgentName,
		Owner:       c.Owner,
		Creator:     c.Creator,
		HomeSite:    c.HomeSite,
		Arrived:     time.Now(),
		Status:      StatusRunning,
		Credentials: c,
		Bindings:    make(map[string]*Binding),
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.byID[id] = rec
	db.byAgent[c.AgentName] = id
	return id, nil
}

// Lookup returns a copy of the record for a domain. The copy shares the
// credentials pointer (immutable by convention after verification) but
// not the bindings map.
func (db *Database) Lookup(id ID) (Record, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rec, ok := db.byID[id]
	if !ok {
		return Record{}, fmt.Errorf("%w: %s", ErrNoSuchDomain, id)
	}
	cp := *rec
	cp.Bindings = make(map[string]*Binding, len(rec.Bindings))
	for k, v := range rec.Bindings {
		b := *v
		cp.Bindings[k] = &b
	}
	return cp, nil
}

// DomainOf resolves an agent name to its domain.
func (db *Database) DomainOf(agent names.Name) (ID, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.byAgent[agent]
	return id, ok
}

// CredentialsOf returns the verified credentials for a domain; this is
// the query getProxy makes ("obtains the requesting agent's credentials
// ... by querying the server's domain database", §5.5). Reads are open
// to any domain; only mutations are restricted.
func (db *Database) CredentialsOf(id ID) (*cred.Credentials, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rec, ok := db.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchDomain, id)
	}
	return rec.Credentials, nil
}

// SetStatus updates an agent's status (server domain only).
func (db *Database) SetStatus(caller, id ID, s Status) error {
	if caller != ServerID {
		return ErrNotServerDomain
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchDomain, id)
	}
	rec.Status = s
	return nil
}

// StatusOf reports an agent's current status by name.
func (db *Database) StatusOf(agent names.Name) (Status, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	id, ok := db.byAgent[agent]
	if !ok {
		return "", false
	}
	return db.byID[id].Status, true
}

// AddBinding records a live resource grant (server domain only).
func (db *Database) AddBinding(caller, id ID, b *Binding) error {
	if caller != ServerID {
		return ErrNotServerDomain
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchDomain, id)
	}
	rec.Bindings[b.ResourcePath] = b
	return nil
}

// RecordUse bumps usage counters on a binding. Called from proxy
// accounting hooks, which run under the server's authority.
func (db *Database) RecordUse(caller, id ID, resourcePath string, charge uint64) error {
	if caller != ServerID {
		return ErrNotServerDomain
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchDomain, id)
	}
	b, ok := rec.Bindings[resourcePath]
	if !ok {
		return fmt.Errorf("domain: no binding for %s in %s", resourcePath, id)
	}
	b.Invocations++
	b.Charge += charge
	return nil
}

// Remove deletes a domain record (after departure or termination).
func (db *Database) Remove(caller, id ID) error {
	if caller != ServerID {
		return ErrNotServerDomain
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchDomain, id)
	}
	delete(db.byAgent, rec.AgentName)
	delete(db.byID, id)
	return nil
}

// RevokeAll invokes the revoker of every live binding of a domain, used
// when an agent is killed or departs.
func (db *Database) RevokeAll(caller, id ID) error {
	if caller != ServerID {
		return ErrNotServerDomain
	}
	db.mu.Lock()
	revokers := []func(){}
	if rec, ok := db.byID[id]; ok {
		for _, b := range rec.Bindings {
			if b.Revoker != nil {
				revokers = append(revokers, b.Revoker)
			}
		}
	}
	db.mu.Unlock()
	for _, f := range revokers {
		f()
	}
	return nil
}

// Agents lists all registered agent names (for status tools).
func (db *Database) Agents() []names.Name {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]names.Name, 0, len(db.byAgent))
	for n := range db.byAgent {
		out = append(out, n)
	}
	return out
}

// Count reports the number of live domains.
func (db *Database) Count() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.byID)
}
