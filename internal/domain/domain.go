// Package domain implements protection domains and the per-server
// domain database (§5.3). In Ajanta the Java security manager
// distinguishes domains by thread group; Go has no thread groups, so a
// domain is identified by an unforgeable ID token minted by the server
// and carried in the execution environment of each activity. Agent code
// running in the VM can never see or fabricate an ID — it only flows
// through trusted host-call plumbing — which gives the same property as
// thread-group-based identification: the monitor always knows which
// domain the calling activity belongs to.
//
// The database is sharded by domain ID: IDs are dense monotonic
// uint64s, so id mod a power-of-two shard count spreads concurrent
// visits evenly across independent mutexes, and two co-hosted agents
// never contend on the same lock unless they land in the same shard.
// The agent-name index lives under its own lock — it is consulted by
// status tooling (DomainOf, StatusOf, Agents), never on the
// bind/invoke path. See docs/PROTOCOLS.md §8.5.
package domain

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cred"
	"repro/internal/names"
)

// ID identifies a protection domain within one server. IDs are never
// reused during a server's lifetime. The zero ID is invalid; ServerID
// (1) is the server's own domain.
type ID uint64

// NoDomain is the invalid zero domain.
const NoDomain ID = 0

// ServerID is the server's own protection domain, under which all
// trusted server activities execute.
const ServerID ID = 1

// String renders the ID for logs.
func (id ID) String() string {
	switch id {
	case NoDomain:
		return "domain(none)"
	case ServerID:
		return "domain(server)"
	default:
		return fmt.Sprintf("domain(%d)", uint64(id))
	}
}

// Status describes an agent's execution state, reported to owner status
// queries (§4: the domain database "responds to status queries from
// their owners").
type Status string

const (
	StatusRunning    Status = "running"
	StatusSuspended  Status = "suspended"
	StatusDeparted   Status = "departed"
	StatusTerminated Status = "terminated"
	StatusFailed     Status = "failed"
	StatusKilled     Status = "killed"
)

// Record is one agent's entry in the domain database: "for each agent,
// it stores several items of information including its thread-group
// [here: domain ID], owner, creator, and home-site address. It also
// includes access authorization for various server resources, usage
// limits and current usage."
type Record struct {
	Domain    ID
	AgentName names.Name
	Owner     names.Name
	Creator   names.Name
	HomeSite  string
	Arrived   time.Time
	Status    Status
	// Credentials as verified on arrival; grants are derived from
	// these plus server policy.
	Credentials *cred.Credentials
	// Bindings lists the resources this agent currently holds proxies
	// for, with usage counters ("information about the binding
	// objects is also maintained here", §5.3).
	Bindings map[string]*Binding
}

// Binding records one live resource grant.
type Binding struct {
	ResourcePath string
	GrantedAt    time.Time
	Invocations  uint64
	Charge       uint64
	// Revoker lets the server revoke the proxy through the database
	// without holding a typed reference.
	Revoker func()
}

// Usage is one binding's accumulated usage, accounted locally by a
// visit while it runs and flushed into the database in a single batch
// at departure (FlushUsage) — so the per-invocation hot path never
// takes a database lock.
type Usage struct {
	ResourcePath string
	Invocations  uint64
	Charge       uint64
}

// shardBits selects the shard count. 32 shards keeps the per-shard
// footprint trivial while making same-shard collisions between
// co-hosted visits rare at realistic concurrency.
const shardBits = 5

// NumShards is the power-of-two shard count of the database.
const NumShards = 1 << shardBits

// shard is one independently locked slice of the domain table.
type shard struct {
	mu   sync.RWMutex
	byID map[ID]*Record
}

// Database is the server's domain database. Mutations require the
// caller to present the server's own domain ID: "this database can be
// updated only by a thread executing in the server's protection domain"
// (§5.3).
type Database struct {
	next  atomic.Uint64
	count atomic.Int64

	shards [NumShards]shard

	// The name index is off the hot path: only status tooling resolves
	// agents by name. It is never held together with a shard lock —
	// Admit/Remove take them strictly one after the other (§8.5).
	nameMu  sync.RWMutex
	byAgent map[names.Name]ID
}

// ErrNotServerDomain is returned when a non-server domain attempts a
// database mutation.
var ErrNotServerDomain = errors.New("domain: database mutation requires server domain")

// ErrNoSuchDomain is returned for lookups of unknown domains.
var ErrNoSuchDomain = errors.New("domain: no such domain")

// NewDatabase creates an empty database. Domain IDs start after
// ServerID.
func NewDatabase() *Database {
	db := &Database{byAgent: make(map[names.Name]ID)}
	for i := range db.shards {
		db.shards[i].byID = make(map[ID]*Record)
	}
	db.next.Store(uint64(ServerID))
	return db
}

// shardOf maps an ID to its shard. IDs are dense and monotonic, so the
// low bits distribute consecutive admissions round-robin.
func (db *Database) shardOf(id ID) *shard {
	return &db.shards[uint64(id)&(NumShards-1)]
}

// Admit creates a new protection domain for an arriving agent and
// records it. Only the server domain may admit.
func (db *Database) Admit(caller ID, c *cred.Credentials) (ID, error) {
	if caller != ServerID {
		return NoDomain, ErrNotServerDomain
	}
	id := ID(db.next.Add(1))
	rec := &Record{
		Domain:      id,
		AgentName:   c.AgentName,
		Owner:       c.Owner,
		Creator:     c.Creator,
		HomeSite:    c.HomeSite,
		Arrived:     time.Now(),
		Status:      StatusRunning,
		Credentials: c,
		Bindings:    make(map[string]*Binding),
	}
	sh := db.shardOf(id)
	sh.mu.Lock()
	sh.byID[id] = rec
	sh.mu.Unlock()
	db.nameMu.Lock()
	db.byAgent[c.AgentName] = id
	db.nameMu.Unlock()
	db.count.Add(1)
	return id, nil
}

// Lookup returns a copy of the record for a domain. The copy shares the
// credentials pointer (immutable by convention after verification) but
// not the bindings map.
func (db *Database) Lookup(id ID) (Record, error) {
	sh := db.shardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.byID[id]
	if !ok {
		return Record{}, fmt.Errorf("%w: %s", ErrNoSuchDomain, id)
	}
	cp := *rec
	cp.Bindings = make(map[string]*Binding, len(rec.Bindings))
	for k, v := range rec.Bindings {
		b := *v
		cp.Bindings[k] = &b
	}
	return cp, nil
}

// DomainOf resolves an agent name to its domain.
func (db *Database) DomainOf(agent names.Name) (ID, bool) {
	db.nameMu.RLock()
	defer db.nameMu.RUnlock()
	id, ok := db.byAgent[agent]
	return id, ok
}

// CredentialsOf returns the verified credentials for a domain; this is
// the query getProxy makes ("obtains the requesting agent's credentials
// ... by querying the server's domain database", §5.5). Reads are open
// to any domain; only mutations are restricted. A caller racing the
// domain's teardown either gets the credentials (the record was still
// live at the lock) or ErrNoSuchDomain — never a torn record.
func (db *Database) CredentialsOf(id ID) (*cred.Credentials, error) {
	sh := db.shardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchDomain, id)
	}
	return rec.Credentials, nil
}

// SetStatus updates an agent's status (server domain only).
func (db *Database) SetStatus(caller, id ID, s Status) error {
	if caller != ServerID {
		return ErrNotServerDomain
	}
	sh := db.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchDomain, id)
	}
	rec.Status = s
	return nil
}

// StatusOf reports an agent's current status by name. The name index
// and the record live under different locks, so a teardown can race the
// two lookups; a record gone by the second simply reports "unknown",
// exactly as if the query had arrived after the removal.
func (db *Database) StatusOf(agent names.Name) (Status, bool) {
	db.nameMu.RLock()
	id, ok := db.byAgent[agent]
	db.nameMu.RUnlock()
	if !ok {
		return "", false
	}
	sh := db.shardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.byID[id]
	if !ok {
		return "", false
	}
	return rec.Status, true
}

// AddBinding records a live resource grant (server domain only).
func (db *Database) AddBinding(caller, id ID, b *Binding) error {
	if caller != ServerID {
		return ErrNotServerDomain
	}
	sh := db.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchDomain, id)
	}
	rec.Bindings[b.ResourcePath] = b
	return nil
}

// RecordUse bumps usage counters on a binding immediately. The hosting
// path no longer calls this per invocation — visits account locally and
// FlushUsage the batch at departure — but it remains for callers that
// need synchronous accounting (tests, tooling, the pre-shard baseline).
func (db *Database) RecordUse(caller, id ID, resourcePath string, charge uint64) error {
	if caller != ServerID {
		return ErrNotServerDomain
	}
	sh := db.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchDomain, id)
	}
	b, ok := rec.Bindings[resourcePath]
	if !ok {
		return fmt.Errorf("domain: no binding for %s in %s", resourcePath, id)
	}
	b.Invocations++
	b.Charge += charge
	return nil
}

// FlushUsage settles a visit's locally accumulated usage records into
// the domain's bindings in one shard-lock acquisition, and returns the
// total charge applied (the amount the server bills to the owner's
// ledger). Batches for unknown bindings are still charged — accounting
// must survive a binding record lost to a teardown race — they are just
// not attributed to a per-binding row.
func (db *Database) FlushUsage(caller, id ID, batch []Usage) (uint64, error) {
	if caller != ServerID {
		return 0, ErrNotServerDomain
	}
	var total uint64
	for i := range batch {
		total += batch[i].Charge
	}
	if len(batch) == 0 {
		return 0, nil
	}
	sh := db.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.byID[id]
	if !ok {
		return total, fmt.Errorf("%w: %s", ErrNoSuchDomain, id)
	}
	for i := range batch {
		if b, ok := rec.Bindings[batch[i].ResourcePath]; ok {
			b.Invocations += batch[i].Invocations
			b.Charge += batch[i].Charge
		}
	}
	return total, nil
}

// Remove deletes a domain record (after departure or termination).
func (db *Database) Remove(caller, id ID) error {
	if caller != ServerID {
		return ErrNotServerDomain
	}
	sh := db.shardOf(id)
	sh.mu.Lock()
	rec, ok := sh.byID[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchDomain, id)
	}
	delete(sh.byID, id)
	sh.mu.Unlock()
	db.nameMu.Lock()
	// Another admission may have reused the agent name (a re-hosted
	// agent gets a fresh domain); only drop the index entry if it still
	// points at the domain being removed.
	if cur, ok := db.byAgent[rec.AgentName]; ok && cur == id {
		delete(db.byAgent, rec.AgentName)
	}
	db.nameMu.Unlock()
	db.count.Add(-1)
	return nil
}

// RevokeAll invokes the revoker of every live binding of a domain, used
// when an agent is killed or departs.
func (db *Database) RevokeAll(caller, id ID) error {
	if caller != ServerID {
		return ErrNotServerDomain
	}
	sh := db.shardOf(id)
	sh.mu.Lock()
	revokers := []func(){}
	if rec, ok := sh.byID[id]; ok {
		for _, b := range rec.Bindings {
			if b.Revoker != nil {
				revokers = append(revokers, b.Revoker)
			}
		}
	}
	sh.mu.Unlock()
	for _, f := range revokers {
		f()
	}
	return nil
}

// Agents lists all registered agent names (for status tools).
func (db *Database) Agents() []names.Name {
	db.nameMu.RLock()
	defer db.nameMu.RUnlock()
	out := make([]names.Name, 0, len(db.byAgent))
	for n := range db.byAgent {
		out = append(out, n)
	}
	return out
}

// Count reports the number of live domains.
func (db *Database) Count() int {
	return int(db.count.Load())
}

// ShardSizes reports the number of live records per shard (distribution
// diagnostics and tests).
func (db *Database) ShardSizes() [NumShards]int {
	var out [NumShards]int
	for i := range db.shards {
		db.shards[i].mu.RLock()
		out[i] = len(db.shards[i].byID)
		db.shards[i].mu.RUnlock()
	}
	return out
}
