package domain

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/keys"
	"repro/internal/names"
)

func testCreds(t *testing.T, agent string) *cred.Credentials {
	t.Helper()
	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	owner, err := keys.NewIdentity(reg, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cred.Issue(owner, names.Agent("umn.edu", agent),
		names.Principal("umn.edu", "app"), cred.NewRightSet(cred.All), time.Hour, "home")
	if err != nil {
		t.Fatal(err)
	}
	return &c
}

func TestAdmitAssignsFreshDomains(t *testing.T) {
	db := NewDatabase()
	id1, err := db.Admit(ServerID, testCreds(t, "a1"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := db.Admit(ServerID, testCreds(t, "a2"))
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 || id1 == ServerID || id2 == ServerID || id1 == NoDomain {
		t.Fatalf("ids: %v %v", id1, id2)
	}
	if db.Count() != 2 {
		t.Fatalf("Count = %d", db.Count())
	}
}

func TestAdmitRequiresServerDomain(t *testing.T) {
	db := NewDatabase()
	id, _ := db.Admit(ServerID, testCreds(t, "a1"))
	if _, err := db.Admit(id, testCreds(t, "a2")); !errors.Is(err, ErrNotServerDomain) {
		t.Fatalf("agent domain admitted another agent: %v", err)
	}
}

func TestLookupAndDomainOf(t *testing.T) {
	db := NewDatabase()
	c := testCreds(t, "a1")
	id, _ := db.Admit(ServerID, c)
	rec, err := db.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.AgentName != c.AgentName || rec.Owner != c.Owner || rec.Status != StatusRunning {
		t.Fatalf("record = %+v", rec)
	}
	got, ok := db.DomainOf(c.AgentName)
	if !ok || got != id {
		t.Fatalf("DomainOf = %v, %v", got, ok)
	}
	if _, err := db.Lookup(ID(999)); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatal("lookup of unknown domain succeeded")
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	db := NewDatabase()
	id, _ := db.Admit(ServerID, testCreds(t, "a1"))
	_ = db.AddBinding(ServerID, id, &Binding{ResourcePath: "buf"})
	rec, _ := db.Lookup(id)
	rec.Bindings["buf"].Invocations = 999 // mutate the copy
	rec2, _ := db.Lookup(id)
	if rec2.Bindings["buf"].Invocations != 0 {
		t.Fatal("Lookup copy shares binding structs with the database")
	}
}

func TestCredentialsOf(t *testing.T) {
	db := NewDatabase()
	c := testCreds(t, "a1")
	id, _ := db.Admit(ServerID, c)
	got, err := db.CredentialsOf(id)
	if err != nil || got.AgentName != c.AgentName {
		t.Fatalf("CredentialsOf = %+v, %v", got, err)
	}
	if _, err := db.CredentialsOf(ID(77)); err == nil {
		t.Fatal("CredentialsOf unknown domain succeeded")
	}
}

func TestStatusTransitions(t *testing.T) {
	db := NewDatabase()
	c := testCreds(t, "a1")
	id, _ := db.Admit(ServerID, c)
	if err := db.SetStatus(id, id, StatusKilled); !errors.Is(err, ErrNotServerDomain) {
		t.Fatal("agent set its own status")
	}
	if err := db.SetStatus(ServerID, id, StatusDeparted); err != nil {
		t.Fatal(err)
	}
	st, ok := db.StatusOf(c.AgentName)
	if !ok || st != StatusDeparted {
		t.Fatalf("StatusOf = %v, %v", st, ok)
	}
}

func TestBindingUsageAccounting(t *testing.T) {
	db := NewDatabase()
	id, _ := db.Admit(ServerID, testCreds(t, "a1"))
	if err := db.AddBinding(id, id, &Binding{ResourcePath: "buf"}); !errors.Is(err, ErrNotServerDomain) {
		t.Fatal("agent added its own binding")
	}
	_ = db.AddBinding(ServerID, id, &Binding{ResourcePath: "buf"})
	for i := 0; i < 3; i++ {
		if err := db.RecordUse(ServerID, id, "buf", 7); err != nil {
			t.Fatal(err)
		}
	}
	rec, _ := db.Lookup(id)
	b := rec.Bindings["buf"]
	if b.Invocations != 3 || b.Charge != 21 {
		t.Fatalf("binding = %+v", b)
	}
	if err := db.RecordUse(ServerID, id, "nope", 1); err == nil {
		t.Fatal("RecordUse on missing binding succeeded")
	}
}

func TestRemove(t *testing.T) {
	db := NewDatabase()
	c := testCreds(t, "a1")
	id, _ := db.Admit(ServerID, c)
	if err := db.Remove(id, id); !errors.Is(err, ErrNotServerDomain) {
		t.Fatal("agent removed itself")
	}
	if err := db.Remove(ServerID, id); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.DomainOf(c.AgentName); ok {
		t.Fatal("agent still resolvable after Remove")
	}
	if db.Count() != 0 {
		t.Fatalf("Count = %d", db.Count())
	}
}

func TestRevokeAll(t *testing.T) {
	db := NewDatabase()
	id, _ := db.Admit(ServerID, testCreds(t, "a1"))
	revoked := 0
	_ = db.AddBinding(ServerID, id, &Binding{ResourcePath: "r1", Revoker: func() { revoked++ }})
	_ = db.AddBinding(ServerID, id, &Binding{ResourcePath: "r2", Revoker: func() { revoked++ }})
	_ = db.AddBinding(ServerID, id, &Binding{ResourcePath: "r3"}) // nil revoker tolerated
	if err := db.RevokeAll(ServerID, id); err != nil {
		t.Fatal(err)
	}
	if revoked != 2 {
		t.Fatalf("revoked = %d, want 2", revoked)
	}
}

func TestAgentsList(t *testing.T) {
	db := NewDatabase()
	_, _ = db.Admit(ServerID, testCreds(t, "a1"))
	_, _ = db.Admit(ServerID, testCreds(t, "a2"))
	if got := len(db.Agents()); got != 2 {
		t.Fatalf("Agents() len = %d", got)
	}
}

func TestFlushUsage(t *testing.T) {
	db := NewDatabase()
	id, _ := db.Admit(ServerID, testCreds(t, "a1"))
	_ = db.AddBinding(ServerID, id, &Binding{ResourcePath: "buf"})

	if _, err := db.FlushUsage(id, id, nil); !errors.Is(err, ErrNotServerDomain) {
		t.Fatal("agent flushed its own usage")
	}
	if total, err := db.FlushUsage(ServerID, id, nil); total != 0 || err != nil {
		t.Fatalf("empty batch: total=%d err=%v", total, err)
	}
	total, err := db.FlushUsage(ServerID, id, []Usage{
		{ResourcePath: "buf", Invocations: 5, Charge: 50},
		{ResourcePath: "gone", Invocations: 2, Charge: 7}, // no such binding
	})
	if err != nil {
		t.Fatal(err)
	}
	// The whole batch is charged — including rows whose binding record is
	// gone — but only known bindings get per-binding attribution.
	if total != 57 {
		t.Fatalf("total = %d, want 57", total)
	}
	rec, _ := db.Lookup(id)
	if b := rec.Bindings["buf"]; b.Invocations != 5 || b.Charge != 50 {
		t.Fatalf("binding = %+v", b)
	}
}

// A visit's departure can race its domain's removal (crash teardown,
// dead-letter parking): the flush must still return the full charge so
// the owner is billed, even though there is no record to attribute it
// to.
func TestFlushUsageAfterTeardown(t *testing.T) {
	db := NewDatabase()
	id, _ := db.Admit(ServerID, testCreds(t, "a1"))
	_ = db.Remove(ServerID, id)
	total, err := db.FlushUsage(ServerID, id, []Usage{{ResourcePath: "buf", Invocations: 3, Charge: 30}})
	if !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("err = %v, want ErrNoSuchDomain", err)
	}
	if total != 30 {
		t.Fatalf("total = %d, want 30 (accounting must survive teardown)", total)
	}
}

// CredentialsOf racing the domain's removal must yield either the
// credentials or ErrNoSuchDomain — never a torn read. Run under -race.
func TestCredentialsOfRacesTeardown(t *testing.T) {
	db := NewDatabase()
	const rounds = 200
	for i := 0; i < rounds; i++ {
		c := testCreds(t, "racer")
		id, err := db.Admit(ServerID, c)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for j := 0; j < 10; j++ {
				got, err := db.CredentialsOf(id)
				if err == nil && got.AgentName != c.AgentName {
					t.Error("CredentialsOf returned foreign credentials")
					return
				}
				if err != nil && !errors.Is(err, ErrNoSuchDomain) {
					t.Errorf("CredentialsOf: %v", err)
					return
				}
			}
		}()
		_ = db.RevokeAll(ServerID, id)
		_ = db.Remove(ServerID, id)
		<-done
	}
}

// Re-admission can reuse an agent name before the old domain's Remove
// runs; the name index must keep pointing at the live domain.
func TestRemoveKeepsReusedNameIndex(t *testing.T) {
	db := NewDatabase()
	c := testCreds(t, "a1")
	old, _ := db.Admit(ServerID, c)
	fresh, _ := db.Admit(ServerID, c) // same agent name, new domain
	if err := db.Remove(ServerID, old); err != nil {
		t.Fatal(err)
	}
	got, ok := db.DomainOf(c.AgentName)
	if !ok || got != fresh {
		t.Fatalf("DomainOf after stale Remove = %v, %v; want %v", got, ok, fresh)
	}
}

// Dense monotonic IDs must spread evenly over the power-of-two shards:
// after 10k admissions every shard holds count/NumShards records give or
// take one.
func TestShardDistribution(t *testing.T) {
	db := NewDatabase()
	const n = 10_000
	c := testCreds(t, "bulk")
	for i := 0; i < n; i++ {
		if _, err := db.Admit(ServerID, c); err != nil {
			t.Fatal(err)
		}
	}
	sizes := db.ShardSizes()
	lo, hi := n/NumShards, n/NumShards+1
	for i, sz := range sizes {
		if sz < lo || sz > hi {
			t.Fatalf("shard %d holds %d records, want %d..%d", i, sz, lo, hi)
		}
	}
	if db.Count() != n {
		t.Fatalf("Count = %d", db.Count())
	}
}

func TestIDString(t *testing.T) {
	if NoDomain.String() != "domain(none)" || ServerID.String() != "domain(server)" {
		t.Fatal("special-case strings wrong")
	}
	if ID(42).String() != "domain(42)" {
		t.Fatalf("got %q", ID(42).String())
	}
}
