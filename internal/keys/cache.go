package keys

import (
	"container/list"
	"crypto/sha256"
	"sync"
)

// CheckCache memoizes *successful* CA signature verifications, bounded
// LRU. A transfer endpoint sees the same few peer certificates over and
// over (every handshake with a repeat peer re-presents its cert); the
// ed25519 signature over the identical bytes does not need re-checking.
// Only the signature step is cached — issuer identity, the validity
// window and the revocation oracle are evaluated live on every Check,
// so caching never extends trust in time or past a revocation. Failed
// verifications are not cached: a negative result costs one ed25519
// operation and poisoning the cache with attacker-chosen garbage keys
// would only evict useful entries.
type CheckCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; values are [32]byte keys
	m   map[[32]byte]*list.Element

	hits   uint64
	misses uint64
}

// CheckCacheStats reports cache effectiveness.
type CheckCacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// NewCheckCache builds a cache holding at most capacity verified
// signatures (capacity <= 0 means 512).
func NewCheckCache(capacity int) *CheckCache {
	if capacity <= 0 {
		capacity = 512
	}
	return &CheckCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[[32]byte]*list.Element),
	}
}

// key binds the cached verdict to the exact CA key, signed bytes and
// signature, so a cert re-issued under the same subject (new key, new
// window) never matches a stale entry.
func (c *CheckCache) key(caKey, tbs, sig []byte) [32]byte {
	h := sha256.New()
	h.Write(caKey)
	h.Write(tbs)
	h.Write(sig)
	var k [32]byte
	h.Sum(k[:0])
	return k
}

// verified reports whether this exact (CA key, tbs, signature) triple
// has already passed ed25519 verification.
func (c *CheckCache) verified(caKey, tbs, sig []byte) bool {
	k := c.key(caKey, tbs, sig)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	return false
}

// add records a successful verification, evicting the least recently
// used entry at capacity.
func (c *CheckCache) add(caKey, tbs, sig []byte) {
	k := c.key(caKey, tbs, sig)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(k)
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.([32]byte))
	}
}

// Stats returns hit/miss counters and current occupancy.
func (c *CheckCache) Stats() CheckCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CheckCacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}
