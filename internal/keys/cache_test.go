package keys

import (
	"errors"
	"testing"
	"time"

	"repro/internal/names"
)

func TestCheckCacheHits(t *testing.T) {
	reg, err := NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := NewIdentity(reg, names.Server("umn.edu", "s"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	v := reg.Verifier()
	for i := 0; i < 5; i++ {
		if err := v.Check(id.Cert, time.Now()); err != nil {
			t.Fatalf("check %d: %v", i, err)
		}
	}
	st := v.Cache.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Fatalf("stats = %+v, want 1 miss + 4 hits", st)
	}
}

func TestCheckCacheDoesNotMaskRevocation(t *testing.T) {
	reg, err := NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := NewIdentity(reg, names.Server("umn.edu", "s"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	v := reg.Verifier()
	if err := v.Check(id.Cert, time.Now()); err != nil {
		t.Fatal(err)
	}
	reg.Revoke(id.Name)
	// The signature verdict is cached but revocation is checked live:
	// a warm cache must not keep a revoked certificate alive.
	if err := v.Check(id.Cert, time.Now()); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked cert passed with warm cache: %v", err)
	}
}

func TestCheckCacheDoesNotMaskExpiry(t *testing.T) {
	reg, err := NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := NewIdentity(reg, names.Server("umn.edu", "s"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	v := reg.Verifier()
	if err := v.Check(id.Cert, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := v.Check(id.Cert, time.Now().Add(2*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired cert passed with warm cache: %v", err)
	}
}

func TestCheckCacheNegativeNotCached(t *testing.T) {
	reg, err := NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := NewIdentity(reg, names.Server("umn.edu", "s"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	v := reg.Verifier()
	bad := id.Cert
	bad.Signature = append([]byte(nil), bad.Signature...)
	bad.Signature[0] ^= 0x01
	for i := 0; i < 3; i++ {
		if err := v.Check(bad, time.Now()); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("tampered cert passed: %v", err)
		}
	}
	if st := v.Cache.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("failed verification entered the cache: %+v", st)
	}
}

func TestCheckCacheLRUEviction(t *testing.T) {
	reg, err := NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	v := reg.Verifier()
	v.Cache = NewCheckCache(2)
	certs := make([]Certificate, 3)
	for i, name := range []string{"s1", "s2", "s3"} {
		id, err := NewIdentity(reg, names.Server("umn.edu", name), time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		certs[i] = id.Cert
		if err := v.Check(certs[i], time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if st := v.Cache.Stats(); st.Entries != 2 {
		t.Fatalf("Entries = %d, want capacity 2", st.Entries)
	}
	// s1 is the least recently used and must have been evicted; s3 hits.
	if err := v.Check(certs[2], time.Now()); err != nil {
		t.Fatal(err)
	}
	st := v.Cache.Stats()
	if st.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", st.Hits)
	}
	if err := v.Check(certs[0], time.Now()); err != nil {
		t.Fatal(err)
	}
	if got := v.Cache.Stats(); got.Hits != 1 {
		t.Fatalf("evicted entry hit the cache: %+v", got)
	}
}
