// Package keys provides principal identities, signing keys and a
// certificate registry. The paper assumes an underlying public-key
// infrastructure ("the credentials include the owner's public key
// certificate", §5.2) without specifying one; this package is that
// substrate. A Registry plays the role of the certification authority
// every host trusts, issuing signed (name, public key, validity)
// certificates for principals, agent owners and servers.
package keys

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/names"
)

// Errors reported by certificate verification.
var (
	ErrBadSignature = errors.New("keys: bad signature")
	ErrExpired      = errors.New("keys: certificate expired")
	ErrNotYetValid  = errors.New("keys: certificate not yet valid")
	ErrUnknownCA    = errors.New("keys: certificate not issued by a trusted CA")
	ErrRevoked      = errors.New("keys: certificate revoked")
)

// KeyPair is a principal's signing keypair.
type KeyPair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// Generate creates a fresh ed25519 keypair.
func Generate() (KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return KeyPair{}, fmt.Errorf("keys: generate: %w", err)
	}
	return KeyPair{Public: pub, private: priv}, nil
}

// MustGenerate is Generate for setup code; it panics on failure.
func MustGenerate() KeyPair {
	kp, err := Generate()
	if err != nil {
		panic(err)
	}
	return kp
}

// Sign signs msg with the private key.
func (k KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// Verify checks sig over msg against a public key.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}

// Certificate binds a principal name to a public key for a validity
// interval, signed by the issuing CA. This is the "public key
// certificate" carried inside agent credentials.
type Certificate struct {
	Subject   names.Name
	PublicKey ed25519.PublicKey
	NotBefore time.Time
	NotAfter  time.Time
	Issuer    names.Name
	Signature []byte
}

// tbs returns the to-be-signed byte encoding of the certificate. The
// encoding is deterministic: length-prefixed fields in fixed order.
func (c Certificate) tbs() []byte {
	var b bytes.Buffer
	writeField := func(p []byte) {
		var lenBuf [8]byte
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		b.Write(lenBuf[:])
		b.Write(p)
	}
	writeField([]byte(c.Subject.String()))
	writeField(c.PublicKey)
	writeField([]byte(c.NotBefore.UTC().Format(time.RFC3339Nano)))
	writeField([]byte(c.NotAfter.UTC().Format(time.RFC3339Nano)))
	writeField([]byte(c.Issuer.String()))
	return b.Bytes()
}

// Registry is the trusted certification authority plus directory of
// issued certificates. One Registry instance is shared by all servers in
// a platform (in a real deployment it would be an external CA).
type Registry struct {
	caName names.Name
	caKey  KeyPair

	mu      sync.RWMutex
	certs   map[names.Name]Certificate
	revoked map[names.Name]bool
}

// NewRegistry creates a CA named caName with a fresh key.
func NewRegistry(caName names.Name) (*Registry, error) {
	kp, err := Generate()
	if err != nil {
		return nil, err
	}
	return &Registry{
		caName:  caName,
		caKey:   kp,
		certs:   make(map[names.Name]Certificate),
		revoked: make(map[names.Name]bool),
	}, nil
}

// CAName returns the registry's CA name.
func (r *Registry) CAName() names.Name { return r.caName }

// CAPublicKey returns the CA's public key, which relying parties pin.
func (r *Registry) CAPublicKey() ed25519.PublicKey { return r.caKey.Public }

// Issue creates, signs, stores and returns a certificate for subject,
// valid for the given duration starting now.
func (r *Registry) Issue(subject names.Name, pub ed25519.PublicKey, validFor time.Duration) (Certificate, error) {
	if err := subject.Valid(); err != nil {
		return Certificate{}, err
	}
	if len(pub) != ed25519.PublicKeySize {
		return Certificate{}, errors.New("keys: issue: bad public key size")
	}
	now := time.Now()
	cert := Certificate{
		Subject:   subject,
		PublicKey: pub,
		NotBefore: now.Add(-time.Minute), // small clock-skew allowance
		NotAfter:  now.Add(validFor),
		Issuer:    r.caName,
	}
	cert.Signature = r.caKey.Sign(cert.tbs())
	r.mu.Lock()
	r.certs[subject] = cert
	delete(r.revoked, subject)
	r.mu.Unlock()
	return cert, nil
}

// Revoke marks a subject's certificate as revoked. Stolen credentials
// "cannot be misused indefinitely" (§5.2): expiry bounds the damage and
// revocation cuts it off immediately.
func (r *Registry) Revoke(subject names.Name) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.revoked[subject] = true
}

// Lookup returns the stored certificate for a subject.
func (r *Registry) Lookup(subject names.Name) (Certificate, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.certs[subject]
	return c, ok
}

// Verifier is the relying-party view of the CA: just the pinned CA name
// and key plus the revocation oracle. Servers embed a Verifier so that
// verification does not require mutating access to the Registry.
type Verifier struct {
	CAName names.Name
	CAKey  ed25519.PublicKey
	// IsRevoked may be nil when no revocation oracle is available
	// (e.g. a disconnected server); expiry then bounds misuse.
	IsRevoked func(names.Name) bool
	// Cache, when non-nil, memoizes successful signature checks (the
	// ed25519 step only — validity and revocation stay live). Repeat
	// peers then skip the expensive verify in every handshake.
	Cache *CheckCache
}

// Verifier returns a relying-party verifier wired to this registry,
// with signature-check caching on (repeat peers are the common case).
func (r *Registry) Verifier() Verifier {
	return Verifier{
		CAName: r.caName,
		CAKey:  r.caKey.Public,
		IsRevoked: func(n names.Name) bool {
			r.mu.RLock()
			defer r.mu.RUnlock()
			return r.revoked[n]
		},
		Cache: NewCheckCache(0),
	}
}

// Check verifies a certificate: issuer identity, signature, validity
// window and revocation status. Only the signature verdict is ever
// cached; the time-dependent checks run on every call.
func (v Verifier) Check(c Certificate, at time.Time) error {
	if c.Issuer != v.CAName {
		return fmt.Errorf("%w: issuer %s", ErrUnknownCA, c.Issuer)
	}
	tbs := c.tbs()
	if v.Cache == nil || !v.Cache.verified(v.CAKey, tbs, c.Signature) {
		if !Verify(v.CAKey, tbs, c.Signature) {
			return fmt.Errorf("%w: cert for %s", ErrBadSignature, c.Subject)
		}
		if v.Cache != nil {
			v.Cache.add(v.CAKey, tbs, c.Signature)
		}
	}
	if at.Before(c.NotBefore) {
		return fmt.Errorf("%w: cert for %s", ErrNotYetValid, c.Subject)
	}
	if at.After(c.NotAfter) {
		return fmt.Errorf("%w: cert for %s", ErrExpired, c.Subject)
	}
	if v.IsRevoked != nil && v.IsRevoked(c.Subject) {
		return fmt.Errorf("%w: cert for %s", ErrRevoked, c.Subject)
	}
	return nil
}

// caState is the serialized form of a CA: its name and private seed.
// Exporting it lets several OS processes share one platform CA (every
// process can then issue certificates the others trust). The bytes are
// SECRET — treat the file like a CA key.
type caState struct {
	Name names.Name
	Seed []byte
}

// Export serializes the CA's name and private key for ImportRegistry.
func (r *Registry) Export() ([]byte, error) {
	var buf bytes.Buffer
	st := caState{Name: r.caName, Seed: r.caKey.private.Seed()}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("keys: export: %w", err)
	}
	return buf.Bytes(), nil
}

// ImportRegistry reconstructs a Registry around an exported CA key. The
// imported registry starts with an empty certificate directory — each
// process issues its own identities; they all verify everywhere because
// the signing key is shared. Revocations are process-local.
func ImportRegistry(data []byte) (*Registry, error) {
	var st caState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("keys: import: %w", err)
	}
	if len(st.Seed) != ed25519.SeedSize {
		return nil, errors.New("keys: import: bad seed length")
	}
	if err := st.Name.Valid(); err != nil {
		return nil, fmt.Errorf("keys: import: %w", err)
	}
	priv := ed25519.NewKeyFromSeed(st.Seed)
	return &Registry{
		caName:  st.Name,
		caKey:   KeyPair{Public: priv.Public().(ed25519.PublicKey), private: priv},
		certs:   make(map[names.Name]Certificate),
		revoked: make(map[names.Name]bool),
	}, nil
}

// Identity bundles a principal's name, keypair and certificate: the
// complete credential material a principal holds locally.
type Identity struct {
	Name names.Name
	Keys KeyPair
	Cert Certificate
}

// NewIdentity generates a keypair for name and has the registry certify
// it for validFor.
func NewIdentity(r *Registry, name names.Name, validFor time.Duration) (Identity, error) {
	kp, err := Generate()
	if err != nil {
		return Identity{}, err
	}
	cert, err := r.Issue(name, kp.Public, validFor)
	if err != nil {
		return Identity{}, err
	}
	return Identity{Name: name, Keys: kp, Cert: cert}, nil
}
