package keys

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/names"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSignVerify(t *testing.T) {
	kp := MustGenerate()
	msg := []byte("protected resource access")
	sig := kp.Sign(msg)
	if !Verify(kp.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(kp.Public, []byte("tampered"), sig) {
		t.Fatal("signature over different message accepted")
	}
	other := MustGenerate()
	if Verify(other.Public, msg, sig) {
		t.Fatal("signature accepted under wrong key")
	}
}

func TestVerifyRejectsBadKeySize(t *testing.T) {
	kp := MustGenerate()
	msg := []byte("m")
	if Verify(kp.Public[:10], msg, kp.Sign(msg)) {
		t.Fatal("truncated key accepted")
	}
}

func TestIssueAndCheck(t *testing.T) {
	r := newTestRegistry(t)
	kp := MustGenerate()
	subj := names.Principal("umn.edu", "karnik")
	cert, err := r.Issue(subj, kp.Public, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verifier().Check(cert, time.Now()); err != nil {
		t.Fatalf("fresh certificate rejected: %v", err)
	}
}

func TestCheckExpired(t *testing.T) {
	r := newTestRegistry(t)
	kp := MustGenerate()
	cert, err := r.Issue(names.Principal("umn.edu", "u"), kp.Public, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verifier().Check(cert, time.Now().Add(2*time.Hour)); err == nil {
		t.Fatal("expired certificate accepted")
	}
}

func TestCheckNotYetValid(t *testing.T) {
	r := newTestRegistry(t)
	kp := MustGenerate()
	cert, _ := r.Issue(names.Principal("umn.edu", "u"), kp.Public, time.Hour)
	if err := r.Verifier().Check(cert, time.Now().Add(-time.Hour)); err == nil {
		t.Fatal("not-yet-valid certificate accepted")
	}
}

func TestCheckTamperedSubject(t *testing.T) {
	r := newTestRegistry(t)
	kp := MustGenerate()
	cert, _ := r.Issue(names.Principal("umn.edu", "alice"), kp.Public, time.Hour)
	cert.Subject = names.Principal("umn.edu", "mallory") // impersonation attempt
	if err := r.Verifier().Check(cert, time.Now()); err == nil {
		t.Fatal("tampered certificate accepted")
	}
}

func TestCheckTamperedKey(t *testing.T) {
	r := newTestRegistry(t)
	kp := MustGenerate()
	cert, _ := r.Issue(names.Principal("umn.edu", "alice"), kp.Public, time.Hour)
	cert.PublicKey = MustGenerate().Public // key substitution attack
	if err := r.Verifier().Check(cert, time.Now()); err == nil {
		t.Fatal("key-substituted certificate accepted")
	}
}

func TestCheckWrongCA(t *testing.T) {
	r1 := newTestRegistry(t)
	r2, _ := NewRegistry(names.Principal("evil.org", "ca"))
	kp := MustGenerate()
	cert, _ := r2.Issue(names.Principal("evil.org", "mallory"), kp.Public, time.Hour)
	if err := r1.Verifier().Check(cert, time.Now()); err == nil {
		t.Fatal("certificate from untrusted CA accepted")
	}
}

func TestCheckForgedIssuerName(t *testing.T) {
	r1 := newTestRegistry(t)
	r2, _ := NewRegistry(r1.CAName()) // same name, different key
	kp := MustGenerate()
	cert, _ := r2.Issue(names.Principal("x", "y"), kp.Public, time.Hour)
	if err := r1.Verifier().Check(cert, time.Now()); err == nil {
		t.Fatal("certificate signed by impostor CA accepted")
	}
}

func TestRevoke(t *testing.T) {
	r := newTestRegistry(t)
	id, err := NewIdentity(r, names.Principal("umn.edu", "u"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	v := r.Verifier()
	if err := v.Check(id.Cert, time.Now()); err != nil {
		t.Fatal(err)
	}
	r.Revoke(id.Name)
	if err := v.Check(id.Cert, time.Now()); err == nil {
		t.Fatal("revoked certificate accepted")
	}
	// Re-issuing clears the revocation.
	cert2, err := r.Issue(id.Name, id.Keys.Public, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Check(cert2, time.Now()); err != nil {
		t.Fatalf("re-issued certificate rejected: %v", err)
	}
}

func TestLookup(t *testing.T) {
	r := newTestRegistry(t)
	subj := names.Principal("umn.edu", "u")
	if _, ok := r.Lookup(subj); ok {
		t.Fatal("lookup before issue succeeded")
	}
	id, _ := NewIdentity(r, subj, time.Hour)
	got, ok := r.Lookup(subj)
	if !ok || !got.NotAfter.Equal(id.Cert.NotAfter) {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
}

func TestIssueRejectsBadInputs(t *testing.T) {
	r := newTestRegistry(t)
	kp := MustGenerate()
	if _, err := r.Issue(names.Name{}, kp.Public, time.Hour); err == nil {
		t.Fatal("issue with zero name accepted")
	}
	if _, err := r.Issue(names.Principal("a", "b"), kp.Public[:5], time.Hour); err == nil {
		t.Fatal("issue with truncated key accepted")
	}
}

func TestExportImportSharesTrust(t *testing.T) {
	// Process A creates the CA and certifies a server; process B
	// imports the CA and certifies its own server. Each side's
	// verifier must accept the other's certificates.
	regA := newTestRegistry(t)
	data, err := regA.Export()
	if err != nil {
		t.Fatal(err)
	}
	regB, err := ImportRegistry(data)
	if err != nil {
		t.Fatal(err)
	}
	if regB.CAName() != regA.CAName() {
		t.Fatalf("CA name changed: %v", regB.CAName())
	}
	idA, err := NewIdentity(regA, names.Server("umn.edu", "proc-a"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := NewIdentity(regB, names.Server("umn.edu", "proc-b"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := regB.Verifier().Check(idA.Cert, time.Now()); err != nil {
		t.Fatalf("B rejects A's cert: %v", err)
	}
	if err := regA.Verifier().Check(idB.Cert, time.Now()); err != nil {
		t.Fatalf("A rejects B's cert: %v", err)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := ImportRegistry([]byte("junk")); err == nil {
		t.Fatal("garbage imported")
	}
}

// Property: any bit flip in the signature invalidates it.
func TestQuickSignatureBitFlips(t *testing.T) {
	kp := MustGenerate()
	msg := []byte("the quick brown agent jumps over the lazy server")
	sig := kp.Sign(msg)
	f := func(pos uint16, bit uint8) bool {
		mut := make([]byte, len(sig))
		copy(mut, sig)
		mut[int(pos)%len(mut)] ^= 1 << (bit % 8)
		return !Verify(kp.Public, msg, mut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
