// Package analysis is a deliberately small, stdlib-only re-statement
// of the golang.org/x/tools/go/analysis driver contract: an Analyzer
// is a named check, a Pass hands it one type-checked package, and
// diagnostics flow back through Pass.Report. The repository vets its
// agents' bytecode with internal/vm/analysis; this package is the same
// idea one level up, applied to the platform's own Go source — and it
// exists in-tree because the checker must build with no module
// downloads (the x/tools API shape is kept so a future swap to the
// real framework is mechanical).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in findings, -rules listings and
	// //lint:allow suppressions. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by repolint -rules.
	Doc string
	// Run applies the analyzer to one package. It reports problems via
	// pass.Report and returns an error only for operational failures
	// (findings are not errors).
	Run func(*Pass) error
}

// Pass is the interface between the driver and one analyzer applied to
// one package: the syntax, the type information, and the report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package (Pkg.Path() is the import path).
	Pkg *types.Package
	// TypesInfo records types, definitions, uses and selections for
	// every expression in Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf is the printf convenience over Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Preorder walks every file of the pass in depth-first preorder,
// invoking f on each node (the inspector-lite the analyzers share).
func (p *Pass) Preorder(f func(ast.Node)) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n != nil {
				f(n)
			}
			return true
		})
	}
}
