package analysis

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a named function (a func-typed
// variable, a conversion, a builtin).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// IsPkgFunc reports whether the call invokes the package-level function
// pkgPath.name (methods never match).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := CalleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}

// NamedOrigin unwraps pointers and generic instantiation to the origin
// named type, or nil.
func NamedOrigin(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Origin()
}

// IsNamedType reports whether t (possibly behind a pointer or generic
// instantiation) is the named type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	named := NamedOrigin(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}
