// Package coarseclock enforces the coarse-clock consolidation from the
// lock-free access-path work (docs/PROTOCOLS.md §8.2): hot paths under
// internal/ run ONE process-wide millisecond ticker
// (internal/resource/clock.go) instead of allocating a time.Timer per
// backoff, deadline or redelivery pause. The analyzer bans the raw
// allocating primitives — time.NewTimer, time.NewTicker, time.Sleep,
// time.After, time.AfterFunc, time.Tick — everywhere under
// repro/internal/ except the two sanctioned sites: the timer wheel
// itself (internal/resource/clock.go, which owns the one real ticker)
// and internal/netsim (simulated link delays are test infrastructure,
// not a hot path). Violators are directed to resource.CoarseSleep and
// resource.CoarseTime. time.Now and duration arithmetic stay legal;
// only the timer-allocating calls are the discipline.
package coarseclock

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
)

// banned are the time package functions that allocate a timer (or park
// the goroutine on a private one).
var banned = map[string]bool{
	"NewTimer":  true,
	"NewTicker": true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
}

// scopePrefix limits the check to the platform's internal packages;
// cmd/ and examples/ are not hot paths.
const scopePrefix = "repro/internal/"

// allowedPkgs may use raw timers wholesale.
var allowedPkgs = map[string]bool{
	"repro/internal/netsim": true,
}

// allowedFiles maps package path -> base filenames allowed within it.
var allowedFiles = map[string]map[string]bool{
	"repro/internal/resource": {"clock.go": true},
}

// Analyzer flags raw time.Timer/Ticker allocation in internal/ hot
// paths, pointing at resource.CoarseSleep / resource.CoarseTime.
var Analyzer = &analysis.Analyzer{
	Name: "coarseclock",
	Doc: "internal/ hot paths must use the shared coarse clock (resource.CoarseSleep/CoarseTime) " +
		"instead of allocating time.Timer/time.Ticker per wait; only the timer wheel " +
		"(internal/resource/clock.go) and internal/netsim hold raw timers",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg.Path()
	if !strings.HasPrefix(pkg, scopePrefix) || allowedPkgs[pkg] {
		return nil
	}
	fileAllow := allowedFiles[pkg]
	for i, file := range pass.Files {
		if fileAllow != nil {
			base := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
			if fileAllow[base] {
				continue
			}
		}
		ast.Inspect(pass.Files[i], func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := analysis.CalleeFunc(pass.TypesInfo, call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "time" || !banned[f.Name()] {
				return true
			}
			// Methods named like the banned functions (time.Time.After,
			// expiry comparisons) are not timer allocations.
			if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			hint := "resource.CoarseSleep"
			if f.Name() == "NewTicker" || f.Name() == "Tick" {
				hint = "the shared ticker in internal/resource/clock.go (resource.CoarseSleep in a loop)"
			}
			pass.Reportf(call.Pos(),
				"raw time.%s in internal/ hot path; use %s (coarse-clock consolidation, docs/PROTOCOLS.md §8.2)",
				f.Name(), hint)
			return true
		})
	}
	return nil
}
