package coarseclock_test

import (
	"testing"

	"repro/internal/lint/analyzers/coarseclock"
	"repro/internal/lint/linttest"
)

func TestCoarseClock(t *testing.T) {
	linttest.Run(t, coarseclock.Analyzer, "testdata")
}
