// Package netsim is allowlisted wholesale: simulated link delays are
// test infrastructure, not a hot path.
package netsim

import "time"

// Delay models a link delay with a real timer — sanctioned.
func Delay(d time.Duration) {
	t := time.NewTimer(d)
	<-t.C
}
