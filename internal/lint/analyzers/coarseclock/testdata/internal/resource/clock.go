// Package resource mimics the timer wheel's home: clock.go is the one
// file allowed to hold the real ticker.
package resource

import "time"

// StartClock owns the process's one raw ticker — allowlisted by file.
func StartClock() {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
}
