package resource

import "time"

// Elsewhere in the package the allowlist does not apply: only clock.go
// may allocate timers.
func Elsewhere(d time.Duration) {
	time.Sleep(d) // want "raw time.Sleep"
}
