// Package server is in coarseclock scope: raw timer allocation is a
// finding, clock reads and expiry comparisons are not, and an inline
// //lint:allow with a reason silences a site.
package server

import "time"

// Reap allocates a ticker per call — exactly what the coarse-clock
// consolidation removed from the hot paths.
func Reap(d time.Duration) {
	t := time.NewTicker(d) // want "raw time.NewTicker"
	defer t.Stop()
	time.Sleep(d)   // want "raw time.Sleep"
	<-time.After(d) // want "raw time.After"
}

// Renamed imports do not dodge the type-aware check.
func Renamed(d time.Duration) {
	sleep(d)
}

func sleep(d time.Duration) {
	_ = time.NewTimer(d) // want "raw time.NewTimer"
}

// Expired uses time.Time.After, the comparison method — clean.
func Expired(deadline time.Time) bool {
	return time.Now().After(deadline)
}

// Allowed documents why this one site may keep a raw timer.
func Allowed(d time.Duration) {
	time.Sleep(d) //lint:allow coarseclock fixture demonstrates the suppression grammar
}

// AllowedAbove carries the annotation on the preceding line.
func AllowedAbove(d time.Duration) {
	//lint:allow coarseclock the annotation may ride the line above
	time.Sleep(d)
}

// WrongName suppresses a different analyzer, so the finding stands.
func WrongName(d time.Duration) {
	time.Sleep(d) //lint:allow errclass mismatched analyzer name // want "raw time.Sleep"
}
