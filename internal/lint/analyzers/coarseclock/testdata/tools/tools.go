// Package tools sits outside internal/: the coarse-clock discipline
// governs hot paths only.
package tools

import "time"

// Wait may sleep however it likes.
func Wait(d time.Duration) {
	time.Sleep(d)
}
