// Package cowsnapshot machine-checks the copy-on-write snapshot
// discipline from the lock-free access-path work (docs/PROTOCOLS.md
// §8.1): a value loaded from an atomic.Pointer is a published,
// immutable generation shared with every concurrent reader. Mutating
// it — assigning to its fields, its map entries, its slice elements,
// or deleting from its maps — is a data race that -race only catches
// if a reader happens to overlap. The analyzer flags any write whose
// destination is reached from an atomic.Pointer[T].Load() result in
// the copy-on-write packages (internal/policy, internal/registry,
// internal/resource), unless the value was first deep-copied.
//
// The taint rules are intra-procedural and deliberately simple:
// a Load() call is tainted; a variable assigned a tainted expression
// is tainted; field selection, indexing, dereference and range over a
// tainted value propagate taint (range only when the element is
// reference-shaped — a struct copy is a genuine copy); a call result
// is fresh (clone helpers therefore launder taint naturally, which is
// the sanctioned idiom: registry.clone, resource.copyMethods, the
// fresh-ruleSet construction in policy.mutate). One refinement keeps
// accessor wrappers honest: an intra-package function that *returns* a
// Load() result (like registry.load) taints its call results too.
// Functions whose doc comment carries //cow:clone are exempt wholesale
// — that marker names the package's documented deep-copy helper.
package cowsnapshot

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// scopes are the copy-on-write packages the discipline governs.
var scopes = []string{
	"repro/internal/policy",
	"repro/internal/registry",
	"repro/internal/resource",
}

// Analyzer flags mutations of values reached from atomic.Pointer.Load
// in the copy-on-write packages.
var Analyzer = &analysis.Analyzer{
	Name: "cowsnapshot",
	Doc: "values loaded from an atomic.Pointer are immutable published snapshots " +
		"(docs/PROTOCOLS.md §8.1); deep-copy via the package's clone helper before mutating",
	Run: run,
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, s := range scopes {
		if pass.Pkg.Path() == s || strings.HasPrefix(pass.Pkg.Path(), s+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	sources := loadReturners(pass)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isCloneHelper(fd) {
				continue
			}
			checkFunc(pass, sources, fd)
		}
	}
	return nil
}

// isCloneHelper reports whether the function is annotated //cow:clone.
func isCloneHelper(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "cow:clone" {
			return true
		}
	}
	return false
}

// isPointerLoad reports whether the call is (atomic.Pointer[T]).Load.
func isPointerLoad(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	return analysis.IsNamedType(s.Recv(), "sync/atomic", "Pointer")
}

// loadReturners finds intra-package functions that return a Load()
// result (directly or through a local), so their call sites taint too.
func loadReturners(pass *analysis.Pass) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isCloneHelper(fd) {
				continue
			}
			// Locals assigned straight from a Load call.
			loaded := make(map[types.Object]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, rhs := range as.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isPointerLoad(pass.TypesInfo, call) {
						continue
					}
					if id, ok := as.Lhs[i].(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							loaded[obj] = true
						} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
							loaded[obj] = true
						}
					}
				}
				return true
			})
			returnsLoad := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					switch e := ast.Unparen(res).(type) {
					case *ast.CallExpr:
						if isPointerLoad(pass.TypesInfo, e) {
							returnsLoad = true
						}
					case *ast.Ident:
						if loaded[pass.TypesInfo.Uses[e]] {
							returnsLoad = true
						}
					}
				}
				return true
			})
			if returnsLoad {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = true
				}
			}
		}
	}
	return out
}

// checker tracks taint through one function body.
type checker struct {
	pass    *analysis.Pass
	sources map[*types.Func]bool
	tainted map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, sources map[*types.Func]bool, fd *ast.FuncDecl) {
	c := &checker{pass: pass, sources: sources, tainted: make(map[types.Object]bool)}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.IncDecStmt:
			c.checkWrite(n.X, n.Pos())
		case *ast.RangeStmt:
			c.rangeStmt(n)
		case *ast.CallExpr:
			c.builtinMutation(n)
		}
		return true
	})
}

// assign propagates taint across an assignment and flags writes whose
// destination is reached from a snapshot.
func (c *checker) assign(as *ast.AssignStmt) {
	// Flag tainted destinations first (a write through a selector or
	// index rooted in a snapshot).
	for _, lhs := range as.Lhs {
		c.checkWrite(lhs, lhs.Pos())
	}
	// Then propagate: x := <tainted> taints x; x := <fresh> clears it.
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		c.tainted[obj] = c.taintedExpr(as.Rhs[i])
	}
}

// rangeStmt taints reference-shaped loop variables drawn from a
// tainted container: the *pointers* in a loaded map still point into
// the shared snapshot even though the map header was copied.
func (c *checker) rangeStmt(r *ast.RangeStmt) {
	if !c.taintedExpr(r.X) || r.Value == nil {
		return
	}
	id, ok := ast.Unparen(r.Value).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil || !referenceShaped(obj.Type()) {
		return
	}
	c.tainted[obj] = true
}

// builtinMutation flags delete(m, k) and clear(m) on tainted maps.
func (c *checker) builtinMutation(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || (id.Name != "delete" && id.Name != "clear") || len(call.Args) == 0 {
		return
	}
	if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if c.taintedExpr(call.Args[0]) {
		c.report(call.Pos(), id.Name)
	}
}

// checkWrite reports a write whose destination expression is reached
// from a snapshot: a selector, index or dereference rooted in taint.
func (c *checker) checkWrite(lhs ast.Expr, pos token.Pos) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if c.taintedExpr(e.X) {
			c.report(pos, "field write")
		}
	case *ast.IndexExpr:
		if c.taintedExpr(e.X) {
			c.report(pos, "element write")
		}
	case *ast.StarExpr:
		if c.taintedExpr(e.X) {
			c.report(pos, "write through pointer")
		}
	}
}

func (c *checker) report(pos token.Pos, what string) {
	c.pass.Reportf(pos,
		"%s mutates a copy-on-write snapshot reached from atomic.Pointer.Load; "+
			"deep-copy via the package's clone helper first (docs/PROTOCOLS.md §8.1)", what)
}

// taintedExpr reports whether the expression's value is reached from a
// loaded snapshot.
func (c *checker) taintedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[e]
		}
		return obj != nil && c.tainted[obj]
	case *ast.SelectorExpr:
		return c.taintedExpr(e.X)
	case *ast.IndexExpr:
		return c.taintedExpr(e.X)
	case *ast.StarExpr:
		return c.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return c.taintedExpr(e.X)
	case *ast.CallExpr:
		if isPointerLoad(c.pass.TypesInfo, e) {
			return true
		}
		if fn := analysis.CalleeFunc(c.pass.TypesInfo, e); fn != nil && c.sources[fn] {
			return true
		}
		return false
	default:
		return false
	}
}

// referenceShaped reports whether mutating through a value of this
// type reaches shared memory.
func referenceShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}
