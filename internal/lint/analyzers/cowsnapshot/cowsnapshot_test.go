package cowsnapshot_test

import (
	"testing"

	"repro/internal/lint/analyzers/cowsnapshot"
	"repro/internal/lint/linttest"
)

func TestCOWSnapshot(t *testing.T) {
	linttest.Run(t, cowsnapshot.Analyzer, "testdata")
}
