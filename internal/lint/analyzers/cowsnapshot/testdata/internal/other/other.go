// Package other sits outside the copy-on-write packages: the same
// write pattern is not the analyzer's business here.
package other

import "sync/atomic"

type state struct{ n int }

type Box struct {
	snap atomic.Pointer[state]
}

// Mutate would be a finding under internal/policy; here it is out of
// scope (whatever discipline this package has, cowsnapshot does not
// define it).
func (b *Box) Mutate() {
	cur := b.snap.Load()
	cur.n = 1
}
