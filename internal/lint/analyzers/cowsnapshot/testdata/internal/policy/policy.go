// Package policy reproduces the copy-on-write shapes the cowsnapshot
// analyzer must judge: direct and aliased mutation of a loaded
// snapshot (findings), and the sanctioned copy-then-publish idiom
// (clean). The fixture module is named repro so the analyzer's package
// scoping matches the real tree.
package policy

import "sync/atomic"

type entry struct{ n int }

type ruleSet struct {
	rules  []int
	groups map[string][]string
	byPtr  map[string]*entry
}

// Engine mirrors the real policy engine's COW core.
type Engine struct {
	snap atomic.Pointer[ruleSet]
}

// BadDirect mutates the loaded generation in place.
func (e *Engine) BadDirect() {
	cur := e.snap.Load()
	cur.rules = append(cur.rules, 1) // want "mutates a copy-on-write snapshot"
}

// BadMapWrite writes a map entry of the loaded generation.
func (e *Engine) BadMapWrite(k string) {
	cur := e.snap.Load()
	cur.groups[k] = nil // want "mutates a copy-on-write snapshot"
}

// BadDelete deletes through an unassigned Load expression.
func (e *Engine) BadDelete(k string) {
	delete(e.snap.Load().groups, k) // want "mutates a copy-on-write snapshot"
}

// load is the accessor-wrapper shape: its callers' results are
// snapshots too.
func (e *Engine) load() *ruleSet { return e.snap.Load() }

// BadViaAccessor mutates through the wrapper.
func (e *Engine) BadViaAccessor() {
	cur := e.load()
	cur.rules[0] = 1 // want "mutates a copy-on-write snapshot"
}

// BadRangePointer mutates shared structs reached through a loaded map:
// copying the map header does not copy what its pointers reach.
func (e *Engine) BadRangePointer() {
	for _, en := range e.snap.Load().byPtr {
		en.n = 1 // want "mutates a copy-on-write snapshot"
	}
}

// BadIncrement bumps a counter inside the shared generation.
func (e *Engine) BadIncrement() {
	cur := e.snap.Load()
	cur.byPtr["x"].n++ // want "mutates a copy-on-write snapshot"
}

// Good is the sanctioned idiom: build a fresh successor from the
// current generation, mutate the copy, publish.
func (e *Engine) Good(k string) {
	cur := e.snap.Load()
	ns := &ruleSet{
		rules:  append([]int(nil), cur.rules...),
		groups: make(map[string][]string, len(cur.groups)),
	}
	for g, ms := range cur.groups {
		ns.groups[g] = ms
	}
	ns.groups[k] = nil
	ns.rules = append(ns.rules, 2)
	e.snap.Store(ns)
}

// clone is the package's documented deep-copy helper; //cow:clone
// exempts its body and keeps its results fresh.
//
//cow:clone
func (e *Engine) clone() *ruleSet {
	cur := e.snap.Load()
	out := &ruleSet{rules: append([]int(nil), cur.rules...)}
	return out
}

// GoodViaClone mutates a clone, never the loaded original.
func (e *Engine) GoodViaClone() {
	ns := e.clone()
	ns.rules = append(ns.rules, 3)
	e.snap.Store(ns)
}

// GoodReassigned shows taint clearing on reassignment: after cur is
// rebound to a fresh value, writes through it are fine.
func (e *Engine) GoodReassigned() {
	cur := e.snap.Load()
	cur = &ruleSet{rules: append([]int(nil), cur.rules...)}
	cur.rules[0] = 9
	e.snap.Store(cur)
}
