// Package errclass machine-checks the error-classification discipline
// on the send paths (docs/PROTOCOLS.md §7): every error that escapes
// dispatch, dead-letter redelivery or the transfer protocol is routed
// by internal/retry's classifier, which decides between retrying a
// transient failure and failing an agent home permanently. A bare
// errors.New or non-wrapping fmt.Errorf defeats that routing — the
// default classifier can only treat it as transient, so a genuinely
// permanent condition would be retried until the budget burns out.
//
// The analyzer inspects the configured send-path files and flags any
// return whose error-position result is a direct errors.New(...) call,
// or a fmt.Errorf(...) whose format string contains no %w verb. Legal
// shapes: wrapping with retry.Permanent, %w-wrapping a sentinel or an
// upstream error (classification flows through errors.Is/Unwrap), and
// returning package-level sentinels (the classifier matches them by
// identity; their errors.New sits in a var block, not a return).
// Function literals are checked too — a bare constructor inside a
// retry.Do callback is exactly an unclassified error entering the
// retry loop.
package errclass

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
)

// scope maps package path -> base filenames checked within it; nil
// means every file of the package.
var scope = map[string]map[string]bool{
	"repro/internal/transfer": nil,
	"repro/internal/server": {
		"dispatch.go":   true,
		"deadletter.go": true,
	},
}

// Analyzer flags unclassified error constructors escaping send paths.
var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc: "errors escaping the send/transfer paths must be classified for internal/retry: " +
		"wrap with retry.Permanent or %w-wrap a classified error; bare errors.New / " +
		"non-wrapping fmt.Errorf defeat transient/permanent routing (docs/PROTOCOLS.md §7)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	files, ok := scope[pass.Pkg.Path()]
	if !ok {
		return nil
	}
	for i, file := range pass.Files {
		if files != nil {
			base := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
			if !files[base] {
				continue
			}
		}
		checkFile(pass, pass.Files[i])
	}
	return nil
}

// checkFile walks every function (declaration or literal), attributing
// each return statement to the nearest enclosing function signature.
func checkFile(pass *analysis.Pass, file *ast.File) {
	var walk func(n ast.Node, sig *types.Signature)
	walk = func(n ast.Node, sig *types.Signature) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.FuncDecl:
				if node.Body == nil {
					return false
				}
				if fn, ok := pass.TypesInfo.Defs[node.Name].(*types.Func); ok {
					walk(node.Body, fn.Type().(*types.Signature))
					return false
				}
				return false
			case *ast.FuncLit:
				if t, ok := pass.TypesInfo.Types[node].Type.(*types.Signature); ok {
					walk(node.Body, t)
				}
				return false
			case *ast.ReturnStmt:
				checkReturn(pass, sig, node)
			}
			return true
		})
	}
	walk(file, nil)
}

// checkReturn flags unclassified constructors in the error-result
// positions of the return.
func checkReturn(pass *analysis.Pass, sig *types.Signature, ret *ast.ReturnStmt) {
	if sig == nil || ret.Results == nil {
		return
	}
	results := sig.Results()
	if results.Len() != len(ret.Results) {
		return // `return f()` forwarding: the callee is checked at its own returns
	}
	for i := 0; i < results.Len(); i++ {
		if !isErrorType(results.At(i).Type()) {
			continue
		}
		call, ok := ast.Unparen(ret.Results[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		switch {
		case analysis.IsPkgFunc(pass.TypesInfo, call, "errors", "New"):
			pass.Reportf(call.Pos(),
				"bare errors.New escapes a send path unclassified; wrap with retry.Permanent "+
					"or return a package-level sentinel (docs/PROTOCOLS.md §7)")
		case analysis.IsPkgFunc(pass.TypesInfo, call, "fmt", "Errorf"):
			if !wrapsError(call) {
				pass.Reportf(call.Pos(),
					"fmt.Errorf without %%w escapes a send path unclassified; wrap a classified "+
						"error with %%w or use retry.Permanent (docs/PROTOCOLS.md §7)")
			}
		}
	}
}

// wrapsError reports whether the fmt.Errorf call's format literal
// contains a %w verb. A non-literal format cannot be judged; give it
// the benefit of the doubt.
func wrapsError(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return true
	}
	return strings.Contains(lit.Value, "%w")
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
