package errclass_test

import (
	"testing"

	"repro/internal/lint/analyzers/errclass"
	"repro/internal/lint/linttest"
)

func TestErrClass(t *testing.T) {
	linttest.Run(t, errclass.Analyzer, "testdata")
}
