// Package retry stubs the classification wrappers the errclass fixture
// exercises.
package retry

type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent marks err as not worth retrying.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}
