// Package server: only the send-path files (dispatch.go,
// deadletter.go) are in errclass scope.
package server

import "errors"

// SendToAddr mimics the real shape that was fixed in the dogfooding
// pass: a bare construction on the dispatch path.
func SendToAddr(havePool bool) error {
	if !havePool {
		return errors.New("server: config needs Dial") // want "bare errors.New"
	}
	return nil
}
