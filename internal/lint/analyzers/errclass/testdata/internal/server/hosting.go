package server

import "errors"

// Admit lives outside the send-path files: hosting errors surface to
// the local caller, not to the retry loop, so the discipline does not
// apply here.
func Admit(full bool) error {
	if full {
		return errors.New("server: at capacity")
	}
	return nil
}
