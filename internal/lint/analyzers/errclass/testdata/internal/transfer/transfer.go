// Package transfer reproduces the send-path error shapes errclass must
// judge: bare constructors escaping (findings) versus sentinels,
// %w-wrapping and retry.Permanent (clean).
package transfer

import (
	"errors"
	"fmt"

	"repro/internal/retry"
)

// ErrAuth is a package-level sentinel: the classifier matches it by
// identity, so its errors.New is fine where it is.
var ErrAuth = errors.New("transfer: peer authentication failed")

// Bad escapes a bare constructor: the classifier can only guess.
func Bad() error {
	return errors.New("boom") // want "bare errors.New"
}

// BadErrorf formats without wrapping: same problem, fancier text.
func BadErrorf(frame int) error {
	return fmt.Errorf("transfer: frame %d failed", frame) // want "fmt.Errorf without %w"
}

// GoodWrap forwards the upstream error's classification through %w.
func GoodWrap(err error) error {
	return fmt.Errorf("transfer: encode: %w", err)
}

// GoodSentinel wraps a sentinel the classifier knows.
func GoodSentinel(peer string) error {
	return fmt.Errorf("%w: bad transcript signature from %s", ErrAuth, peer)
}

// GoodPermanent pins the class explicitly.
func GoodPermanent() error {
	return retry.Permanent(errors.New("config needs Dial"))
}

// BadInClosure is the retry-callback shape: a bare constructor inside
// the op is exactly an unclassified error entering the retry loop.
func BadInClosure(ready bool) error {
	op := func() error {
		if !ready {
			return errors.New("not ready") // want "bare errors.New"
		}
		return nil
	}
	return op()
}

// GoodVariable returns an error held in a variable: out of the
// analyzer's one-step scope by design.
func GoodVariable() error {
	err := errors.New("pre-built")
	return err
}
