// Package fusedwire enforces the wire-canonicality half of the VM fast
// path: vm.Prepare builds process-local execution copies whose fused
// superinstructions must never appear in anything serialized (agent
// bundles, digests, transfer envelopes). The transfer layer already
// rejects fused code dynamically (agent.ErrFusedCode); this analyzer
// closes the loop statically by keeping Prepare calls inside the two
// packages that own the canonical/prepared split — the VM itself and
// the loader, whose namespaces hand out prepared copies while keeping
// the canonical bundle for re-serialization. Any other caller is one
// refactor away from routing a prepared module into an agent's Code.
package fusedwire

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// vmPkg owns Prepare.
const vmPkg = "repro/internal/vm"

// allowed are the import-path prefixes that may call vm.Prepare: the
// defining package (and its subpackages) and the loader, which builds
// the per-namespace execution copies.
var allowed = []string{
	"repro/internal/vm",
	"repro/internal/loader",
}

// Analyzer flags references to vm.Prepare outside the allowlisted
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "fusedwire",
	Doc: "only internal/vm and internal/loader may call vm.Prepare; prepared (fused) modules are " +
		"process-local execution state and must never reach serialization paths",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, pfx := range allowed {
		if pass.Pkg.Path() == pfx || strings.HasPrefix(pass.Pkg.Path(), pfx+"/") {
			return nil
		}
	}
	pass.Preorder(func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		if fn.Pkg().Path() != vmPkg || fn.Name() != "Prepare" {
			return
		}
		pass.Reportf(id.Pos(),
			"package %s calls vm.Prepare; prepared modules are process-local — resolve execution copies through the loader instead",
			pass.Pkg.Path())
	})
	return nil
}
