package fusedwire_test

import (
	"testing"

	"repro/internal/lint/analyzers/fusedwire"
	"repro/internal/lint/linttest"
)

func TestFusedWire(t *testing.T) {
	linttest.Run(t, fusedwire.Analyzer, "testdata")
}
