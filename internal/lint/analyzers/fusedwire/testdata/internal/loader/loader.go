// Package loader is allowlisted: namespaces hand out prepared
// execution copies.
package loader

import "repro/internal/vm"

// Load prepares a module for execution.
func Load(m *vm.Module) *vm.Module { return vm.Prepare(m) }
