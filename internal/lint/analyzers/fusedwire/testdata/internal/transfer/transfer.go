// Package transfer is outside the allowlist; calling vm.Prepare here
// is a finding however the import is spelled.
package transfer

import (
	"repro/internal/vm"
	v "repro/internal/vm"
)

var bad = vm.Prepare(&vm.Module{}) // want "resolve execution copies through the loader"

var renamed = v.Prepare(&v.Module{}) // want "resolve execution copies through the loader"

var fine = &vm.Module{Name: "canonical"}
