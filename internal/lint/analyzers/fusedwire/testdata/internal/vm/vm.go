// Package vm is the fixture stand-in for the real VM: it owns Prepare
// and may call it freely.
package vm

// Module is a stand-in for the bytecode module.
type Module struct {
	Name string
}

// Prepare builds the process-local execution copy.
func Prepare(m *Module) *Module { return &Module{Name: m.Name} }

var self = Prepare(&Module{})
