// Package lockorder machine-checks the mutex partial order documented
// in docs/PROTOCOLS.md §8.5. The allowed order is not hard-coded in
// the analyzer: it is derived from structured comments on the mutex
// fields themselves (see docs/ANALYZERS.md for the grammar):
//
//	//lock:order visitMu < parkMu
//
// declares that visitMu may be held while acquiring parkMu. Every
// sync.Mutex / sync.RWMutex field of a struct that carries at least
// one //lock:order line becomes a participating lock; acquiring a
// participating lock while holding another one is legal only along a
// declared edge (edges compose transitively). Everything else — the
// reverse nesting, any undeclared pair, re-acquiring a lock already
// held — is a finding.
//
// The check is flow-approximate but call-aware: within a function the
// held set is tracked through straight-line code and into nested
// blocks; and when a function is called while locks are held, the
// callee's own direct acquisitions are checked against the caller's
// held set for one level of intra-package inlining. That one level is
// what catches the real shapes in internal/server: a helper that locks
// parkMu is fine on its own and fine from Await (visitMu < parkMu is
// declared), but a finding from anything holding finalMu or netMu.
//
// Approximations (all toward false negatives, never silent deadlock
// of the checker itself): function literals are analyzed with an empty
// held set (goroutines start fresh; synchronous closures are the rare
// miss), deferred unlocks hold until function end, and a lock released
// inside a nested block is considered released only within that block.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer enforces the annotated mutex partial order.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "locks annotated with //lock:order comments must only nest along the declared " +
		"partial order (docs/PROTOCOLS.md §8.5); any other nesting is a deadlock risk",
	Run: run,
}

// lockID identifies one participating lock: a mutex field of a named
// struct type.
type lockID struct {
	typ   *types.TypeName
	field string
}

func (l lockID) String() string { return l.typ.Name() + "." + l.field }

// orderLine matches one //lock:order annotation; the chain form
// "a < b < c" declares a<b and b<c.
var orderLine = regexp.MustCompile(`^lock:order\s+(.+)$`)

func run(pass *analysis.Pass) error {
	locks, order := collectAnnotations(pass)
	if len(locks) == 0 {
		return nil
	}
	acquires := collectAcquires(pass, locks)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, locks: locks, order: order, acquires: acquires}
			w.block(fd.Body.List, nil)
		}
	}
	return nil
}

// --- annotation collection ---------------------------------------------

// collectAnnotations scans struct declarations for //lock:order lines
// and returns the participating lock fields (keyed by their field
// object) and the transitive closure of the declared order.
func collectAnnotations(pass *analysis.Pass) (map[*types.Var]lockID, map[lockID]map[lockID]bool) {
	locks := make(map[*types.Var]lockID)
	order := make(map[lockID]map[lockID]bool)

	addEdge := func(a, b lockID) {
		if order[a] == nil {
			order[a] = make(map[lockID]bool)
		}
		order[a][b] = true
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				// Gather this struct's declared edges from the type's
				// doc comment and every field's doc/line comments.
				var edges [][2]string
				for _, cg := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					edges = append(edges, parseOrder(pass, cg)...)
				}
				mutexFields := make(map[string]*types.Var)
				for _, f := range st.Fields.List {
					edges = append(edges, parseOrder(pass, f.Doc)...)
					edges = append(edges, parseOrder(pass, f.Comment)...)
					for _, name := range f.Names {
						v, ok := pass.TypesInfo.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if analysis.IsNamedType(v.Type(), "sync", "Mutex") ||
							analysis.IsNamedType(v.Type(), "sync", "RWMutex") {
							mutexFields[name.Name] = v
						}
					}
				}
				if len(edges) == 0 {
					continue
				}
				// An annotated struct enrolls all its mutex fields.
				for name, v := range mutexFields {
					locks[v] = lockID{typ: tn, field: name}
				}
				for _, e := range edges {
					a, aok := mutexFields[e[0]]
					b, bok := mutexFields[e[1]]
					if !aok || !bok {
						pass.Reportf(ts.Pos(),
							"//lock:order names %q < %q but %s has no such mutex field",
							e[0], e[1], tn.Name())
						continue
					}
					addEdge(locks[a], locks[b])
				}
			}
		}
	}

	// Transitive closure (the sets are tiny).
	for changed := true; changed; {
		changed = false
		for a, bs := range order {
			for b := range bs {
				for c := range order[b] {
					if !order[a][c] {
						addEdge(a, c)
						changed = true
					}
				}
			}
		}
	}
	return locks, order
}

// parseOrder extracts the [before, after] pairs declared in one
// comment group.
func parseOrder(pass *analysis.Pass, cg *ast.CommentGroup) [][2]string {
	if cg == nil {
		return nil
	}
	var out [][2]string
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		m := orderLine.FindStringSubmatch(text)
		if m == nil {
			continue
		}
		parts := strings.Split(m[1], "<")
		if len(parts) < 2 {
			pass.Reportf(c.Pos(), "malformed //lock:order line %q: want \"a < b\"", c.Text)
			continue
		}
		for i := 0; i+1 < len(parts); i++ {
			a, b := strings.TrimSpace(parts[i]), strings.TrimSpace(parts[i+1])
			if a == "" || b == "" {
				pass.Reportf(c.Pos(), "malformed //lock:order line %q: empty lock name", c.Text)
				continue
			}
			out = append(out, [2]string{a, b})
		}
	}
	return out
}

// --- acquisition maps --------------------------------------------------

// lockOp classifies a call as an acquisition or release of a
// participating lock.
type lockOp struct {
	id      lockID
	acquire bool
}

// resolveLockOp decides whether the call is (m).Lock/RLock/Unlock/
// RUnlock on a participating lock field.
func resolveLockOp(pass *analysis.Pass, locks map[*types.Var]lockID, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockOp{}, false
	}
	// The receiver must be a selection of a participating field:
	// s.visitMu.Lock() → inner selector s.visitMu.
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fieldSel, ok := pass.TypesInfo.Selections[inner]
	if !ok || fieldSel.Kind() != types.FieldVal {
		return lockOp{}, false
	}
	v, ok := fieldSel.Obj().(*types.Var)
	if !ok {
		return lockOp{}, false
	}
	id, ok := locks[v]
	if !ok {
		return lockOp{}, false
	}
	return lockOp{id: id, acquire: acquire}, true
}

// collectAcquires records, for every top-level function in the
// package, the participating locks its body acquires directly — the
// data the one-level inlining check consults at call sites.
func collectAcquires(pass *analysis.Pass, locks map[*types.Var]lockID) map[*types.Func][]lockID {
	out := make(map[*types.Func][]lockID)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			var acq []lockID
			seen := make(map[lockID]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if op, ok := resolveLockOp(pass, locks, call); ok && op.acquire && !seen[op.id] {
						seen[op.id] = true
						acq = append(acq, op.id)
					}
				}
				return true
			})
			if len(acq) > 0 {
				out[fn] = acq
			}
		}
	}
	return out
}

// --- the held-set walk -------------------------------------------------

type heldLock struct {
	id  lockID
	pos token.Pos
}

type walker struct {
	pass     *analysis.Pass
	locks    map[*types.Var]lockID
	order    map[lockID]map[lockID]bool
	acquires map[*types.Func][]lockID
}

// block walks statements sequentially, threading the held set; the
// returned slice is the held set at the end of the block.
func (w *walker) block(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range stmts {
		held = w.stmt(s, held)
	}
	return held
}

// branch walks a nested block with a copy of the held set (the parent
// continues with its own set: releases inside a branch are local to
// it, a deliberately conservative choice).
func (w *walker) branch(stmts []ast.Stmt, held []heldLock) {
	w.block(stmts, append([]heldLock(nil), held...))
}

func (w *walker) stmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if op, ok := resolveLockOp(w.pass, w.locks, call); ok {
				if op.acquire {
					w.checkAcquire(call.Pos(), op.id, held)
					return append(held, heldLock{id: op.id, pos: call.Pos()})
				}
				return release(held, op.id)
			}
		}
		w.checkCalls(s, held)
		return held
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// walk (correct: it releases at return). Deferred calls to
		// other functions run with an unknowable held set; skip them.
		if _, ok := resolveLockOp(w.pass, w.locks, s.Call); ok {
			return held
		}
		w.funcLits(s.Call)
		return held
	case *ast.GoStmt:
		// The spawned goroutine starts with nothing held.
		w.funcLits(s.Call)
		return held
	case *ast.AssignStmt, *ast.ReturnStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.checkCalls(s, held)
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.checkCalls(s.Cond, held)
		w.branch(s.Body.List, held)
		if s.Else != nil {
			w.branch([]ast.Stmt{s.Else}, held)
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.branch(s.Body.List, held)
		return held
	case *ast.RangeStmt:
		w.checkCalls(s.X, held)
		w.branch(s.Body.List, held)
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body, held)
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body, held)
			}
		}
		return held
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.branch(cc.Body, held)
			}
		}
		return held
	case *ast.BlockStmt:
		return w.block(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	default:
		return held
	}
}

// checkAcquire validates taking id while holding held.
func (w *walker) checkAcquire(pos token.Pos, id lockID, held []heldLock) {
	for _, h := range held {
		switch {
		case h.id == id:
			w.pass.Reportf(pos, "%s acquired while already held (self-deadlock)", id)
		case !w.order[h.id][id]:
			w.pass.Reportf(pos,
				"%s acquired while holding %s: no //lock:order edge allows this nesting "+
					"(docs/PROTOCOLS.md §8.5)", id, h.id)
		}
	}
}

// checkCalls applies the one-level inlining rule to every call inside
// the node: an intra-package callee's direct acquisitions must be
// legal under the caller's current held set.
func (w *walker) checkCalls(n ast.Node, held []heldLock) {
	ast.Inspect(n, func(node ast.Node) bool {
		if fl, ok := node.(*ast.FuncLit); ok {
			// Closure bodies are analyzed with an empty held set.
			w.block(fl.Body.List, nil)
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := resolveLockOp(w.pass, w.locks, call); ok {
			return true // handled by the statement walk
		}
		if len(held) == 0 {
			return true
		}
		fn := analysis.CalleeFunc(w.pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != w.pass.Pkg.Path() {
			return true
		}
		for _, acq := range w.acquires[fn] {
			for _, h := range held {
				switch {
				case h.id == acq:
					w.pass.Reportf(call.Pos(),
						"call to %s acquires %s, which is already held here (self-deadlock)",
						fn.Name(), acq)
				case !w.order[h.id][acq]:
					w.pass.Reportf(call.Pos(),
						"call to %s acquires %s while %s is held: no //lock:order edge allows "+
							"this nesting (docs/PROTOCOLS.md §8.5)", fn.Name(), acq, h.id)
				}
			}
		}
		return true
	})
}

// funcLits walks any function literals in the call with an empty held
// set so their own nestings are still checked.
func (w *walker) funcLits(n ast.Node) {
	ast.Inspect(n, func(node ast.Node) bool {
		if fl, ok := node.(*ast.FuncLit); ok {
			w.block(fl.Body.List, nil)
			return false
		}
		return true
	})
}

// release drops the most recent acquisition of id.
func release(held []heldLock, id lockID) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].id == id {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}
