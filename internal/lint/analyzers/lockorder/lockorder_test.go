package lockorder_test

import (
	"testing"

	"repro/internal/lint/analyzers/lockorder"
	"repro/internal/lint/linttest"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "testdata")
}
