package lockfix

import "sync"

// Bad carries an annotation naming a field that does not exist; the
// analyzer reports the annotation itself rather than silently
// enforcing nothing.
type Bad struct { // want "no such mutex field"
	//lock:order aMu < ghostMu
	aMu sync.Mutex
}
