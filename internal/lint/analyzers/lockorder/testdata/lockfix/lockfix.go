// Package lockfix reproduces the internal/server lock shapes the
// lockorder analyzer must judge: the legal Await visitMu→parkMu
// nesting, the illegal inversion, and both verdicts again through one
// level of intra-package calls.
package lockfix

import "sync"

// Server mimics the real lock decomposition of internal/server.
type Server struct {
	// visitMu guards the hosting state machine.
	//
	//lock:order visitMu < parkMu
	visitMu sync.Mutex
	// parkMu guards the delivery backstops.
	parkMu sync.Mutex
	// finalMu guards the post-visit ledgers; it never nests.
	finalMu sync.Mutex

	held    map[string]int
	waiters map[string]chan int
	ledger  map[string]uint64
}

// Await is the real, legal shape: the held check and the waiter
// registration are one atomic step, nesting along the declared edge.
func (s *Server) Await(name string) chan int {
	ch := make(chan int, 1)
	s.visitMu.Lock()
	s.parkMu.Lock()
	if n, ok := s.held[name]; ok {
		delete(s.held, name)
		s.parkMu.Unlock()
		s.visitMu.Unlock()
		ch <- n
		return ch
	}
	s.waiters[name] = ch
	s.parkMu.Unlock()
	s.visitMu.Unlock()
	return ch
}

// Inverted is the forbidden mirror image of Await.
func (s *Server) Inverted(name string) {
	s.parkMu.Lock()
	s.visitMu.Lock() // want "Server.visitMu acquired while holding Server.parkMu"
	delete(s.held, name)
	s.visitMu.Unlock()
	s.parkMu.Unlock()
}

// bumpLedger takes finalMu on its own — legal in isolation.
func (s *Server) bumpLedger(owner string) {
	s.finalMu.Lock()
	s.ledger[owner]++
	s.finalMu.Unlock()
}

// settleUnderVisit calls bumpLedger while holding visitMu: finalMu has
// no order edge with visitMu, so the one-level inlining check fires.
func (s *Server) settleUnderVisit(owner string) {
	s.visitMu.Lock()
	defer s.visitMu.Unlock()
	s.bumpLedger(owner) // want "call to bumpLedger acquires Server.finalMu while Server.visitMu is held"
}

// parkHelper takes parkMu on its own.
func (s *Server) parkHelper(name string) {
	s.parkMu.Lock()
	s.held[name] = 1
	s.parkMu.Unlock()
}

// deliverLocal reaches parkMu through a call while holding visitMu —
// legal, the declared edge covers inlined acquisitions too.
func (s *Server) deliverLocal(name string) {
	s.visitMu.Lock()
	defer s.visitMu.Unlock()
	s.parkHelper(name)
}

// Reacquire deadlocks against itself.
func (s *Server) Reacquire() {
	s.visitMu.Lock()
	s.visitMu.Lock() // want "Server.visitMu acquired while already held"
	s.visitMu.Unlock()
	s.visitMu.Unlock()
}

// Sequential is singular acquisition: release before the next lock.
func (s *Server) Sequential(owner string) {
	s.visitMu.Lock()
	s.visits()
	s.visitMu.Unlock()
	s.finalMu.Lock()
	s.ledger[owner]++
	s.finalMu.Unlock()
}

func (s *Server) visits() {}
