// Package nameresolve enforces the naming fast path: servers resolve
// names through their lease-caching names.Resolver (or the Directory
// interface, which deliberately omits Lookup), never by hitting the
// authoritative store's legacy Lookup method directly. A direct
// Service.Lookup bypasses the cache — every call is an authority
// round-trip in a federated deployment — and sidesteps the lease,
// invalidation and forwarding-hint discipline the dispatch convergence
// story depends on. The method survives inside internal/names as the
// compatibility surface the Resolver itself is built on; this analyzer
// keeps it there. (The lint loader skips _test.go files, so tests may
// still call Lookup for assertions.)
package nameresolve

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// namesPkg owns Service.Lookup.
const namesPkg = "repro/internal/names"

// allowed are the import-path prefixes that may call names'
// Service.Lookup: the defining package (and its subpackages), which
// builds the caching resolver on top of it.
var allowed = []string{
	"repro/internal/names",
}

// Analyzer flags references to the names package's Lookup outside the
// allowlisted packages.
var Analyzer = &analysis.Analyzer{
	Name: "nameresolve",
	Doc: "only internal/names may call names.Service.Lookup; servers resolve through the " +
		"lease-caching Resolver so resolution stays lock-free and cache invalidation converges",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, pfx := range allowed {
		if pass.Pkg.Path() == pfx || strings.HasPrefix(pass.Pkg.Path(), pfx+"/") {
			return nil
		}
	}
	pass.Preorder(func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		if fn.Pkg().Path() != namesPkg || fn.Name() != "Lookup" {
			return
		}
		pass.Reportf(id.Pos(),
			"package %s calls names Lookup directly; resolve through the server's names.Resolver (or the Directory interface) instead",
			pass.Pkg.Path())
	})
	return nil
}
