package nameresolve_test

import (
	"testing"

	"repro/internal/lint/analyzers/nameresolve"
	"repro/internal/lint/linttest"
)

func TestNameResolve(t *testing.T) {
	linttest.Run(t, nameresolve.Analyzer, "testdata")
}
