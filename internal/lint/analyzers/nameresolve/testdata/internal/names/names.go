// Package names is the fixture stand-in for the real naming package:
// it owns Service.Lookup and may call it freely (the Resolver is built
// on it).
package names

// Name is a stand-in global name.
type Name struct {
	Authority, Path string
}

// Location is a stand-in network binding.
type Location struct {
	Address string
}

// Service is the authoritative store.
type Service struct{}

// Lookup is the legacy single-location resolution surface.
func (s *Service) Lookup(n Name) (Location, error) { return Location{}, nil }

// Resolver is the stand-in caching resolver; its internals use Lookup.
type Resolver struct {
	auth *Service
}

// Resolve serves through the cache.
func (r *Resolver) Resolve(n Name) (Location, error) { return r.auth.Lookup(n) }
