// Package server is outside the allowlist; calling the store's Lookup
// directly is a finding however the import is spelled. Resolution goes
// through the Resolver.
package server

import (
	"repro/internal/names"
	nm "repro/internal/names"
)

// Config carries the directory.
type Config struct {
	NS *names.Service
}

func dispatch(cfg Config, n names.Name) {
	_, _ = cfg.NS.Lookup(n) // want "resolve through the server's names.Resolver"
}

func renamed(ns *nm.Service, n nm.Name) {
	_, _ = ns.Lookup(n) // want "resolve through the server's names.Resolver"
}

func fine(r *names.Resolver, n names.Name) {
	_, _ = r.Resolve(n)
}
