// Package resourceimpl is the migrated form of the original syntactic
// repolint rule: only the resource layer itself (and subpackages), the
// registry and the server may name the concrete resource.ResourceImpl
// type; every other package constructs implementations through
// resource.NewImpl, so the concrete layout can evolve without a
// tree-wide rewrite. The analyzer is now type-aware: it resolves
// identifier uses instead of pattern-matching selector text, so
// renamed imports, dot imports and type aliases are all caught.
package resourceimpl

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// resourcePkg is the package owning the concrete type.
const resourcePkg = "repro/internal/resource"

// allowed are the import-path prefixes that may reference the concrete
// type directly.
var allowed = []string{
	"repro/internal/resource",
	"repro/internal/registry",
	"repro/internal/server",
}

// Analyzer flags references to the concrete resource.ResourceImpl type
// outside the allowlisted packages.
var Analyzer = &analysis.Analyzer{
	Name: "resourceimpl",
	Doc: "only internal/resource (and subpackages), internal/registry and internal/server may " +
		"reference the concrete resource.ResourceImpl type; other packages use resource.NewImpl",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, pfx := range allowed {
		if pass.Pkg.Path() == pfx || strings.HasPrefix(pass.Pkg.Path(), pfx+"/") {
			return nil
		}
	}
	pass.Preorder(func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		tn, ok := obj.(*types.TypeName)
		if !ok || tn.Pkg() == nil {
			return
		}
		if tn.Pkg().Path() != resourcePkg || tn.Name() != "ResourceImpl" {
			return
		}
		pass.Reportf(id.Pos(),
			"package %s references the concrete resource.ResourceImpl type; use resource.NewImpl",
			pass.Pkg.Path())
	})
	return nil
}
