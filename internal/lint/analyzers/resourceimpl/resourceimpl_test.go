package resourceimpl_test

import (
	"testing"

	"repro/internal/lint/analyzers/resourceimpl"
	"repro/internal/lint/linttest"
)

func TestResourceImpl(t *testing.T) {
	linttest.Run(t, resourceimpl.Analyzer, "testdata")
}
