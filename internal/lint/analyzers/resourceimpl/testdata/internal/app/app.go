// Package app is outside the allowlist; naming the concrete type is a
// finding however the import is spelled.
package app

import (
	"repro/internal/resource"
	res "repro/internal/resource"
)

var bad = resource.ResourceImpl{} // want "use resource.NewImpl"

var renamed = res.ResourceImpl{} // want "use resource.NewImpl"

var fine = resource.NewImpl()
