// Package buffer is a resource subpackage: still allowlisted.
package buffer

import "repro/internal/resource"

var ok = resource.ResourceImpl{}
