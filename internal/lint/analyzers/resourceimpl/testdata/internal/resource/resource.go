// Package resource owns the concrete type; it may name it freely.
package resource

// ResourceImpl is the concrete implementation record.
type ResourceImpl struct {
	Name string
}

// NewImpl is the constructor everyone else goes through.
func NewImpl() *ResourceImpl { return &ResourceImpl{} }
