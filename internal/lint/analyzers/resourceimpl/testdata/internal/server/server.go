// Package server builds system resources; it is allowlisted.
package server

import "repro/internal/resource"

var ok = resource.ResourceImpl{}
