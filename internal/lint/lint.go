// Package lint is this repository's own analyzer suite — the
// analogue, one level up, of the ASL lint suite in internal/vm/analysis
// (the agents' code is vetted by ajanta-vet, the platform's code by
// repolint). Since the type-aware rebuild the suite runs on
// internal/lint/analysis, a stdlib-only re-statement of the
// golang.org/x/tools/go/analysis contract, with full go/types
// information loaded offline by internal/lint/load. Seven analyzers
// mechanize the invariants that used to live only in docs and review:
//
//	resourceimpl  concrete resource.ResourceImpl stays behind NewImpl
//	lockorder     the //lock:order mutex partial order (§8.5)
//	cowsnapshot   never mutate through atomic.Pointer.Load (§8.1)
//	coarseclock   no raw time.Timer/Ticker in internal/ hot paths (§8.2)
//	errclass      send-path errors are transient/permanent-classified (§7)
//	fusedwire     vm.Prepare (fused execution copies) stays in vm/loader
//	nameresolve   names.Service.Lookup stays in internal/names (§9.2)
//
// A finding is silenced only by an inline annotation on the flagged
// line (or the line above):
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a bare //lint:allow does not suppress.
// See docs/ANALYZERS.md.
package lint

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analyzers/coarseclock"
	"repro/internal/lint/analyzers/cowsnapshot"
	"repro/internal/lint/analyzers/errclass"
	"repro/internal/lint/analyzers/fusedwire"
	"repro/internal/lint/analyzers/lockorder"
	"repro/internal/lint/analyzers/nameresolve"
	"repro/internal/lint/analyzers/resourceimpl"
	"repro/internal/lint/load"
)

// Analyzers is the active suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	resourceimpl.Analyzer,
	lockorder.Analyzer,
	cowsnapshot.Analyzer,
	coarseclock.Analyzer,
	errclass.Analyzer,
	fusedwire.Analyzer,
	nameresolve.Analyzer,
}

// Finding is one reported rule violation.
type Finding struct {
	File string `json:"file"` // path as reported by the loader
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Msg)
}

// CheckDir loads every package under root (a module root or any
// directory inside one) and applies the suite, returning the findings
// that no //lint:allow annotation suppresses, sorted by position.
func CheckDir(root string) ([]Finding, error) {
	return CheckPackages(root, "./...")
}

// CheckPackages runs the suite over the packages matched by patterns,
// resolved relative to dir.
func CheckPackages(dir string, patterns ...string) ([]Finding, error) {
	return CheckPackagesWith(dir, Analyzers, patterns...)
}

// CheckPackagesWith runs an explicit analyzer list (the linttest
// harness runs one analyzer at a time) with the same loading,
// suppression and ordering behaviour as the full suite.
func CheckPackagesWith(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	sup := newSuppressions()
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := RunAnalyzer(a, pkg)
			if err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				f := Finding{
					File: pos.Filename,
					Line: pos.Line,
					Col:  pos.Column,
					Rule: a.Name,
					Msg:  d.Message,
				}
				if sup.allows(f) {
					continue
				}
				findings = append(findings, f)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

// RunAnalyzer applies one analyzer to one loaded package and returns
// its raw (unsuppressed) diagnostics.
func RunAnalyzer(a *analysis.Analyzer, pkg *load.Package) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return diags, nil
}

// --- suppressions ------------------------------------------------------

// allowRe matches one suppression comment: analyzer name, then a
// mandatory free-text reason.
var allowRe = regexp.MustCompile(`//lint:allow\s+([A-Za-z0-9_-]+)\s+\S`)

// suppressions lazily reads source files and answers whether a finding
// is annotated away on its own line or the line above.
type suppressions struct {
	lines map[string][]string // file -> lines
}

func newSuppressions() *suppressions {
	return &suppressions{lines: make(map[string][]string)}
}

func (s *suppressions) fileLines(path string) []string {
	if l, ok := s.lines[path]; ok {
		return l
	}
	var l []string
	if data, err := os.ReadFile(path); err == nil {
		l = strings.Split(string(data), "\n")
	}
	s.lines[path] = l
	return l
}

func (s *suppressions) allows(f Finding) bool {
	lines := s.fileLines(f.File)
	for _, ln := range []int{f.Line, f.Line - 1} {
		if ln < 1 || ln > len(lines) {
			continue
		}
		for _, m := range allowRe.FindAllStringSubmatch(lines[ln-1], -1) {
			if m[1] == f.Rule {
				return true
			}
		}
	}
	return false
}
