// Package lint is a small stdlib-only multichecker for this
// repository's own Go source (the analogue, one level up, of the ASL
// lint suite in internal/vm/analysis: the agents' code is vetted by
// ajanta-vet, the platform's code by repolint). Rules are purely
// syntactic — go/parser over every file, no type information — which
// keeps the checker dependency-free and fast enough for CI.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// modulePath is the import-path root of this repository.
const modulePath = "repro"

// Finding is one rule violation.
type Finding struct {
	Pos  string // file:line:col, relative to the checked root
	Rule string
	Msg  string
}

func (f Finding) String() string { return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg) }

// File is one parsed source file handed to every rule.
type File struct {
	Path    string // path relative to the checked root
	PkgPath string // import path of the containing package
	Fset    *token.FileSet
	AST     *ast.File
}

// Rule is one check of the multichecker.
type Rule struct {
	Name  string
	Doc   string
	Check func(*File) []Finding
}

// Rules is the active rule set.
var Rules = []Rule{resourceImplRule}

// CheckDir parses every .go file under root (the repository checkout)
// and applies all rules, returning findings sorted by position.
func CheckDir(root string) ([]Finding, error) {
	var findings []Finding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		fset := token.NewFileSet()
		astf, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		f := &File{
			Path:    rel,
			PkgPath: pkgPath(rel),
			Fset:    fset,
			AST:     astf,
		}
		for _, r := range Rules {
			for _, fd := range r.Check(f) {
				findings = append(findings, fd)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	return findings, nil
}

// pkgPath derives the import path of the package containing the file at
// root-relative path rel.
func pkgPath(rel string) string {
	dir := filepath.ToSlash(filepath.Dir(rel))
	if dir == "." {
		return modulePath
	}
	return modulePath + "/" + dir
}

// importName returns the local name the file binds importPath to, or
// ok=false when the file does not import it.
func importName(f *ast.File, importPath string) (string, bool) {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != importPath {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		return path.Base(p), true
	}
	return "", false
}

// --- rule: resourceimpl ------------------------------------------------

// resourceImplAllowed are the package prefixes that may reference the
// concrete resource.ResourceImpl type directly: the resource layer
// itself (and its subpackages), the registry that stores entries, and
// the server that builds system resources (mailboxes, VM-installed
// resources). Everyone else goes through resource.NewImpl, so the
// concrete layout can evolve without a tree-wide rewrite.
var resourceImplAllowed = []string{
	modulePath + "/internal/resource",
	modulePath + "/internal/registry",
	modulePath + "/internal/server",
}

var resourceImplRule = Rule{
	Name: "resourceimpl",
	Doc: "only internal/resource (and subpackages), internal/registry and internal/server may " +
		"reference the concrete resource.ResourceImpl type; other packages use resource.NewImpl",
	Check: func(f *File) []Finding {
		for _, allowed := range resourceImplAllowed {
			if f.PkgPath == allowed || strings.HasPrefix(f.PkgPath, allowed+"/") {
				return nil
			}
		}
		local, ok := importName(f.AST, modulePath+"/internal/resource")
		if !ok || local == "_" {
			return nil
		}
		var out []Finding
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "ResourceImpl" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != local {
				return true
			}
			pos := f.Fset.Position(sel.Pos())
			out = append(out, Finding{
				Pos:  fmt.Sprintf("%s:%d:%d", f.Path, pos.Line, pos.Column),
				Rule: "resourceimpl",
				Msg: fmt.Sprintf("package %s references the concrete resource.ResourceImpl type; use resource.NewImpl",
					f.PkgPath),
			})
			return true
		})
		return out
	},
}
