package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepositoryClean is the dogfood gate: the full analyzer suite over
// this repository must report zero unsuppressed findings. CI runs the
// same check through cmd/repolint; keeping it in the test suite means a
// plain `go test ./...` catches new violations too.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("expected module root at %s: %v", root, err)
	}
	findings, err := CheckDir(root)
	if err != nil {
		t.Fatalf("CheckDir: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unsuppressed finding: %s", f)
	}
}

// writeTemp writes a one-off source file and returns its path.
func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "src.go")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSuppressionSameLine(t *testing.T) {
	path := writeTemp(t, "package p\n\nvar x = f() //lint:allow coarseclock timer lives outside the hot path\n")
	sup := newSuppressions()
	f := Finding{File: path, Line: 3, Rule: "coarseclock"}
	if !sup.allows(f) {
		t.Errorf("same-line annotation with reason should suppress %s", f)
	}
}

func TestSuppressionLineAbove(t *testing.T) {
	path := writeTemp(t, "package p\n\n//lint:allow errclass classified by the caller\nvar x = f()\n")
	sup := newSuppressions()
	f := Finding{File: path, Line: 4, Rule: "errclass"}
	if !sup.allows(f) {
		t.Errorf("line-above annotation with reason should suppress %s", f)
	}
}

func TestSuppressionReasonMandatory(t *testing.T) {
	// A bare //lint:allow <analyzer> with no reason must NOT suppress:
	// the annotation grammar makes the justification part of the record.
	path := writeTemp(t, "package p\n\nvar x = f() //lint:allow coarseclock\n")
	sup := newSuppressions()
	f := Finding{File: path, Line: 3, Rule: "coarseclock"}
	if sup.allows(f) {
		t.Errorf("annotation without a reason must not suppress %s", f)
	}
}

func TestSuppressionAnalyzerMismatch(t *testing.T) {
	path := writeTemp(t, "package p\n\nvar x = f() //lint:allow lockorder wrong analyzer named\n")
	sup := newSuppressions()
	f := Finding{File: path, Line: 3, Rule: "coarseclock"}
	if sup.allows(f) {
		t.Errorf("annotation naming a different analyzer must not suppress %s", f)
	}
}

func TestSuppressionWrongLine(t *testing.T) {
	// Two lines below the annotation is out of range: only the finding
	// line and the line directly above count.
	path := writeTemp(t, "package p\n\n//lint:allow coarseclock reason here\n\nvar x = f()\n")
	sup := newSuppressions()
	f := Finding{File: path, Line: 5, Rule: "coarseclock"}
	if sup.allows(f) {
		t.Errorf("annotation two lines above must not suppress %s", f)
	}
}
