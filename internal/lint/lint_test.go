package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write lays out a file under dir, creating parents.
func write(t *testing.T, dir, rel, src string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestResourceImplRule(t *testing.T) {
	dir := t.TempDir()
	// A violating package: names the concrete type outside the
	// allowlist.
	write(t, dir, "internal/app/app.go", `package app

import "repro/internal/resource"

var bad = resource.ResourceImpl{}
`)
	// The resource package itself (and a subpackage) may.
	write(t, dir, "internal/resource/ok.go", `package resource

type ResourceImpl struct{}
`)
	write(t, dir, "internal/resource/buffer/ok.go", `package buffer

import "repro/internal/resource"

var ok = resource.ResourceImpl{}
`)
	// So may the server.
	write(t, dir, "internal/server/ok.go", `package server

import "repro/internal/resource"

var ok = resource.ResourceImpl{}
`)
	// Renamed imports are still caught.
	write(t, dir, "internal/other/other.go", `package other

import res "repro/internal/resource"

var bad = res.ResourceImpl{}
`)
	// Using the constructor is fine anywhere.
	write(t, dir, "internal/fine/fine.go", `package fine

import "repro/internal/resource"

var ok = resource.NewImpl()
`)

	findings, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want 2", findings)
	}
	for _, f := range findings {
		if f.Rule != "resourceimpl" {
			t.Errorf("rule = %q", f.Rule)
		}
	}
	if !strings.HasPrefix(findings[0].Pos, filepath.Join("internal", "app", "app.go")+":") {
		t.Errorf("finding[0] at %s", findings[0].Pos)
	}
	if !strings.HasPrefix(findings[1].Pos, filepath.Join("internal", "other", "other.go")+":") {
		t.Errorf("finding[1] at %s", findings[1].Pos)
	}
}

// TestRepositoryClean runs the multichecker over this repository
// itself: the rules it enforces hold in the tree that ships them.
func TestRepositoryClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("repository root not found: %v", err)
	}
	findings, err := CheckDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
