// Package linttest is the fixture harness for the analyzer suite — a
// stdlib-only restatement of x/tools' analysistest. A fixture is a
// self-contained module under an analyzer's testdata/ directory
// (testdata is invisible to the enclosing module, so fixtures may
// reuse the repro module path to trigger path-scoped analyzers).
// Expectations ride on the flagged lines as comments:
//
//	s.parkMu.Lock() // want "no //lock:order edge"
//
// Run loads the fixture, applies one analyzer (with the production
// //lint:allow suppression filtering), and fails the test on any
// missing or unexpected finding. The quoted expectation is a regexp
// matched against the finding message.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// wantRe extracts the expectation regexps on a line; a line may carry
// several: // want "a" "b".
var wantRe = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)

var wantArg = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one // want entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run applies one analyzer to the fixture module at dir and compares
// findings against the fixture's // want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.CheckPackagesWith(abs, []*analysis.Analyzer{a}, "./...")
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	expects, err := collectWants(abs)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	for _, f := range findings {
		if f.Rule != a.Name {
			t.Errorf("finding from unexpected analyzer %q: %s", f.Rule, f)
			continue
		}
		matched := false
		for _, e := range expects {
			if e.hit || e.file != f.File || e.line != f.Line {
				continue
			}
			if e.re.MatchString(f.Msg) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", rel(abs, f))
		}
	}
	for _, e := range expects {
		if !e.hit {
			relFile, _ := filepath.Rel(abs, e.file)
			t.Errorf("%s:%d: expected finding matching %q, got none", relFile, e.line, e.re)
		}
	}
}

// collectWants scans every fixture .go file for // want comments.
func collectWants(dir string) ([]*expectation, error) {
	var out []*expectation
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArg.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(arg[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp: %w", path, i+1, err)
				}
				out = append(out, &expectation{file: path, line: i + 1, re: re})
			}
		}
		return nil
	})
	return out, err
}

func rel(dir string, f lint.Finding) string {
	if r, err := filepath.Rel(dir, f.File); err == nil {
		f.File = r
	}
	return f.String()
}
