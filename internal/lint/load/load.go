// Package load type-checks Go packages for the analyzer suite without
// any dependency outside the standard library and the go toolchain
// itself. It shells out to `go list -deps -export -json`, which makes
// the toolchain compile every dependency and report the path of its
// export data, then re-parses the *target* packages from source and
// type-checks them with go/types, resolving imports through the
// export files via go/importer's lookup mode. Everything works
// offline: the only inputs are the checkout and the local build cache.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	// Files are the parsed syntax trees (comments retained), in the
	// order go list reports the source files.
	Files []*ast.File
	// GoFiles are the absolute paths corresponding to Files.
	GoFiles []string
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects soft type-check problems; analyzers still run
	// on packages with partial information.
	TypeErrors []error
}

// listedPkg mirrors the go list -json fields the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (a module root or any directory inside
// one) and returns the matched packages, type-checked from source.
// Test files are not loaded: the invariants the suite checks are
// hot-path disciplines, and tests legitimately use raw timers and
// ad-hoc errors.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every compiled package, keyed by import path:
	// the importer below reads dependencies (stdlib and intra-module
	// alike) from these files instead of re-type-checking their source.
	exports := make(map[string]string, len(listed))
	importMap := make(map[string]string)
	var targets []*listedPkg
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var out []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typecheck parses one target package from source and runs go/types
// over it.
func typecheck(fset *token.FileSet, imp types.Importer, t *listedPkg) (*Package, error) {
	pkg := &Package{
		PkgPath: t.ImportPath,
		Dir:     t.Dir,
		Fset:    fset,
	}
	for _, name := range t.GoFiles {
		path := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.GoFiles = append(pkg.GoFiles, path)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, err := conf.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("load: type-check %s: %w", t.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// goList runs `go list -deps -export -json` and decodes the stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Imports,ImportMap,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// The loader must never reach for the network: everything it needs
	// is the checkout, the local toolchain and the build cache.
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOFLAGS=-mod=mod")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("load: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decode go list output: %w", err)
		}
		out = append(out, &p)
	}
	return out, nil
}
