package load

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// write lays out a file under dir, creating parents.
func write(t *testing.T, dir, rel, src string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadModule type-checks a scratch module with a stdlib import and
// an intra-module import, exercising both export-data paths.
func TestLoadModule(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "go.mod", "module scratch\n\ngo 1.22\n")
	write(t, dir, "lib/lib.go", `package lib

import "sync"

type Box struct {
	Mu sync.Mutex
	N  int
}
`)
	write(t, dir, "main.go", `package main

import (
	"fmt"
	"scratch/lib"
)

func main() {
	var b lib.Box
	b.Mu.Lock()
	b.N++
	b.Mu.Unlock()
	fmt.Println(b.N)
}
`)
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: type errors: %v", p.PkgPath, p.TypeErrors)
		}
		byPath[p.PkgPath] = p
	}
	lib, ok := byPath["scratch/lib"]
	if !ok {
		t.Fatalf("scratch/lib not loaded; got %v", pkgs)
	}
	// The Mutex field must resolve to the real sync.Mutex type: proof
	// that stdlib export data was read, not guessed.
	obj, _, _ := types.LookupFieldOrMethod(
		lib.Types.Scope().Lookup("Box").Type(), true, lib.Types, "Mu")
	if obj == nil {
		t.Fatal("Box.Mu not found")
	}
	named, ok := obj.Type().(*types.Named)
	if !ok || named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Mutex" {
		t.Fatalf("Box.Mu type = %v, want sync.Mutex", obj.Type())
	}
}

// TestLoadBrokenPackage surfaces compile errors as load errors rather
// than silently analyzing half a package.
func TestLoadBrokenPackage(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "go.mod", "module scratch\n\ngo 1.22\n")
	write(t, dir, "bad.go", "package bad\n\nfunc f() { undefined() }\n")
	pkgs, err := Load(dir, ".")
	if err != nil {
		return // listed as an error: fine
	}
	if len(pkgs) == 1 && len(pkgs[0].TypeErrors) > 0 {
		return // surfaced as soft type errors: also fine
	}
	t.Fatalf("broken package loaded cleanly: %+v", pkgs)
}
