// Package loader implements per-agent namespaces: the analogue of
// Java's class-loader-based name-space separation (§3.2, §5.3).
//
// Two properties from the paper are enforced here:
//
//   - Impostor prevention: "any privileged classes ... are loaded from
//     the local classpath and not from a remote site. This prevents
//     agents from installing 'impostor' classes of the same name, which
//     can bypass the security checks in their code." Trusted modules
//     installed by the server always shadow agent-carried modules with
//     the same name.
//
//   - Isolation: "the namespace mechanism also serves to isolate agents
//     from one another." Each agent gets its own Namespace; nothing in
//     one namespace can name code or state in another.
package loader

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/vm"
)

// Errors.
var (
	ErrShadowedTrusted = errors.New("loader: module name shadows a trusted module")
	ErrUnknownModule   = errors.New("loader: unknown module")
	ErrUnknownFunction = errors.New("loader: unknown function")
)

// TrustedSet is the server's local "classpath": verified modules every
// agent may call but none may replace. It is immutable after server
// start except through InstallTrusted (a server-domain operation).
type TrustedSet struct {
	mu   sync.RWMutex
	mods map[string]*vm.Module
	// epoch increments whenever the set gains a module, i.e. whenever a
	// name that previously resolved to an agent module could now be
	// shadowed by a trusted one. The interpreter keys its call-site
	// inline caches on it (vm.EpochResolver), so every cached
	// resolution made before an install is revalidated after it.
	epoch atomic.Uint64
}

// NewTrustedSet verifies and installs the given modules.
func NewTrustedSet(mods ...*vm.Module) (*TrustedSet, error) {
	ts := &TrustedSet{mods: make(map[string]*vm.Module, len(mods))}
	for _, m := range mods {
		if err := ts.InstallTrusted(m); err != nil {
			return nil, err
		}
	}
	return ts, nil
}

// InstallTrusted verifies and adds a trusted module.
func (ts *TrustedSet) InstallTrusted(m *vm.Module) error {
	if err := vm.Verify(m); err != nil {
		return fmt.Errorf("loader: trusted module %q: %w", m.Name, err)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, dup := ts.mods[m.Name]; dup {
		return fmt.Errorf("loader: trusted module %q already installed", m.Name)
	}
	ts.mods[m.Name] = m
	ts.epoch.Add(1)
	return nil
}

// Epoch reports the installation epoch: it increases on every
// InstallTrusted. Existing modules are never replaced (installs of a
// duplicate name fail), so a resolution cached at epoch e stays valid
// until the epoch moves past e.
func (ts *TrustedSet) Epoch() uint64 { return ts.epoch.Load() }

// Get returns a trusted module by name.
func (ts *TrustedSet) Get(name string) (*vm.Module, bool) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	m, ok := ts.mods[name]
	return m, ok
}

// Names lists trusted module names.
func (ts *TrustedSet) Names() []string {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	out := make([]string, 0, len(ts.mods))
	for n := range ts.mods {
		out = append(out, n)
	}
	return out
}

// Namespace is one agent's view of loadable code: the agent's own
// verified bundle plus the server's trusted set. Resolution order for a
// module name is trusted-first, which yields the impostor-prevention
// property: an agent-supplied module can never be selected when a
// trusted module of the same name exists.
// A Namespace hands out *execution copies* of its modules: prepared
// forms built by vm.Prepare (superinstructions + inline-cache tables)
// that share the canonical modules' constant pools but never alias
// their code. The canonical bundle the agent carries — the thing that
// is digested, manifest-checked and re-serialized on departure — is
// untouched; prepared copies are process-local and never cross the
// wire.
type Namespace struct {
	trusted *TrustedSet
	own     map[string]*vm.Module // prepared at admission

	// Trusted modules are prepared lazily, once per namespace, on first
	// resolution. The cache is keyed by name and never invalidated:
	// InstallTrusted refuses duplicate names, so a trusted module, once
	// seen, is immutable.
	mu   sync.Mutex
	exec map[string]*vm.Module
}

// NewNamespace verifies the agent's bundle and builds its namespace.
// Agent modules whose names collide with trusted modules are admitted
// (the bundle may legitimately predate the server's configuration) but
// are unreachable — the trusted module always wins. Set strict to
// reject such bundles outright instead.
func NewNamespace(trusted *TrustedSet, bundle []vm.Module, strict bool) (*Namespace, error) {
	if err := vm.VerifyBundle(bundle); err != nil {
		return nil, err
	}
	ns := &Namespace{trusted: trusted, own: make(map[string]*vm.Module, len(bundle))}
	for i := range bundle {
		m := &bundle[i]
		if _, shadowed := trusted.Get(m.Name); shadowed && strict {
			return nil, fmt.Errorf("%w: %q", ErrShadowedTrusted, m.Name)
		}
		ns.own[m.Name] = vm.Prepare(m)
	}
	return ns, nil
}

// Epoch implements vm.EpochResolver: the namespace's resolution
// function changes exactly when the trusted set gains a module (a new
// trusted name may shadow an agent module from then on).
func (ns *Namespace) Epoch() uint64 { return ns.trusted.Epoch() }

// execTrusted returns the namespace's prepared copy of a trusted
// module, building it on first use.
func (ns *Namespace) execTrusted(name string, canon *vm.Module) *vm.Module {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if m, ok := ns.exec[name]; ok {
		return m
	}
	if ns.exec == nil {
		ns.exec = make(map[string]*vm.Module)
	}
	m := vm.Prepare(canon)
	ns.exec[name] = m
	return m
}

// Module resolves a module name: trusted set first, then the agent's
// own bundle. The returned module is the namespace's prepared execution
// copy, not the canonical form.
func (ns *Namespace) Module(name string) (*vm.Module, error) {
	if m, ok := ns.trusted.Get(name); ok {
		return ns.execTrusted(name, m), nil
	}
	if m, ok := ns.own[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownModule, name)
}

// ResolveFunc implements vm.Resolver for "module:function" names; a
// bare function name is searched across the agent's own modules only
// (trusted code is always addressed explicitly, so an agent cannot be
// tricked into calling trusted internals by accident).
func (ns *Namespace) ResolveFunc(name string) (*vm.Module, *vm.Func, error) {
	for i := 0; i < len(name); i++ {
		if name[i] == ':' {
			m, err := ns.Module(name[:i])
			if err != nil {
				return nil, nil, err
			}
			if _, f := m.Fn(name[i+1:]); f != nil {
				return m, f, nil
			}
			return nil, nil, fmt.Errorf("%w: %q", ErrUnknownFunction, name)
		}
	}
	for _, m := range ns.own {
		if _, f := m.Fn(name); f != nil {
			return m, f, nil
		}
	}
	return nil, nil, fmt.Errorf("%w: %q", ErrUnknownFunction, name)
}

// OwnModules lists the agent's own module names (shadowed or not).
func (ns *Namespace) OwnModules() []string {
	out := make([]string, 0, len(ns.own))
	for n := range ns.own {
		out = append(out, n)
	}
	return out
}
