package loader

import (
	"errors"
	"testing"

	"repro/internal/asl"
	"repro/internal/vm"
)

func compile(t *testing.T, src string) *vm.Module {
	t.Helper()
	m, err := asl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrustedSetInstallAndGet(t *testing.T) {
	m := compile(t, "module stdlib\nfunc check() { return \"trusted\" }")
	ts, err := NewTrustedSet(m)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ts.Get("stdlib")
	if !ok || got != m {
		t.Fatal("Get failed")
	}
	if len(ts.Names()) != 1 {
		t.Fatalf("Names = %v", ts.Names())
	}
}

func TestTrustedSetRejectsDuplicatesAndInvalid(t *testing.T) {
	m := compile(t, "module stdlib\nfunc f() { return 1 }")
	ts, err := NewTrustedSet(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.InstallTrusted(m); err == nil {
		t.Fatal("duplicate trusted module accepted")
	}
	bad := &vm.Module{Name: "bad", Fns: []vm.Func{{Name: "f", Code: []vm.Instr{{Op: vm.OpAdd}}}}}
	if err := ts.InstallTrusted(bad); !errors.Is(err, vm.ErrVerify) {
		t.Fatalf("invalid trusted module accepted: %v", err)
	}
}

// TestC11_ImpostorModule reproduces the paper's impostor-class scenario:
// an agent ships a module named "stdlib" whose check() lies; the trusted
// module must win resolution (experiment C11 in DESIGN.md).
func TestC11_ImpostorModule(t *testing.T) {
	trusted := compile(t, `module stdlib
func check() { return "trusted" }`)
	impostor := compile(t, `module stdlib
func check() { return "impostor" }`)
	app := compile(t, `module app
func main() { return stdlib:check() }`)

	ts, err := NewTrustedSet(trusted)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := NewNamespace(ts, []vm.Module{*impostor, *app}, false)
	if err != nil {
		t.Fatal(err)
	}
	env := vm.NewEnv()
	env.Resolver = ns
	v, err := vm.Run(env, app, "main")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(vm.S("trusted")) {
		t.Fatalf("impostor module won resolution: got %v", v)
	}
}

func TestStrictRejectsShadowing(t *testing.T) {
	trusted := compile(t, "module stdlib\nfunc f() { return 1 }")
	impostor := compile(t, "module stdlib\nfunc f() { return 2 }")
	ts, _ := NewTrustedSet(trusted)
	if _, err := NewNamespace(ts, []vm.Module{*impostor}, true); !errors.Is(err, ErrShadowedTrusted) {
		t.Fatalf("got %v", err)
	}
}

func TestNamespaceRejectsUnverifiableBundle(t *testing.T) {
	ts, _ := NewTrustedSet()
	bad := vm.Module{Name: "bad", Fns: []vm.Func{{Name: "f", Code: []vm.Instr{{Op: vm.OpAdd}}}}}
	if _, err := NewNamespace(ts, []vm.Module{bad}, false); !errors.Is(err, vm.ErrVerify) {
		t.Fatalf("got %v", err)
	}
}

// TestC11_NamespaceIsolation: two agents with same-named modules resolve
// to their own code; neither sees the other's.
func TestC11_NamespaceIsolation(t *testing.T) {
	ts, _ := NewTrustedSet()
	modA := compile(t, "module util\nfunc who() { return \"A\" }")
	modB := compile(t, "module util\nfunc who() { return \"B\" }")
	app := compile(t, "module app\nfunc main() { return util:who() }")

	nsA, err := NewNamespace(ts, []vm.Module{*modA, *app}, false)
	if err != nil {
		t.Fatal(err)
	}
	nsB, err := NewNamespace(ts, []vm.Module{*modB, *app}, false)
	if err != nil {
		t.Fatal(err)
	}
	runIn := func(ns *Namespace) vm.Value {
		env := vm.NewEnv()
		env.Resolver = ns
		appMod, err := ns.Module("app")
		if err != nil {
			t.Fatal(err)
		}
		v, err := vm.Run(env, appMod, "main")
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := runIn(nsA); !v.Equal(vm.S("A")) {
		t.Fatalf("agent A resolved %v", v)
	}
	if v := runIn(nsB); !v.Equal(vm.S("B")) {
		t.Fatalf("agent B resolved %v", v)
	}
}

func TestResolveBareNameSearchesOwnOnly(t *testing.T) {
	trusted := compile(t, "module priv\nfunc secret() { return 42 }")
	own := compile(t, "module mine\nfunc helper() { return 7 }")
	ts, _ := NewTrustedSet(trusted)
	ns, _ := NewNamespace(ts, []vm.Module{*own}, false)

	if _, _, err := ns.ResolveFunc("helper"); err != nil {
		t.Fatalf("own bare resolution failed: %v", err)
	}
	// Bare names never reach trusted modules — trusted code is only
	// callable with an explicit module qualifier.
	if _, _, err := ns.ResolveFunc("secret"); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("bare name resolved into trusted set: %v", err)
	}
	if _, _, err := ns.ResolveFunc("priv:secret"); err != nil {
		t.Fatalf("qualified trusted resolution failed: %v", err)
	}
}

func TestResolveErrors(t *testing.T) {
	ts, _ := NewTrustedSet()
	own := compile(t, "module mine\nfunc f() { return 1 }")
	ns, _ := NewNamespace(ts, []vm.Module{*own}, false)
	if _, _, err := ns.ResolveFunc("ghost:f"); !errors.Is(err, ErrUnknownModule) {
		t.Fatalf("got %v", err)
	}
	if _, _, err := ns.ResolveFunc("mine:ghost"); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("got %v", err)
	}
	if _, err := ns.Module("nope"); !errors.Is(err, ErrUnknownModule) {
		t.Fatalf("got %v", err)
	}
	if got := len(ns.OwnModules()); got != 1 {
		t.Fatalf("OwnModules = %d", got)
	}
}
