package loadharness

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/server"
)

// Report is the harness's top-level artifact: one run of a scenario
// suite, serialized as BENCH_cluster.json and consumed by cmd/slogate.
type Report struct {
	Suite     string           `json:"suite"`
	Seed      int64            `json:"seed"`
	Smoke     bool             `json:"smoke"`
	Scenarios []ScenarioResult `json:"scenarios"`
	AllPass   bool             `json:"all_pass"`
}

// ScenarioResult is one scenario's measured outcome plus its SLO
// verdict.
type ScenarioResult struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Seed        int64  `json:"seed"`
	Smoke       bool   `json:"smoke"`
	Servers     int    `json:"servers"`
	Workload    string `json:"workload"`

	// Fleet accounting. Launched + LaunchErrors = planned launches;
	// Completed + FailedHome + Lost = Launched (every launched agent is
	// attributed exactly one terminal bucket).
	Launched     int `json:"launched"`
	Completed    int `json:"completed"`
	FailedHome   int `json:"failed_home"`
	Lost         int `json:"lost"`
	LaunchErrors int `json:"launch_errors,omitempty"`

	// ThroughputPerSec is completed journeys over the scheduled load
	// window (the drain is excluded: it is recovery time, not offered
	// load).
	ThroughputPerSec float64     `json:"throughput_per_sec"`
	LatencyMS        Percentiles `json:"latency_ms"`

	// Cluster-wide counter totals at the end of the run.
	Sheds           uint64 `json:"sheds"`
	ShedRateLimit   uint64 `json:"shed_rate_limit"`
	ShedConcurrency uint64 `json:"shed_concurrency"`
	Retries         uint64 `json:"retries"`
	Parked          uint64 `json:"parked"`
	Redelivered     uint64 `json:"redelivered"`

	LoadWindowMS float64 `json:"load_window_ms"`
	WallMS       float64 `json:"wall_ms"`

	EventCounts EventCounts   `json:"event_counts"`
	Phases      []PhaseResult `json:"phases"`

	SLO      SLO      `json:"slo"`
	Breaches []string `json:"breaches,omitempty"`
	Pass     bool     `json:"pass"`
}

// EventCounts is the determinism contract: two runs of the same spec
// and seed must produce identical values here. PlanDigest fingerprints
// the full precomputed schedule (launch times, owners, routes, faults);
// the per-phase counts and the terminal total must also match.
type EventCounts struct {
	LaunchesPerPhase []int  `json:"launches_per_phase"`
	FaultsPerPhase   []int  `json:"faults_per_phase"`
	Terminal         int    `json:"terminal"`
	PlanDigest       string `json:"plan_digest"`
}

// Percentiles summarize one latency population (milliseconds).
type Percentiles struct {
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	Count int     `json:"count"`
}

// PhaseResult is one phase's slice of the run. Journeys are attributed
// to the phase that launched them (a journey launched in the storm but
// finishing during recovery is the storm's latency, not recovery's);
// counter deltas are attributed to the phase window in which they
// happened. The trailing "drain" pseudo-phase carries post-schedule
// recovery traffic so the per-phase counters sum to the run totals.
type PhaseResult struct {
	Name             string      `json:"name"`
	DurationMS       int         `json:"duration_ms"`
	LaunchRate       float64     `json:"launch_rate"`
	Launches         int         `json:"launches"`
	Faults           int         `json:"faults"`
	Completed        int         `json:"completed"`
	FailedHome       int         `json:"failed_home"`
	Lost             int         `json:"lost"`
	ThroughputPerSec float64     `json:"throughput_per_sec"`
	LatencyMS        Percentiles `json:"latency_ms"`

	Arrivals    uint64 `json:"arrivals"`
	Dispatches  uint64 `json:"dispatches"`
	Retries     uint64 `json:"retries"`
	Sheds       uint64 `json:"sheds"`
	Parked      uint64 `json:"parked"`
	Redelivered uint64 `json:"redelivered"`
}

// assembleInputs carries the raw run measurements into assemble.
type assembleInputs struct {
	launched    []int
	faultsRun   []int
	launchErrs  int
	phaseDeltas []server.Stats
	drainDelta  server.Stats
	totals      server.Stats
	loadWindow  time.Duration
	wall        time.Duration
}

// assemble folds the raw journeys and counter snapshots into a
// ScenarioResult.
func assemble(sc *Scenario, plan *runPlan, journeys []journey, in assembleInputs) *ScenarioResult {
	res := &ScenarioResult{
		Name:         sc.Name,
		Description:  sc.Description,
		Seed:         sc.Seed,
		Servers:      sc.Servers,
		Workload:     sc.Workload,
		SLO:          sc.SLO,
		LaunchErrors: in.launchErrs,
		LoadWindowMS: float64(in.loadWindow) / float64(time.Millisecond),
		WallMS:       float64(in.wall) / float64(time.Millisecond),

		ShedRateLimit:   in.totals.ShedRateLimit,
		ShedConcurrency: in.totals.ShedConcurrency,
		Retries:         in.totals.Retries,
		Parked:          in.totals.Parked,
		Redelivered:     in.totals.Redelivered,
	}
	res.Sheds = res.ShedRateLimit + res.ShedConcurrency

	perPhaseLat := make([][]float64, len(sc.Phases))
	perPhase := make([]PhaseResult, len(sc.Phases))
	var allLat []float64
	for _, j := range journeys {
		res.Launched++
		ph := &perPhase[j.phase]
		switch {
		case j.completed:
			res.Completed++
			ph.Completed++
		case j.failed:
			res.FailedHome++
			ph.FailedHome++
		default:
			res.Lost++
			ph.Lost++
		}
		if !j.lost {
			ms := float64(j.latency) / float64(time.Millisecond)
			allLat = append(allLat, ms)
			perPhaseLat[j.phase] = append(perPhaseLat[j.phase], ms)
		}
	}
	res.LatencyMS = computePercentiles(allLat)
	if sec := in.loadWindow.Seconds(); sec > 0 {
		res.ThroughputPerSec = float64(res.Completed) / sec
	}

	for i, ph := range sc.Phases {
		pr := &perPhase[i]
		pr.Name = ph.Name
		pr.DurationMS = ph.DurationMS
		pr.LaunchRate = ph.LaunchRate
		pr.Launches = in.launched[i]
		pr.Faults = in.faultsRun[i]
		pr.LatencyMS = computePercentiles(perPhaseLat[i])
		if sec := float64(ph.DurationMS) / 1000; sec > 0 {
			pr.ThroughputPerSec = float64(pr.Completed) / sec
		}
		if i < len(in.phaseDeltas) {
			d := in.phaseDeltas[i]
			pr.Arrivals = d.Arrivals
			pr.Dispatches = d.Dispatches
			pr.Retries = d.Retries
			pr.Sheds = d.ShedRateLimit + d.ShedConcurrency
			pr.Parked = d.Parked
			pr.Redelivered = d.Redelivered
		}
	}
	res.Phases = perPhase
	d := in.drainDelta
	res.Phases = append(res.Phases, PhaseResult{
		Name:        "drain",
		Arrivals:    d.Arrivals,
		Dispatches:  d.Dispatches,
		Retries:     d.Retries,
		Sheds:       d.ShedRateLimit + d.ShedConcurrency,
		Parked:      d.Parked,
		Redelivered: d.Redelivered,
	})

	res.EventCounts = EventCounts{
		LaunchesPerPhase: in.launched,
		FaultsPerPhase:   in.faultsRun,
		Terminal:         res.Completed + res.FailedHome,
		PlanDigest:       plan.digest,
	}
	return res
}

// computePercentiles sorts and summarizes one latency population.
// Percentile q is the ceil(q*n)-th smallest sample (nearest-rank), the
// same convention cmd/benchgate's inputs use.
func computePercentiles(ms []float64) Percentiles {
	if len(ms) == 0 {
		return Percentiles{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	return Percentiles{
		P50:   rank(0.50),
		P95:   rank(0.95),
		P99:   rank(0.99),
		Max:   sorted[len(sorted)-1],
		Count: len(sorted),
	}
}

// MarshalReport renders the report as indented JSON (the
// BENCH_cluster.json artifact).
func MarshalReport(r *Report) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CSV renders the report as one row per (scenario, phase) — the
// spreadsheet-friendly sibling of the JSON artifact.
func CSV(r *Report) string {
	var b strings.Builder
	b.WriteString("scenario,phase,duration_ms,launch_rate,launches,faults," +
		"completed,failed_home,lost,throughput_per_sec," +
		"p50_ms,p95_ms,p99_ms,max_ms," +
		"arrivals,dispatches,retries,sheds,parked,redelivered,pass\n")
	for _, sc := range r.Scenarios {
		for _, ph := range sc.Phases {
			fmt.Fprintf(&b, "%s,%s,%d,%g,%d,%d,%d,%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%d,%d,%d,%d,%d,%t\n",
				sc.Name, ph.Name, ph.DurationMS, ph.LaunchRate,
				ph.Launches, ph.Faults, ph.Completed, ph.FailedHome, ph.Lost,
				ph.ThroughputPerSec,
				ph.LatencyMS.P50, ph.LatencyMS.P95, ph.LatencyMS.P99, ph.LatencyMS.Max,
				ph.Arrivals, ph.Dispatches, ph.Retries, ph.Sheds,
				ph.Parked, ph.Redelivered, sc.Pass)
		}
	}
	return b.String()
}
