package loadharness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/asl"
	"repro/internal/core"
	"repro/internal/cred"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/vm"
	"repro/internal/vm/analysis"
)

// authority is the administrative domain every harness cluster runs
// under; resource URIs and principal names hang off it.
const authority = "load.example.org"

// RunOptions tune one scenario execution without editing the spec.
type RunOptions struct {
	// Smoke applies the scenario's Smoke scaling (CI-sized run).
	Smoke bool
	// Seed, when non-zero, overrides the scenario's own seed.
	Seed int64
	// Logf, when set, receives progress lines (phase starts, faults).
	Logf func(format string, args ...any)
}

// plannedLaunch is one precomputed launch: everything random about it
// (time, owner, itinerary) is fixed before the run starts, so the
// offered load is a pure function of the seed.
type plannedLaunch struct {
	at    time.Duration // offset from run start
	phase int
	owner int   // index into the owner population
	route []int // worker index per (hop, alternative), row-major
}

// plannedFault is one scheduled fault with its absolute offset.
type plannedFault struct {
	at    time.Duration
	phase int
	fault Fault
}

// journey is one launched agent's outcome.
type journey struct {
	phase     int
	latency   time.Duration
	completed bool // full results came home
	failed    bool // terminal at home, but short of full results
	lost      bool // never reached a terminal state before the drain ended
}

// Run executes one scenario against a fresh in-process cluster and
// returns its measured result. The run is open-loop: the launch
// schedule is precomputed from the seeded RNG and never waits on
// completions, so overload sheds and queues instead of silently
// self-throttling the load generator.
func Run(sc *Scenario, opts RunOptions) (*ScenarioResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sc = sc.scaled(opts.Smoke, opts.Seed)
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	cluster, err := buildCluster(sc)
	if err != nil {
		return nil, err
	}
	defer cluster.platform.StopAll()

	plan := planRun(sc, cluster)
	logf("scenario %s: %d servers, %d phases, %d launches planned (seed %d)",
		sc.Name, sc.Servers, len(sc.Phases), len(plan.launches), sc.Seed)

	res := executePlan(sc, cluster, plan, logf)
	res.Smoke = opts.Smoke
	res.Breaches = EvaluateSLO(res, sc.SLO)
	res.Pass = len(res.Breaches) == 0
	return res, nil
}

// cluster is the running infrastructure for one scenario.
type cluster struct {
	platform *core.Platform
	servers  []*server.Server // index 0 = home / launch pad
	owners   []keys.Identity

	// The agent template, built once: per-launch work is credential
	// issue + agent assembly only, so agent construction cost cannot
	// distort the open-loop pacing.
	mainModule string
	bundle     []vm.Module
	digest     []byte
	manifest   *analysis.Manifest
	ttl        time.Duration
}

// buildCluster starts the servers, certifies the owner population, and
// compiles the workload bundle once.
func buildCluster(sc *Scenario) (*cluster, error) {
	lease := time.Duration(sc.NameLeaseMS) * time.Millisecond
	p, err := core.NewPlatformWithLease(authority, lease)
	if err != nil {
		return nil, err
	}
	p.Net.SeedFaults(sc.Seed)

	tiers := make([]policy.Tier, len(sc.Tiers))
	for i, t := range sc.Tiers {
		tiers[i] = policy.Tier{Name: t.Name, Rate: t.Rate, Burst: t.Burst,
			MaxConcurrent: t.MaxConcurrent, Fuel: t.Fuel}
	}
	var assigns []policy.TierAssignment
	if sc.AssignAllTier != "" {
		assigns = []policy.TierAssignment{{AnyPrincipal: true, Tier: sc.AssignAllTier}}
	}
	admission := server.AdmissionOff
	if sc.EnforceManifests {
		admission = server.AdmissionEnforce
	}

	// The invoke workload's counter is a server-installed resource, so
	// access flows through the policy engine: one wildcard grant on the
	// counter path lets every certified owner's agents at it.
	var rules []policy.Rule
	if sc.Workload == WorkloadInvoke {
		rules = []policy.Rule{{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"}}}
	}

	c := &cluster{platform: p, ttl: time.Hour}
	for i := 0; i < sc.Servers; i++ {
		cfg := core.ServerConfig{
			Fuel:      sc.Fuel,
			Rules:     rules,
			Admission: admission,
		}
		if i > 0 {
			// Workers carry the admission tiers; server 0 stays
			// untiered so local launches are never shed at the pad.
			cfg.Tiers = tiers
			cfg.TierAssignments = assigns
		}
		s, err := p.StartServer(fmt.Sprintf("s%d", i), serverAddr(i), cfg)
		if err != nil {
			p.StopAll()
			return nil, fmt.Errorf("loadharness: start server %d: %v", i, err)
		}
		if sc.Workload == WorkloadInvoke && i > 0 {
			// The shared counter, replicated on every worker so the
			// invoke path stays local to each visit.
			def := core.CounterResource(names.Resource(authority, "counter"), "counter")
			if err := core.InstallResource(s, def); err != nil {
				p.StopAll()
				return nil, fmt.Errorf("loadharness: install resource on server %d: %v", i, err)
			}
		}
		c.servers = append(c.servers, s)
	}

	owners := sc.Owners
	if owners == 0 {
		owners = defaultOwners
	}
	for i := 0; i < owners; i++ {
		id, err := p.NewOwner(fmt.Sprintf("owner%d", i))
		if err != nil {
			p.StopAll()
			return nil, err
		}
		c.owners = append(c.owners, id)
	}

	main, err := asl.Compile(workloadSource(sc))
	if err != nil {
		p.StopAll()
		return nil, fmt.Errorf("loadharness: compile workload: %v", err)
	}
	c.mainModule = main.Name
	c.bundle = []vm.Module{*main}
	c.digest, err = agent.BundleDigest(c.bundle)
	if err != nil {
		p.StopAll()
		return nil, err
	}
	c.manifest, err = analysis.ComputeManifest(c.bundle)
	if err != nil {
		p.StopAll()
		return nil, err
	}
	return c, nil
}

// serverAddr is the netsim address of server i; fault specs target
// servers by index and resolve through this.
func serverAddr(i int) string { return fmt.Sprintf("s%d:7000", i) }

// workloadSource renders the agent's ASL main module for the scenario's
// workload mix. Every variant reports exactly once per stop, so a full
// journey comes home with len(Results) == Hops.
func workloadSource(sc *Scenario) string {
	switch sc.Workload {
	case WorkloadSpin:
		iters := sc.SpinIters
		if iters == 0 {
			iters = 1000
		}
		return fmt.Sprintf(`module load
func main() {
  var i = 0
  var acc = 0
  while i < %d {
    acc = acc + i * 3 %% 7
    i = i + 1
  }
  report(acc)
}`, iters)
	case WorkloadInvoke:
		calls := sc.InvokeCalls
		if calls == 0 {
			calls = 1
		}
		return fmt.Sprintf(`module load
func main() {
  var c = get_resource("ajanta:resource:%s/counter")
  var i = 0
  while i < %d {
    invoke(c, "add", 1)
    i = i + 1
  }
  report(invoke(c, "get"))
}`, authority, calls)
	default: // WorkloadReport
		return `module load
func main() { report(1) }`
	}
}

// runPlan is the fully deterministic schedule for one run.
type runPlan struct {
	launches []plannedLaunch
	faults   []plannedFault
	// phaseEnd[i] is phase i's end offset from run start.
	phaseEnd []time.Duration
	// digest fingerprints the whole plan; two runs of the same spec and
	// seed must produce the same digest (the determinism contract).
	digest string
}

// planRun derives the complete launch and fault schedule from the
// scenario seed. Launches within a phase are evenly spaced at the
// phase's rate; each launch draws its owner and itinerary rotation from
// the same seeded stream, in schedule order.
func planRun(sc *Scenario, c *cluster) *runPlan {
	rng := rand.New(rand.NewSource(sc.Seed))
	workers := sc.Servers - 1
	plan := &runPlan{}
	h := sha256.New()

	var offset time.Duration
	for pi, ph := range sc.Phases {
		dur := time.Duration(ph.DurationMS) * time.Millisecond
		count := int(ph.LaunchRate * dur.Seconds())
		for i := 0; i < count; i++ {
			gap := time.Duration(float64(time.Second) / ph.LaunchRate)
			l := plannedLaunch{
				at:    offset + time.Duration(i)*gap,
				phase: pi,
				owner: rng.Intn(len(c.owners)),
			}
			// The route: Hops stops, each listing Alternatives workers
			// starting at a seeded rotation so load spreads but stays
			// reproducible.
			start := rng.Intn(workers)
			for hop := 0; hop < sc.Hops; hop++ {
				for alt := 0; alt < sc.Alternatives; alt++ {
					l.route = append(l.route, 1+(start+hop+alt)%workers)
				}
			}
			plan.launches = append(plan.launches, l)
			fmt.Fprintf(h, "L %d %d %d %v\n", pi, l.at.Microseconds(), l.owner, l.route)
		}
		for _, f := range ph.Faults {
			at := offset + time.Duration(f.AtMS)*time.Millisecond
			plan.faults = append(plan.faults, plannedFault{at: at, phase: pi, fault: f})
			fmt.Fprintf(h, "F %d %d %s %d %d %v\n", pi, at.Microseconds(), f.Kind, f.A, f.B, f.Prob)
		}
		offset += dur
		plan.phaseEnd = append(plan.phaseEnd, offset)
	}
	plan.digest = hex.EncodeToString(h.Sum(nil))[:16]
	return plan
}

// timelineEvent is one entry in the merged run schedule.
type timelineEvent struct {
	at     time.Duration
	kind   int // 0 = launch, 1 = fault, 2 = phase end
	launch *plannedLaunch
	fault  *plannedFault
	phase  int
}

// executePlan runs the merged timeline against the live cluster and
// aggregates the results.
func executePlan(sc *Scenario, c *cluster, plan *runPlan, logf func(string, ...any)) *ScenarioResult {
	// Merge launches, faults and phase boundaries into one sorted
	// timeline. Phase-end events sort after same-instant launches and
	// faults so boundary snapshots include them.
	var events []timelineEvent
	for i := range plan.launches {
		l := &plan.launches[i]
		events = append(events, timelineEvent{at: l.at, kind: 0, launch: l, phase: l.phase})
	}
	for i := range plan.faults {
		f := &plan.faults[i]
		events = append(events, timelineEvent{at: f.at, kind: 1, fault: f, phase: f.phase})
	}
	for i, end := range plan.phaseEnd {
		events = append(events, timelineEvent{at: end, kind: 2, phase: i})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].kind < events[j].kind
	})

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		journeys []journey
		stopCh   = make(chan struct{})
	)
	home := c.servers[0]
	launched := make([]int, len(sc.Phases))
	faultsRun := make([]int, len(sc.Phases))
	launchErrs := 0
	crashed := make(map[int]bool)

	// Phase-boundary accounting: snapshot every server at each phase
	// end and attribute the deltas to the closing phase.
	prev := snapshotStats(c.servers)
	var phaseDeltas []server.Stats

	start := time.Now()
	for i := range events {
		ev := &events[i]
		if wait := ev.at - time.Since(start); wait > 0 {
			resource.CoarseSleep(wait, nil)
		}
		switch ev.kind {
		case 0:
			if err := launchOne(sc, c, ev.launch, home, &wg, &mu, &journeys, stopCh); err != nil {
				launchErrs++
			} else {
				launched[ev.phase]++
			}
		case 1:
			applyScenarioFault(c, ev.fault.fault, crashed, logf)
			faultsRun[ev.phase]++
		case 2:
			cur := snapshotStats(c.servers)
			phaseDeltas = append(phaseDeltas, cur.Delta(prev))
			prev = cur
			logf("phase %q done at +%v: %d launched, %d faults",
				sc.Phases[ev.phase].Name, ev.at.Round(time.Millisecond),
				launched[ev.phase], faultsRun[ev.phase])
		}
	}
	loadWindow := time.Since(start)

	// Drain: heal the failure plane, resurrect crashed servers, and
	// give every in-flight agent a bounded window to reach a terminal
	// state. An agent still outstanding after the drain is *lost* —
	// the condition the no-lost-agents SLO exists to catch.
	c.platform.Net.HealAll()
	for idx := range crashed {
		if crashed[idx] {
			if err := c.servers[idx].Restart(); err != nil {
				logf("drain: restart server %d: %v", idx, err)
			}
		}
	}
	drainTimeout := time.Duration(sc.DrainTimeoutMS) * time.Millisecond
	if drainTimeout == 0 {
		drainTimeout = DefaultDrainTimeoutMS * time.Millisecond
	}
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	if ok := resource.CoarseSleep(drainTimeout, drained); !ok {
		logf("drain timed out after %v; outstanding agents are lost", drainTimeout)
	}
	close(stopCh) // releases any waiters still blocked; they record lost
	wg.Wait()
	wall := time.Since(start)

	// The drain's traffic lands in one trailing pseudo-phase so shed
	// and retry totals reconcile against the per-phase rows.
	cur := snapshotStats(c.servers)
	drainDelta := cur.Delta(prev)

	return assemble(sc, plan, journeys, assembleInputs{
		launched: launched, faultsRun: faultsRun, launchErrs: launchErrs,
		phaseDeltas: phaseDeltas, drainDelta: drainDelta, totals: cur,
		loadWindow: loadWindow, wall: wall,
	})
}

// launchOne issues credentials, assembles the agent from the prebuilt
// bundle, and launches it; a goroutine waits for homecoming and records
// the journey.
func launchOne(sc *Scenario, c *cluster, l *plannedLaunch, home *server.Server,
	wg *sync.WaitGroup, mu *sync.Mutex, journeys *[]journey, stopCh chan struct{}) error {
	owner := c.owners[l.owner]
	agentName, err := names.New(names.KindAgent, authority,
		fmt.Sprintf("load-%d-%d", l.phase, l.at.Microseconds()))
	if err != nil {
		return err
	}
	creds, err := cred.IssueForCode(owner, agentName, owner.Name,
		cred.NewRightSet(cred.All), c.ttl, home.Address(), c.digest)
	if err != nil {
		return err
	}
	stops := make([]agent.Stop, sc.Hops)
	for hop := 0; hop < sc.Hops; hop++ {
		alts := make([]names.Name, sc.Alternatives)
		for alt := 0; alt < sc.Alternatives; alt++ {
			alts[alt] = c.servers[l.route[hop*sc.Alternatives+alt]].Name()
		}
		stops[hop] = agent.Stop{Servers: alts, Entry: "main"}
	}
	a, err := agent.New(creds, c.mainModule, c.bundle, agent.Itinerary{Stops: stops})
	if err != nil {
		return err
	}
	a.Manifest = c.manifest

	ch := home.Await(a.Name)
	launchedAt := time.Now()
	if err := home.LaunchLocal(a); err != nil {
		return err
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		j := journey{phase: l.phase}
		select {
		case back := <-ch:
			j.latency = time.Since(launchedAt)
			if len(back.Results) >= sc.Hops {
				j.completed = true
			} else {
				j.failed = true
			}
		case <-stopCh:
			j.lost = true
		}
		mu.Lock()
		*journeys = append(*journeys, j)
		mu.Unlock()
	}()
	return nil
}

// applyScenarioFault translates one spec fault into the live cluster:
// link kinds go to the netsim fault plane, crash/restart act on the
// server process.
func applyScenarioFault(c *cluster, f Fault, crashed map[int]bool, logf func(string, ...any)) {
	switch f.Kind {
	case FaultCrash:
		c.servers[f.A].Crash()
		crashed[f.A] = true
		logf("fault: crash server %d", f.A)
	case FaultRestart:
		if err := c.servers[f.A].Restart(); err != nil {
			logf("fault: restart server %d: %v", f.A, err)
			return
		}
		crashed[f.A] = false
		logf("fault: restart server %d", f.A)
	default:
		op := netsim.FaultOp{Kind: f.Kind, A: serverAddr(f.A), B: serverAddr(f.B), Prob: f.Prob}
		if f.Kind == FaultHealAll {
			op.A, op.B = "", ""
		}
		if err := c.platform.Net.ApplyFault(op); err != nil {
			// Validate() vets kinds and operands up front, so this is a
			// harness bug, not a spec error — surface it loudly.
			logf("fault: apply %s: %v", f.Kind, err)
			return
		}
		logf("fault: %s s%d<->s%d (p=%v)", f.Kind, f.A, f.B, f.Prob)
	}
}

// snapshotStats sums every server's counters into one cluster view.
func snapshotStats(servers []*server.Server) server.Stats {
	var total server.Stats
	for _, s := range servers {
		st := s.Stats()
		total.Arrivals += st.Arrivals
		total.Dispatches += st.Dispatches
		total.Retries += st.Retries
		total.DispatchFailures += st.DispatchFailures
		total.Parked += st.Parked
		total.ParkedNow += st.ParkedNow
		total.Redelivered += st.Redelivered
		total.Delivered += st.Delivered
		total.HeldNow += st.HeldNow
		total.AdmissionRejects += st.AdmissionRejects
		total.ShedRateLimit += st.ShedRateLimit
		total.ShedConcurrency += st.ShedConcurrency
		total.RebindFailures += st.RebindFailures
	}
	return total
}
