package loadharness

import (
	"reflect"
	"testing"
)

// tinyScenario is a CI-sized live run: small cluster, short phases, one
// mid-run partition that heals. Big enough to cross every layer
// (launch, dispatch, fault plane, homecoming, drain), small enough to
// finish in about a second.
func tinyScenario() *Scenario {
	return &Scenario{
		Name: "tiny", Seed: 42, Servers: 3, Hops: 2, Alternatives: 2,
		Workload: WorkloadReport, Owners: 2,
		DrainTimeoutMS: 20_000,
		Phases: []Phase{
			{Name: "steady", DurationMS: 300, LaunchRate: 20},
			{Name: "cut", DurationMS: 300, LaunchRate: 20, Faults: []Fault{
				{AtMS: 0, Kind: FaultPartition, A: 1, B: 2},
				{AtMS: 200, Kind: FaultHeal, A: 1, B: 2},
			}},
		},
		SLO: SLO{P99MS: 15_000},
	}
}

// TestRunTinyScenarioEndToEnd drives a real cluster and checks the
// fleet accounting closes: every launched agent lands in exactly one
// terminal bucket and nothing is lost.
func TestRunTinyScenarioEndToEnd(t *testing.T) {
	res, err := Run(tinyScenario(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched == 0 {
		t.Fatal("run launched no agents")
	}
	if got := res.Completed + res.FailedHome + res.Lost; got != res.Launched {
		t.Fatalf("terminal buckets (%d+%d+%d=%d) do not sum to launched (%d)",
			res.Completed, res.FailedHome, res.Lost, got, res.Launched)
	}
	if res.Lost != 0 {
		t.Fatalf("%d agents lost in a survivable scenario", res.Lost)
	}
	if !res.Pass {
		t.Fatalf("tiny scenario breached its SLO: %v", res.Breaches)
	}
	// The report carries one row per phase plus the drain pseudo-phase.
	if len(res.Phases) != 3 {
		t.Fatalf("phase rows = %d, want 3 (2 phases + drain)", len(res.Phases))
	}
	if res.Phases[1].Faults != 2 {
		t.Fatalf("cut phase ran %d faults, want 2", res.Phases[1].Faults)
	}
}

// TestRunDeterminism is the determinism contract: two runs of the same
// spec and seed produce identical event counts — launches per phase,
// faults per phase, terminal totals, and the full plan digest. Wall
// times and latencies may differ; the experiment itself may not.
func TestRunDeterminism(t *testing.T) {
	a, err := Run(tinyScenario(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyScenario(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.EventCounts, b.EventCounts) {
		t.Fatalf("same seed produced different event counts:\n  a=%+v\n  b=%+v",
			a.EventCounts, b.EventCounts)
	}
	// A different seed must shuffle the plan (owners, routes), which
	// the digest captures even when the counts coincide.
	c, err := Run(tinyScenario(), RunOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if c.EventCounts.PlanDigest == a.EventCounts.PlanDigest {
		t.Fatal("seed override did not change the plan digest")
	}
}
