package loadharness

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

// The starter scenario library ships inside the binary so CI and
// developers run byte-identical specs; custom specs load from disk via
// cmd/ajanta-load -scenario <path>.
//
//go:embed scenarios/*.json
var scenarioFS embed.FS

// Builtin returns the embedded scenario by name.
func Builtin(name string) (*Scenario, error) {
	data, err := scenarioFS.ReadFile("scenarios/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("loadharness: no builtin scenario %q (have: %s)",
			name, strings.Join(BuiltinNames(), ", "))
	}
	return Parse(data)
}

// Builtins returns every embedded scenario, sorted by name.
func Builtins() ([]*Scenario, error) {
	var out []*Scenario
	for _, name := range BuiltinNames() {
		sc, err := Builtin(name)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// BuiltinNames lists the embedded scenario names, sorted.
func BuiltinNames() []string {
	entries, err := scenarioFS.ReadDir("scenarios")
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}
