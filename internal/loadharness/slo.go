package loadharness

import "fmt"

// EvaluateSLO checks one measured result against its SLO block and
// returns every breach as a human-readable line (empty = pass). The
// same function gates a live run (Run fills Breaches from it) and a
// stored artifact (cmd/slogate re-evaluates BENCH_cluster.json), so the
// in-process verdict and the CI verdict can never disagree.
func EvaluateSLO(res *ScenarioResult, slo SLO) []string {
	var breaches []string
	fail := func(format string, args ...any) {
		breaches = append(breaches, fmt.Sprintf(format, args...))
	}

	// No-lost-agents is the default gate: absent max_lost_agents means
	// zero tolerance, the invariant the dead-letter machinery exists
	// to uphold.
	maxLost := 0
	if slo.MaxLostAgents != nil {
		maxLost = *slo.MaxLostAgents
	}
	if res.Lost > maxLost {
		fail("lost agents: %d > max %d", res.Lost, maxLost)
	}
	if res.LaunchErrors > 0 {
		fail("launch errors at the home pad: %d (home must admit every local launch)", res.LaunchErrors)
	}

	if slo.P50MS > 0 && res.LatencyMS.P50 > slo.P50MS {
		fail("p50 latency: %.1fms > %.1fms", res.LatencyMS.P50, slo.P50MS)
	}
	if slo.P95MS > 0 && res.LatencyMS.P95 > slo.P95MS {
		fail("p95 latency: %.1fms > %.1fms", res.LatencyMS.P95, slo.P95MS)
	}
	if slo.P99MS > 0 && res.LatencyMS.P99 > slo.P99MS {
		fail("p99 latency: %.1fms > %.1fms", res.LatencyMS.P99, slo.P99MS)
	}

	if slo.MinThroughput > 0 && res.ThroughputPerSec < slo.MinThroughput {
		fail("throughput: %.2f/s < min %.2f/s", res.ThroughputPerSec, slo.MinThroughput)
	}

	if slo.MaxShedRatio != nil {
		denom := float64(res.Launched) + float64(res.Sheds)
		if denom > 0 {
			ratio := float64(res.Sheds) / denom
			if ratio > *slo.MaxShedRatio {
				fail("shed ratio: %.3f > max %.3f (%d sheds / %d launches)",
					ratio, *slo.MaxShedRatio, res.Sheds, res.Launched)
			}
		}
	}

	// Minimum-activity assertions: a fault scenario whose faults never
	// landed, or a storm that shed nothing, proved nothing. These turn
	// "the harness went inert" into a gate failure instead of a
	// silently green run.
	if slo.MinSheds > 0 && res.Sheds < slo.MinSheds {
		fail("sheds: %d < min %d — the admission pressure never landed", res.Sheds, slo.MinSheds)
	}
	if slo.MinRetries > 0 && res.Retries < slo.MinRetries {
		fail("retries: %d < min %d — the fault injection was inert", res.Retries, slo.MinRetries)
	}
	return breaches
}

// GateReport re-evaluates every scenario in a stored report and returns
// the process exit code (0 pass, 1 breach) plus a human-readable
// verdict. It trusts the measurements but not the stored verdicts: Pass
// flags are recomputed from the SLO blocks, so a hand-edited artifact
// cannot sneak through the gate.
func GateReport(r *Report) (int, string) {
	code := 0
	var out []string
	for i := range r.Scenarios {
		sc := &r.Scenarios[i]
		breaches := EvaluateSLO(sc, sc.SLO)
		if len(breaches) == 0 {
			out = append(out, fmt.Sprintf("PASS %-22s p99=%.1fms thr=%.2f/s lost=%d sheds=%d retries=%d",
				sc.Name, sc.LatencyMS.P99, sc.ThroughputPerSec, sc.Lost, sc.Sheds, sc.Retries))
			continue
		}
		code = 1
		out = append(out, fmt.Sprintf("FAIL %s", sc.Name))
		for _, b := range breaches {
			out = append(out, "  - "+b)
		}
	}
	if len(r.Scenarios) == 0 {
		code = 1
		out = append(out, "FAIL: report contains no scenarios")
	}
	return code, joinLines(out)
}

func joinLines(lines []string) string {
	s := ""
	for _, l := range lines {
		s += l + "\n"
	}
	return s
}
