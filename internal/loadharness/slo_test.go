package loadharness

import (
	"strings"
	"testing"
)

// passingResult is a measured result comfortably inside the SLO the
// breach cases below tighten one bound at a time.
func passingResult() *ScenarioResult {
	return &ScenarioResult{
		Name: "t", Launched: 100, Completed: 98, FailedHome: 2,
		ThroughputPerSec: 20,
		LatencyMS:        Percentiles{P50: 5, P95: 20, P99: 40, Max: 60, Count: 100},
		Sheds:            30, Retries: 12,
	}
}

func TestEvaluateSLOPasses(t *testing.T) {
	ratio := 0.5
	slo := SLO{P50MS: 10, P95MS: 50, P99MS: 100, MinThroughput: 10,
		MaxShedRatio: &ratio, MinSheds: 5, MinRetries: 1}
	if breaches := EvaluateSLO(passingResult(), slo); len(breaches) != 0 {
		t.Fatalf("clean result breached: %v", breaches)
	}
}

func TestEvaluateSLOBreaches(t *testing.T) {
	tighten := func(mutate func(*ScenarioResult, *SLO)) (*ScenarioResult, SLO) {
		res, slo := passingResult(), SLO{}
		mutate(res, &slo)
		return res, slo
	}
	cases := []struct {
		name   string
		mutate func(*ScenarioResult, *SLO)
		want   string
	}{
		{"lost agent with default zero tolerance",
			func(r *ScenarioResult, s *SLO) { r.Lost = 1 },
			"lost agents: 1 > max 0"},
		{"lost agents above an explicit budget",
			func(r *ScenarioResult, s *SLO) { r.Lost = 3; two := 2; s.MaxLostAgents = &two },
			"lost agents: 3 > max 2"},
		{"p99 over bound",
			func(r *ScenarioResult, s *SLO) { s.P99MS = 30 },
			"p99 latency: 40.0ms > 30.0ms"},
		{"throughput under floor",
			func(r *ScenarioResult, s *SLO) { s.MinThroughput = 25 },
			"throughput: 20.00/s < min 25.00/s"},
		{"shed ratio over bound",
			func(r *ScenarioResult, s *SLO) { ratio := 0.1; s.MaxShedRatio = &ratio },
			"shed ratio: 0.231 > max 0.100"},
		{"storm that shed nothing",
			func(r *ScenarioResult, s *SLO) { r.Sheds = 0; s.MinSheds = 10 },
			"sheds: 0 < min 10"},
		{"fault scenario with inert injection",
			func(r *ScenarioResult, s *SLO) { r.Retries = 0; s.MinRetries = 1 },
			"retries: 0 < min 1"},
		{"launch errors at the pad",
			func(r *ScenarioResult, s *SLO) { r.LaunchErrors = 2 },
			"launch errors at the home pad: 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, slo := tighten(tc.mutate)
			breaches := EvaluateSLO(res, slo)
			if len(breaches) == 0 {
				t.Fatal("no breach reported")
			}
			found := false
			for _, b := range breaches {
				if strings.Contains(b, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("breaches %v do not contain %q", breaches, tc.want)
			}
		})
	}
}

// TestGateReportRecomputesVerdicts: slogate must not trust stored Pass
// flags — a breached scenario hand-edited to "pass": true still fails
// the gate, and an empty report is a failure, not a free pass.
func TestGateReportRecomputesVerdicts(t *testing.T) {
	res := passingResult()
	res.Lost = 5
	res.Pass = true // lie
	r := &Report{Scenarios: []ScenarioResult{*res}}
	code, verdict := GateReport(r)
	if code != 1 {
		t.Fatalf("gate code = %d for a lost-agent report, want 1", code)
	}
	if !strings.Contains(verdict, "FAIL t") || !strings.Contains(verdict, "lost agents") {
		t.Fatalf("verdict missing failure detail:\n%s", verdict)
	}

	code, verdict = GateReport(&Report{})
	if code != 1 || !strings.Contains(verdict, "no scenarios") {
		t.Fatalf("empty report passed the gate: code=%d %q", code, verdict)
	}

	good := &Report{Scenarios: []ScenarioResult{*passingResult()}}
	if code, _ := GateReport(good); code != 0 {
		t.Fatalf("clean report failed the gate (code %d)", code)
	}
}
