// Package loadharness is the scenario-driven cluster load harness: it
// measures the platform as a *fleet* instead of one subsystem at a
// time. A declarative, seeded scenario spec describes a cluster (server
// count, agent population, itinerary shapes, invocation/fuel mix, tier
// assignments) and a phased fault schedule (partitions, crashes, drops
// over netsim); the runner (run.go) spins the cluster up in-process,
// drives open-loop load through the real launch/dispatch paths, and
// emits per-phase latency percentiles, throughput, shed counts, and
// no-lost-agents accounting (report.go). Each scenario carries an SLO
// block evaluated by slo.go — cmd/slogate turns a breach into a CI
// failure, the cluster-scale sibling of cmd/benchgate.
//
// Everything is deterministic modulo goroutine scheduling: the launch
// schedule, the itineraries, and the fault schedule are all derived
// from the scenario seed before the run starts, so two runs with the
// same seed produce identical event counts.
package loadharness

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Workload kinds: what each agent executes at every itinerary stop.
const (
	// WorkloadReport is the minimal visit: report one value and move on.
	WorkloadReport = "report"
	// WorkloadSpin burns SpinIters loop iterations of fuel per stop.
	WorkloadSpin = "spin"
	// WorkloadInvoke binds the shared counter resource and invokes it
	// InvokeCalls times per stop — the Fig. 6 protected-access path
	// under fleet load.
	WorkloadInvoke = "invoke"
)

// Fault kinds accepted in a phase schedule. The link kinds map onto
// netsim.FaultOp; crash/restart act on the server process itself.
const (
	FaultPartition = "partition"
	FaultHeal      = "heal"
	FaultHealAll   = "heal_all"
	FaultDrop      = "drop"
	FaultReset     = "reset"
	FaultCrash     = "crash"
	FaultRestart   = "restart"
)

// Scenario is one declarative cluster load experiment.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed drives every random choice (itineraries, owners) and the
	// netsim fault RNG. The CLI's -seed flag overrides it.
	Seed int64 `json:"seed"`
	// Servers is the cluster size. Server 0 is the launch pad (home):
	// it stays untiered so local launches are never shed; servers
	// 1..N-1 are the workers agents tour.
	Servers int `json:"servers"`
	// Hops is the itinerary length; Alternatives is how many candidate
	// servers each stop lists (>= 1; extras are failover targets).
	Hops         int `json:"hops"`
	Alternatives int `json:"alternatives"`
	// Workload selects the per-stop agent behaviour; SpinIters and
	// InvokeCalls parameterize spin and invoke.
	Workload    string `json:"workload"`
	SpinIters   int    `json:"spin_iters,omitempty"`
	InvokeCalls int    `json:"invoke_calls,omitempty"`
	// Fuel is the per-visit instruction budget (0 = the VM default).
	Fuel uint64 `json:"fuel,omitempty"`
	// Owners is the launching-principal population (default 4) —
	// admission tiers rate-limit per owner, so this sets how many
	// token buckets the load spreads across.
	Owners int `json:"owners,omitempty"`
	// Tiers and AssignAllTier configure the workers' admission gates;
	// AssignAllTier assigns every owner to the named tier.
	Tiers         []TierSpec `json:"tiers,omitempty"`
	AssignAllTier string     `json:"assign_all_tier,omitempty"`
	// EnforceManifests turns on static manifest admission control at
	// every server's arrival gate.
	EnforceManifests bool `json:"enforce_manifests,omitempty"`
	// NameLeaseMS sets the name-service lease TTL; small values force
	// resolver-cache churn (0 = the directory default).
	NameLeaseMS int `json:"name_lease_ms,omitempty"`
	// DrainTimeoutMS bounds the post-schedule drain in which every
	// in-flight agent must reach a terminal state (default 60000).
	DrainTimeoutMS int     `json:"drain_timeout_ms,omitempty"`
	Phases         []Phase `json:"phases"`
	SLO            SLO     `json:"slo"`
	// Smoke, when present, is the scaling applied in smoke mode (CI):
	// phase durations and fault offsets shrink by DurationScale, launch
	// rates and the min-throughput SLO by RateScale.
	Smoke *Scale `json:"smoke,omitempty"`
}

// TierSpec mirrors policy.Tier in spec form.
type TierSpec struct {
	Name          string  `json:"name"`
	Rate          float64 `json:"rate,omitempty"`
	Burst         float64 `json:"burst,omitempty"`
	MaxConcurrent int     `json:"max_concurrent,omitempty"`
	Fuel          uint64  `json:"fuel,omitempty"`
}

// Phase is one contiguous window of the experiment: an open-loop launch
// rate and a fault schedule relative to the phase start.
type Phase struct {
	Name       string  `json:"name"`
	DurationMS int     `json:"duration_ms"`
	LaunchRate float64 `json:"launch_rate"` // agents/second; 0 = observe only
	Faults     []Fault `json:"faults,omitempty"`
}

// Fault is one scheduled failure-plane event. A and B are server
// indexes (0 = home). Link kinds use both; crash/restart use A only.
type Fault struct {
	AtMS int     `json:"at_ms"`
	Kind string  `json:"kind"`
	A    int     `json:"a"`
	B    int     `json:"b,omitempty"`
	Prob float64 `json:"prob,omitempty"`
}

// SLO is a scenario's release gate: bounds on the measured aggregates
// (percentiles over the whole run's journey latencies, throughput over
// the scheduled load window) plus minimum-activity assertions that
// prove the scripted pressure actually landed (a storm that shed
// nothing tested nothing).
type SLO struct {
	P50MS float64 `json:"p50_ms,omitempty"`
	P95MS float64 `json:"p95_ms,omitempty"`
	P99MS float64 `json:"p99_ms,omitempty"`
	// MaxLostAgents bounds agents that never reached a terminal state.
	// Absent means 0: losing an agent is a gate failure by default.
	MaxLostAgents *int `json:"max_lost_agents,omitempty"`
	// MinThroughput is the floor on completed journeys per second over
	// the scheduled (pre-drain) load window.
	MinThroughput float64 `json:"min_throughput,omitempty"`
	// MaxShedRatio bounds sheds / (launches + sheds); nil = no bound.
	MaxShedRatio *float64 `json:"max_shed_ratio,omitempty"`
	// MinSheds / MinRetries assert the scenario exercised the gate /
	// the retry machinery at least this many times.
	MinSheds   uint64 `json:"min_sheds,omitempty"`
	MinRetries uint64 `json:"min_retries,omitempty"`
}

// Scale shrinks a scenario for smoke mode.
type Scale struct {
	DurationScale float64 `json:"duration_scale,omitempty"` // 0 = 1.0
	RateScale     float64 `json:"rate_scale,omitempty"`     // 0 = 1.0
}

// DefaultDrainTimeoutMS bounds the drain when a scenario does not set
// its own: generous, because a breached drain means lost agents and a
// failed gate, not a slow one.
const DefaultDrainTimeoutMS = 60_000

// defaultOwners is the launching-principal population when unset.
const defaultOwners = 4

// Parse decodes and validates one scenario spec. Unknown JSON fields
// are rejected — a misspelled knob must not silently run a different
// experiment than the one written down.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("loadharness: parse scenario: %v", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Validate checks structural well-formedness: phase schedules, fault
// kinds and targets, and that the SLO block is satisfiable at all.
func (sc *Scenario) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("loadharness: scenario %q: %s", sc.Name, fmt.Sprintf(format, args...))
	}
	if sc.Name == "" {
		return fmt.Errorf("loadharness: scenario has no name")
	}
	if sc.Servers < 2 {
		return fail("needs at least 2 servers (one launch pad + one worker), got %d", sc.Servers)
	}
	if sc.Hops < 1 {
		return fail("itinerary needs at least 1 hop, got %d", sc.Hops)
	}
	workers := sc.Servers - 1
	if sc.Alternatives < 1 || sc.Alternatives > workers {
		return fail("alternatives %d outside [1, %d] (workers available)", sc.Alternatives, workers)
	}
	switch sc.Workload {
	case WorkloadReport, WorkloadSpin, WorkloadInvoke:
	default:
		return fail("unknown workload %q (want %s, %s or %s)",
			sc.Workload, WorkloadReport, WorkloadSpin, WorkloadInvoke)
	}
	if sc.SpinIters < 0 || sc.InvokeCalls < 0 {
		return fail("spin_iters/invoke_calls must be non-negative")
	}
	if sc.Owners < 0 {
		return fail("owners must be non-negative, got %d", sc.Owners)
	}
	if sc.NameLeaseMS < 0 {
		return fail("name_lease_ms must be non-negative, got %d", sc.NameLeaseMS)
	}
	if sc.DrainTimeoutMS < 0 {
		return fail("drain_timeout_ms must be non-negative, got %d", sc.DrainTimeoutMS)
	}
	tierNames := make(map[string]bool, len(sc.Tiers))
	for i, t := range sc.Tiers {
		if t.Name == "" {
			return fail("tier %d has no name", i)
		}
		if tierNames[t.Name] {
			return fail("tier %q defined twice", t.Name)
		}
		tierNames[t.Name] = true
		if t.Rate < 0 || t.Burst < 0 || t.MaxConcurrent < 0 {
			return fail("tier %q: rate, burst and max_concurrent must be non-negative", t.Name)
		}
	}
	if sc.AssignAllTier != "" && !tierNames[sc.AssignAllTier] {
		return fail("assign_all_tier %q names no defined tier", sc.AssignAllTier)
	}
	if len(sc.Phases) == 0 {
		return fail("needs at least one phase")
	}
	phaseNames := make(map[string]bool, len(sc.Phases))
	for i, ph := range sc.Phases {
		pfail := func(format string, args ...any) error {
			return fail("phase %q: %s", ph.Name, fmt.Sprintf(format, args...))
		}
		if ph.Name == "" {
			return fail("phase %d has no name", i)
		}
		if phaseNames[ph.Name] {
			return fail("phase %q defined twice", ph.Name)
		}
		phaseNames[ph.Name] = true
		if ph.DurationMS <= 0 {
			return pfail("duration_ms must be positive, got %d", ph.DurationMS)
		}
		if ph.LaunchRate < 0 {
			return pfail("launch_rate must be non-negative, got %v", ph.LaunchRate)
		}
		for j, f := range ph.Faults {
			if err := sc.validateFault(f, ph.DurationMS); err != nil {
				return pfail("fault %d: %v", j, err)
			}
		}
	}
	if err := sc.validateSLO(); err != nil {
		return fail("%v", err)
	}
	if sc.Smoke != nil {
		if sc.Smoke.DurationScale < 0 || sc.Smoke.RateScale < 0 {
			return fail("smoke scales must be non-negative")
		}
	}
	return nil
}

// validateFault checks one fault entry against the cluster shape.
func (sc *Scenario) validateFault(f Fault, durationMS int) error {
	if f.AtMS < 0 || f.AtMS > durationMS {
		return fmt.Errorf("at_ms %d outside the phase window [0, %d]", f.AtMS, durationMS)
	}
	inRange := func(idx int, label string) error {
		if idx < 0 || idx >= sc.Servers {
			return fmt.Errorf("server index %s=%d outside [0, %d)", label, idx, sc.Servers)
		}
		return nil
	}
	switch f.Kind {
	case FaultPartition, FaultHeal, FaultDrop, FaultReset:
		if err := inRange(f.A, "a"); err != nil {
			return err
		}
		if err := inRange(f.B, "b"); err != nil {
			return err
		}
		if f.A == f.B {
			return fmt.Errorf("link fault %q needs two distinct servers, got a=b=%d", f.Kind, f.A)
		}
		if (f.Kind == FaultDrop || f.Kind == FaultReset) && (f.Prob < 0 || f.Prob > 1) {
			return fmt.Errorf("fault %q probability %v outside [0, 1]", f.Kind, f.Prob)
		}
	case FaultHealAll:
		// No operands.
	case FaultCrash, FaultRestart:
		if err := inRange(f.A, "a"); err != nil {
			return err
		}
		if f.A == 0 {
			return fmt.Errorf("fault %q cannot target server 0 (the launch pad)", f.Kind)
		}
	default:
		return fmt.Errorf("unknown fault kind %q", f.Kind)
	}
	return nil
}

// validateSLO rejects bounds no run could ever satisfy.
func (sc *Scenario) validateSLO() error {
	s := sc.SLO
	if s.P50MS < 0 || s.P95MS < 0 || s.P99MS < 0 {
		return fmt.Errorf("slo: latency bounds must be non-negative")
	}
	if s.MinThroughput < 0 {
		return fmt.Errorf("slo: min_throughput must be non-negative, got %v", s.MinThroughput)
	}
	if s.MaxLostAgents != nil && *s.MaxLostAgents < 0 {
		return fmt.Errorf("slo: max_lost_agents must be non-negative, got %d", *s.MaxLostAgents)
	}
	if s.MaxShedRatio != nil && (*s.MaxShedRatio < 0 || *s.MaxShedRatio > 1) {
		return fmt.Errorf("slo: max_shed_ratio %v outside [0, 1]", *s.MaxShedRatio)
	}
	// A throughput floor above the offered load is unsatisfiable: the
	// open-loop schedule cannot complete more journeys than it launches.
	if s.MinThroughput > 0 {
		var launches, totalMS float64
		for _, ph := range sc.Phases {
			launches += ph.LaunchRate * float64(ph.DurationMS) / 1000
			totalMS += float64(ph.DurationMS)
		}
		offered := launches / (totalMS / 1000)
		if s.MinThroughput > offered {
			return fmt.Errorf("slo: min_throughput %.2f/s exceeds the offered load %.2f/s — unsatisfiable",
				s.MinThroughput, offered)
		}
	}
	return nil
}

// scaled returns a deep-enough copy with the smoke scaling (if any) and
// seed override applied; the original spec is never mutated.
func (sc *Scenario) scaled(smoke bool, seedOverride int64) *Scenario {
	out := *sc
	if seedOverride != 0 {
		out.Seed = seedOverride
	}
	out.Phases = make([]Phase, len(sc.Phases))
	copy(out.Phases, sc.Phases)
	if !smoke || sc.Smoke == nil {
		for i := range out.Phases {
			out.Phases[i].Faults = append([]Fault(nil), sc.Phases[i].Faults...)
		}
		return &out
	}
	ds, rs := sc.Smoke.DurationScale, sc.Smoke.RateScale
	if ds == 0 {
		ds = 1
	}
	if rs == 0 {
		rs = 1
	}
	for i := range out.Phases {
		ph := &out.Phases[i]
		ph.DurationMS = scaleMS(ph.DurationMS, ds)
		ph.LaunchRate *= rs
		ph.Faults = append([]Fault(nil), sc.Phases[i].Faults...)
		for j := range ph.Faults {
			ph.Faults[j].AtMS = scaleMS(ph.Faults[j].AtMS, ds)
			if ph.Faults[j].AtMS > ph.DurationMS {
				ph.Faults[j].AtMS = ph.DurationMS
			}
		}
	}
	out.SLO.MinThroughput *= rs
	return &out
}

// scaleMS scales a millisecond quantity, keeping positives positive so
// a 1 ms fault offset cannot scale into "before the phase".
func scaleMS(ms int, scale float64) int {
	scaled := int(float64(ms) * scale)
	if ms > 0 && scaled < 1 {
		return 1
	}
	return scaled
}
