package loadharness

import (
	"strings"
	"testing"
)

// validSpec is a minimal well-formed scenario the malformed cases below
// perturb one field at a time.
const validSpec = `{
  "name": "t",
  "seed": 1,
  "servers": 3,
  "hops": 2,
  "alternatives": 1,
  "workload": "report",
  "phases": [
    { "name": "p1", "duration_ms": 100, "launch_rate": 10 }
  ],
  "slo": { "p99_ms": 1000 }
}`

func TestParseValidSpec(t *testing.T) {
	sc, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "t" || len(sc.Phases) != 1 {
		t.Fatalf("parsed spec mangled: %+v", sc)
	}
}

// TestParseMalformedSpecs locks in the golden error messages a spec
// author sees: each rejection must name the scenario, the offending
// phase or fault, and what is wrong — a typo in a scenario must never
// silently run a different experiment.
func TestParseMalformedSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want string
	}{
		{
			name: "unknown top-level field",
			spec: `{"name": "t", "servers": 3, "hopps": 2}`,
			want: `unknown field "hopps"`,
		},
		{
			name: "no phases",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report", "phases": [], "slo": {}}`,
			want: `scenario "t": needs at least one phase`,
		},
		{
			name: "unknown workload",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "mine_bitcoin",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1}], "slo": {}}`,
			want: `unknown workload "mine_bitcoin"`,
		},
		{
			name: "zero-duration phase",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 0, "launch_rate": 1}], "slo": {}}`,
			want: `phase "p": duration_ms must be positive`,
		},
		{
			name: "duplicate phase name",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1},
			                   {"name": "p", "duration_ms": 100, "launch_rate": 1}], "slo": {}}`,
			want: `phase "p" defined twice`,
		},
		{
			name: "unknown fault kind",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1,
			                    "faults": [{"at_ms": 10, "kind": "meteor", "a": 0, "b": 1}]}],
			        "slo": {}}`,
			want: `phase "p": fault 0: unknown fault kind "meteor"`,
		},
		{
			name: "fault outside phase window",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1,
			                    "faults": [{"at_ms": 500, "kind": "heal_all"}]}],
			        "slo": {}}`,
			want: `at_ms 500 outside the phase window [0, 100]`,
		},
		{
			name: "partition of a server with itself",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1,
			                    "faults": [{"at_ms": 10, "kind": "partition", "a": 1, "b": 1}]}],
			        "slo": {}}`,
			want: `needs two distinct servers`,
		},
		{
			name: "fault targets a server outside the cluster",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1,
			                    "faults": [{"at_ms": 10, "kind": "partition", "a": 0, "b": 7}]}],
			        "slo": {}}`,
			want: `server index b=7 outside [0, 3)`,
		},
		{
			name: "drop probability out of range",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1,
			                    "faults": [{"at_ms": 10, "kind": "drop", "a": 0, "b": 1, "prob": 1.5}]}],
			        "slo": {}}`,
			want: `probability 1.5 outside [0, 1]`,
		},
		{
			name: "crashing the launch pad",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1,
			                    "faults": [{"at_ms": 10, "kind": "crash", "a": 0}]}],
			        "slo": {}}`,
			want: `fault "crash" cannot target server 0 (the launch pad)`,
		},
		{
			name: "negative latency SLO",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1}],
			        "slo": {"p99_ms": -5}}`,
			want: `slo: latency bounds must be non-negative`,
		},
		{
			name: "negative max_lost_agents",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1}],
			        "slo": {"max_lost_agents": -1}}`,
			want: `slo: max_lost_agents must be non-negative`,
		},
		{
			name: "shed ratio out of range",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1}],
			        "slo": {"max_shed_ratio": 1.2}}`,
			want: `slo: max_shed_ratio 1.2 outside [0, 1]`,
		},
		{
			name: "throughput floor above offered load",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 1000, "launch_rate": 5}],
			        "slo": {"min_throughput": 50}}`,
			want: `min_throughput 50.00/s exceeds the offered load 5.00/s — unsatisfiable`,
		},
		{
			name: "more alternatives than workers",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 5,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1}], "slo": {}}`,
			want: `alternatives 5 outside [1, 2]`,
		},
		{
			name: "one-server cluster",
			spec: `{"name": "t", "seed": 1, "servers": 1, "hops": 1, "alternatives": 1,
			        "workload": "report",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1}], "slo": {}}`,
			want: `needs at least 2 servers`,
		},
		{
			name: "assign_all_tier names no tier",
			spec: `{"name": "t", "seed": 1, "servers": 3, "hops": 1, "alternatives": 1,
			        "workload": "report", "assign_all_tier": "gold",
			        "phases": [{"name": "p", "duration_ms": 100, "launch_rate": 1}], "slo": {}}`,
			want: `assign_all_tier "gold" names no defined tier`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.spec))
			if err == nil {
				t.Fatalf("Parse accepted a malformed spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestBuiltinScenariosAreValid keeps the shipped library honest: every
// embedded spec must parse and validate, or CI has nothing to run.
func TestBuiltinScenariosAreValid(t *testing.T) {
	names := BuiltinNames()
	if len(names) < 4 {
		t.Fatalf("builtin library too small: %v", names)
	}
	scenarios, err := Builtins()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenarios {
		if sc.Smoke == nil {
			t.Errorf("scenario %s has no smoke scaling — it cannot run in CI", sc.Name)
		}
	}
}

// TestSmokeScalingPreservesSatisfiability: the scaled spec must still
// validate (rates, durations and SLO floors shrink together).
func TestSmokeScalingPreservesSatisfiability(t *testing.T) {
	scenarios, err := Builtins()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenarios {
		scaled := sc.scaled(true, 7)
		if err := scaled.Validate(); err != nil {
			t.Errorf("scenario %s: smoke-scaled spec no longer validates: %v", sc.Name, err)
		}
		if scaled.Seed != 7 {
			t.Errorf("scenario %s: seed override not applied", sc.Name)
		}
		if sc.Seed == 7 {
			t.Errorf("scenario %s: scaling mutated the original spec", sc.Name)
		}
	}
}
