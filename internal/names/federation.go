package names

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrNoAuthority is returned when a name's Authority component is not
// served by any registered authoritative store. It is a permanent
// condition for the sender: retrying the same name against the same
// federation cannot succeed until an operator registers the authority.
var ErrNoAuthority = errors.New("names: no authoritative store for authority")

// authorityTable is one immutable published generation of the
// authority → store routing map.
type authorityTable struct {
	m map[string]*Service
}

// Federation partitions naming authority across stores by the name's
// Authority component (paper §4: each naming authority manages its own
// portion of the global name space). Routing is lock-free; registering
// an authority copies the routing table under a writer mutex, so
// membership changes never stall resolution.
//
// Federation implements Directory, so servers and resolvers are
// indifferent to whether they talk to one authority or many.
type Federation struct {
	mu   sync.Mutex // serializes writers only
	snap atomic.Pointer[authorityTable]
}

// NewFederation returns a federation with no registered authorities.
func NewFederation() *Federation {
	f := &Federation{}
	f.snap.Store(&authorityTable{m: make(map[string]*Service)})
	return f
}

// AddAuthority registers svc as the authoritative store for all names
// whose Authority component equals authority, replacing any previous
// registration.
func (f *Federation) AddAuthority(authority string, svc *Service) error {
	if !validComponent(authority) {
		return fmt.Errorf("%w: %q", ErrBadAuthority, authority)
	}
	if svc == nil {
		return errors.New("names: AddAuthority: nil service")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.snap.Load().m
	m := make(map[string]*Service, len(cur)+1)
	for a, s := range cur {
		m[a] = s
	}
	m[authority] = svc
	f.snap.Store(&authorityTable{m: m})
	return nil
}

// Authorities lists the registered authority components.
func (f *Federation) Authorities() []string {
	m := f.snap.Load().m
	out := make([]string, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	return out
}

// route finds the authoritative store for a name.
func (f *Federation) route(n Name) (*Service, error) {
	svc, ok := f.snap.Load().m[n.Authority]
	if !ok {
		return nil, fmt.Errorf("%w: %q (name %s)", ErrNoAuthority, n.Authority, n)
	}
	return svc, nil
}

// Bind routes to the name's authority and binds there.
func (f *Federation) Bind(n Name, loc Location) error {
	svc, err := f.route(n)
	if err != nil {
		return err
	}
	return svc.Bind(n, loc)
}

// BindReplica routes to the name's authority and adds a replica there.
func (f *Federation) BindReplica(n Name, loc Location) error {
	svc, err := f.route(n)
	if err != nil {
		return err
	}
	return svc.BindReplica(n, loc)
}

// Unbind routes to the name's authority; unbinding a name under an
// unregistered authority is a no-op, matching Unbind's idempotence.
func (f *Federation) Unbind(n Name) {
	svc, err := f.route(n)
	if err != nil {
		return
	}
	svc.Unbind(n)
}

// Resolve routes to the name's authority and resolves there.
func (f *Federation) Resolve(n Name) (Binding, error) {
	svc, err := f.route(n)
	if err != nil {
		return Binding{}, err
	}
	return svc.Resolve(n)
}
