package names

import (
	"errors"
	"testing"
)

func TestFederationRouting(t *testing.T) {
	f := NewFederation()
	acme := NewService()
	umn := NewService()
	if err := f.AddAuthority("acme.org", acme); err != nil {
		t.Fatal(err)
	}
	if err := f.AddAuthority("umn.edu", umn); err != nil {
		t.Fatal(err)
	}

	na := Agent("acme.org", "a")
	nu := Agent("umn.edu", "u")
	if err := f.Bind(na, Location{Address: "a:1"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Bind(nu, Location{Address: "u:1"}); err != nil {
		t.Fatal(err)
	}

	// Each binding landed in (only) its authority's store.
	if acme.Len() != 1 || umn.Len() != 1 {
		t.Fatalf("store lens = %d, %d; want 1, 1", acme.Len(), umn.Len())
	}
	if b, err := f.Resolve(na); err != nil || b.Primary().Address != "a:1" {
		t.Fatalf("Resolve(%s) = %+v, %v", na, b, err)
	}
	if b, err := acme.Resolve(na); err != nil || b.Primary().Address != "a:1" {
		t.Fatalf("direct Resolve = %+v, %v", b, err)
	}

	// BindReplica routes too.
	if err := f.BindReplica(na, Location{Address: "a:2"}); err != nil {
		t.Fatal(err)
	}
	if b, _ := f.Resolve(na); len(b.Locations) != 2 {
		t.Fatalf("replica not routed: %+v", b)
	}

	// Unbind routes; unbinding under an unknown authority is a no-op.
	f.Unbind(na)
	if _, err := f.Resolve(na); !errors.Is(err, ErrNotBound) {
		t.Fatalf("Resolve after Unbind = %v", err)
	}
	f.Unbind(Agent("nowhere.net", "x"))
}

func TestFederationNoAuthority(t *testing.T) {
	f := NewFederation()
	n := Agent("nowhere.net", "x")
	if err := f.Bind(n, Location{Address: "h:1"}); !errors.Is(err, ErrNoAuthority) {
		t.Fatalf("Bind = %v, want ErrNoAuthority", err)
	}
	if err := f.BindReplica(n, Location{Address: "h:1"}); !errors.Is(err, ErrNoAuthority) {
		t.Fatalf("BindReplica = %v, want ErrNoAuthority", err)
	}
	if _, err := f.Resolve(n); !errors.Is(err, ErrNoAuthority) {
		t.Fatalf("Resolve = %v, want ErrNoAuthority", err)
	}
}

func TestFederationAddAuthorityValidation(t *testing.T) {
	f := NewFederation()
	if err := f.AddAuthority("bad/authority", NewService()); err == nil {
		t.Fatal("malformed authority accepted")
	}
	if err := f.AddAuthority("acme.org", nil); err == nil {
		t.Fatal("nil service accepted")
	}
	// Replacement wins.
	s1, s2 := NewService(), NewService()
	if err := f.AddAuthority("acme.org", s1); err != nil {
		t.Fatal(err)
	}
	if err := f.AddAuthority("acme.org", s2); err != nil {
		t.Fatal(err)
	}
	n := Agent("acme.org", "a")
	if err := f.Bind(n, Location{Address: "h:1"}); err != nil {
		t.Fatal(err)
	}
	if s1.Len() != 0 || s2.Len() != 1 {
		t.Fatalf("replacement did not take: lens %d, %d", s1.Len(), s2.Len())
	}
	if got := len(f.Authorities()); got != 1 {
		t.Fatalf("Authorities = %d, want 1", got)
	}
}

// TestFederationDirectory pins the compile-time contract that both the
// single store and the federation satisfy Directory.
func TestFederationDirectory(t *testing.T) {
	var _ Directory = NewService()
	var _ Directory = NewFederation()
}
