// Package names implements the global, location-independent naming scheme
// used by Ajanta for agents, agent servers, resources, and principals
// (paper §4: "All agents, agent servers, and resources are assigned
// global, location-independent names").
//
// A name has the textual form
//
//	ajanta:<kind>:<authority>/<path>
//
// where <kind> identifies the category of entity, <authority> is the
// naming authority (typically the registering organisation or home
// server), and <path> is a slash-separated identifier unique within the
// authority. Names are pure identifiers: binding a name to a network
// location is the job of the NameService.
package names

import (
	"errors"
	"fmt"
	"strings"
)

// Kind is the category of a named entity.
type Kind string

// The entity categories used throughout the system. Principals (§2 of the
// paper) include users, hosts, servers and groups; agents and resources
// get their own kinds because the access-control machinery dispatches on
// them.
const (
	KindAgent     Kind = "agent"
	KindServer    Kind = "server"
	KindResource  Kind = "resource"
	KindPrincipal Kind = "principal"
	KindGroup     Kind = "group"
)

// validKinds enumerates every Kind accepted by Parse and Valid.
var validKinds = map[Kind]bool{
	KindAgent:     true,
	KindServer:    true,
	KindResource:  true,
	KindPrincipal: true,
	KindGroup:     true,
}

// Scheme is the URI scheme prefix of every textual name.
const Scheme = "ajanta"

// Errors returned by Parse and Valid.
var (
	ErrBadScheme    = errors.New("names: missing or wrong scheme (want \"ajanta:\")")
	ErrBadKind      = errors.New("names: unknown kind")
	ErrBadAuthority = errors.New("names: empty or malformed authority")
	ErrBadPath      = errors.New("names: empty or malformed path")
)

// Name is a global, location-independent identifier. The zero Name is
// invalid; use New or Parse.
type Name struct {
	Kind      Kind
	Authority string
	Path      string
}

// New constructs a Name and validates it.
func New(kind Kind, authority, path string) (Name, error) {
	n := Name{Kind: kind, Authority: authority, Path: path}
	if err := n.Valid(); err != nil {
		return Name{}, err
	}
	return n, nil
}

// MustNew is New for statically known-good names; it panics on error.
func MustNew(kind Kind, authority, path string) Name {
	n, err := New(kind, authority, path)
	if err != nil {
		panic(err)
	}
	return n
}

// Valid reports whether the name is well formed.
func (n Name) Valid() error {
	if !validKinds[n.Kind] {
		return fmt.Errorf("%w: %q", ErrBadKind, n.Kind)
	}
	if !validComponent(n.Authority) {
		return fmt.Errorf("%w: %q", ErrBadAuthority, n.Authority)
	}
	if n.Path == "" || strings.HasPrefix(n.Path, "/") || strings.HasSuffix(n.Path, "/") {
		return fmt.Errorf("%w: %q", ErrBadPath, n.Path)
	}
	for _, seg := range strings.Split(n.Path, "/") {
		if !validComponent(seg) {
			return fmt.Errorf("%w: segment %q", ErrBadPath, seg)
		}
	}
	return nil
}

// validComponent accepts non-empty strings of letters, digits, '.', '-'
// and '_'. Colons and slashes are structural and therefore excluded.
func validComponent(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// String renders the canonical textual form.
func (n Name) String() string {
	return Scheme + ":" + string(n.Kind) + ":" + n.Authority + "/" + n.Path
}

// IsZero reports whether the name is the zero value.
func (n Name) IsZero() bool { return n == Name{} }

// Parse parses the canonical textual form produced by String.
func Parse(s string) (Name, error) {
	rest, ok := strings.CutPrefix(s, Scheme+":")
	if !ok {
		return Name{}, fmt.Errorf("%w: %q", ErrBadScheme, s)
	}
	kindStr, rest, ok := strings.Cut(rest, ":")
	if !ok {
		return Name{}, fmt.Errorf("%w: %q", ErrBadKind, s)
	}
	authority, path, ok := strings.Cut(rest, "/")
	if !ok {
		return Name{}, fmt.Errorf("%w: %q", ErrBadPath, s)
	}
	return New(Kind(kindStr), authority, path)
}

// Agent, Server, Resource, Principal and Group are convenience
// constructors that panic on malformed input; they are intended for
// configuration and tests where the inputs are literals.
func Agent(authority, path string) Name     { return MustNew(KindAgent, authority, path) }
func Server(authority, path string) Name    { return MustNew(KindServer, authority, path) }
func Resource(authority, path string) Name  { return MustNew(KindResource, authority, path) }
func Principal(authority, path string) Name { return MustNew(KindPrincipal, authority, path) }
func Group(authority, path string) Name     { return MustNew(KindGroup, authority, path) }
