package names

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValid(t *testing.T) {
	n, err := New(KindAgent, "umn.edu", "shoppers/a17")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got, want := n.String(), "ajanta:agent:umn.edu/shoppers/a17"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestNewRejectsBadKind(t *testing.T) {
	if _, err := New(Kind("gizmo"), "a", "b"); err == nil {
		t.Fatal("want error for unknown kind")
	}
}

func TestNewRejectsBadAuthority(t *testing.T) {
	for _, auth := range []string{"", "has space", "has:colon", "has/slash"} {
		if _, err := New(KindServer, auth, "x"); err == nil {
			t.Errorf("authority %q: want error", auth)
		}
	}
}

func TestNewRejectsBadPath(t *testing.T) {
	for _, p := range []string{"", "/lead", "trail/", "a//b", "sp ace"} {
		if _, err := New(KindResource, "org", p); err == nil {
			t.Errorf("path %q: want error", p)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []Name{
		Agent("umn.edu", "a1"),
		Server("cs.umn.edu", "host-3/srv_0"),
		Resource("acme.com", "db/quotes"),
		Principal("umn.edu", "tripathi"),
		Group("umn.edu", "faculty"),
	}
	for _, n := range cases {
		got, err := Parse(n.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", n.String(), err)
		}
		if got != n {
			t.Fatalf("Parse(%q) = %+v, want %+v", n.String(), got, n)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"agent:umn.edu/a",         // no scheme
		"ajanta:agent:umn.edu",    // no path separator
		"ajanta:bogus:umn.edu/a",  // bad kind
		"http:agent:umn.edu/a",    // wrong scheme
		"ajanta:agent:/a",         // empty authority
		"ajanta:agent:umn.edu/",   // empty path
		"ajanta:agent:umn.edu/a/", // trailing slash
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): want error", s)
		}
	}
}

// randomName builds a valid Name from a PRNG, for property testing.
func randomName(r *rand.Rand) Name {
	kinds := []Kind{KindAgent, KindServer, KindResource, KindPrincipal, KindGroup}
	comp := func() string {
		const alpha = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-_"
		n := 1 + r.Intn(10)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alpha[r.Intn(len(alpha))])
		}
		return b.String()
	}
	segs := 1 + r.Intn(3)
	parts := make([]string, segs)
	for i := range parts {
		parts[i] = comp()
	}
	return Name{Kind: kinds[r.Intn(len(kinds))], Authority: comp(), Path: strings.Join(parts, "/")}
}

// Property: every valid name round-trips through its textual form.
func TestQuickParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		n := randomName(rand.New(rand.NewSource(seed)))
		if n.Valid() != nil {
			return false
		}
		got, err := Parse(n.String())
		return err == nil && got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestServiceBindLookup(t *testing.T) {
	s := NewService()
	n := Agent("umn.edu", "a1")
	srv := Server("umn.edu", "s1")
	if err := s.Bind(n, Location{Address: "10.0.0.1:7000", ServerName: srv}); err != nil {
		t.Fatal(err)
	}
	loc, err := s.Lookup(n)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Address != "10.0.0.1:7000" || loc.ServerName != srv {
		t.Fatalf("Lookup = %+v", loc)
	}
}

func TestServiceLookupMissing(t *testing.T) {
	s := NewService()
	if _, err := s.Lookup(Agent("x", "y")); err == nil {
		t.Fatal("want ErrNotBound")
	}
}

func TestServiceRebindReplaces(t *testing.T) {
	s := NewService()
	n := Agent("umn.edu", "a1")
	_ = s.Bind(n, Location{Address: "first"})
	_ = s.Bind(n, Location{Address: "second"})
	loc, err := s.Lookup(n)
	if err != nil || loc.Address != "second" {
		t.Fatalf("got %+v, %v", loc, err)
	}
}

func TestServiceUnbind(t *testing.T) {
	s := NewService()
	n := Agent("umn.edu", "a1")
	_ = s.Bind(n, Location{Address: "addr"})
	s.Unbind(n)
	if _, err := s.Lookup(n); err == nil {
		t.Fatal("want error after Unbind")
	}
	s.Unbind(n) // no-op, must not panic
}

func TestServiceBindRejectsInvalid(t *testing.T) {
	s := NewService()
	if err := s.Bind(Name{}, Location{}); err == nil {
		t.Fatal("want error for zero name")
	}
}

func TestServiceSnapshotIsCopy(t *testing.T) {
	s := NewService()
	n := Agent("umn.edu", "a1")
	_ = s.Bind(n, Location{Address: "addr"})
	snap := s.Snapshot()
	if !reflect.DeepEqual(snap, map[Name]Location{n: {Address: "addr"}}) {
		t.Fatalf("snapshot = %+v", snap)
	}
	snap[n] = Location{Address: "mutated"}
	loc, _ := s.Lookup(n)
	if loc.Address != "addr" {
		t.Fatal("snapshot mutation leaked into service")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestServiceConcurrentAccess(t *testing.T) {
	s := NewService()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				n := Agent("umn.edu", "a"+string(rune('a'+i)))
				_ = s.Bind(n, Location{Address: "x"})
				_, _ = s.Lookup(n)
				s.Unbind(n)
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
