package names

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ResolverConfig tunes a caching resolver.
type ResolverConfig struct {
	// Self is the resolver owner's own address, the origin for
	// proximity ranking. Empty disables ranking.
	Self string
	// Proximity estimates the network latency between two addresses.
	// Nil disables location-aware ranking: ResolveAll then preserves
	// authority order (primary first).
	Proximity func(from, to string) time.Duration
	// Now returns the current time in nanoseconds. Resolvers sit on
	// the dispatch hot path, so owners inject their cheap clock (the
	// server injects the process-wide coarse clock); nil falls back to
	// time.Now.
	Now func() int64
}

// ResolverStats is a point-in-time snapshot of resolver counters.
type ResolverStats struct {
	// Hits counts lease-valid cache serves (the lock-free fast path).
	Hits uint64
	// HintServes counts serves from a forwarding hint observed
	// locally (piggybacked on a transfer ack) rather than fetched
	// from the authority.
	HintServes uint64
	// StaleServes counts serves of an expired entry while an
	// asynchronous refresh was in flight.
	StaleServes uint64
	// Misses counts resolutions that had to consult the authority
	// synchronously.
	Misses uint64
	// Refreshes counts asynchronous lease refreshes started.
	Refreshes uint64
	// Invalidations counts explicit cache invalidations (failed
	// sends, authority not-bound answers).
	Invalidations uint64
}

// cacheEntry is one cached binding. hint marks entries learned from a
// forwarding hint rather than the authority; they carry the previous
// entry's lease (or the default) and are replaced by the first
// authoritative answer. stripe is the entry's name-shard, precomputed
// at store time so the hit counters can stripe without hashing on the
// fast path.
type cacheEntry struct {
	b       Binding
	expires int64
	hint    bool
	stripe  uint8
}

// hotCounter is a cache-line-padded striped counter for the lock-free
// resolve fast path: a single shared atomic would make otherwise
// independent goroutines ping-pong one cache line, serializing the very
// path the COW snapshot keeps coordination-free. Stripes follow the
// name shards, so concurrent resolutions of different names land on
// different lines.
type hotCounter [NumShards]struct {
	v atomic.Uint64
	_ [56]byte // pad to a cache line
}

func (c *hotCounter) add(stripe uint8) { c[stripe].v.Add(1) }

func (c *hotCounter) total() uint64 {
	var t uint64
	for i := range c {
		t += c[i].v.Load()
	}
	return t
}

// resolverTable is one immutable published generation of the cache.
type resolverTable struct {
	m map[Name]cacheEntry
}

// Resolver is a per-server lease-caching resolver over an authoritative
// Directory. Lease-valid entries are served lock-free from a COW
// snapshot (one atomic load + map read, zero allocations); expired
// entries are served stale once while a deduplicated asynchronous
// refresh revalidates them; misses fall through to the authority
// synchronously. Dispatch failure invalidates, so a stale cache always
// converges: the worst case is one failed send against the old
// location followed by an authoritative re-resolve.
type Resolver struct {
	auth Directory
	cfg  ResolverConfig

	snap atomic.Pointer[resolverTable]

	mu         sync.Mutex // serializes cache writers and refresh dedupe
	refreshing map[Name]bool

	hits          hotCounter
	hintServes    hotCounter
	staleServes   atomic.Uint64
	misses        atomic.Uint64
	refreshes     atomic.Uint64
	invalidations atomic.Uint64
}

// NewResolver returns an empty resolver over auth.
func NewResolver(auth Directory, cfg ResolverConfig) *Resolver {
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	r := &Resolver{
		auth:       auth,
		cfg:        cfg,
		refreshing: make(map[Name]bool),
	}
	r.snap.Store(&resolverTable{m: make(map[Name]cacheEntry)})
	return r
}

// Resolve returns the best-known location of a name. Lease-valid cache
// hits take the lock-free fast path; expired entries are served stale
// while a background refresh runs; misses consult the authority.
func (r *Resolver) Resolve(n Name) (Location, error) {
	if e, ok := r.snap.Load().m[n]; ok {
		if r.cfg.Now() < e.expires {
			if e.hint {
				r.hintServes.add(e.stripe)
			} else {
				r.hits.add(e.stripe)
			}
			return e.b.Primary(), nil
		}
		r.staleServes.Add(1)
		r.refreshAsync(n)
		return e.b.Primary(), nil
	}
	r.misses.Add(1)
	b, err := r.fetch(n)
	if err != nil {
		return Location{}, err
	}
	return b.Primary(), nil
}

// ResolveAll returns every known location of a name, ranked nearest
// first when proximity ranking is configured (authority order — primary
// first — otherwise). The same cache/lease discipline as Resolve
// applies. The returned slice is the caller's to keep.
func (r *Resolver) ResolveAll(n Name) ([]Location, error) {
	var b Binding
	if e, ok := r.snap.Load().m[n]; ok {
		if r.cfg.Now() < e.expires {
			if e.hint {
				r.hintServes.add(e.stripe)
			} else {
				r.hits.add(e.stripe)
			}
		} else {
			r.staleServes.Add(1)
			r.refreshAsync(n)
		}
		b = e.b
	} else {
		r.misses.Add(1)
		var err error
		b, err = r.fetch(n)
		if err != nil {
			return nil, err
		}
	}
	return r.rank(b.Locations), nil
}

// rank orders a copy of locs nearest-first by the configured proximity
// estimate. Unmeasurable pairs keep their relative (authority) order by
// sorting after measurable ones; with no Proximity func the copy keeps
// authority order.
func (r *Resolver) rank(locs []Location) []Location {
	out := make([]Location, len(locs))
	copy(out, locs)
	if r.cfg.Proximity == nil || len(out) < 2 {
		return out
	}
	type ranked struct {
		loc Location
		d   time.Duration
		ok  bool
	}
	ds := make([]ranked, len(out))
	for i, l := range out {
		d := r.cfg.Proximity(r.cfg.Self, l.Address)
		ds[i] = ranked{loc: l, d: d, ok: d > 0}
	}
	sort.SliceStable(ds, func(i, j int) bool {
		switch {
		case ds[i].ok && ds[j].ok:
			return ds[i].d < ds[j].d
		case ds[i].ok:
			return true
		default:
			return false
		}
	})
	for i := range ds {
		out[i] = ds[i].loc
	}
	return out
}

// fetch consults the authority and installs (or, for not-bound answers,
// removes) the cache entry.
func (r *Resolver) fetch(n Name) (Binding, error) {
	b, err := r.auth.Resolve(n)
	if err != nil {
		// A definitive "not bound" (or unroutable authority) answer
		// invalidates whatever we had cached — the authority has
		// spoken.
		r.removeEntry(n)
		return Binding{}, err
	}
	r.storeEntry(n, cacheEntry{
		b:       b,
		expires: r.cfg.Now() + int64(b.Lease),
		hint:    false,
	})
	return b, nil
}

// refreshAsync starts one background revalidation of n, deduplicating
// concurrent requests for the same name.
func (r *Resolver) refreshAsync(n Name) {
	r.mu.Lock()
	if r.refreshing[n] {
		r.mu.Unlock()
		return
	}
	r.refreshing[n] = true
	r.mu.Unlock()
	r.refreshes.Add(1)
	go func() {
		_, _ = r.fetch(n)
		r.mu.Lock()
		delete(r.refreshing, n)
		r.mu.Unlock()
	}()
}

// Observe installs a forwarding hint: a location learned out of band
// (piggybacked on a transfer ack) rather than from the authority. The
// hint carries a full default lease and is replaced by the first
// authoritative refresh. Hints never displace a lease-valid
// authoritative entry with the same location.
func (r *Resolver) Observe(n Name, loc Location) {
	now := r.cfg.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	if e, ok := cur.m[n]; ok && !e.hint && now < e.expires && e.b.Primary() == loc {
		return
	}
	lease := DefaultLease
	if e, ok := cur.m[n]; ok && e.b.Lease > 0 {
		lease = e.b.Lease
	}
	r.storeLocked(cur, n, cacheEntry{
		b:       Binding{Locations: []Location{loc}, Lease: lease},
		expires: now + int64(lease),
		hint:    true,
	})
}

// Invalidate drops the cache entry for n (e.g. after a failed send to
// its address), forcing the next resolution through the authority.
func (r *Resolver) Invalidate(n Name) {
	r.invalidations.Add(1)
	r.removeEntry(n)
}

// Flush drops the whole cache.
func (r *Resolver) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.snap.Store(&resolverTable{m: make(map[Name]cacheEntry)})
}

// Stats returns a snapshot of the resolver counters.
func (r *Resolver) Stats() ResolverStats {
	return ResolverStats{
		Hits:          r.hits.total(),
		HintServes:    r.hintServes.total(),
		StaleServes:   r.staleServes.Load(),
		Misses:        r.misses.Load(),
		Refreshes:     r.refreshes.Load(),
		Invalidations: r.invalidations.Load(),
	}
}

// Len reports the number of cached entries.
func (r *Resolver) Len() int { return len(r.snap.Load().m) }

// storeEntry publishes a new cache generation containing e under n.
func (r *Resolver) storeEntry(n Name, e cacheEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.storeLocked(r.snap.Load(), n, e)
}

// storeLocked clones cur, sets n → e and publishes; caller holds r.mu
// and must have loaded cur under it. The entry's counter stripe is
// derived here, once per store, off the fast path.
func (r *Resolver) storeLocked(cur *resolverTable, n Name, e cacheEntry) {
	e.stripe = uint8(shardIndex(n))
	m := make(map[Name]cacheEntry, len(cur.m)+1)
	for k, v := range cur.m {
		m[k] = v
	}
	m[n] = e
	r.snap.Store(&resolverTable{m: m})
}

// removeEntry publishes a new cache generation without n.
func (r *Resolver) removeEntry(n Name) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	if _, ok := cur.m[n]; !ok {
		return
	}
	m := make(map[Name]cacheEntry, len(cur.m))
	for k, v := range cur.m {
		if k == n {
			continue
		}
		m[k] = v
	}
	r.snap.Store(&resolverTable{m: m})
}
