package names

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable nanosecond clock for lease tests.
type fakeClock struct{ now atomic.Int64 }

func (c *fakeClock) Now() int64              { return c.now.Load() }
func (c *fakeClock) Advance(d time.Duration) { c.now.Add(int64(d)) }
func newResolverClock() (*fakeClock, ResolverConfig) {
	c := &fakeClock{}
	c.now.Store(1) // nonzero so expires=0 entries are expired
	return c, ResolverConfig{Now: c.Now}
}

// waitFor polls until cond holds or the deadline passes; background
// refreshes are asynchronous, so tests observe their effect this way.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestResolverMissThenHit(t *testing.T) {
	auth := NewService()
	n := Agent("acme.org", "a")
	loc := Location{Address: "h1:1"}
	if err := auth.Bind(n, loc); err != nil {
		t.Fatal(err)
	}
	_, cfg := newResolverClock()
	r := NewResolver(auth, cfg)

	got, err := r.Resolve(n)
	if err != nil || got != loc {
		t.Fatalf("first Resolve = %+v, %v", got, err)
	}
	if st := r.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after miss: %+v", st)
	}

	// Second resolve is a cache hit; an authority-side rebind inside
	// the lease is deliberately not observed yet.
	if err := auth.Bind(n, Location{Address: "h2:1"}); err != nil {
		t.Fatal(err)
	}
	got, err = r.Resolve(n)
	if err != nil || got != loc {
		t.Fatalf("cached Resolve = %+v, %v; want stale %+v", got, err, loc)
	}
	if st := r.Stats(); st.Hits != 1 {
		t.Fatalf("after hit: %+v", st)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestResolverLeaseExpiryRefreshesAsync(t *testing.T) {
	auth := NewService()
	n := Agent("acme.org", "a")
	if err := auth.Bind(n, Location{Address: "old:1"}); err != nil {
		t.Fatal(err)
	}
	clk, cfg := newResolverClock()
	r := NewResolver(auth, cfg)
	if _, err := r.Resolve(n); err != nil {
		t.Fatal(err)
	}

	// Rebind at the authority (epoch bump), then expire the lease.
	if err := auth.Bind(n, Location{Address: "new:1"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(DefaultLease + time.Nanosecond)

	// The expired entry is served stale once while a refresh runs.
	got, err := r.Resolve(n)
	if err != nil || got.Address != "old:1" {
		t.Fatalf("stale serve = %+v, %v; want old:1", got, err)
	}
	if st := r.Stats(); st.StaleServes == 0 || st.Refreshes == 0 {
		t.Fatalf("expected stale serve + refresh, got %+v", st)
	}

	// The async refresh converges on the authority's answer (and the
	// bumped epoch).
	waitFor(t, func() bool {
		got, err := r.Resolve(n)
		return err == nil && got.Address == "new:1"
	})
}

func TestResolverNotBoundInvalidates(t *testing.T) {
	auth := NewService()
	n := Agent("acme.org", "a")
	if err := auth.Bind(n, Location{Address: "h:1"}); err != nil {
		t.Fatal(err)
	}
	clk, cfg := newResolverClock()
	r := NewResolver(auth, cfg)
	if _, err := r.Resolve(n); err != nil {
		t.Fatal(err)
	}

	auth.Unbind(n)
	clk.Advance(DefaultLease + time.Nanosecond)
	// Stale serve kicks a refresh; the authority's not-bound answer
	// removes the entry, so resolution converges to ErrNotBound.
	if _, err := r.Resolve(n); err != nil {
		t.Fatalf("stale serve should still answer: %v", err)
	}
	waitFor(t, func() bool {
		_, err := r.Resolve(n)
		return errors.Is(err, ErrNotBound)
	})
	if r.Len() != 0 {
		t.Fatalf("entry not removed, Len = %d", r.Len())
	}
}

func TestResolverInvalidate(t *testing.T) {
	auth := NewService()
	n := Agent("acme.org", "a")
	if err := auth.Bind(n, Location{Address: "h1:1"}); err != nil {
		t.Fatal(err)
	}
	_, cfg := newResolverClock()
	r := NewResolver(auth, cfg)
	if _, err := r.Resolve(n); err != nil {
		t.Fatal(err)
	}
	if err := auth.Bind(n, Location{Address: "h2:1"}); err != nil {
		t.Fatal(err)
	}
	// Invalidate (as the dispatch path does after a failed send)
	// forces the next resolve through the authority even though the
	// lease has not expired.
	r.Invalidate(n)
	got, err := r.Resolve(n)
	if err != nil || got.Address != "h2:1" {
		t.Fatalf("post-invalidate Resolve = %+v, %v", got, err)
	}
	if st := r.Stats(); st.Invalidations != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestResolverHintSemantics is the table-driven specification of lease
// and forwarding-hint behavior.
func TestResolverHintSemantics(t *testing.T) {
	n := Agent("acme.org", "a")
	authLoc := Location{Address: "auth:1"}
	hintLoc := Location{Address: "hint:1"}

	cases := []struct {
		name string
		// setup arranges authority and resolver state.
		setup func(t *testing.T, auth *Service, r *Resolver, clk *fakeClock)
		// wantAddr is the address Resolve must answer afterwards.
		wantAddr string
		// wantHintServe says the answer must be counted as a hint
		// serve (vs authoritative hit/miss).
		wantHintServe bool
	}{
		{
			name: "hint on empty cache is served",
			setup: func(t *testing.T, auth *Service, r *Resolver, clk *fakeClock) {
				r.Observe(n, hintLoc)
			},
			wantAddr:      "hint:1",
			wantHintServe: true,
		},
		{
			name: "hint does not displace lease-valid authoritative entry with same location",
			setup: func(t *testing.T, auth *Service, r *Resolver, clk *fakeClock) {
				if err := auth.Bind(n, authLoc); err != nil {
					t.Fatal(err)
				}
				if _, err := r.Resolve(n); err != nil {
					t.Fatal(err)
				}
				r.Observe(n, authLoc) // redundant hint
			},
			wantAddr:      "auth:1",
			wantHintServe: false,
		},
		{
			name: "hint with new location overrides cached entry",
			setup: func(t *testing.T, auth *Service, r *Resolver, clk *fakeClock) {
				if err := auth.Bind(n, authLoc); err != nil {
					t.Fatal(err)
				}
				if _, err := r.Resolve(n); err != nil {
					t.Fatal(err)
				}
				r.Observe(n, hintLoc) // the entity moved; ack told us
			},
			wantAddr:      "hint:1",
			wantHintServe: true,
		},
		{
			name: "hint replaces expired entry",
			setup: func(t *testing.T, auth *Service, r *Resolver, clk *fakeClock) {
				if err := auth.Bind(n, authLoc); err != nil {
					t.Fatal(err)
				}
				if _, err := r.Resolve(n); err != nil {
					t.Fatal(err)
				}
				clk.Advance(DefaultLease + time.Nanosecond)
				r.Observe(n, hintLoc)
			},
			wantAddr:      "hint:1",
			wantHintServe: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			auth := NewService()
			clk, cfg := newResolverClock()
			r := NewResolver(auth, cfg)
			tc.setup(t, auth, r, clk)
			before := r.Stats()
			got, err := r.Resolve(n)
			if err != nil {
				t.Fatalf("Resolve: %v", err)
			}
			if got.Address != tc.wantAddr {
				t.Fatalf("Resolve = %q, want %q", got.Address, tc.wantAddr)
			}
			after := r.Stats()
			if hinted := after.HintServes > before.HintServes; hinted != tc.wantHintServe {
				t.Fatalf("hint-served = %v, want %v (stats %+v)", hinted, tc.wantHintServe, after)
			}
		})
	}
}

func TestResolverHintReplacedByAuthoritativeRefresh(t *testing.T) {
	auth := NewService()
	n := Agent("acme.org", "a")
	if err := auth.Bind(n, Location{Address: "auth:1"}); err != nil {
		t.Fatal(err)
	}
	clk, cfg := newResolverClock()
	r := NewResolver(auth, cfg)
	r.Observe(n, Location{Address: "hint:1"})

	// Expire the hint; the stale serve still answers hint:1 but the
	// refresh replaces it with the authority's binding.
	clk.Advance(DefaultLease + time.Nanosecond)
	if got, err := r.Resolve(n); err != nil || got.Address != "hint:1" {
		t.Fatalf("stale hint serve = %+v, %v", got, err)
	}
	waitFor(t, func() bool {
		got, err := r.Resolve(n)
		return err == nil && got.Address == "auth:1"
	})
}

func TestResolveAllRanking(t *testing.T) {
	auth := NewService()
	n := Resource("acme.org", "db")
	for _, a := range []string{"far:1", "near:1", "mid:1", "unknown:1"} {
		if err := auth.BindReplica(n, Location{Address: a}); err != nil {
			t.Fatal(err)
		}
	}
	dist := map[string]time.Duration{
		"far:1":  30 * time.Millisecond,
		"near:1": time.Millisecond,
		"mid:1":  10 * time.Millisecond,
		// unknown:1 absent: unmeasured links sort last.
	}
	_, cfg := newResolverClock()
	cfg.Self = "self:1"
	cfg.Proximity = func(from, to string) time.Duration {
		if from != "self:1" {
			t.Errorf("Proximity from = %q", from)
		}
		return dist[to]
	}
	r := NewResolver(auth, cfg)

	locs, err := r.ResolveAll(n)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"near:1", "mid:1", "far:1", "unknown:1"}
	if len(locs) != len(want) {
		t.Fatalf("got %d locations, want %d", len(locs), len(want))
	}
	for i, w := range want {
		if locs[i].Address != w {
			t.Fatalf("rank[%d] = %q, want %q (all %+v)", i, locs[i].Address, w, locs)
		}
	}

	// Without a proximity function, authority order is preserved.
	r2 := NewResolver(auth, ResolverConfig{})
	locs2, err := r2.ResolveAll(n)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"far:1", "near:1", "mid:1", "unknown:1"}
	for i, w := range wantOrder {
		if locs2[i].Address != w {
			t.Fatalf("unranked[%d] = %q, want %q", i, locs2[i].Address, w)
		}
	}
}

func TestResolverFlush(t *testing.T) {
	auth := NewService()
	n := Agent("acme.org", "a")
	if err := auth.Bind(n, Location{Address: "h:1"}); err != nil {
		t.Fatal(err)
	}
	_, cfg := newResolverClock()
	r := NewResolver(auth, cfg)
	if _, err := r.Resolve(n); err != nil {
		t.Fatal(err)
	}
	r.Flush()
	if r.Len() != 0 {
		t.Fatalf("Len after Flush = %d", r.Len())
	}
	if _, err := r.Resolve(n); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2", st.Misses)
	}
}

// TestResolverConcurrentStress drives Resolve/Observe/Invalidate
// against a mutating authority with lease expiry under -race, then
// asserts convergence to the authority's final answer.
func TestResolverConcurrentStress(t *testing.T) {
	auth := NewServiceWithLease(100 * time.Microsecond) // tight leases: constant expiry
	const (
		workers = 8
		nNames  = 8
		iters   = 300
	)
	name := func(i int) Name { return Agent("acme.org", fmt.Sprintf("stress/a%d", i)) }
	for i := 0; i < nNames; i++ {
		if err := auth.Bind(name(i), Location{Address: "seed:1"}); err != nil {
			t.Fatal(err)
		}
	}
	r := NewResolver(auth, ResolverConfig{}) // real clock so leases truly expire

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := name((w + i) % nNames)
				switch i % 5 {
				case 0:
					if err := auth.Bind(n, Location{Address: fmt.Sprintf("w%d:%d", w, i)}); err != nil {
						t.Errorf("Bind: %v", err)
						return
					}
				case 1:
					r.Observe(n, Location{Address: fmt.Sprintf("hint%d:%d", w, i)})
				case 2:
					r.Invalidate(n)
				default:
					if _, err := r.Resolve(n); err != nil && !errors.Is(err, ErrNotBound) {
						t.Errorf("Resolve: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Convergence: bind a final location, invalidate the cache, and
	// every subsequent resolve must see it.
	for i := 0; i < nNames; i++ {
		n := name(i)
		if err := auth.Bind(n, Location{Address: "final:1"}); err != nil {
			t.Fatal(err)
		}
		r.Invalidate(n)
		got, err := r.Resolve(n)
		if err != nil || got.Address != "final:1" {
			t.Fatalf("converged Resolve(%s) = %+v, %v", n, got, err)
		}
	}
}
