package names

import (
	"errors"
	"fmt"
	"sync"
)

// Location is the current network binding of a named entity: the address
// of the agent server that hosts it. The paper keeps names
// location-independent precisely so this binding can change as agents
// migrate.
type Location struct {
	// Address is a dialable endpoint ("host:port" for TCP, or a
	// netsim endpoint identifier in simulation).
	Address string
	// ServerName is the agent server currently responsible for the
	// entity, when known.
	ServerName Name
}

// ErrNotBound is returned by Lookup for unregistered names.
var ErrNotBound = errors.New("names: name not bound")

// Service is the name service: a thread-safe registry mapping global
// names to current locations. In a deployment this would be a replicated
// directory; here it is an in-process substrate shared by the platform.
type Service struct {
	mu       sync.RWMutex
	bindings map[Name]Location
}

// NewService returns an empty name service.
func NewService() *Service {
	return &Service{bindings: make(map[Name]Location)}
}

// Bind registers or replaces the location of a name.
func (s *Service) Bind(n Name, loc Location) error {
	if err := n.Valid(); err != nil {
		return fmt.Errorf("names: bind: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bindings[n] = loc
	return nil
}

// Unbind removes a binding; unbinding an absent name is a no-op.
func (s *Service) Unbind(n Name) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.bindings, n)
}

// Lookup resolves a name to its current location.
func (s *Service) Lookup(n Name) (Location, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.bindings[n]
	if !ok {
		return Location{}, fmt.Errorf("%w: %s", ErrNotBound, n)
	}
	return loc, nil
}

// Snapshot returns a copy of all current bindings, for status queries.
func (s *Service) Snapshot() map[Name]Location {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[Name]Location, len(s.bindings))
	for k, v := range s.bindings {
		out[k] = v
	}
	return out
}

// Len reports the number of bound names.
func (s *Service) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bindings)
}
