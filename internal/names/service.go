package names

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Location is the current network binding of a named entity: the address
// of the agent server that hosts it. The paper keeps names
// location-independent precisely so this binding can change as agents
// migrate.
type Location struct {
	// Address is a dialable endpoint ("host:port" for TCP, or a
	// netsim endpoint identifier in simulation).
	Address string
	// ServerName is the agent server currently responsible for the
	// entity, when known.
	ServerName Name
}

// ErrNotBound is returned by Resolve and Lookup for unregistered names.
var ErrNotBound = errors.New("names: name not bound")

// DefaultLease is the binding TTL an authority grants when none was
// configured. Resolvers may serve a cached binding without consulting
// the authority until the lease expires; after that they must revalidate
// (they may serve the stale answer once while a refresh is in flight —
// see Resolver).
const DefaultLease = time.Second

// Binding is the authoritative record for one name: every known
// location (primary first, replicas after), the per-name mutation
// epoch, and the lease under which caches may hold it.
type Binding struct {
	// Locations holds the current primary at index 0 and any replicas
	// after it. The slice is immutable once published; callers must
	// not modify it.
	Locations []Location
	// Epoch increments on every mutation of this name's binding. A
	// cached binding with an older epoch is stale even if its lease
	// has not yet expired.
	Epoch uint64
	// Lease is the TTL granted by the authority for caching this
	// binding.
	Lease time.Duration
}

// Primary returns the primary location (index 0), or the zero Location
// for an empty binding.
func (b Binding) Primary() Location {
	if len(b.Locations) == 0 {
		return Location{}
	}
	return b.Locations[0]
}

// Directory is the mutation-and-resolution surface shared by the
// single-authority Service and the multi-authority Federation. It
// deliberately omits the legacy Lookup method: callers outside
// internal/names resolve through a Resolver (enforced by the
// nameresolve analyzer), and Resolve exposes the full lease-carrying
// Binding a cache needs.
type Directory interface {
	Bind(n Name, loc Location) error
	BindReplica(n Name, loc Location) error
	Unbind(n Name)
	Resolve(n Name) (Binding, error)
}

// NumShards is the shard count of the authoritative store. Like the
// domain DB, 32 spreads writer contention well past the server counts
// we simulate while keeping the footprint trivial.
const NumShards = 32

// shardTable is one immutable published generation of a shard. The
// shard epoch travels inside the snapshot (same discipline as
// internal/registry): a reader that pins one table always observes
// entries and epoch from a single generation.
type shardTable struct {
	m     map[Name]Binding
	epoch uint64
}

// shard is one lock-free-readable partition of the table.
type shard struct {
	mu   sync.Mutex // serializes writers only
	snap atomic.Pointer[shardTable]
}

// Service is an authoritative name store: a sharded registry mapping
// global names to leased bindings. Resolution is lock-free (one atomic
// pointer load plus a map read); mutations copy the owning shard under
// its writer mutex and publish a new generation. In a federation each
// Service is the authority for one naming authority component; a
// standalone Service (the common test configuration) is authoritative
// for every name it is handed.
type Service struct {
	lease  time.Duration
	shards [NumShards]shard
}

// NewService returns an empty authoritative store granting DefaultLease
// on every binding.
func NewService() *Service { return NewServiceWithLease(DefaultLease) }

// NewServiceWithLease returns an empty store granting the given lease
// TTL. ttl <= 0 falls back to DefaultLease.
func NewServiceWithLease(ttl time.Duration) *Service {
	if ttl <= 0 {
		ttl = DefaultLease
	}
	s := &Service{lease: ttl}
	for i := range s.shards {
		s.shards[i].snap.Store(&shardTable{m: make(map[Name]Binding)})
	}
	return s
}

// Lease reports the TTL this authority grants on bindings.
func (s *Service) Lease() time.Duration { return s.lease }

// shardIndex hashes a name (FNV-1a over its components, with
// separators so ("ab","c") and ("a","bc") differ) to its owning shard.
func shardIndex(n Name) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	hashComponent := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // separator
		h *= prime64
	}
	hashComponent(string(n.Kind))
	hashComponent(n.Authority)
	hashComponent(n.Path)
	return uint32(h % NumShards)
}

func (s *Service) shard(n Name) *shard { return &s.shards[shardIndex(n)] }

// publish installs a new generation of sh; the caller holds sh.mu.
func (sh *shard) publish(m map[Name]Binding) {
	sh.snap.Store(&shardTable{m: m, epoch: sh.snap.Load().epoch + 1})
}

// clone copies sh's current table for a mutation; the caller holds
// sh.mu.
func (sh *shard) clone() map[Name]Binding {
	cur := sh.snap.Load().m
	m := make(map[Name]Binding, len(cur)+1)
	for n, b := range cur {
		m[n] = b
	}
	return m
}

// Bind registers or replaces the binding of a name: the new location
// becomes the sole (primary) location and the name's epoch advances, so
// caches holding the previous binding can detect staleness even inside
// an unexpired lease.
func (s *Service) Bind(n Name, loc Location) error {
	if err := n.Valid(); err != nil {
		return fmt.Errorf("names: bind: %w", err)
	}
	sh := s.shard(n)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t := sh.clone()
	prev := t[n]
	t[n] = Binding{
		Locations: []Location{loc},
		Epoch:     prev.Epoch + 1,
		Lease:     s.lease,
	}
	sh.publish(t)
	return nil
}

// BindReplica adds loc as an additional location for n (replicated
// deployment of a resource or server). If n is unbound, loc becomes the
// primary. Re-adding an existing address replaces that entry in place
// (its ServerName may have changed). The epoch advances either way.
func (s *Service) BindReplica(n Name, loc Location) error {
	if err := n.Valid(); err != nil {
		return fmt.Errorf("names: bind replica: %w", err)
	}
	sh := s.shard(n)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t := sh.clone()
	prev := t[n]
	locs := make([]Location, 0, len(prev.Locations)+1)
	replaced := false
	for _, l := range prev.Locations {
		if l.Address == loc.Address {
			locs = append(locs, loc)
			replaced = true
			continue
		}
		locs = append(locs, l)
	}
	if !replaced {
		locs = append(locs, loc)
	}
	t[n] = Binding{
		Locations: locs,
		Epoch:     prev.Epoch + 1,
		Lease:     s.lease,
	}
	sh.publish(t)
	return nil
}

// Unbind removes a binding; unbinding an absent name is a no-op.
func (s *Service) Unbind(n Name) {
	sh := s.shard(n)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.snap.Load().m[n]; !ok {
		return
	}
	t := sh.clone()
	delete(t, n)
	sh.publish(t)
}

// Resolve returns the authoritative binding for a name. Lock-free: one
// atomic load plus a map read. The returned Binding's Locations slice
// is shared with the published snapshot and must not be modified.
func (s *Service) Resolve(n Name) (Binding, error) {
	b, ok := s.shard(n).snap.Load().m[n]
	if !ok {
		return Binding{}, fmt.Errorf("%w: %s", ErrNotBound, n)
	}
	return b, nil
}

// Lookup resolves a name to its current primary location. It is the
// legacy single-location surface, confined to this package by the
// nameresolve analyzer: servers resolve through a Resolver, which
// caches the richer Binding that Resolve returns.
func (s *Service) Lookup(n Name) (Location, error) {
	b, err := s.Resolve(n)
	if err != nil {
		return Location{}, err
	}
	return b.Primary(), nil
}

// Snapshot returns a copy of all current primary bindings, for status
// queries. The copy stitches together per-shard generations; it is
// consistent per shard, not across shards.
func (s *Service) Snapshot() map[Name]Location {
	out := make(map[Name]Location)
	for i := range s.shards {
		for n, b := range s.shards[i].snap.Load().m {
			out[n] = b.Primary()
		}
	}
	return out
}

// Len reports the number of bound names.
func (s *Service) Len() int {
	total := 0
	for i := range s.shards {
		total += len(s.shards[i].snap.Load().m)
	}
	return total
}
