package names

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBindResolveUnbind(t *testing.T) {
	s := NewService()
	n := Agent("acme.org", "workers/a1")
	loc := Location{Address: "hostA:7", ServerName: Server("acme.org", "srvA")}

	if _, err := s.Resolve(n); !errors.Is(err, ErrNotBound) {
		t.Fatalf("Resolve unbound = %v, want ErrNotBound", err)
	}
	if err := s.Bind(n, loc); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	b, err := s.Resolve(n)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if b.Primary() != loc {
		t.Fatalf("Primary = %+v, want %+v", b.Primary(), loc)
	}
	if b.Epoch != 1 {
		t.Fatalf("Epoch = %d, want 1", b.Epoch)
	}
	if b.Lease != DefaultLease {
		t.Fatalf("Lease = %v, want %v", b.Lease, DefaultLease)
	}

	loc2 := Location{Address: "hostB:7"}
	if err := s.Bind(n, loc2); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	b, err = s.Resolve(n)
	if err != nil {
		t.Fatalf("Resolve after rebind: %v", err)
	}
	if b.Epoch != 2 {
		t.Fatalf("Epoch after rebind = %d, want 2", b.Epoch)
	}
	if got := b.Primary().Address; got != "hostB:7" {
		t.Fatalf("Primary after rebind = %q, want hostB:7", got)
	}
	if len(b.Locations) != 1 {
		t.Fatalf("rebind should replace locations, got %d", len(b.Locations))
	}

	s.Unbind(n)
	if _, err := s.Resolve(n); !errors.Is(err, ErrNotBound) {
		t.Fatalf("Resolve after Unbind = %v, want ErrNotBound", err)
	}
	s.Unbind(n) // idempotent
}

func TestBindInvalidName(t *testing.T) {
	s := NewService()
	if err := s.Bind(Name{}, Location{Address: "x"}); err == nil {
		t.Fatal("Bind of zero name succeeded")
	}
	if err := s.BindReplica(Name{}, Location{Address: "x"}); err == nil {
		t.Fatal("BindReplica of zero name succeeded")
	}
}

func TestBindReplica(t *testing.T) {
	s := NewService()
	n := Resource("acme.org", "db/main")

	// Replica on an unbound name becomes the primary.
	if err := s.BindReplica(n, Location{Address: "a:1"}); err != nil {
		t.Fatalf("BindReplica: %v", err)
	}
	b, _ := s.Resolve(n)
	if got := b.Primary().Address; got != "a:1" {
		t.Fatalf("primary = %q, want a:1", got)
	}

	if err := s.BindReplica(n, Location{Address: "b:1"}); err != nil {
		t.Fatalf("BindReplica second: %v", err)
	}
	b, _ = s.Resolve(n)
	if len(b.Locations) != 2 || b.Locations[0].Address != "a:1" || b.Locations[1].Address != "b:1" {
		t.Fatalf("locations = %+v, want [a:1 b:1]", b.Locations)
	}
	if b.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", b.Epoch)
	}

	// Re-adding an existing address replaces in place (ServerName may
	// change), preserving order.
	srv := Server("acme.org", "s2")
	if err := s.BindReplica(n, Location{Address: "a:1", ServerName: srv}); err != nil {
		t.Fatalf("BindReplica replace: %v", err)
	}
	b, _ = s.Resolve(n)
	if len(b.Locations) != 2 {
		t.Fatalf("replace grew locations: %+v", b.Locations)
	}
	if b.Locations[0].ServerName != srv {
		t.Fatalf("in-place replace lost ServerName: %+v", b.Locations[0])
	}

	// Bind collapses back to a single location.
	if err := s.Bind(n, Location{Address: "c:1"}); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	b, _ = s.Resolve(n)
	if len(b.Locations) != 1 || b.Primary().Address != "c:1" {
		t.Fatalf("Bind did not replace replicas: %+v", b.Locations)
	}
}

func TestLookupCompat(t *testing.T) {
	s := NewService()
	n := Agent("acme.org", "a")
	if _, err := s.Lookup(n); !errors.Is(err, ErrNotBound) {
		t.Fatalf("Lookup unbound = %v, want ErrNotBound", err)
	}
	loc := Location{Address: "h:1"}
	if err := s.Bind(n, loc); err != nil {
		t.Fatal(err)
	}
	got, err := s.Lookup(n)
	if err != nil || got != loc {
		t.Fatalf("Lookup = %+v, %v; want %+v", got, err, loc)
	}
}

func TestSnapshotAndLenAcrossShards(t *testing.T) {
	s := NewService()
	const N = 200 // enough names to populate many shards
	for i := 0; i < N; i++ {
		n := Agent("acme.org", fmt.Sprintf("agents/a%03d", i))
		if err := s.Bind(n, Location{Address: fmt.Sprintf("h%d:1", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != N {
		t.Fatalf("Len = %d, want %d", s.Len(), N)
	}
	snap := s.Snapshot()
	if len(snap) != N {
		t.Fatalf("Snapshot len = %d, want %d", len(snap), N)
	}
	for i := 0; i < N; i++ {
		n := Agent("acme.org", fmt.Sprintf("agents/a%03d", i))
		if snap[n].Address != fmt.Sprintf("h%d:1", i) {
			t.Fatalf("snapshot[%s] = %+v", n, snap[n])
		}
	}
	// Spot-check shard spread: with 200 names over 32 shards an empty
	// shard is possible but every name landing in one shard is not.
	first := shardIndex(Agent("acme.org", "agents/a000"))
	spread := false
	for i := 1; i < N; i++ {
		if shardIndex(Agent("acme.org", fmt.Sprintf("agents/a%03d", i))) != first {
			spread = true
			break
		}
	}
	if !spread {
		t.Fatal("all names hashed to one shard")
	}
}

func TestNewServiceWithLease(t *testing.T) {
	s := NewServiceWithLease(50 * time.Millisecond)
	n := Agent("acme.org", "a")
	if err := s.Bind(n, Location{Address: "h:1"}); err != nil {
		t.Fatal(err)
	}
	b, _ := s.Resolve(n)
	if b.Lease != 50*time.Millisecond {
		t.Fatalf("Lease = %v, want 50ms", b.Lease)
	}
	if got := NewServiceWithLease(0).Lease(); got != DefaultLease {
		t.Fatalf("zero ttl lease = %v, want default", got)
	}
}

// TestServiceConcurrentStress exercises concurrent Bind/BindReplica/
// Unbind/Resolve on overlapping names under -race and asserts per-name
// epoch monotonicity as observed by readers.
func TestServiceConcurrentStress(t *testing.T) {
	s := NewService()
	const (
		workers = 8
		nNames  = 16
		iters   = 400
	)
	name := func(i int) Name { return Agent("acme.org", fmt.Sprintf("stress/a%d", i)) }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lastEpoch := make(map[Name]uint64)
			for i := 0; i < iters; i++ {
				n := name((w + i) % nNames)
				switch i % 4 {
				case 0:
					if err := s.Bind(n, Location{Address: fmt.Sprintf("w%d:%d", w, i)}); err != nil {
						t.Errorf("Bind: %v", err)
						return
					}
				case 1:
					if err := s.BindReplica(n, Location{Address: fmt.Sprintf("r%d:%d", w, i)}); err != nil {
						t.Errorf("BindReplica: %v", err)
						return
					}
				case 2:
					b, err := s.Resolve(n)
					if err == nil {
						if b.Epoch < lastEpoch[n] {
							t.Errorf("epoch went backwards for %s: %d < %d", n, b.Epoch, lastEpoch[n])
							return
						}
						lastEpoch[n] = b.Epoch
					} else if !errors.Is(err, ErrNotBound) {
						t.Errorf("Resolve: %v", err)
						return
					}
				case 3:
					if i%16 == 3 { // unbind rarely so resolves mostly hit
						s.Unbind(n)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Converge: a final bind must win over everything above.
	n := name(0)
	if err := s.Bind(n, Location{Address: "final:1"}); err != nil {
		t.Fatal(err)
	}
	b, err := s.Resolve(n)
	if err != nil || b.Primary().Address != "final:1" {
		t.Fatalf("final Resolve = %+v, %v", b, err)
	}
}
