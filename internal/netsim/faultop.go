// Declarative fault application: the bridge between a scenario spec's
// fault schedule and the programmatic fault plane (faults.go). The
// cluster load harness (internal/loadharness) parses fault entries from
// JSON and hands them here one at a time; tests can use the same ops to
// script failures from tables instead of method-call sequences.
package netsim

import "fmt"

// Fault op kinds accepted by ApplyFault. Server crash/restart is not a
// network fault — the harness models it by crashing the server process
// itself — so it deliberately has no op here.
const (
	FaultPartition = "partition" // cut the A<->B link until heal
	FaultHeal      = "heal"      // restore the A<->B link
	FaultHealAll   = "heal_all"  // remove every partition
	FaultDrop      = "drop"      // set A<->B dial-drop probability to Prob
	FaultReset     = "reset"     // set A<->B mid-stream reset probability to Prob
	FaultDropNext  = "drop_next" // deterministically fail the next K A<->B dials
)

// FaultOp is one declarative fault-plane mutation. A and B are network
// addresses (the per-link key the fault plane uses); Prob parameterizes
// the probabilistic kinds and K the deterministic drop_next.
type FaultOp struct {
	Kind string
	A, B string
	Prob float64
	K    int
}

// ApplyFault validates and applies one declarative fault op. Link kinds
// require both endpoints; probabilities must lie in [0, 1]. Unknown
// kinds are rejected rather than ignored so a typo in a scenario spec
// cannot silently run a milder experiment than the one written down.
func (n *Network) ApplyFault(op FaultOp) error {
	needLink := func() error {
		if op.A == "" || op.B == "" || op.A == op.B {
			return fmt.Errorf("netsim: fault %q needs two distinct endpoints, got %q and %q",
				op.Kind, op.A, op.B)
		}
		return nil
	}
	switch op.Kind {
	case FaultPartition:
		if err := needLink(); err != nil {
			return err
		}
		n.Partition(op.A, op.B)
	case FaultHeal:
		if err := needLink(); err != nil {
			return err
		}
		n.Heal(op.A, op.B)
	case FaultHealAll:
		n.HealAll()
	case FaultDrop:
		if err := needLink(); err != nil {
			return err
		}
		if op.Prob < 0 || op.Prob > 1 {
			return fmt.Errorf("netsim: fault %q probability %v outside [0, 1]", op.Kind, op.Prob)
		}
		n.SetDropProb(op.A, op.B, op.Prob)
	case FaultReset:
		if err := needLink(); err != nil {
			return err
		}
		if op.Prob < 0 || op.Prob > 1 {
			return fmt.Errorf("netsim: fault %q probability %v outside [0, 1]", op.Kind, op.Prob)
		}
		n.SetResetProb(op.A, op.B, op.Prob)
	case FaultDropNext:
		if err := needLink(); err != nil {
			return err
		}
		if op.K < 0 {
			return fmt.Errorf("netsim: fault %q count %d is negative", op.Kind, op.K)
		}
		n.DropNextDials(op.A, op.B, op.K)
	default:
		return fmt.Errorf("netsim: unknown fault kind %q", op.Kind)
	}
	return nil
}
