package netsim

import (
	"strings"
	"testing"
)

// ApplyFault is the scenario harness's entry point into the fault
// plane: every declarative op must land on the same state the direct
// methods mutate, and malformed ops must be rejected loudly.

func TestApplyFaultPartitionAndHeal(t *testing.T) {
	nw := NewNetwork()
	if err := nw.ApplyFault(FaultOp{Kind: FaultPartition, A: "a:1", B: "b:1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.DialFrom("a:1", "b:1"); err == nil {
		t.Fatal("dial succeeded across an applied partition")
	}
	if err := nw.ApplyFault(FaultOp{Kind: FaultHeal, A: "a:1", B: "b:1"}); err != nil {
		t.Fatal(err)
	}
	// The link is healed; the dial now fails only because nothing
	// listens at b:1, not because of the fault plane.
	if c := nw.FaultCounters(); c.Partitions != 1 {
		t.Fatalf("partitions counter = %d, want 1", c.Partitions)
	}
}

func TestApplyFaultDropNextIsDeterministic(t *testing.T) {
	nw := NewNetwork()
	l, err := nw.Listen("b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := nw.ApplyFault(FaultOp{Kind: FaultDropNext, A: "a:1", B: "b:1", K: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := nw.DialFrom("a:1", "b:1"); err == nil {
			t.Fatalf("dial %d succeeded during drop_next window", i)
		}
	}
	if _, err := nw.DialFrom("a:1", "b:1"); err != nil {
		t.Fatalf("dial after drop_next window failed: %v", err)
	}
}

func TestApplyFaultRejectsMalformedOps(t *testing.T) {
	nw := NewNetwork()
	cases := []struct {
		op   FaultOp
		want string
	}{
		{FaultOp{Kind: "meteor", A: "a:1", B: "b:1"}, `unknown fault kind "meteor"`},
		{FaultOp{Kind: FaultPartition, A: "a:1"}, "needs two distinct endpoints"},
		{FaultOp{Kind: FaultHeal, A: "a:1", B: "a:1"}, "needs two distinct endpoints"},
		{FaultOp{Kind: FaultDrop, A: "a:1", B: "b:1", Prob: 1.5}, "outside [0, 1]"},
		{FaultOp{Kind: FaultReset, A: "a:1", B: "b:1", Prob: -0.1}, "outside [0, 1]"},
		{FaultOp{Kind: FaultDropNext, A: "a:1", B: "b:1", K: -1}, "is negative"},
	}
	for _, tc := range cases {
		err := nw.ApplyFault(tc.op)
		if err == nil {
			t.Errorf("ApplyFault(%+v) accepted a malformed op", tc.op)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ApplyFault(%+v) error %q does not contain %q", tc.op, err, tc.want)
		}
	}
}
