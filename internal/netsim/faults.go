// Fault injection: the programmable failure plane of the simulated
// network. Tests and the chaos harness script failures — dial drops,
// mid-stream connection resets, partitions — per link and from a seeded
// RNG, so fault scenarios are reproducible. Server crash/restart needs
// no special hook: closing a Listener frees its address (dials are
// refused) and re-listening at the same address brings the "server
// machine" back up.
package netsim

import (
	"math/rand"
	"sync"
)

// linkKey identifies an undirected link between two addresses.
type linkKey struct{ a, b string }

func link(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// FaultCounters reports how many failures the fault plane injected.
type FaultCounters struct {
	DialDrops  uint64 // dials refused by drop probability / DropNextDials
	Resets     uint64 // connections reset mid-stream
	Partitions uint64 // operations refused because the link was partitioned
}

// faults is the per-network fault state. All fields are guarded by mu;
// the RNG is shared across goroutines, so rolls are serialized.
type faults struct {
	mu          sync.Mutex
	rng         *rand.Rand
	dropProb    map[linkKey]float64
	resetProb   map[linkKey]float64
	dropNext    map[linkKey]int
	partitioned map[linkKey]bool
	counters    FaultCounters
}

func newFaults() *faults {
	return &faults{
		rng:         rand.New(rand.NewSource(1)),
		dropProb:    make(map[linkKey]float64),
		resetProb:   make(map[linkKey]float64),
		dropNext:    make(map[linkKey]int),
		partitioned: make(map[linkKey]bool),
	}
}

// SeedFaults reseeds the fault RNG so a fault scenario replays
// identically (modulo goroutine interleaving).
func (n *Network) SeedFaults(seed int64) {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	n.faults.rng = rand.New(rand.NewSource(seed))
}

// SetDropProb makes each dial between a and b fail with probability p
// (0 removes the fault). The failed dial looks like a refused
// connection: the caller is expected to retry.
func (n *Network) SetDropProb(a, b string, p float64) {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	if p <= 0 {
		delete(n.faults.dropProb, link(a, b))
		return
	}
	n.faults.dropProb[link(a, b)] = p
}

// DropNextDials deterministically fails the next k dials between a and
// b, then lets traffic through — the reproducible "one transient
// failure" primitive regression tests want.
func (n *Network) DropNextDials(a, b string, k int) {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	n.faults.dropNext[link(a, b)] = k
}

// SetResetProb makes each Write on a connection between a and b reset
// the connection with probability p: the writer gets a reset error and
// both endpoints are torn down (the reader sees EOF).
func (n *Network) SetResetProb(a, b string, p float64) {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	if p <= 0 {
		delete(n.faults.resetProb, link(a, b))
		return
	}
	n.faults.resetProb[link(a, b)] = p
}

// Partition cuts the link between a and b: dials are refused and writes
// on established connections fail until Heal.
func (n *Network) Partition(a, b string) {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	n.faults.partitioned[link(a, b)] = true
}

// Heal restores the link between a and b.
func (n *Network) Heal(a, b string) {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	delete(n.faults.partitioned, link(a, b))
}

// HealAll removes every partition (drop/reset probabilities persist).
func (n *Network) HealAll() {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	n.faults.partitioned = make(map[linkKey]bool)
}

// FaultCounters returns a snapshot of the injected-failure counters.
func (n *Network) FaultCounters() FaultCounters {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	return n.faults.counters
}

// dialFault decides whether a dial from -> to fails, and why.
func (f *faults) dialFault(from, to string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := link(from, to)
	if f.partitioned[k] {
		f.counters.Partitions++
		return errPartitioned{from: from, to: to}
	}
	if n := f.dropNext[k]; n > 0 {
		f.dropNext[k] = n - 1
		f.counters.DialDrops++
		return errInjectedDrop{from: from, to: to}
	}
	if p := f.dropProb[k]; p > 0 && f.rng.Float64() < p {
		f.counters.DialDrops++
		return errInjectedDrop{from: from, to: to}
	}
	return nil
}

// writeFault decides whether a Write on an established from -> to
// connection fails; reset=true means the connection must be torn down.
func (f *faults) writeFault(from, to string) (err error, reset bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := link(from, to)
	if f.partitioned[k] {
		f.counters.Partitions++
		return errPartitioned{from: from, to: to}, false
	}
	if p := f.resetProb[k]; p > 0 && f.rng.Float64() < p {
		f.counters.Resets++
		return errReset{from: from, to: to}, true
	}
	return nil, false
}

// Injected-failure errors. All satisfy net.Error with Timeout()=false
// and are transient from a retry policy's point of view.

type errInjectedDrop struct{ from, to string }

func (e errInjectedDrop) Error() string {
	return "netsim: connection refused (injected drop): " + e.from + " -> " + e.to
}
func (errInjectedDrop) Timeout() bool   { return false }
func (errInjectedDrop) Temporary() bool { return true }

type errPartitioned struct{ from, to string }

func (e errPartitioned) Error() string {
	return "netsim: network partitioned: " + e.from + " -> " + e.to
}
func (errPartitioned) Timeout() bool   { return false }
func (errPartitioned) Temporary() bool { return true }

type errReset struct{ from, to string }

func (e errReset) Error() string {
	return "netsim: connection reset: " + e.from + " -> " + e.to
}
func (errReset) Timeout() bool   { return false }
func (errReset) Temporary() bool { return true }
