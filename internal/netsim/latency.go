package netsim

import (
	"sync"
	"time"
)

// LatencyMatrix extends the analytic Model with per-link one-way
// latencies, giving the simulated network a WAN shape: links keep the
// base model's bandwidth, but each address pair can carry its own
// latency (undirected, like the fault plane's link keying). Like Model
// it is analytic — nothing sleeps; consumers such as the name
// resolver's proximity ranking and the communication experiments read
// modeled time.
type LatencyMatrix struct {
	mu   sync.RWMutex
	base Model
	lat  map[linkKey]time.Duration
}

// NewLatencyMatrix returns a matrix whose unset links fall back to the
// base model.
func NewLatencyMatrix(base Model) *LatencyMatrix {
	return &LatencyMatrix{base: base, lat: make(map[linkKey]time.Duration)}
}

// Base returns the fallback model.
func (m *LatencyMatrix) Base() Model { return m.base }

// SetLatency sets the one-way latency of the undirected link a↔b.
// d <= 0 removes the override, restoring the base latency.
func (m *LatencyMatrix) SetLatency(a, b string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d <= 0 {
		delete(m.lat, link(a, b))
		return
	}
	m.lat[link(a, b)] = d
}

// Latency returns the one-way latency of the link a↔b: the per-link
// override when set, the base model's latency otherwise.
func (m *LatencyMatrix) Latency(a, b string) time.Duration {
	m.mu.RLock()
	d, ok := m.lat[link(a, b)]
	m.mu.RUnlock()
	if ok {
		return d
	}
	return m.base.Latency
}

// TransferTime returns the modeled one-way delivery time for n bytes
// over the link a↔b (per-link latency plus the base model's
// bandwidth term).
func (m *LatencyMatrix) TransferTime(a, b string, n uint64) time.Duration {
	link := Model{Latency: m.Latency(a, b), Bandwidth: m.base.Bandwidth}
	return link.TransferTime(n)
}

// RoundTrip returns the modeled time for a request of reqBytes and a
// response of respBytes over the link a↔b.
func (m *LatencyMatrix) RoundTrip(a, b string, reqBytes, respBytes uint64) time.Duration {
	return m.TransferTime(a, b, reqBytes) + m.TransferTime(b, a, respBytes)
}

// SetLatencyMatrix attaches a per-link latency matrix to the network
// (nil detaches it). The matrix is advisory: connections do not slow
// down (netsim never sleeps); it feeds modeled-time consumers like the
// servers' location-aware routing, which platforms wire as the
// Proximity estimate.
func (n *Network) SetLatencyMatrix(m *LatencyMatrix) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = m
}

// Latency reports the modeled one-way latency between two addresses:
// the matrix's answer when one is attached, 0 otherwise (no opinion —
// consumers treat 0 as "unmeasured").
func (n *Network) Latency(a, b string) time.Duration {
	n.mu.Lock()
	m := n.latency
	n.mu.Unlock()
	if m == nil {
		return 0
	}
	return m.Latency(a, b)
}
