package netsim

import (
	"testing"
	"time"
)

func TestLatencyMatrix(t *testing.T) {
	base := Model{Latency: 5 * time.Millisecond, Bandwidth: 1e6}
	m := NewLatencyMatrix(base)

	// Unset links fall back to the base model.
	if got := m.Latency("a", "b"); got != 5*time.Millisecond {
		t.Fatalf("base fallback = %v", got)
	}

	// Overrides are undirected, like the fault plane's links.
	m.SetLatency("a", "b", 40*time.Millisecond)
	if got := m.Latency("a", "b"); got != 40*time.Millisecond {
		t.Fatalf("override = %v", got)
	}
	if got := m.Latency("b", "a"); got != 40*time.Millisecond {
		t.Fatalf("reverse direction = %v", got)
	}
	if got := m.Latency("a", "c"); got != 5*time.Millisecond {
		t.Fatalf("unrelated link = %v", got)
	}

	// TransferTime combines per-link latency with base bandwidth.
	want := 40*time.Millisecond + time.Duration(float64(1_000_000)/1e6*float64(time.Second))
	if got := m.TransferTime("a", "b", 1_000_000); got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	if got, want := m.RoundTrip("a", "b", 0, 0), 80*time.Millisecond; got != want {
		t.Fatalf("RoundTrip = %v, want %v", got, want)
	}

	// d <= 0 removes the override.
	m.SetLatency("a", "b", 0)
	if got := m.Latency("a", "b"); got != 5*time.Millisecond {
		t.Fatalf("after removal = %v", got)
	}
}

func TestNetworkLatencyMatrixAttachment(t *testing.T) {
	n := NewNetwork()
	// Without a matrix the network has no opinion: 0 = unmeasured.
	if got := n.Latency("a", "b"); got != 0 {
		t.Fatalf("detached Latency = %v", got)
	}
	m := NewLatencyMatrix(Model{Latency: time.Millisecond})
	m.SetLatency("a", "b", 7*time.Millisecond)
	n.SetLatencyMatrix(m)
	if got := n.Latency("a", "b"); got != 7*time.Millisecond {
		t.Fatalf("attached Latency = %v", got)
	}
	if got := n.Latency("a", "c"); got != time.Millisecond {
		t.Fatalf("attached base Latency = %v", got)
	}
	n.SetLatencyMatrix(nil)
	if got := n.Latency("a", "b"); got != 0 {
		t.Fatalf("re-detached Latency = %v", got)
	}
}
