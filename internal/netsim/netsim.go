// Package netsim provides the simulated network substrate. The paper's
// threat model assumes an open network where an adversary "can
// arbitrarily intercept and modify network-level messages, or even
// delete them altogether and insert forged ones" (§2). We cannot deploy
// on that network, so this package supplies:
//
//   - an in-memory implementation of net.Conn / net.Listener with a
//     dial-by-address Network, so the full transfer protocol runs
//     unmodified over either TCP or the simulator;
//   - programmable taps that let tests play the adversary (tamper,
//     drop, replay, eavesdrop) on the byte stream;
//   - a programmable fault plane (faults.go): per-link dial-drop
//     probability, mid-stream connection resets, partitions
//     (Partition/Heal), and seeded randomness, so fault-tolerance
//     machinery is tested against deterministic failures; server
//     crashes are modeled by closing a Listener and re-listening at
//     the same address;
//   - byte counters and an analytic latency/bandwidth Model used by the
//     communication experiments (C3), so modeled completion times are
//     deterministic instead of sleep-based.
package netsim

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Tap observes and may rewrite traffic. It is called once per Write
// with the written bytes; the returned slice is what the peer receives.
// Returning nil drops the message. from/to are network addresses.
type Tap func(from, to string, data []byte) []byte

// Network is an in-memory address space of listeners.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	conns     map[linkKey][]*Conn // live endpoints per link, lazily pruned
	tap       Tap
	bytes     atomic.Uint64
	messages  atomic.Uint64
	faults    *faults
	latency   *LatencyMatrix // optional per-link latency model (latency.go)
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		listeners: make(map[string]*Listener),
		conns:     make(map[linkKey][]*Conn),
		faults:    newFaults(),
	}
}

// SetTap installs the adversary hook (nil removes it).
func (n *Network) SetTap(t Tap) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tap = t
}

// BytesSent reports total bytes written across all connections.
func (n *Network) BytesSent() uint64 { return n.bytes.Load() }

// Messages reports total Write calls across all connections.
func (n *Network) Messages() uint64 { return n.messages.Load() }

// ResetCounters zeroes the traffic counters.
func (n *Network) ResetCounters() {
	n.bytes.Store(0)
	n.messages.Store(0)
}

// Listen binds a listener to addr.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.listeners[addr]; dup {
		return nil, fmt.Errorf("netsim: address %q in use", addr)
	}
	l := &Listener{net: n, addr: addr, backlog: make(chan *Conn, 16)}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to the listener at addr from an anonymous endpoint.
// Fault injection keyed on the dialing side needs DialFrom.
func (n *Network) Dial(addr string) (net.Conn, error) {
	return n.DialFrom("dialer", addr)
}

// DialFrom connects to the listener at addr, identifying the dialing
// endpoint as from — the link (from, addr) selects which injected
// faults (drops, partitions, resets) apply to the connection.
func (n *Network) DialFrom(from, addr string) (net.Conn, error) {
	if err := n.faults.dialFault(from, addr); err != nil {
		return nil, err
	}
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netsim: connection refused: %q", addr)
	}
	clientEnd, serverEnd := n.pair(from, addr)
	select {
	case l.backlog <- serverEnd:
		return clientEnd, nil
	case <-l.closed():
		return nil, fmt.Errorf("netsim: listener %q closed", addr)
	}
}

// pair builds two connected endpoints. The done channels carry a shared
// sync.Once each so either side (or a fault-injected reset) can close
// them without double-close panics.
func (n *Network) pair(addrA, addrB string) (*Conn, *Conn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	doneA := make(chan struct{})
	doneB := make(chan struct{})
	onceA := new(sync.Once)
	onceB := new(sync.Once)
	reset := new(atomic.Bool)
	a := &Conn{net: n, local: addrA, remote: addrB, out: ab, in: ba, reset: reset,
		localDone: doneA, localOnce: onceA, remoteDone: doneB, remoteOnce: onceB}
	b := &Conn{net: n, local: addrB, remote: addrA, out: ba, in: ab, reset: reset,
		localDone: doneB, localOnce: onceB, remoteDone: doneA, remoteOnce: onceA}
	k := link(addrA, addrB)
	n.mu.Lock()
	kept := n.conns[k][:0]
	for _, c := range n.conns[k] {
		if !c.dead() {
			kept = append(kept, c)
		}
	}
	n.conns[k] = append(kept, a)
	n.mu.Unlock()
	return a, b
}

// dead reports whether either end of the connection has been closed or
// torn down.
func (c *Conn) dead() bool {
	select {
	case <-c.localDone:
		return true
	case <-c.remoteDone:
		return true
	default:
		return false
	}
}

// ResetConns tears down every established connection between a and b
// (both directions) and reports how many were killed. Unlike Partition
// it leaves the link healthy afterwards, modeling a transient event —
// a NAT timeout, a middlebox reboot — that silently killed long-lived
// connections: exactly the fate of a pooled channel parked idle too
// long. Both endpoints observe a connection reset on their next I/O.
func (n *Network) ResetConns(a, b string) int {
	k := link(a, b)
	n.mu.Lock()
	conns := n.conns[k]
	n.conns[k] = nil
	n.mu.Unlock()
	killed := 0
	for _, c := range conns {
		if c.dead() {
			continue
		}
		c.teardown()
		killed++
	}
	return killed
}

// Listener implements net.Listener.
type Listener struct {
	net     *Network
	addr    string
	backlog chan *Conn

	closeMu   sync.Mutex
	closeChan chan struct{}
}

func (l *Listener) closed() chan struct{} {
	l.closeMu.Lock()
	defer l.closeMu.Unlock()
	if l.closeChan == nil {
		l.closeChan = make(chan struct{})
	}
	return l.closeChan
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed():
		return nil, errors.New("netsim: listener closed")
	}
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	ch := l.closed()
	select {
	case <-ch:
	default:
		close(ch)
	}
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return simAddr(l.addr) }

type simAddr string

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return string(a) }

// Conn implements net.Conn over channels. Each Write is one message;
// Read consumes messages with buffering, so stream semantics hold.
type Conn struct {
	net    *Network
	local  string
	remote string
	out    chan []byte
	in     chan []byte

	// Each done channel is shared with the peer Conn together with
	// its Once, so close (either side) and fault-injected resets
	// (both sides at once) never double-close.
	localDone  chan struct{}
	localOnce  *sync.Once
	remoteDone chan struct{}
	remoteOnce *sync.Once
	// reset is shared by both ends; once set, every operation on
	// either end reports a connection reset (not a clean close).
	reset *atomic.Bool

	readBuf       []byte
	deadline      atomic.Value // time.Time, read side
	writeDeadline atomic.Value // time.Time
}

// Write implements net.Conn; the network tap sees every write, and the
// fault plane may fail it (partition) or reset the connection.
func (c *Conn) Write(p []byte) (int, error) {
	if c.reset.Load() {
		return 0, errReset{from: c.local, to: c.remote}
	}
	select {
	case <-c.localDone:
		return 0, io.ErrClosedPipe
	default:
	}
	if err, reset := c.net.faults.writeFault(c.local, c.remote); err != nil {
		if reset {
			c.teardown()
		}
		return 0, err
	}
	c.net.bytes.Add(uint64(len(p)))
	c.net.messages.Add(1)
	data := append([]byte(nil), p...)
	c.net.mu.Lock()
	tap := c.net.tap
	c.net.mu.Unlock()
	if tap != nil {
		data = tap(c.local, c.remote, data)
		if data == nil {
			return len(p), nil // dropped by the adversary
		}
	}
	var timeout <-chan time.Time
	if d, ok := c.writeDeadline.Load().(time.Time); ok && !d.IsZero() {
		until := time.Until(d)
		if until <= 0 {
			return 0, errTimeout{}
		}
		t := time.NewTimer(until)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case c.out <- data:
		return len(p), nil
	case <-c.localDone:
		return 0, io.ErrClosedPipe
	case <-c.remoteDone:
		return 0, io.ErrClosedPipe
	case <-timeout:
		return 0, errTimeout{}
	}
}

// teardown kills both ends of the connection (fault-injected reset).
func (c *Conn) teardown() {
	c.reset.Store(true)
	c.localOnce.Do(func() { close(c.localDone) })
	c.remoteOnce.Do(func() { close(c.remoteDone) })
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if c.reset.Load() {
		return 0, errReset{from: c.remote, to: c.local}
	}
	if len(c.readBuf) > 0 {
		n := copy(p, c.readBuf)
		c.readBuf = c.readBuf[n:]
		return n, nil
	}
	var timeout <-chan time.Time
	if d, ok := c.deadline.Load().(time.Time); ok && !d.IsZero() {
		until := time.Until(d)
		if until <= 0 {
			return 0, errTimeout{}
		}
		t := time.NewTimer(until)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case data, ok := <-c.in:
		if !ok {
			return 0, io.EOF
		}
		n := copy(p, data)
		c.readBuf = data[n:]
		return n, nil
	case <-c.remoteDone:
		// Drain anything already queued before reporting EOF.
		select {
		case data := <-c.in:
			n := copy(p, data)
			c.readBuf = data[n:]
			return n, nil
		default:
			return 0, io.EOF
		}
	case <-c.localDone:
		return 0, io.ErrClosedPipe
	case <-timeout:
		return 0, errTimeout{}
	}
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.localOnce.Do(func() { close(c.localDone) })
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return simAddr(c.local) }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return simAddr(c.remote) }

// SetDeadline implements net.Conn (both directions).
func (c *Conn) SetDeadline(t time.Time) error {
	c.deadline.Store(t)
	c.writeDeadline.Store(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.deadline.Store(t)
	return nil
}

// SetWriteDeadline implements net.Conn: a Write blocked on a full
// channel (peer not draining) fails with a timeout once the deadline
// passes.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.writeDeadline.Store(t)
	return nil
}

type errTimeout struct{}

func (errTimeout) Error() string   { return "netsim: i/o timeout" }
func (errTimeout) Timeout() bool   { return true }
func (errTimeout) Temporary() bool { return true }

// Model is the analytic link model used by the communication
// experiments: a message of n bytes takes Latency + n/Bandwidth to
// deliver. It accumulates modeled time without sleeping, which keeps
// experiment C3 deterministic and fast.
type Model struct {
	// Latency is the one-way message latency.
	Latency time.Duration
	// Bandwidth in bytes per second.
	Bandwidth float64
}

// TransferTime returns the modeled one-way delivery time for n bytes.
func (m Model) TransferTime(n uint64) time.Duration {
	t := m.Latency
	if m.Bandwidth > 0 {
		t += time.Duration(float64(n) / m.Bandwidth * float64(time.Second))
	}
	return t
}

// RoundTrip returns the modeled time for a request of reqBytes and a
// response of respBytes.
func (m Model) RoundTrip(reqBytes, respBytes uint64) time.Duration {
	return m.TransferTime(reqBytes) + m.TransferTime(respBytes)
}
