package netsim

import (
	"bytes"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestDialListenEcho(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64)
		k, _ := c.Read(buf)
		_, _ = c.Write(bytes.ToUpper(buf[:k]))
		_ = c.Close()
	}()
	c, err := n.Dial("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	k, err := c.Read(buf)
	if err != nil || string(buf[:k]) != "HELLO" {
		t.Fatalf("%q %v", buf[:k], err)
	}
}

func TestDialRefusedAndDuplicateListen(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Dial("nowhere"); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}
	_, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestListenerClose(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	_ = l.Close()
	if err := <-done; err == nil {
		t.Fatal("Accept returned nil after Close")
	}
	if _, err := n.Dial("a"); err == nil {
		t.Fatal("dial succeeded after listener close")
	}
	// Address is reusable after close.
	if _, err := n.Listen("a"); err != nil {
		t.Fatal(err)
	}
}

func TestPartialReadsBuffer(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	go func() {
		c, _ := l.Accept()
		_, _ = c.Write([]byte("abcdefgh"))
	}()
	c, _ := n.Dial("a")
	small := make([]byte, 3)
	var got []byte
	for len(got) < 8 {
		k, err := c.Read(small)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, small[:k]...)
	}
	if string(got) != "abcdefgh" {
		t.Fatalf("got %q", got)
	}
}

func TestEOFOnPeerClose(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	go func() {
		c, _ := l.Accept()
		_, _ = c.Write([]byte("bye"))
		_ = c.Close()
	}()
	c, _ := n.Dial("a")
	data, err := io.ReadAll(c)
	if err != nil || string(data) != "bye" {
		t.Fatalf("%q %v", data, err)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	go func() { _, _ = l.Accept() }()
	c, _ := n.Dial("a")
	_ = c.Close()
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestReadDeadline(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	go func() { _, _ = l.Accept() }()
	c, _ := n.Dial("a")
	_ = c.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
	_, err := c.Read(make([]byte, 8))
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("got %v, want timeout", err)
	}
}

func TestTapTamper(t *testing.T) {
	n := NewNetwork()
	n.SetTap(func(from, to string, data []byte) []byte {
		data[0] ^= 0xff // adversary flips a bit
		return data
	})
	l, _ := n.Listen("a")
	go func() {
		c, _ := l.Accept()
		_, _ = c.Write([]byte("secret"))
	}()
	c, _ := n.Dial("a")
	buf := make([]byte, 16)
	k, _ := c.Read(buf)
	if string(buf[:k]) == "secret" {
		t.Fatal("tamper tap had no effect")
	}
}

func TestTapDrop(t *testing.T) {
	n := NewNetwork()
	var dropped atomic.Int32
	n.SetTap(func(from, to string, data []byte) []byte {
		dropped.Add(1)
		return nil // adversary deletes the message
	})
	l, _ := n.Listen("a")
	go func() {
		c, _ := l.Accept()
		_, _ = c.Write([]byte("gone"))
	}()
	c, _ := n.Dial("a")
	_ = c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if _, err := c.Read(make([]byte, 8)); err == nil {
		t.Fatal("read returned data that was dropped")
	}
	if dropped.Load() == 0 {
		t.Fatal("tap not invoked")
	}
}

func TestByteCounters(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	go func() {
		c, _ := l.Accept()
		buf := make([]byte, 16)
		_, _ = c.Read(buf)
	}()
	c, _ := n.Dial("a")
	_, _ = c.Write([]byte("12345"))
	if n.BytesSent() != 5 || n.Messages() != 1 {
		t.Fatalf("counters: %d bytes, %d msgs", n.BytesSent(), n.Messages())
	}
	n.ResetCounters()
	if n.BytesSent() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWriteDeadline(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	go func() { _, _ = l.Accept() }() // peer never reads
	c, _ := n.Dial("a")
	// Fill the channel buffer so the next write blocks.
	for i := 0; i < 64; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.SetWriteDeadline(time.Now().Add(10 * time.Millisecond))
	_, err := c.Write([]byte("blocked"))
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("got %v, want timeout", err)
	}
}

func TestDropNextDials(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("srv")
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	n.DropNextDials("cli", "srv", 2)
	for i := 0; i < 2; i++ {
		if _, err := n.DialFrom("cli", "srv"); err == nil {
			t.Fatalf("dial %d survived injected drop", i)
		}
	}
	if _, err := n.DialFrom("cli", "srv"); err != nil {
		t.Fatalf("dial after drops exhausted: %v", err)
	}
	// Other links are unaffected.
	n.DropNextDials("cli", "srv", 1)
	if _, err := n.DialFrom("other", "srv"); err != nil {
		t.Fatalf("unrelated link dropped: %v", err)
	}
	if got := n.FaultCounters().DialDrops; got != 2 {
		t.Fatalf("DialDrops = %d", got)
	}
}

func TestDropProbSeeded(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("srv")
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	n.SeedFaults(7)
	n.SetDropProb("cli", "srv", 1.0)
	if _, err := n.DialFrom("cli", "srv"); err == nil {
		t.Fatal("p=1.0 dial succeeded")
	}
	n.SetDropProb("cli", "srv", 0)
	if _, err := n.DialFrom("cli", "srv"); err != nil {
		t.Fatalf("p=0 dial failed: %v", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("srv")
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			buf := make([]byte, 8)
			k, _ := c.Read(buf)
			_, _ = c.Write(buf[:k])
		}
	}()
	// Established connection first, then partition: writes fail too.
	c, err := n.DialFrom("cli", "srv")
	if err != nil {
		t.Fatal(err)
	}
	n.Partition("cli", "srv")
	if _, err := n.DialFrom("cli", "srv"); err == nil {
		t.Fatal("dial crossed partition")
	}
	if _, err := c.Write([]byte("hi")); err == nil {
		t.Fatal("write crossed partition")
	}
	// Partition is symmetric.
	if _, err := n.DialFrom("srv", "cli"); err == nil {
		t.Fatal("reverse dial crossed partition")
	}
	n.Heal("cli", "srv")
	c2, err := n.DialFrom("cli", "srv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Write([]byte("hi")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if n.FaultCounters().Partitions == 0 {
		t.Fatal("partition refusals not counted")
	}
}

func TestConnectionResetMidStream(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("srv")
	peerErr := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			peerErr <- err
			return
		}
		_, err = io.ReadAll(c)
		peerErr <- err
	}()
	c, err := n.DialFrom("cli", "srv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("before")); err != nil {
		t.Fatal(err)
	}
	n.SetResetProb("cli", "srv", 1.0)
	if _, err := c.Write([]byte("mid")); err == nil {
		t.Fatal("write survived reset")
	}
	// The connection is dead: further writes fail even with the fault
	// removed, and the peer's read stream errors out (a reset, not a
	// clean EOF).
	n.SetResetProb("cli", "srv", 0)
	if _, err := c.Write([]byte("after")); err == nil {
		t.Fatal("write on reset connection succeeded")
	}
	if err := <-peerErr; err == nil || !strings.Contains(err.Error(), "reset") {
		t.Fatalf("peer read after reset: %v", err)
	}
	if got := n.FaultCounters().Resets; got != 1 {
		t.Fatalf("Resets = %d", got)
	}
}

func TestCrashRestartRelisten(t *testing.T) {
	// The crash/restart model: closing a listener refuses dials;
	// re-listening at the same address restores service.
	n := NewNetwork()
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Close()
	if _, err := n.DialFrom("cli", "srv"); err == nil {
		t.Fatal("dial to crashed server succeeded")
	}
	l2, err := n.Listen("srv")
	if err != nil {
		t.Fatalf("re-listen: %v", err)
	}
	go func() { _, _ = l2.Accept() }()
	if _, err := n.DialFrom("cli", "srv"); err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
}

func TestModelArithmetic(t *testing.T) {
	m := Model{Latency: 10 * time.Millisecond, Bandwidth: 1000} // 1000 B/s
	if got := m.TransferTime(500); got != 510*time.Millisecond {
		t.Fatalf("TransferTime = %v", got)
	}
	if got := m.RoundTrip(500, 1000); got != 510*time.Millisecond+1010*time.Millisecond {
		t.Fatalf("RoundTrip = %v", got)
	}
	// Zero bandwidth = latency only.
	m2 := Model{Latency: time.Millisecond}
	if got := m2.TransferTime(1 << 30); got != time.Millisecond {
		t.Fatalf("TransferTime = %v", got)
	}
}

func TestAddrs(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("srv:9")
	if l.Addr().String() != "srv:9" || l.Addr().Network() != "sim" {
		t.Fatal("listener addr wrong")
	}
	go func() { _, _ = l.Accept() }()
	c, _ := n.Dial("srv:9")
	if c.RemoteAddr().String() != "srv:9" {
		t.Fatalf("remote = %v", c.RemoteAddr())
	}
}

func TestResetConns(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 2)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	c1, err := n.DialFrom("a:1", "b:1")
	if err != nil {
		t.Fatal(err)
	}
	s1 := <-accepted
	if _, err := c1.Write([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := s1.Read(buf); err != nil {
		t.Fatal(err)
	}
	if killed := n.ResetConns("a:1", "b:1"); killed != 1 {
		t.Fatalf("killed %d conns, want 1", killed)
	}
	// Both ends observe the reset on their next I/O.
	if _, err := c1.Write([]byte("x")); err == nil {
		t.Fatal("write on reset conn succeeded")
	}
	if _, err := s1.Read(buf); err == nil {
		t.Fatal("read on reset conn succeeded")
	}
	// The link itself stays healthy: new dials work immediately.
	c2, err := n.DialFrom("a:1", "b:1")
	if err != nil {
		t.Fatalf("dial after ResetConns: %v", err)
	}
	s2 := <-accepted
	if _, err := c2.Write([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Read(buf); err != nil {
		t.Fatal(err)
	}
	// Resetting again only counts live connections.
	if killed := n.ResetConns("a:1", "b:1"); killed != 1 {
		t.Fatalf("second reset killed %d, want 1", killed)
	}
}
