package netsim

import (
	"bytes"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

func TestDialListenEcho(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64)
		k, _ := c.Read(buf)
		_, _ = c.Write(bytes.ToUpper(buf[:k]))
		_ = c.Close()
	}()
	c, err := n.Dial("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	k, err := c.Read(buf)
	if err != nil || string(buf[:k]) != "HELLO" {
		t.Fatalf("%q %v", buf[:k], err)
	}
}

func TestDialRefusedAndDuplicateListen(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Dial("nowhere"); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}
	_, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestListenerClose(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	_ = l.Close()
	if err := <-done; err == nil {
		t.Fatal("Accept returned nil after Close")
	}
	if _, err := n.Dial("a"); err == nil {
		t.Fatal("dial succeeded after listener close")
	}
	// Address is reusable after close.
	if _, err := n.Listen("a"); err != nil {
		t.Fatal(err)
	}
}

func TestPartialReadsBuffer(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	go func() {
		c, _ := l.Accept()
		_, _ = c.Write([]byte("abcdefgh"))
	}()
	c, _ := n.Dial("a")
	small := make([]byte, 3)
	var got []byte
	for len(got) < 8 {
		k, err := c.Read(small)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, small[:k]...)
	}
	if string(got) != "abcdefgh" {
		t.Fatalf("got %q", got)
	}
}

func TestEOFOnPeerClose(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	go func() {
		c, _ := l.Accept()
		_, _ = c.Write([]byte("bye"))
		_ = c.Close()
	}()
	c, _ := n.Dial("a")
	data, err := io.ReadAll(c)
	if err != nil || string(data) != "bye" {
		t.Fatalf("%q %v", data, err)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	go func() { _, _ = l.Accept() }()
	c, _ := n.Dial("a")
	_ = c.Close()
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestReadDeadline(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	go func() { _, _ = l.Accept() }()
	c, _ := n.Dial("a")
	_ = c.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
	_, err := c.Read(make([]byte, 8))
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("got %v, want timeout", err)
	}
}

func TestTapTamper(t *testing.T) {
	n := NewNetwork()
	n.SetTap(func(from, to string, data []byte) []byte {
		data[0] ^= 0xff // adversary flips a bit
		return data
	})
	l, _ := n.Listen("a")
	go func() {
		c, _ := l.Accept()
		_, _ = c.Write([]byte("secret"))
	}()
	c, _ := n.Dial("a")
	buf := make([]byte, 16)
	k, _ := c.Read(buf)
	if string(buf[:k]) == "secret" {
		t.Fatal("tamper tap had no effect")
	}
}

func TestTapDrop(t *testing.T) {
	n := NewNetwork()
	var dropped atomic.Int32
	n.SetTap(func(from, to string, data []byte) []byte {
		dropped.Add(1)
		return nil // adversary deletes the message
	})
	l, _ := n.Listen("a")
	go func() {
		c, _ := l.Accept()
		_, _ = c.Write([]byte("gone"))
	}()
	c, _ := n.Dial("a")
	_ = c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if _, err := c.Read(make([]byte, 8)); err == nil {
		t.Fatal("read returned data that was dropped")
	}
	if dropped.Load() == 0 {
		t.Fatal("tap not invoked")
	}
}

func TestByteCounters(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	go func() {
		c, _ := l.Accept()
		buf := make([]byte, 16)
		_, _ = c.Read(buf)
	}()
	c, _ := n.Dial("a")
	_, _ = c.Write([]byte("12345"))
	if n.BytesSent() != 5 || n.Messages() != 1 {
		t.Fatalf("counters: %d bytes, %d msgs", n.BytesSent(), n.Messages())
	}
	n.ResetCounters()
	if n.BytesSent() != 0 {
		t.Fatal("reset failed")
	}
}

func TestModelArithmetic(t *testing.T) {
	m := Model{Latency: 10 * time.Millisecond, Bandwidth: 1000} // 1000 B/s
	if got := m.TransferTime(500); got != 510*time.Millisecond {
		t.Fatalf("TransferTime = %v", got)
	}
	if got := m.RoundTrip(500, 1000); got != 510*time.Millisecond+1010*time.Millisecond {
		t.Fatalf("RoundTrip = %v", got)
	}
	// Zero bandwidth = latency only.
	m2 := Model{Latency: time.Millisecond}
	if got := m2.TransferTime(1 << 30); got != time.Millisecond {
		t.Fatalf("TransferTime = %v", got)
	}
}

func TestAddrs(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("srv:9")
	if l.Addr().String() != "srv:9" || l.Addr().Network() != "sim" {
		t.Fatal("listener addr wrong")
	}
	go func() { _, _ = l.Accept() }()
	c, _ := n.Dial("srv:9")
	if c.RemoteAddr().String() != "srv:9" {
		t.Fatalf("remote = %v", c.RemoteAddr())
	}
}
