package policy

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cred"
)

// Stamp identifies the configuration generation a cached decision was
// computed under: the policy engine's epoch and the resource registry's
// epoch. A cached grant is valid only while both still match — any rule
// change, group change, or registry mutation (install/replace/remove)
// bumps the corresponding epoch and silently invalidates every entry
// stamped before it.
type Stamp struct {
	Policy   uint64
	Registry uint64
}

// cacheKey identifies one (credential semantics, resource) pair. A
// grant depends on exactly the owner principal, the effective
// (post-delegation) rights and the resource — which is precisely what
// cred.Digest hashes — so keying on the digest instead of the hosting
// protection domain lets repeat visits of the same agent, and sibling
// agents of the same owner, hit decisions cached by earlier visits.
type cacheKey struct {
	key  cred.Digest
	path string
}

// cacheVal is one memoized decision.
type cacheVal struct {
	stamp Stamp
	grant Grant
}

// DecisionCache memoizes policy decisions per (credentials digest,
// resource) with epoch-based invalidation. The paper's binding protocol
// (Fig. 6) runs a full policy evaluation on every get_resource; agents
// that re-bind the same resource repeatedly — and repeat or sibling
// visits under the same owner and rights, which share a digest — pay
// that evaluation once per configuration generation instead.
//
// Invalidation is by comparison, not by walk: mutators never touch the
// cache, they only bump their epoch; a stale entry simply stops
// matching and is overwritten on the next fill. Time-limited grants
// (non-zero Expiry) are additionally re-derived once their expiry
// passes, so a cached TTL grant cannot outlive the TTL that produced it.
type DecisionCache struct {
	m sync.Map // cacheKey -> *cacheVal
	n atomic.Int64

	// max bounds the entry count; at the cap, fills evict one arbitrary
	// entry (sync.Map iteration order) rather than grow. Decisions are
	// cheap to recompute, so crude eviction beats tracking recency.
	max int64

	hits, misses atomic.Uint64
}

// DefaultCacheSize bounds the cache when NewDecisionCache is given a
// non-positive size.
const DefaultCacheSize = 4096

// NewDecisionCache returns a cache holding at most size entries.
func NewDecisionCache(size int) *DecisionCache {
	if size <= 0 {
		size = DefaultCacheSize
	}
	return &DecisionCache{max: int64(size)}
}

// Get returns the cached grant for (key, path) if one exists with the
// given stamp and its expiry (if any) has not passed.
func (c *DecisionCache) Get(key cred.Digest, path string, now Stamp) (Grant, bool) {
	v, ok := c.m.Load(cacheKey{key, path})
	if !ok {
		c.misses.Add(1)
		return Grant{}, false
	}
	cv := v.(*cacheVal)
	if cv.stamp != now {
		c.misses.Add(1)
		return Grant{}, false
	}
	if !cv.grant.Expiry.IsZero() && time.Now().After(cv.grant.Expiry) {
		c.misses.Add(1)
		return Grant{}, false
	}
	c.hits.Add(1)
	return cv.grant, true
}

// Put stores a decision computed under stamp.
func (c *DecisionCache) Put(key cred.Digest, path string, stamp Stamp, g Grant) {
	k := cacheKey{key, path}
	if _, existed := c.m.Swap(k, &cacheVal{stamp: stamp, grant: g}); existed {
		return
	}
	if c.n.Add(1) > c.max {
		c.m.Range(func(rk, _ any) bool {
			if rk != k {
				c.m.Delete(rk)
				c.n.Add(-1)
				return false
			}
			return true
		})
	}
}

// Stats reports cache hits and misses since creation.
func (c *DecisionCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
