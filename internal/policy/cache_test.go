package policy

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/names"
)

// dig builds a distinct credentials digest for tests.
func dig(b byte) cred.Digest {
	var d cred.Digest
	d[0] = b
	return d
}

func grantOf(methods ...string) Grant {
	g := Grant{Methods: make(map[string]bool)}
	for _, m := range methods {
		g.Methods[m] = true
	}
	return g
}

func TestDecisionCacheHitAndEpochInvalidation(t *testing.T) {
	c := NewDecisionCache(16)
	s1 := Stamp{Policy: 1, Registry: 1}

	if _, ok := c.Get(dig(7), "counter", s1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(dig(7), "counter", s1, grantOf("get"))
	g, ok := c.Get(dig(7), "counter", s1)
	if !ok || !g.Methods["get"] {
		t.Fatalf("want cached grant, got %v %v", g, ok)
	}

	// Any epoch bump — policy or registry — invalidates.
	if _, ok := c.Get(dig(7), "counter", Stamp{Policy: 2, Registry: 1}); ok {
		t.Fatal("stale policy epoch served")
	}
	if _, ok := c.Get(dig(7), "counter", Stamp{Policy: 1, Registry: 2}); ok {
		t.Fatal("stale registry epoch served")
	}
	// Different digest or resource: separate entries.
	if _, ok := c.Get(dig(8), "counter", s1); ok {
		t.Fatal("cross-digest hit")
	}
	if _, ok := c.Get(dig(7), "printer", s1); ok {
		t.Fatal("cross-resource hit")
	}

	hits, misses := c.Stats()
	if hits != 1 || misses != 5 {
		t.Fatalf("stats = %d/%d, want 1/5", hits, misses)
	}
}

func TestDecisionCacheExpiredGrantMisses(t *testing.T) {
	c := NewDecisionCache(16)
	s := Stamp{Policy: 1, Registry: 1}
	g := grantOf("get")
	g.Expiry = time.Now().Add(-time.Second)
	c.Put(dig(3), "counter", s, g)
	if _, ok := c.Get(dig(3), "counter", s); ok {
		t.Fatal("expired grant served from cache")
	}
}

func TestDecisionCacheBounded(t *testing.T) {
	c := NewDecisionCache(8)
	s := Stamp{Policy: 1, Registry: 1}
	for i := 0; i < 100; i++ {
		c.Put(dig(byte(i)), "counter", s, grantOf("get"))
	}
	if n := c.n.Load(); n > 8 {
		t.Fatalf("cache grew to %d entries, cap is 8", n)
	}
	// The most recent fill must have survived its own eviction pass.
	if _, ok := c.Get(dig(99), "counter", s); !ok {
		t.Fatal("latest entry evicted by its own Put")
	}
}

func TestStressDecisionCacheConcurrent(t *testing.T) {
	c := NewDecisionCache(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				st := Stamp{Policy: uint64(i % 3), Registry: 1}
				path := fmt.Sprintf("res%d", i%5)
				if g, ok := c.Get(dig(byte(w)), path, st); ok {
					if !g.Methods["get"] {
						t.Error("corrupt cached grant")
						return
					}
				} else {
					c.Put(dig(byte(w)), path, st, grantOf("get"))
				}
			}
		}()
	}
	wg.Wait()
}

func TestEngineEpochBumpsOnMutation(t *testing.T) {
	e := NewEngine()
	start := e.Epoch()
	e.AddRule(Rule{AnyPrincipal: true, Resource: "*", Methods: []string{"*"}})
	if e.Epoch() != start+1 {
		t.Fatalf("AddRule: epoch %d, want %d", e.Epoch(), start+1)
	}
	e.DefineGroup(names.Group("umn.edu", "faculty"), names.Principal("umn.edu", "alice"))
	if e.Epoch() != start+2 {
		t.Fatalf("DefineGroup: epoch %d, want %d", e.Epoch(), start+2)
	}
	e.SetRules(nil)
	if e.Epoch() != start+3 {
		t.Fatalf("SetRules: epoch %d, want %d", e.Epoch(), start+3)
	}
}
