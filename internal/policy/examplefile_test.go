package policy

import (
	"os"
	"testing"
)

func TestExamplePolicyFileParses(t *testing.T) {
	text, err := os.ReadFile("../../examples/policies/market.policy")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParsePolicy(string(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Rules) != 4 {
		t.Fatalf("rules = %d", len(doc.Rules))
	}
	if len(doc.Tiers) != 2 || len(doc.Assignments) != 2 {
		t.Fatalf("tiers = %d assignments = %d, want 2/2", len(doc.Tiers), len(doc.Assignments))
	}
	// The file now carries tier configuration, so the rules-only parser
	// must refuse it rather than silently dropping admission config.
	if _, err := ParseRules(string(text)); err == nil {
		t.Fatal("ParseRules accepted a tier-bearing policy file")
	}
	// Loading the document must install both halves on the engine.
	eng := NewEngine()
	eng.LoadDocument(doc)
	if tier, ok := eng.TierFor(doc.Assignments[1].Principal); !ok || tier.Name != "visitor" {
		t.Fatalf("TierFor after LoadDocument = %+v, %v", tier, ok)
	}
}
