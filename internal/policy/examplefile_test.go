package policy

import (
	"os"
	"testing"
)

func TestExamplePolicyFileParses(t *testing.T) {
	text, err := os.ReadFile("../../examples/policies/market.policy")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := ParseRules(string(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("rules = %d", len(rules))
	}
}
