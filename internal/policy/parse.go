package policy

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/names"
)

// Document is a parsed policy file: access rules plus the admission
// tier configuration. Apply it to an engine with Engine.LoadDocument.
type Document struct {
	Rules       []Rule
	Tiers       []Tier
	Assignments []TierAssignment
}

// ParseRules reads the textual policy format used by server
// configuration files (ajanta-server -policy). One rule per line:
//
//	allow|deny <subject> <resource> <methods> [quota=N] [charge=N] [ttl=DUR]
//
// where <subject> is "*", "principal:<authority>/<path>" or
// "group:<authority>/<path>"; <resource> is a resource path or "*";
// <methods> is a comma-separated list or "*". '#' starts a comment.
//
// Examples:
//
//	# everyone may read the catalogue, 100 calls per binding
//	allow * catalogue quote,items quota=100
//	# faculty get everything on the corpus, proxies live one hour
//	allow group:umn.edu/faculty corpus * ttl=1h
//	# nobody resets the counter
//	deny * counter reset
//
// ParseRules accepts only allow/deny lines; files that also carry
// admission tiers (tier / assign lines, PROTOCOLS.md §3.3) go through
// ParsePolicy.
func ParseRules(text string) ([]Rule, error) {
	doc, err := ParsePolicy(text)
	if err != nil {
		return nil, err
	}
	if len(doc.Tiers) > 0 || len(doc.Assignments) > 0 {
		return nil, fmt.Errorf("policy: file contains tier configuration; use ParsePolicy")
	}
	return doc.Rules, nil
}

// ParsePolicy reads a full policy file: allow/deny rules plus the
// admission tier configuration. Two additional line forms:
//
//	tier <name> [rate=R] [burst=N] [concurrent=N] [fuel=N]
//	assign <subject> <tier>
//
// where rate is admissions/second (float), burst the back-to-back
// allowance, concurrent the per-principal visit cap and fuel a per-visit
// instruction budget cap; <subject> follows the rule-subject syntax.
// Assignments are first-match-wins in file order and must reference a
// tier defined in the same file.
func ParsePolicy(text string) (*Document, error) {
	var doc Document
	tiers := make(map[string]bool)
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var err error
		switch strings.Fields(line)[0] {
		case "tier":
			var t Tier
			t, err = parseTierLine(line)
			if err == nil {
				if tiers[t.Name] {
					err = fmt.Errorf("duplicate tier %q", t.Name)
				} else {
					tiers[t.Name] = true
					doc.Tiers = append(doc.Tiers, t)
				}
			}
		case "assign":
			var a TierAssignment
			a, err = parseAssignLine(line)
			if err == nil && !tiers[a.Tier] {
				err = fmt.Errorf("assignment references undefined tier %q", a.Tier)
			}
			if err == nil {
				doc.Assignments = append(doc.Assignments, a)
			}
		default:
			var rule Rule
			rule, err = parseRuleLine(line)
			if err == nil {
				doc.Rules = append(doc.Rules, rule)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("policy: line %d: %w", lineNo+1, err)
		}
	}
	return &doc, nil
}

// LoadDocument applies a parsed policy file to the engine: rules and
// tier configuration, each replacing what was there.
func (e *Engine) LoadDocument(doc *Document) {
	e.SetRules(doc.Rules)
	e.SetTierConfig(doc.Tiers, doc.Assignments)
}

func parseTierLine(line string) (Tier, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Tier{}, fmt.Errorf("want 'tier name [options]', got %q", line)
	}
	t := Tier{Name: fields[1]}
	if strings.Contains(t.Name, "=") {
		return Tier{}, fmt.Errorf("tier name missing in %q", line)
	}
	for _, opt := range fields[2:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Tier{}, fmt.Errorf("bad option %q (want key=value)", opt)
		}
		switch key {
		case "rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return Tier{}, fmt.Errorf("bad rate %q", val)
			}
			t.Rate = f
		case "burst":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return Tier{}, fmt.Errorf("bad burst %q", val)
			}
			t.Burst = f
		case "concurrent":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Tier{}, fmt.Errorf("bad concurrent %q", val)
			}
			t.MaxConcurrent = n
		case "fuel":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Tier{}, fmt.Errorf("bad fuel %q", val)
			}
			t.Fuel = n
		default:
			return Tier{}, fmt.Errorf("unknown tier option %q", key)
		}
	}
	return t, nil
}

func parseAssignLine(line string) (TierAssignment, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return TierAssignment{}, fmt.Errorf("want 'assign subject tier', got %q", line)
	}
	var a TierAssignment
	switch subj := fields[1]; {
	case subj == "*":
		a.AnyPrincipal = true
	case strings.HasPrefix(subj, "principal:"):
		n, err := parseSubjectName(names.KindPrincipal, strings.TrimPrefix(subj, "principal:"))
		if err != nil {
			return TierAssignment{}, err
		}
		a.Principal = n
	case strings.HasPrefix(subj, "group:"):
		n, err := parseSubjectName(names.KindGroup, strings.TrimPrefix(subj, "group:"))
		if err != nil {
			return TierAssignment{}, err
		}
		a.Principal = n
	default:
		return TierAssignment{}, fmt.Errorf("bad subject %q (want *, principal:..., or group:...)", subj)
	}
	a.Tier = fields[2]
	return a, nil
}

func parseRuleLine(line string) (Rule, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Rule{}, fmt.Errorf("want at least 'verb subject resource methods', got %q", line)
	}
	var r Rule
	switch fields[0] {
	case "allow":
	case "deny":
		r.Deny = true
	default:
		return Rule{}, fmt.Errorf("unknown verb %q (want allow or deny)", fields[0])
	}

	switch subj := fields[1]; {
	case subj == "*":
		r.AnyPrincipal = true
	case strings.HasPrefix(subj, "principal:"):
		n, err := parseSubjectName(names.KindPrincipal, strings.TrimPrefix(subj, "principal:"))
		if err != nil {
			return Rule{}, err
		}
		r.Principal = n
	case strings.HasPrefix(subj, "group:"):
		n, err := parseSubjectName(names.KindGroup, strings.TrimPrefix(subj, "group:"))
		if err != nil {
			return Rule{}, err
		}
		r.Principal = n
	default:
		return Rule{}, fmt.Errorf("bad subject %q (want *, principal:..., or group:...)", subj)
	}

	r.Resource = fields[2]
	if fields[3] == "*" {
		r.Methods = []string{"*"}
	} else {
		r.Methods = strings.Split(fields[3], ",")
	}

	for _, opt := range fields[4:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Rule{}, fmt.Errorf("bad option %q (want key=value)", opt)
		}
		switch key {
		case "quota":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Rule{}, fmt.Errorf("bad quota %q", val)
			}
			r.Quota.MaxInvocations = n
		case "charge":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Rule{}, fmt.Errorf("bad charge %q", val)
			}
			r.Quota.MaxCharge = n
		case "ttl":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return Rule{}, fmt.Errorf("bad ttl %q", val)
			}
			r.TTL = d
		default:
			return Rule{}, fmt.Errorf("unknown option %q", key)
		}
		if r.Deny {
			return Rule{}, fmt.Errorf("options are meaningless on deny rules")
		}
	}
	return r, nil
}

// parseSubjectName parses "<authority>/<path...>" into a Name of the
// given kind.
func parseSubjectName(kind names.Kind, s string) (names.Name, error) {
	authority, path, ok := strings.Cut(s, "/")
	if !ok {
		return names.Name{}, fmt.Errorf("bad subject name %q (want authority/path)", s)
	}
	return names.New(kind, authority, path)
}
