package policy

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/names"
)

// ParseRules reads the textual policy format used by server
// configuration files (ajanta-server -policy). One rule per line:
//
//	allow|deny <subject> <resource> <methods> [quota=N] [charge=N] [ttl=DUR]
//
// where <subject> is "*", "principal:<authority>/<path>" or
// "group:<authority>/<path>"; <resource> is a resource path or "*";
// <methods> is a comma-separated list or "*". '#' starts a comment.
//
// Examples:
//
//	# everyone may read the catalogue, 100 calls per binding
//	allow * catalogue quote,items quota=100
//	# faculty get everything on the corpus, proxies live one hour
//	allow group:umn.edu/faculty corpus * ttl=1h
//	# nobody resets the counter
//	deny * counter reset
func ParseRules(text string) ([]Rule, error) {
	var rules []Rule
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		rule, err := parseRuleLine(line)
		if err != nil {
			return nil, fmt.Errorf("policy: line %d: %w", lineNo+1, err)
		}
		rules = append(rules, rule)
	}
	return rules, nil
}

func parseRuleLine(line string) (Rule, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Rule{}, fmt.Errorf("want at least 'verb subject resource methods', got %q", line)
	}
	var r Rule
	switch fields[0] {
	case "allow":
	case "deny":
		r.Deny = true
	default:
		return Rule{}, fmt.Errorf("unknown verb %q (want allow or deny)", fields[0])
	}

	switch subj := fields[1]; {
	case subj == "*":
		r.AnyPrincipal = true
	case strings.HasPrefix(subj, "principal:"):
		n, err := parseSubjectName(names.KindPrincipal, strings.TrimPrefix(subj, "principal:"))
		if err != nil {
			return Rule{}, err
		}
		r.Principal = n
	case strings.HasPrefix(subj, "group:"):
		n, err := parseSubjectName(names.KindGroup, strings.TrimPrefix(subj, "group:"))
		if err != nil {
			return Rule{}, err
		}
		r.Principal = n
	default:
		return Rule{}, fmt.Errorf("bad subject %q (want *, principal:..., or group:...)", subj)
	}

	r.Resource = fields[2]
	if fields[3] == "*" {
		r.Methods = []string{"*"}
	} else {
		r.Methods = strings.Split(fields[3], ",")
	}

	for _, opt := range fields[4:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Rule{}, fmt.Errorf("bad option %q (want key=value)", opt)
		}
		switch key {
		case "quota":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Rule{}, fmt.Errorf("bad quota %q", val)
			}
			r.Quota.MaxInvocations = n
		case "charge":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Rule{}, fmt.Errorf("bad charge %q", val)
			}
			r.Quota.MaxCharge = n
		case "ttl":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return Rule{}, fmt.Errorf("bad ttl %q", val)
			}
			r.TTL = d
		default:
			return Rule{}, fmt.Errorf("unknown option %q", key)
		}
		if r.Deny {
			return Rule{}, fmt.Errorf("options are meaningless on deny rules")
		}
	}
	return r, nil
}

// parseSubjectName parses "<authority>/<path...>" into a Name of the
// given kind.
func parseSubjectName(kind names.Kind, s string) (names.Name, error) {
	authority, path, ok := strings.Cut(s, "/")
	if !ok {
		return names.Name{}, fmt.Errorf("bad subject name %q (want authority/path)", s)
	}
	return names.New(kind, authority, path)
}
