package policy

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/names"
)

func allRights() cred.RightSet { return cred.NewRightSet(cred.All) }

func TestParseRulesFull(t *testing.T) {
	text := `
# catalogue is public, bounded
allow * catalogue quote,items quota=100 charge=500

allow principal:umn.edu/alice corpus *  ttl=1h
allow group:umn.edu/faculty corpus read,search
deny * counter reset
`
	rules, err := ParseRules(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("got %d rules", len(rules))
	}
	r0 := rules[0]
	if !r0.AnyPrincipal || r0.Resource != "catalogue" ||
		len(r0.Methods) != 2 || r0.Methods[0] != "quote" ||
		r0.Quota.MaxInvocations != 100 || r0.Quota.MaxCharge != 500 {
		t.Fatalf("rule 0 = %+v", r0)
	}
	r1 := rules[1]
	if r1.Principal != names.Principal("umn.edu", "alice") ||
		r1.Methods[0] != "*" || r1.TTL != time.Hour {
		t.Fatalf("rule 1 = %+v", r1)
	}
	r2 := rules[2]
	if r2.Principal != names.Group("umn.edu", "faculty") {
		t.Fatalf("rule 2 = %+v", r2)
	}
	r3 := rules[3]
	if !r3.Deny || !r3.AnyPrincipal || r3.Methods[0] != "reset" {
		t.Fatalf("rule 3 = %+v", r3)
	}
}

func TestParseRulesEmptyAndComments(t *testing.T) {
	rules, err := ParseRules("\n# nothing here\n   \n")
	if err != nil || len(rules) != 0 {
		t.Fatalf("%v %v", rules, err)
	}
}

func TestParseRulesErrors(t *testing.T) {
	cases := []struct{ text, want string }{
		{"allow *", "at least"},
		{"permit * r m", "unknown verb"},
		{"allow bob r m", "bad subject"},
		{"allow principal:justname r m", "bad subject name"},
		{"allow principal:a/!bad r m", "names"},
		{"allow * r m quota", "bad option"},
		{"allow * r m quota=many", "bad quota"},
		{"allow * r m charge=-3", "bad charge"},
		{"allow * r m ttl=fast", "bad ttl"},
		{"allow * r m ttl=-1s", "bad ttl"},
		{"allow * r m speed=9", "unknown option"},
		{"deny * r m quota=3", "meaningless on deny"},
	}
	for _, c := range cases {
		_, err := ParseRules(c.text)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %v, want containing %q", c.text, err, c.want)
		}
	}
}

func TestParseRulesLineNumbers(t *testing.T) {
	_, err := ParseRules("allow * r m\n\nbogus line here\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("got %v", err)
	}
}

// TestParsedRulesBehave: parsed rules drive the engine identically to
// hand-built ones.
func TestParsedRulesBehave(t *testing.T) {
	rules, err := ParseRules(`
allow * counter get quota=2
deny * counter reset
allow * counter reset
`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	e.SetRules(rules)
	c := testCreds(t, allRights())
	g := e.Decide(c, "counter", []string{"get", "add", "reset"})
	if !g.Methods["get"] || g.Methods["add"] {
		t.Fatalf("grant = %v", g.MethodList())
	}
	if g.Methods["reset"] {
		t.Fatal("deny did not dominate the later allow")
	}
	if g.Quota.MaxInvocations != 2 {
		t.Fatalf("quota = %+v", g.Quota)
	}
}
