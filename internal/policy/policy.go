// Package policy implements server-side security policies (§5.2: "The
// rights assigned usually depend on the agent's identity ... and are
// determined by consulting a security policy"). The design follows the
// paper's server-oriented view of policy enforcement: each server owns
// its policy; there is no central authority.
//
// A policy is an ordered list of rules. Each rule matches on the
// requesting agent's owner (directly or through group membership), on
// the resource being requested, and yields a grant or a denial. The
// effective grant for a request is the union of all matching allow
// rules, minus all matching deny rules, intersected with the rights the
// agent's credentials actually delegate to it (owner-imposed
// restrictions are enforced *in addition to* resource policies, §5.1).
package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cred"
	"repro/internal/names"
)

// Quota bounds resource usage for one binding (Telescript-style permits,
// which the paper cites approvingly).
type Quota struct {
	// MaxInvocations caps the number of proxy method calls; 0 means
	// unlimited.
	MaxInvocations uint64
	// MaxCharge caps the accumulated accounting charge; 0 = unlimited.
	MaxCharge uint64
}

// Grant is the outcome of a policy decision: which methods of the
// resource the agent may invoke, under what quota, until when.
type Grant struct {
	// Methods maps method name -> allowed. Only listed methods are
	// enabled on the proxy; everything else is disabled.
	Methods map[string]bool
	Quota   Quota
	// Expiry is the proxy expiration time; zero means the credential
	// expiry governs alone.
	Expiry time.Time
}

// Empty reports whether the grant enables no methods at all.
func (g Grant) Empty() bool { return len(g.Methods) == 0 }

// MethodList returns the enabled methods in sorted order.
func (g Grant) MethodList() []string {
	out := make([]string, 0, len(g.Methods))
	for m, ok := range g.Methods {
		if ok {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// Rule is one policy clause.
type Rule struct {
	// Principal matches the agent's owner: an exact principal name,
	// a group name (expanded via the engine's group table), or the
	// wildcard "*". The empty Name matches nothing.
	Principal names.Name
	// AnyPrincipal, when true, matches every owner (wildcard).
	AnyPrincipal bool
	// Resource matches the resource path within this server; "*"
	// matches all resources.
	Resource string
	// Methods are granted (or denied) by this rule; "*" = all the
	// resource's methods.
	Methods []string
	// Deny inverts the rule: matching methods are stripped from the
	// grant even if another rule allowed them. Deny rules dominate.
	Deny bool
	// Quota applies when this (allow) rule contributes to the grant;
	// the strictest matching quota wins.
	Quota Quota
	// TTL bounds proxy lifetime when this rule contributes; the
	// shortest matching TTL wins. Zero = no bound from this rule.
	TTL time.Duration
}

// Tier is one admission class: the ingress limits a server applies to
// agents of the principals assigned to it (internal/admission enforces
// them at the arrival gate). Tiers ride in the same copy-on-write
// generations as rules, so a tier change propagates epoch-style — the
// admit path reads the current snapshot lock-free and in-flight
// admissions never block on a reload.
type Tier struct {
	// Name identifies the tier in policy files and shed responses.
	Name string
	// Rate is the sustained admission rate (agents/second) allowed per
	// principal key; 0 means unlimited.
	Rate float64
	// Burst is how many admissions may arrive back-to-back before the
	// rate bites; 0 means a burst of max(1, Rate).
	Burst float64
	// MaxConcurrent caps simultaneously hosted visits per principal
	// key; 0 means unlimited.
	MaxConcurrent int
	// Fuel, when non-zero, caps the per-visit instruction budget below
	// the server default — a resource quota for low tiers.
	Fuel uint64
}

// TierAssignment maps a subject to a tier by name. Assignments are
// ordered; the first match wins, so specific principals can be listed
// before a wildcard catch-all.
type TierAssignment struct {
	// Principal matches the agent's owner directly or via group
	// membership (KindGroup names expand through the group table).
	Principal names.Name
	// AnyPrincipal, when true, matches every owner.
	AnyPrincipal bool
	// Tier names the assigned tier.
	Tier string
}

// ruleSet is one immutable published generation of a policy: rules in
// order, the group table, and the admission-tier configuration.
// Decisions read a whole generation atomically, never a half-applied
// mutation.
type ruleSet struct {
	rules   []Rule
	groups  map[names.Name][]names.Name // group -> members
	tiers   map[string]Tier             // tier name -> definition
	assigns []TierAssignment            // ordered; first match wins
}

// Engine evaluates rules. It is safe for concurrent use: decisions are
// lock-free reads of a copy-on-write snapshot; mutators (AddRule,
// SetRules, DefineGroup) copy the current generation under a writer
// mutex, publish the successor and bump the policy epoch.
type Engine struct {
	mu    sync.Mutex // serializes writers only
	snap  atomic.Pointer[ruleSet]
	epoch atomic.Uint64
}

// NewEngine returns an engine with no rules (default deny).
func NewEngine() *Engine {
	e := &Engine{}
	e.snap.Store(&ruleSet{
		groups: make(map[names.Name][]names.Name),
		tiers:  make(map[string]Tier),
	})
	return e
}

// Epoch returns the policy's mutation epoch. It bumps on every rule or
// group change; decisions cached under an older epoch are stale.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// publish installs a new generation; the caller holds e.mu.
func (e *Engine) publish(rs *ruleSet) {
	e.snap.Store(rs)
	e.epoch.Add(1)
}

// mutate builds the successor generation from a copy of the current one.
func (e *Engine) mutate(f func(rs *ruleSet)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.snap.Load()
	rs := &ruleSet{
		rules:   append([]Rule(nil), cur.rules...),
		groups:  make(map[names.Name][]names.Name, len(cur.groups)),
		tiers:   make(map[string]Tier, len(cur.tiers)),
		assigns: append([]TierAssignment(nil), cur.assigns...),
	}
	for g, ms := range cur.groups {
		rs.groups[g] = ms
	}
	for n, t := range cur.tiers {
		rs.tiers[n] = t
	}
	f(rs)
	e.publish(rs)
}

// AddRule appends a rule. Policies "can be dynamically modified by
// their owners" (§5.1), hence the mutator rather than a frozen config.
func (e *Engine) AddRule(r Rule) {
	e.mutate(func(rs *ruleSet) { rs.rules = append(rs.rules, r) })
}

// SetRules replaces the whole rule list.
func (e *Engine) SetRules(rules []Rule) {
	e.mutate(func(rs *ruleSet) { rs.rules = append([]Rule(nil), rules...) })
}

// DefineGroup sets the membership of a group ("a set of principals may
// be aggregated together in a group to represent a common role", §2).
func (e *Engine) DefineGroup(group names.Name, members ...names.Name) {
	e.mutate(func(rs *ruleSet) {
		rs.groups[group] = append([]names.Name(nil), members...)
	})
}

// DefineTier installs (or replaces) a tier definition.
func (e *Engine) DefineTier(t Tier) {
	e.mutate(func(rs *ruleSet) { rs.tiers[t.Name] = t })
}

// AssignTier appends a tier assignment (first match wins, so order
// specific subjects before wildcards).
func (e *Engine) AssignTier(a TierAssignment) {
	e.mutate(func(rs *ruleSet) { rs.assigns = append(rs.assigns, a) })
}

// SetTierConfig replaces the whole tier configuration — definitions and
// assignments — in one published generation, so a hot reload can never
// expose a half-old half-new admission policy.
func (e *Engine) SetTierConfig(tiers []Tier, assigns []TierAssignment) {
	e.mutate(func(rs *ruleSet) {
		rs.tiers = make(map[string]Tier, len(tiers))
		for _, t := range tiers {
			rs.tiers[t.Name] = t
		}
		rs.assigns = append([]TierAssignment(nil), assigns...)
	})
}

// TierFor resolves the admission tier for an owner principal: the first
// matching assignment whose tier is defined. Like Decide, it is a
// lock-free read of the current snapshot — the admission gate calls it
// per arrival — and a concurrent tier reload is seen either entirely or
// not at all. ok is false when no assignment matches (untiered owners
// are admitted without limits).
func (e *Engine) TierFor(owner names.Name) (Tier, bool) {
	rs := e.snap.Load()
	for _, a := range rs.assigns {
		if !a.AnyPrincipal {
			if a.Principal.IsZero() {
				continue
			}
			if a.Principal != owner &&
				!(a.Principal.Kind == names.KindGroup && rs.memberOf(owner, a.Principal)) {
				continue
			}
		}
		if t, ok := rs.tiers[a.Tier]; ok {
			return t, true
		}
	}
	return Tier{}, false
}

// memberOf reports whether p is in group (non-recursive; the paper's
// groups are flat roles).
func (rs *ruleSet) memberOf(p, group names.Name) bool {
	for _, m := range rs.groups[group] {
		if m == p {
			return true
		}
	}
	return false
}

// matches reports whether rule r applies to owner and resourcePath.
func (rs *ruleSet) matches(r Rule, owner names.Name, resourcePath string) bool {
	if r.Resource != "*" && r.Resource != resourcePath {
		return false
	}
	if r.AnyPrincipal {
		return true
	}
	if r.Principal.IsZero() {
		return false
	}
	if r.Principal == owner {
		return true
	}
	return r.Principal.Kind == names.KindGroup && rs.memberOf(owner, r.Principal)
}

// Decide computes the grant for an agent (identified by its verified
// credentials) requesting the resource at resourcePath whose full method
// set is allMethods. The result is restricted by the delegated rights in
// the credentials: a right "path.m" (or a wildcard implying it) must be
// present for method m to survive.
func (e *Engine) Decide(c *cred.Credentials, resourcePath string, allMethods []string) Grant {
	rs := e.snap.Load()

	allowed := make(map[string]bool)
	denied := make(map[string]bool)
	var quota Quota
	var ttl time.Duration

	expand := func(ms []string) []string {
		for _, m := range ms {
			if m == "*" {
				return allMethods
			}
		}
		return ms
	}

	for _, r := range rs.rules {
		if !rs.matches(r, c.Owner, resourcePath) {
			continue
		}
		for _, m := range expand(r.Methods) {
			if r.Deny {
				denied[m] = true
			} else {
				allowed[m] = true
			}
		}
		if !r.Deny {
			quota = strictest(quota, r.Quota)
			if r.TTL > 0 && (ttl == 0 || r.TTL < ttl) {
				ttl = r.TTL
			}
		}
	}

	g := Grant{Methods: make(map[string]bool)}
	for m := range allowed {
		if denied[m] {
			continue
		}
		// Owner-imposed restriction: the agent's delegated rights
		// must also permit this method (§5.1 third bullet).
		if !c.Permits(cred.Right(resourcePath + "." + m)) {
			continue
		}
		g.Methods[m] = true
	}
	g.Quota = quota
	if ttl > 0 {
		g.Expiry = time.Now().Add(ttl)
	}
	return g
}

// AllowsWildcard reports whether this policy could grant the agent
// identified by c access to a resource whose name is not known
// statically. The admission check (internal/server) calls this for
// access-manifest entries widened to "*": a get_resource target the
// analyzer could not resolve is admissible only when some allow rule
// with Resource "*" matches the agent's owner. Admission stays
// fail-closed — the per-binding Decide check still governs the actual
// access at run time.
func (e *Engine) AllowsWildcard(c *cred.Credentials) bool {
	rs := e.snap.Load()
	for _, r := range rs.rules {
		if !r.Deny && r.Resource == "*" && rs.matches(r, c.Owner, "*") {
			return true
		}
	}
	return false
}

// strictest combines two quotas, taking the tighter bound per field
// (0 = unbounded).
func strictest(a, b Quota) Quota {
	pick := func(x, y uint64) uint64 {
		switch {
		case x == 0:
			return y
		case y == 0:
			return x
		case x < y:
			return x
		default:
			return y
		}
	}
	return Quota{
		MaxInvocations: pick(a.MaxInvocations, b.MaxInvocations),
		MaxCharge:      pick(a.MaxCharge, b.MaxCharge),
	}
}

// String renders the rule for logs.
func (r Rule) String() string {
	who := "nobody"
	switch {
	case r.AnyPrincipal:
		who = "*"
	case !r.Principal.IsZero():
		who = r.Principal.String()
	}
	verb := "allow"
	if r.Deny {
		verb = "deny"
	}
	return fmt.Sprintf("%s %s on %s methods [%s]", verb, who, r.Resource, strings.Join(r.Methods, " "))
}
