package policy

import (
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/keys"
	"repro/internal/names"
)

var bufMethods = []string{"get", "put", "len"}

func testCreds(t *testing.T, rights cred.RightSet) *cred.Credentials {
	t.Helper()
	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	owner, err := keys.NewIdentity(reg, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cred.Issue(owner, names.Agent("umn.edu", "a1"),
		names.Principal("umn.edu", "app"), rights, time.Hour, "home")
	if err != nil {
		t.Fatal(err)
	}
	return &c
}

func TestDefaultDeny(t *testing.T) {
	e := NewEngine()
	c := testCreds(t, cred.NewRightSet(cred.All))
	g := e.Decide(c, "buf", bufMethods)
	if !g.Empty() {
		t.Fatalf("empty policy granted %v", g.MethodList())
	}
}

func TestAllowByPrincipal(t *testing.T) {
	e := NewEngine()
	e.AddRule(Rule{Principal: names.Principal("umn.edu", "alice"), Resource: "buf", Methods: []string{"get"}})
	c := testCreds(t, cred.NewRightSet(cred.All))
	g := e.Decide(c, "buf", bufMethods)
	if !g.Methods["get"] || g.Methods["put"] {
		t.Fatalf("grant = %v", g.MethodList())
	}
}

func TestAllowWildcardMethods(t *testing.T) {
	e := NewEngine()
	e.AddRule(Rule{AnyPrincipal: true, Resource: "buf", Methods: []string{"*"}})
	c := testCreds(t, cred.NewRightSet(cred.All))
	g := e.Decide(c, "buf", bufMethods)
	if len(g.MethodList()) != 3 {
		t.Fatalf("grant = %v, want all three", g.MethodList())
	}
}

func TestDenyDominates(t *testing.T) {
	e := NewEngine()
	e.AddRule(Rule{AnyPrincipal: true, Resource: "buf", Methods: []string{"*"}})
	e.AddRule(Rule{AnyPrincipal: true, Resource: "buf", Methods: []string{"put"}, Deny: true})
	c := testCreds(t, cred.NewRightSet(cred.All))
	g := e.Decide(c, "buf", bufMethods)
	if g.Methods["put"] {
		t.Fatal("deny rule did not dominate")
	}
	if !g.Methods["get"] || !g.Methods["len"] {
		t.Fatalf("grant = %v", g.MethodList())
	}
}

func TestGroupMembership(t *testing.T) {
	e := NewEngine()
	faculty := names.Group("umn.edu", "faculty")
	e.DefineGroup(faculty, names.Principal("umn.edu", "alice"))
	e.AddRule(Rule{Principal: faculty, Resource: "buf", Methods: []string{"get"}})
	c := testCreds(t, cred.NewRightSet(cred.All))
	if g := e.Decide(c, "buf", bufMethods); !g.Methods["get"] {
		t.Fatal("group member not granted")
	}
	// A non-member with the same policy gets nothing.
	e2 := NewEngine()
	e2.DefineGroup(faculty, names.Principal("umn.edu", "bob"))
	e2.AddRule(Rule{Principal: faculty, Resource: "buf", Methods: []string{"get"}})
	if g := e2.Decide(c, "buf", bufMethods); !g.Empty() {
		t.Fatal("non-member granted via group rule")
	}
}

func TestResourceScoping(t *testing.T) {
	e := NewEngine()
	e.AddRule(Rule{AnyPrincipal: true, Resource: "buf", Methods: []string{"get"}})
	c := testCreds(t, cred.NewRightSet(cred.All))
	if g := e.Decide(c, "other", []string{"get"}); !g.Empty() {
		t.Fatal("rule for buf leaked to other resource")
	}
	e.AddRule(Rule{AnyPrincipal: true, Resource: "*", Methods: []string{"len"}})
	if g := e.Decide(c, "other", []string{"get", "len"}); !g.Methods["len"] || g.Methods["get"] {
		t.Fatalf("wildcard resource rule wrong: %v", g.MethodList())
	}
}

func TestOwnerDelegatedRightsIntersect(t *testing.T) {
	// Server policy allows everything, but the owner only delegated
	// buf.get to the agent — the grant must honour the restriction
	// (§5.1: restrictions "enforced in addition to the access controls
	// applied by the resources themselves").
	e := NewEngine()
	e.AddRule(Rule{AnyPrincipal: true, Resource: "buf", Methods: []string{"*"}})
	c := testCreds(t, cred.NewRightSet("buf.get"))
	g := e.Decide(c, "buf", bufMethods)
	if !g.Methods["get"] || g.Methods["put"] || g.Methods["len"] {
		t.Fatalf("grant = %v, want only get", g.MethodList())
	}
}

func TestQuotaStrictestWins(t *testing.T) {
	e := NewEngine()
	e.AddRule(Rule{AnyPrincipal: true, Resource: "buf", Methods: []string{"get"},
		Quota: Quota{MaxInvocations: 100}})
	e.AddRule(Rule{AnyPrincipal: true, Resource: "buf", Methods: []string{"put"},
		Quota: Quota{MaxInvocations: 10, MaxCharge: 50}})
	c := testCreds(t, cred.NewRightSet(cred.All))
	g := e.Decide(c, "buf", bufMethods)
	if g.Quota.MaxInvocations != 10 || g.Quota.MaxCharge != 50 {
		t.Fatalf("quota = %+v", g.Quota)
	}
}

func TestTTLShortestWins(t *testing.T) {
	e := NewEngine()
	e.AddRule(Rule{AnyPrincipal: true, Resource: "buf", Methods: []string{"get"}, TTL: time.Hour})
	e.AddRule(Rule{AnyPrincipal: true, Resource: "buf", Methods: []string{"put"}, TTL: time.Minute})
	c := testCreds(t, cred.NewRightSet(cred.All))
	g := e.Decide(c, "buf", bufMethods)
	if g.Expiry.IsZero() || time.Until(g.Expiry) > 2*time.Minute {
		t.Fatalf("expiry = %v, want ~1m", g.Expiry)
	}
}

func TestSetRulesReplaces(t *testing.T) {
	e := NewEngine()
	e.AddRule(Rule{AnyPrincipal: true, Resource: "buf", Methods: []string{"*"}})
	e.SetRules(nil)
	c := testCreds(t, cred.NewRightSet(cred.All))
	if g := e.Decide(c, "buf", bufMethods); !g.Empty() {
		t.Fatal("SetRules(nil) did not clear policy")
	}
}

func TestZeroPrincipalMatchesNothing(t *testing.T) {
	e := NewEngine()
	e.AddRule(Rule{Resource: "buf", Methods: []string{"*"}}) // no principal, not AnyPrincipal
	c := testCreds(t, cred.NewRightSet(cred.All))
	if g := e.Decide(c, "buf", bufMethods); !g.Empty() {
		t.Fatal("rule with zero principal matched")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{AnyPrincipal: true, Resource: "buf", Methods: []string{"get", "put"}, Deny: true}
	if got := r.String(); got != "deny * on buf methods [get put]" {
		t.Fatalf("String() = %q", got)
	}
}
