package proxygen

import (
	"os"
	"strings"
	"testing"
)

// TestProxygenMatchesFigure5: regenerating the Buffer proxy from the
// Buffer interface reproduces the checked-in generated file exactly
// (experiment F5 — the paper's "simple lexical processing tool").
func TestProxygenMatchesFigure5(t *testing.T) {
	src, err := os.ReadFile("../resource/buffer/buffer.go")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("../resource/buffer/buffer_proxy.go")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Generate(src, "Buffer")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("generated proxy differs from checked-in buffer_proxy.go\n--- generated ---\n%s", got)
	}
}

func TestGenerateUnknownInterface(t *testing.T) {
	src := []byte("package p\ntype X struct{}")
	if _, err := Generate(src, "Buffer"); err == nil {
		t.Fatal("unknown interface accepted")
	}
	if _, err := Generate(src, "X"); err == nil {
		t.Fatal("non-interface type accepted")
	}
}

func TestGenerateRejectsUnsupportedSignatures(t *testing.T) {
	src := []byte(`package p
type Bad interface {
	NoError() int
}`)
	if _, err := Generate(src, "Bad"); err == nil {
		t.Fatal("method without error result accepted")
	}
	src2 := []byte(`package p
type Bad2 interface {
	Three() (int, int, error)
}`)
	if _, err := Generate(src2, "Bad2"); err == nil {
		t.Fatal("three-result method accepted")
	}
}

func TestGenerateRejectsForeignEmbeds(t *testing.T) {
	src := []byte(`package p
import "io"
type Weird interface {
	io.Reader
	Get() (int, error)
}`)
	if _, err := Generate(src, "Weird"); err == nil {
		t.Fatal("foreign embedded interface accepted")
	}
}

func TestGenerateSynthesizesParamNames(t *testing.T) {
	src := []byte(`package p
type Store interface {
	Lookup(string, int) (string, error)
	Delete(key string) error
}`)
	out, err := Generate(src, "Store")
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	for _, want := range []string{
		"func (p *StoreProxy) Lookup(a0 string, a1 int) (string, error) {",
		"return p.ref.Lookup(a0, a1)",
		"func (p *StoreProxy) Delete(key string) error {",
		"return p.ref.Delete(key)",
		`p.isEnabled("Lookup")`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n%s", want, text)
		}
	}
}

func TestGenerateParseError(t *testing.T) {
	if _, err := Generate([]byte("not go"), "X"); err == nil {
		t.Fatal("garbage source accepted")
	}
}
