// Package registry implements the agent server's resource registry
// (Fig. 1, Fig. 6 step 1): the table through which resources are made
// available to agents and looked up by global name. "Each entry also
// contains ownership information, which is used to prevent any
// unauthorized modifications to the registry entries" (§5.5).
package registry

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/resource"
)

// Errors.
var (
	ErrNotFound  = errors.New("registry: resource not found")
	ErrDuplicate = errors.New("registry: resource already registered")
	ErrNotOwner  = errors.New("registry: caller does not own this entry")
)

// Entry is one registered resource: the resource object (through its
// AccessProtocol), plus ownership information.
type Entry struct {
	Name names.Name
	// Resource answers generic queries; AP creates proxies. A Def
	// satisfies both.
	Resource resource.Resource
	AP       resource.AccessProtocol
	// OwnerDomain is the protection domain that registered the entry
	// and may modify or remove it. Resources installed at server
	// start belong to the server domain; resources installed by
	// agents (§5.5 "dynamic extension of server capabilities") belong
	// to the installing agent's domain — and survive its departure.
	OwnerDomain domain.ID
	// OwnerPrincipal is the registering principal, kept for audit.
	OwnerPrincipal names.Name
}

// Registry is a thread-safe name → Entry table.
type Registry struct {
	mu      sync.RWMutex
	entries map[names.Name]*Entry
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{entries: make(map[names.Name]*Entry)}
}

// Register adds an entry (Fig. 6 step 1: "resource registers itself").
func (r *Registry) Register(e Entry) error {
	if err := e.Name.Valid(); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if e.Resource == nil || e.AP == nil {
		return errors.New("registry: entry needs Resource and AccessProtocol")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.Name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, e.Name)
	}
	cp := e
	r.entries[e.Name] = &cp
	return nil
}

// Lookup finds an entry by name (Fig. 6 step 3).
func (r *Registry) Lookup(n names.Name) (Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[n]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %s", ErrNotFound, n)
	}
	return *e, nil
}

// Unregister removes an entry. Only the owning domain (or the server)
// may do so — the ownership check of §5.5.
func (r *Registry) Unregister(caller domain.ID, n names.Name) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[n]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, n)
	}
	if caller != domain.ServerID && caller != e.OwnerDomain {
		return fmt.Errorf("%w: %s owned by %s", ErrNotOwner, n, e.OwnerDomain)
	}
	delete(r.entries, n)
	return nil
}

// Replace swaps an entry's resource and access protocol, subject to the
// same ownership check.
func (r *Registry) Replace(caller domain.ID, n names.Name, res resource.Resource, ap resource.AccessProtocol) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[n]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, n)
	}
	if caller != domain.ServerID && caller != e.OwnerDomain {
		return fmt.Errorf("%w: %s owned by %s", ErrNotOwner, n, e.OwnerDomain)
	}
	e.Resource = res
	e.AP = ap
	return nil
}

// List returns all registered names.
func (r *Registry) List() []names.Name {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]names.Name, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	return out
}

// Len reports the number of entries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
