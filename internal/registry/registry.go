// Package registry implements the agent server's resource registry
// (Fig. 1, Fig. 6 step 1): the table through which resources are made
// available to agents and looked up by global name. "Each entry also
// contains ownership information, which is used to prevent any
// unauthorized modifications to the registry entries" (§5.5).
//
// The registry is read-mostly — one lookup per resource binding,
// mutations only when resources are installed, replaced or removed — so
// the table is published as an immutable copy-on-write snapshot behind
// an atomic pointer. Lookups never lock; each mutation copies the
// table under a writer mutex, swaps the pointer and bumps the registry
// epoch (used by the policy decision cache for invalidation).
package registry

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/resource"
)

// Errors.
var (
	ErrNotFound  = errors.New("registry: resource not found")
	ErrDuplicate = errors.New("registry: resource already registered")
	ErrNotOwner  = errors.New("registry: caller does not own this entry")
)

// Entry is one registered resource: the resource object (through its
// AccessProtocol), plus ownership information.
type Entry struct {
	Name names.Name
	// Resource answers generic queries; AP creates proxies. A Def
	// satisfies both.
	Resource resource.Resource
	AP       resource.AccessProtocol
	// OwnerDomain is the protection domain that registered the entry
	// and may modify or remove it. Resources installed at server
	// start belong to the server domain; resources installed by
	// agents (§5.5 "dynamic extension of server capabilities") belong
	// to the installing agent's domain — and survive its departure.
	OwnerDomain domain.ID
	// OwnerPrincipal is the registering principal, kept for audit.
	OwnerPrincipal names.Name
}

// table is one immutable published generation of the registry. The
// mutation epoch travels inside the snapshot, so a reader that pins one
// table always sees the epoch that table was published under — entries
// and epoch can never be observed from different generations.
type table struct {
	m     map[names.Name]Entry
	epoch uint64
}

// Registry is a name → Entry table with lock-free lookups.
type Registry struct {
	mu   sync.Mutex // serializes writers only
	snap atomic.Pointer[table]
}

// New returns an empty registry.
func New() *Registry {
	r := &Registry{}
	r.snap.Store(&table{m: make(map[names.Name]Entry)})
	return r
}

// Epoch returns the registry's mutation epoch. It bumps on every
// Register, Unregister and Replace; cached decisions stamped with an
// older epoch are stale.
func (r *Registry) Epoch() uint64 { return r.snap.Load().epoch }

// load returns the current immutable table; callers must not mutate it.
func (r *Registry) load() *table { return r.snap.Load() }

// publish installs a new table generation; the caller holds r.mu.
func (r *Registry) publish(m map[names.Name]Entry) {
	r.snap.Store(&table{m: m, epoch: r.load().epoch + 1})
}

// clone copies the current table for a mutation; the caller holds r.mu.
func (r *Registry) clone() map[names.Name]Entry {
	cur := r.load().m
	m := make(map[names.Name]Entry, len(cur)+1)
	for n, e := range cur {
		m[n] = e
	}
	return m
}

// Snapshot is one pinned generation of the registry: any number of
// lookups against it observe a single consistent table and its epoch.
// The admission gate pins one snapshot per manifest check instead of
// paying an atomic load per manifest entry; the binding path pins one
// so the decision-cache stamp and the entry come from the same
// generation.
type Snapshot struct {
	t *table
}

// Snapshot pins the current generation.
func (r *Registry) Snapshot() Snapshot { return Snapshot{t: r.snap.Load()} }

// Epoch reports the pinned generation's mutation epoch.
func (s Snapshot) Epoch() uint64 { return s.t.epoch }

// Lookup finds an entry in the pinned generation; same contract as
// Registry.Lookup.
func (s Snapshot) Lookup(n names.Name) (Entry, error) {
	e, ok := s.t.m[n]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %s", ErrNotFound, n)
	}
	return e, nil
}

// Len reports the number of entries in the pinned generation.
func (s Snapshot) Len() int { return len(s.t.m) }

// Register adds an entry (Fig. 6 step 1: "resource registers itself").
func (r *Registry) Register(e Entry) error {
	if err := e.Name.Valid(); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if e.Resource == nil || e.AP == nil {
		return errors.New("registry: entry needs Resource and AccessProtocol")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.load().m[e.Name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, e.Name)
	}
	t := r.clone()
	t[e.Name] = e
	r.publish(t)
	return nil
}

// Lookup finds an entry by name (Fig. 6 step 3). The returned Entry is
// a copy: mutating its ownership fields affects nothing — the table can
// only be changed through Replace/Unregister, which enforce the §5.5
// ownership check.
func (r *Registry) Lookup(n names.Name) (Entry, error) {
	e, ok := r.load().m[n]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %s", ErrNotFound, n)
	}
	return e, nil
}

// Unregister removes an entry. Only the owning domain (or the server)
// may do so — the ownership check of §5.5.
func (r *Registry) Unregister(caller domain.ID, n names.Name) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.load().m[n]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, n)
	}
	if caller != domain.ServerID && caller != e.OwnerDomain {
		return fmt.Errorf("%w: %s owned by %s", ErrNotOwner, n, e.OwnerDomain)
	}
	t := r.clone()
	delete(t, n)
	r.publish(t)
	return nil
}

// Replace swaps an entry's resource and access protocol, subject to the
// same ownership check.
func (r *Registry) Replace(caller domain.ID, n names.Name, res resource.Resource, ap resource.AccessProtocol) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.load().m[n]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, n)
	}
	if caller != domain.ServerID && caller != e.OwnerDomain {
		return fmt.Errorf("%w: %s owned by %s", ErrNotOwner, n, e.OwnerDomain)
	}
	e.Resource = res
	e.AP = ap
	t := r.clone()
	t[n] = e
	r.publish(t)
	return nil
}

// List returns all registered names.
func (r *Registry) List() []names.Name {
	t := r.load().m
	out := make([]names.Name, 0, len(t))
	for n := range t {
		out = append(out, n)
	}
	return out
}

// Len reports the number of entries.
func (r *Registry) Len() int {
	return len(r.load().m)
}
