// Package registry implements the agent server's resource registry
// (Fig. 1, Fig. 6 step 1): the table through which resources are made
// available to agents and looked up by global name. "Each entry also
// contains ownership information, which is used to prevent any
// unauthorized modifications to the registry entries" (§5.5).
//
// The registry is read-mostly — one lookup per resource binding,
// mutations only when resources are installed, replaced or removed — so
// the table is published as an immutable copy-on-write snapshot behind
// an atomic pointer. Lookups never lock; each mutation copies the
// table under a writer mutex, swaps the pointer and bumps the registry
// epoch (used by the policy decision cache for invalidation).
package registry

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/resource"
)

// Errors.
var (
	ErrNotFound  = errors.New("registry: resource not found")
	ErrDuplicate = errors.New("registry: resource already registered")
	ErrNotOwner  = errors.New("registry: caller does not own this entry")
)

// Entry is one registered resource: the resource object (through its
// AccessProtocol), plus ownership information.
type Entry struct {
	Name names.Name
	// Resource answers generic queries; AP creates proxies. A Def
	// satisfies both.
	Resource resource.Resource
	AP       resource.AccessProtocol
	// OwnerDomain is the protection domain that registered the entry
	// and may modify or remove it. Resources installed at server
	// start belong to the server domain; resources installed by
	// agents (§5.5 "dynamic extension of server capabilities") belong
	// to the installing agent's domain — and survive its departure.
	OwnerDomain domain.ID
	// OwnerPrincipal is the registering principal, kept for audit.
	OwnerPrincipal names.Name
}

// table is one immutable published generation of the registry.
type table map[names.Name]Entry

// Registry is a name → Entry table with lock-free lookups.
type Registry struct {
	mu    sync.Mutex // serializes writers only
	snap  atomic.Pointer[table]
	epoch atomic.Uint64
}

// New returns an empty registry.
func New() *Registry {
	r := &Registry{}
	t := make(table)
	r.snap.Store(&t)
	return r
}

// Epoch returns the registry's mutation epoch. It bumps on every
// Register, Unregister and Replace; cached decisions stamped with an
// older epoch are stale.
func (r *Registry) Epoch() uint64 { return r.epoch.Load() }

// load returns the current immutable table; callers must not mutate it.
func (r *Registry) load() table { return *r.snap.Load() }

// publish installs a new table generation; the caller holds r.mu.
func (r *Registry) publish(t table) {
	r.snap.Store(&t)
	r.epoch.Add(1)
}

// clone copies the current table for a mutation; the caller holds r.mu.
func (r *Registry) clone() table {
	cur := r.load()
	t := make(table, len(cur)+1)
	for n, e := range cur {
		t[n] = e
	}
	return t
}

// Register adds an entry (Fig. 6 step 1: "resource registers itself").
func (r *Registry) Register(e Entry) error {
	if err := e.Name.Valid(); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if e.Resource == nil || e.AP == nil {
		return errors.New("registry: entry needs Resource and AccessProtocol")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.load()[e.Name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, e.Name)
	}
	t := r.clone()
	t[e.Name] = e
	r.publish(t)
	return nil
}

// Lookup finds an entry by name (Fig. 6 step 3). The returned Entry is
// a copy: mutating its ownership fields affects nothing — the table can
// only be changed through Replace/Unregister, which enforce the §5.5
// ownership check.
func (r *Registry) Lookup(n names.Name) (Entry, error) {
	e, ok := r.load()[n]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %s", ErrNotFound, n)
	}
	return e, nil
}

// Unregister removes an entry. Only the owning domain (or the server)
// may do so — the ownership check of §5.5.
func (r *Registry) Unregister(caller domain.ID, n names.Name) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.load()[n]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, n)
	}
	if caller != domain.ServerID && caller != e.OwnerDomain {
		return fmt.Errorf("%w: %s owned by %s", ErrNotOwner, n, e.OwnerDomain)
	}
	t := r.clone()
	delete(t, n)
	r.publish(t)
	return nil
}

// Replace swaps an entry's resource and access protocol, subject to the
// same ownership check.
func (r *Registry) Replace(caller domain.ID, n names.Name, res resource.Resource, ap resource.AccessProtocol) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.load()[n]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, n)
	}
	if caller != domain.ServerID && caller != e.OwnerDomain {
		return fmt.Errorf("%w: %s owned by %s", ErrNotOwner, n, e.OwnerDomain)
	}
	e.Resource = res
	e.AP = ap
	t := r.clone()
	t[n] = e
	r.publish(t)
	return nil
}

// List returns all registered names.
func (r *Registry) List() []names.Name {
	t := r.load()
	out := make([]names.Name, 0, len(t))
	for n := range t {
		out = append(out, n)
	}
	return out
}

// Len reports the number of entries.
func (r *Registry) Len() int {
	return len(r.load())
}
