package registry

import (
	"errors"
	"testing"

	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/resource"
	"repro/internal/vm"
)

func testDef(path string) *resource.Def {
	return &resource.Def{
		ResourceImpl: resource.ResourceImpl{
			Name:  names.Resource("acme.com", path),
			Owner: names.Principal("acme.com", "admin"),
		},
		Path:    path,
		Methods: map[string]resource.Method{"ping": func([]vm.Value) (vm.Value, error) { return vm.S("pong"), nil }},
	}
}

func entry(path string, owner domain.ID) Entry {
	d := testDef(path)
	return Entry{Name: d.Name, Resource: d, AP: d, OwnerDomain: owner,
		OwnerPrincipal: names.Principal("acme.com", "admin")}
}

func TestRegisterLookup(t *testing.T) {
	r := New()
	e := entry("db", domain.ServerID)
	if err := r.Register(e); err != nil {
		t.Fatal(err)
	}
	got, err := r.Lookup(e.Name)
	if err != nil || got.Resource.Description() != e.Resource.Description() {
		t.Fatalf("%+v %v", got, err)
	}
	if r.Len() != 1 || len(r.List()) != 1 {
		t.Fatal("Len/List wrong")
	}
}

func TestRegisterRejectsBadEntries(t *testing.T) {
	r := New()
	if err := r.Register(Entry{}); err == nil {
		t.Fatal("zero entry accepted")
	}
	d := testDef("x")
	if err := r.Register(Entry{Name: d.Name}); err == nil {
		t.Fatal("entry without resource accepted")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	r := New()
	e := entry("db", domain.ServerID)
	_ = r.Register(e)
	if err := r.Register(e); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("got %v", err)
	}
}

func TestLookupMissing(t *testing.T) {
	r := New()
	if _, err := r.Lookup(names.Resource("a", "b")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestUnregisterOwnershipCheck(t *testing.T) {
	r := New()
	agentDom := domain.ID(5)
	e := entry("db", agentDom)
	_ = r.Register(e)
	// A different agent cannot remove it.
	if err := r.Unregister(domain.ID(9), e.Name); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("got %v", err)
	}
	// The owner can.
	if err := r.Unregister(agentDom, e.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup(e.Name); !errors.Is(err, ErrNotFound) {
		t.Fatal("still present after unregister")
	}
}

func TestServerOverridesOwnership(t *testing.T) {
	r := New()
	e := entry("db", domain.ID(5))
	_ = r.Register(e)
	if err := r.Unregister(domain.ServerID, e.Name); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceOwnershipCheck(t *testing.T) {
	r := New()
	agentDom := domain.ID(5)
	e := entry("db", agentDom)
	_ = r.Register(e)
	d2 := testDef("db")
	d2.Desc = "v2"
	if err := r.Replace(domain.ID(9), e.Name, d2, d2); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("got %v", err)
	}
	if err := r.Replace(agentDom, e.Name, d2, d2); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Lookup(e.Name)
	if got.Resource.Description() != "v2" {
		t.Fatal("replace did not take effect")
	}
	if err := r.Replace(agentDom, names.Resource("a", "nope"), d2, d2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}
