package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/resource"
)

// TestStressRegisterRemoveDuringBinding churns the registry (Register /
// Unregister / Replace) while binder goroutines run the lookup-then-
// GetProxy half of the Fig. 6 protocol against it. Outcomes must be a
// working proxy or a clean ErrNotFound — lookups read an immutable
// snapshot, so a binder can never observe a half-mutated table. Run
// with -race: this is the registry's copy-on-write correctness test.
func TestStressRegisterRemoveDuringBinding(t *testing.T) {
	r := New()

	// Credentials + open policy so GetProxy succeeds when Lookup does.
	ca, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	owner, err := keys.NewIdentity(ca, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	creds, err := cred.Issue(owner, names.Agent("umn.edu", "a1"),
		names.Principal("umn.edu", "app"), cred.NewRightSet("*"), time.Hour, "home")
	if err != nil {
		t.Fatal(err)
	}
	eng := policy.NewEngine()
	eng.SetRules([]policy.Rule{{AnyPrincipal: true, Resource: "*", Methods: []string{"*"}}})

	const resources = 4
	paths := make([]string, resources)
	for i := range paths {
		paths[i] = fmt.Sprintf("res%d", i)
	}

	const binders = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < binders; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			dom := domain.ID(100 + w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := names.Resource("acme.com", paths[i%resources])
				e, err := r.Lookup(name)
				if err != nil {
					if !errors.Is(err, ErrNotFound) {
						t.Errorf("lookup: %v", err)
						return
					}
					continue
				}
				p, err := e.AP.GetProxy(resource.Request{Caller: dom, Creds: &creds, Policy: eng})
				if err != nil {
					t.Errorf("getproxy: %v", err)
					return
				}
				if _, err := p.Invoke(dom, "ping", nil); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
			}
		}()
	}

	// Mutator: register, replace, remove each resource in a loop.
	for round := 0; round < 100; round++ {
		for _, path := range paths {
			e := entry(path, domain.ServerID)
			if err := r.Register(e); err != nil && !errors.Is(err, ErrDuplicate) {
				t.Fatal(err)
			}
		}
		for _, path := range paths {
			d := testDef(path)
			if err := r.Replace(domain.ServerID, d.Name, d, d); err != nil && !errors.Is(err, ErrNotFound) {
				t.Fatal(err)
			}
		}
		for _, path := range paths {
			n := names.Resource("acme.com", path)
			if err := r.Unregister(domain.ServerID, n); err != nil && !errors.Is(err, ErrNotFound) {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	if r.Len() != 0 {
		t.Fatalf("registry not empty after churn: %d entries", r.Len())
	}
	// Epoch counted every successful mutation.
	if r.Epoch() < 100*uint64(resources)*2 {
		t.Fatalf("epoch %d too low for the mutation count", r.Epoch())
	}
}

// TestLookupReturnsCopy pins the ownership-safety fix: a caller that
// mutates the Entry returned by Lookup must not affect the registry's
// own record — entry modification goes through Replace/Unregister,
// which enforce the §5.5 ownership check.
func TestLookupReturnsCopy(t *testing.T) {
	r := New()
	e := entry("db", domain.ID(7))
	if err := r.Register(e); err != nil {
		t.Fatal(err)
	}

	got, err := r.Lookup(e.Name)
	if err != nil {
		t.Fatal(err)
	}
	// A hostile caller rewrites the ownership fields of its copy.
	got.OwnerDomain = domain.ID(99)
	got.OwnerPrincipal = names.Principal("evil.org", "mallory")
	got.Resource = nil
	got.AP = nil

	fresh, err := r.Lookup(e.Name)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.OwnerDomain != domain.ID(7) {
		t.Fatalf("ownership mutated through Lookup copy: %v", fresh.OwnerDomain)
	}
	if fresh.OwnerPrincipal != e.OwnerPrincipal || fresh.Resource == nil || fresh.AP == nil {
		t.Fatal("registry record mutated through Lookup copy")
	}
	// The real ownership check still governs: domain 99 may not remove.
	if err := r.Unregister(domain.ID(99), e.Name); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("want ErrNotOwner, got %v", err)
	}
	if err := r.Unregister(domain.ID(7), e.Name); err != nil {
		t.Fatal(err)
	}
}
