// Package buffer is the paper's running example, reproduced literally:
// the bounded-buffer resource of Figures 4 and 5. It demonstrates the
// statically-typed track of the proxy scheme — a Go interface (Buffer),
// its implementation (BufferImpl), and a proxy class (BufferProxy) of
// the exact shape the paper's "simple lexical processing tool"
// generates; cmd/proxygen regenerates buffer_proxy.go from this file
// and the two must match (experiment F5).
package buffer

import (
	"errors"
	"sync"

	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/vm"
)

// BufItem is the buffer element type (the paper's BufItem).
type BufItem = vm.Value

// Buffer is the application-defined bounded buffer interface (Fig. 4).
// It extends the generic Resource interface, mirroring
// "public interface Buffer extends Resource".
type Buffer interface {
	resource.Resource
	Get() (BufItem, error)
	Put(item BufItem) error
	Len() (int, error)
}

// Buffer errors.
var (
	ErrEmpty = errors.New("buffer: empty")
	ErrFull  = errors.New("buffer: full")
)

// BufferImpl implements Buffer and AccessProtocol (Fig. 4's
// "public class BufferImpl extends ResourceImpl implements Buffer,
// AccessProtocol"). Methods are synchronized as in the paper.
type BufferImpl struct {
	resource.ResourceImpl
	// Path is the policy path used for authorization decisions.
	Path string

	mu    sync.Mutex
	items []BufItem
	cap   int
}

// NewBufferImpl creates a bounded buffer with the given capacity.
func NewBufferImpl(ri resource.ResourceImpl, path string, capacity int) *BufferImpl {
	return &BufferImpl{ResourceImpl: ri, Path: path, cap: capacity}
}

// Get removes and returns the oldest item.
func (b *BufferImpl) Get() (BufItem, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items) == 0 {
		return vm.Nil(), ErrEmpty
	}
	item := b.items[0]
	b.items = b.items[1:]
	return item, nil
}

// Put appends an item.
func (b *BufferImpl) Put(item BufItem) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items) >= b.cap {
		return ErrFull
	}
	b.items = append(b.items, item)
	return nil
}

// Len reports the number of buffered items.
func (b *BufferImpl) Len() (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items), nil
}

// AccessProtocol is the typed counterpart of Fig. 7 for this resource
// family: GetProxy returns the proxy typed as the resource interface,
// the Go rendering of "returns a proxy object (typecasted to
// Resource)".
type AccessProtocol interface {
	GetProxy(req resource.Request) (Buffer, error)
}

// GetProxy implements AccessProtocol: it consults the policy engine
// with the requesting agent's credentials and returns a BufferProxy
// with the permitted methods enabled.
func (b *BufferImpl) GetProxy(req resource.Request) (Buffer, error) {
	if req.Creds == nil || req.Policy == nil {
		return nil, resource.ErrNoAccess
	}
	grant := req.Policy.Decide(req.Creds, b.Path, []string{"Get", "Put", "Len"})
	if grant.Empty() {
		return nil, resource.ErrNoAccess
	}
	return NewBufferProxy(b, grant.Methods), nil
}

// Grant builds an enabled-set directly, for tests and tools that bypass
// the policy engine.
func Grant(methods ...string) policy.Grant {
	g := policy.Grant{Methods: make(map[string]bool, len(methods))}
	for _, m := range methods {
		g.Methods[m] = true
	}
	return g
}
