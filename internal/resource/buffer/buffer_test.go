package buffer

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/vm"
)

func newBuf(capacity int) *BufferImpl {
	return NewBufferImpl(resource.ResourceImpl{
		Name:  names.Resource("acme.com", "buf"),
		Owner: names.Principal("acme.com", "admin"),
		Desc:  "bounded buffer",
	}, "buf", capacity)
}

func testCreds(t *testing.T, rights cred.RightSet) *cred.Credentials {
	t.Helper()
	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	owner, err := keys.NewIdentity(reg, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cred.Issue(owner, names.Agent("umn.edu", "a1"),
		names.Principal("umn.edu", "app"), rights, time.Hour, "home")
	if err != nil {
		t.Fatal(err)
	}
	return &c
}

func TestBoundedBufferFIFO(t *testing.T) {
	b := newBuf(3)
	for i := int64(1); i <= 3; i++ {
		if err := b.Put(vm.I(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Put(vm.I(4)); !errors.Is(err, ErrFull) {
		t.Fatalf("got %v", err)
	}
	if n, _ := b.Len(); n != 3 {
		t.Fatalf("len = %d", n)
	}
	for i := int64(1); i <= 3; i++ {
		v, err := b.Get()
		if err != nil || !v.Equal(vm.I(i)) {
			t.Fatalf("get = %v, %v", v, err)
		}
	}
	if _, err := b.Get(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("got %v", err)
	}
}

func TestBoundedBufferConcurrent(t *testing.T) {
	b := newBuf(1000)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 250; i++ {
				if err := b.Put(vm.I(int64(i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if n, _ := b.Len(); n != 1000 {
		t.Fatalf("len = %d", n)
	}
}

// TestFigure2TypeStructure: the compile-time relationships of Fig. 2.
func TestFigure2TypeStructure(t *testing.T) {
	var _ resource.Resource = (*BufferImpl)(nil) // BufferImpl is a Resource
	var _ Buffer = (*BufferImpl)(nil)            // BufferImpl implements Buffer
	var _ AccessProtocol = (*BufferImpl)(nil)    // ... and AccessProtocol
	var _ Buffer = (*BufferProxy)(nil)           // BufferProxy implements Buffer
	var _ resource.Resource = (*BufferProxy)(nil)
	// The proxy's resource reference is unexported: holders of a
	// BufferProxy cannot reach the BufferImpl (Java encapsulation in
	// the paper; package-level encapsulation here).
}

func TestProxyScreensDisabledMethods(t *testing.T) {
	b := newBuf(2)
	p := NewBufferProxy(b, Grant("Put", "Len").Methods)
	if err := p.Put(vm.S("x")); err != nil {
		t.Fatal(err)
	}
	if n, err := p.Len(); err != nil || n != 1 {
		t.Fatalf("%d %v", n, err)
	}
	if _, err := p.Get(); !errors.Is(err, resource.ErrMethodDisabled) {
		t.Fatalf("got %v", err)
	}
	// The underlying buffer still holds the item: the proxy refused
	// before forwarding.
	if n, _ := b.Len(); n != 1 {
		t.Fatalf("buffer len = %d", n)
	}
}

func TestProxyGenericQueriesAlwaysPass(t *testing.T) {
	b := newBuf(1)
	p := NewBufferProxy(b, nil) // nothing enabled
	if p.ResourceName() != b.ResourceName() || p.Description() != "bounded buffer" {
		t.Fatal("generic queries blocked")
	}
	if _, err := p.Get(); !errors.Is(err, resource.ErrMethodDisabled) {
		t.Fatal("disabled method allowed")
	}
}

func TestGetProxyPolicyDriven(t *testing.T) {
	b := newBuf(4)
	eng := policy.NewEngine()
	eng.AddRule(policy.Rule{AnyPrincipal: true, Resource: "buf", Methods: []string{"Put", "Len"}})
	creds := testCreds(t, cred.NewRightSet(cred.All))
	proxy, err := b.GetProxy(resource.Request{Caller: domain.ID(2), Creds: creds, Policy: eng})
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Put(vm.I(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.Get(); !errors.Is(err, resource.ErrMethodDisabled) {
		t.Fatalf("got %v", err)
	}
}

func TestGetProxyHonoursDelegatedRights(t *testing.T) {
	b := newBuf(4)
	eng := policy.NewEngine()
	eng.AddRule(policy.Rule{AnyPrincipal: true, Resource: "buf", Methods: []string{"*"}})
	creds := testCreds(t, cred.NewRightSet("buf.Get")) // owner delegated Get only
	proxy, err := b.GetProxy(resource.Request{Caller: domain.ID(2), Creds: creds, Policy: eng})
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Put(vm.I(1)); !errors.Is(err, resource.ErrMethodDisabled) {
		t.Fatalf("got %v", err)
	}
}

func TestGetProxyDeniedEntirely(t *testing.T) {
	b := newBuf(4)
	eng := policy.NewEngine() // default deny
	creds := testCreds(t, cred.NewRightSet(cred.All))
	if _, err := b.GetProxy(resource.Request{Caller: domain.ID(2), Creds: creds, Policy: eng}); !errors.Is(err, resource.ErrNoAccess) {
		t.Fatalf("got %v", err)
	}
	if _, err := b.GetProxy(resource.Request{}); !errors.Is(err, resource.ErrNoAccess) {
		t.Fatal("empty request accepted")
	}
}
