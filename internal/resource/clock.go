package resource

import (
	"sync"
	"sync/atomic"
	"time"
)

// The expiry screen runs on every proxy invocation, and a precise
// time.Now() costs more than the rest of the lock-free screen combined
// (a vDSO clock read is ~65ns on the benchmark machine; the snapshot
// load plus method lookup is ~30ns). Proxies usually expire hours away,
// so the screen only needs a precise clock *near* the deadline: far
// from it, a millisecond-coarse clock answers "not expired yet" just as
// correctly.
//
// coarseNow is that clock: Unix nanoseconds, refreshed every
// millisecond by a single package daemon started on first proxy
// creation. pastDeadline decides from the coarse value alone while the
// deadline is at least clockSlack away, and falls back to time.Now()
// inside the window — so expiry semantics stay exact as long as the
// daemon is not starved for longer than clockSlack, and degrade only to
// "expiry observed up to the starvation lag late" if it is. Revocation,
// not expiry, is the mechanism with a hard cutoff guarantee (§5.5); see
// docs/PROTOCOLS.md §8.
var coarseNow atomic.Int64

var clockOnce sync.Once

// clockSlack is how close to a deadline the screen switches from the
// coarse clock to a precise one. It bounds the staleness the daemon may
// accumulate before expiry checks could pass a dead proxy.
const clockSlack = int64(250 * time.Millisecond)

// clockTick is the coarse clock's refresh period.
const clockTick = time.Millisecond

// startClock launches the coarse-clock daemon once per process. The
// goroutine is deliberately never stopped: it is one timer for the
// process lifetime, shared by every proxy of every server.
func startClock() {
	clockOnce.Do(func() {
		coarseNow.Store(time.Now().UnixNano())
		go func() {
			t := time.NewTicker(clockTick)
			defer t.Stop() // unreachable; keeps vet happy about the ticker
			for now := range t.C {
				coarseNow.Store(now.UnixNano())
			}
		}()
	})
}

// pastDeadline reports whether the deadline (Unix nanos) has passed,
// consulting the precise clock only within clockSlack of the deadline.
func pastDeadline(deadline int64) bool {
	if coarseNow.Load() < deadline-clockSlack {
		return false
	}
	return time.Now().UnixNano() > deadline
}
