package resource

import (
	"sync"
	"sync/atomic"
	"time"
)

// The expiry screen runs on every proxy invocation, and a precise
// time.Now() costs more than the rest of the lock-free screen combined
// (a vDSO clock read is ~65ns on the benchmark machine; the snapshot
// load plus method lookup is ~30ns). Proxies usually expire hours away,
// so the screen only needs a precise clock *near* the deadline: far
// from it, a millisecond-coarse clock answers "not expired yet" just as
// correctly.
//
// coarseNow is that clock: Unix nanoseconds, refreshed every
// millisecond by a single package daemon started on first proxy
// creation. pastDeadline decides from the coarse value alone while the
// deadline is at least clockSlack away, and falls back to time.Now()
// inside the window — so expiry semantics stay exact as long as the
// daemon is not starved for longer than clockSlack, and degrade only to
// "expiry observed up to the starvation lag late" if it is. Revocation,
// not expiry, is the mechanism with a hard cutoff guarantee (§5.5); see
// docs/PROTOCOLS.md §8.
var coarseNow atomic.Int64

var clockOnce sync.Once

// clockSlack is how close to a deadline the screen switches from the
// coarse clock to a precise one. It bounds the staleness the daemon may
// accumulate before expiry checks could pass a dead proxy.
const clockSlack = int64(250 * time.Millisecond)

// clockTick is the coarse clock's refresh period.
const clockTick = time.Millisecond

// startClock launches the coarse-clock daemon once per process. The
// goroutine is deliberately never stopped: it is one timer for the
// process lifetime, shared by every proxy of every server — and, since
// the coarse-clock consolidation, by every retry backoff and transfer
// deadline as well (CoarseSleep / CoarseTime below), so the process
// runs ONE ticker instead of allocating a time.Timer per attempt.
func startClock() {
	clockOnce.Do(func() {
		coarseNow.Store(time.Now().UnixNano())
		go func() {
			t := time.NewTicker(clockTick)
			defer t.Stop() // unreachable; keeps vet happy about the ticker
			for now := range t.C {
				coarseNow.Store(now.UnixNano())
				fireSleepers(now.UnixNano())
			}
		}()
	})
}

// CoarseTime returns the shared coarse clock's reading as a time.Time.
// It is at most clockTick (+ any daemon starvation lag) behind the
// precise clock — callers computing multi-second network deadlines
// (transfer handshakes, per-attempt budgets) use it to avoid a precise
// clock read per attempt.
func CoarseTime() time.Time {
	startClock()
	return time.Unix(0, coarseNow.Load())
}

// sleeper is one CoarseSleep waiter: the daemon closes done at the
// first tick at or past the deadline.
type sleeper struct {
	deadline int64
	done     chan struct{}
}

var (
	sleepersMu sync.Mutex
	sleepers   []*sleeper
)

// fireSleepers wakes every expired waiter; runs on the clock daemon.
func fireSleepers(now int64) {
	sleepersMu.Lock()
	live := sleepers[:0]
	for _, w := range sleepers {
		if now >= w.deadline {
			close(w.done)
		} else {
			live = append(live, w)
		}
	}
	// Drop the tail so fired waiters are not retained by the backing
	// array.
	for i := len(live); i < len(sleepers); i++ {
		sleepers[i] = nil
	}
	sleepers = live
	sleepersMu.Unlock()
}

// CoarseSleep blocks for approximately d — resolution clockTick, so ±1ms
// in the steady state — waking on the shared clock ticker instead of
// allocating a dedicated time.Timer. It returns true immediately if
// cancel closes first. Intended for waits that are long relative to the
// tick and tolerant of millisecond skew: retry backoffs, redelivery
// pauses. Sub-tick durations still wait for the next tick (never a busy
// spin); zero and negative durations return at once.
func CoarseSleep(d time.Duration, cancel <-chan struct{}) (canceled bool) {
	if d <= 0 {
		select {
		case <-cancel:
			return true
		default:
			return false
		}
	}
	startClock()
	w := &sleeper{deadline: coarseNow.Load() + int64(d), done: make(chan struct{})}
	sleepersMu.Lock()
	sleepers = append(sleepers, w)
	sleepersMu.Unlock()
	select {
	case <-w.done:
		return false
	case <-cancel:
		// The daemon will fire and forget the stale entry at its
		// deadline; nothing to unregister eagerly.
		return true
	}
}

// pastDeadline reports whether the deadline (Unix nanos) has passed,
// consulting the precise clock only within clockSlack of the deadline.
func pastDeadline(deadline int64) bool {
	if coarseNow.Load() < deadline-clockSlack {
		return false
	}
	return time.Now().UnixNano() > deadline
}
