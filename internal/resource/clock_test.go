package resource

import (
	"sync"
	"testing"
	"time"
)

// CoarseSleep must actually wait out the requested duration (within the
// clock's tick resolution) and wake without a per-call timer.
func TestCoarseSleepElapses(t *testing.T) {
	const d = 20 * time.Millisecond
	start := time.Now()
	if canceled := CoarseSleep(d, nil); canceled {
		t.Fatal("CoarseSleep reported canceled with a nil cancel channel")
	}
	elapsed := time.Since(start)
	// The wheel rounds up to the next tick and the daemon may lag under
	// load; only the lower bound is a correctness property (a backoff
	// must not return early by more than one tick).
	if elapsed < d-2*clockTick {
		t.Fatalf("CoarseSleep(%v) returned after %v", d, elapsed)
	}
}

func TestCoarseSleepCancel(t *testing.T) {
	cancel := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- CoarseSleep(time.Hour, cancel) }()
	close(cancel)
	select {
	case canceled := <-done:
		if !canceled {
			t.Fatal("CoarseSleep returned uncanceled despite closed cancel channel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("CoarseSleep did not honor cancellation")
	}
}

func TestCoarseSleepZeroAndNegative(t *testing.T) {
	for _, d := range []time.Duration{0, -time.Second} {
		start := time.Now()
		if CoarseSleep(d, nil) {
			t.Fatalf("CoarseSleep(%v, nil) reported canceled", d)
		}
		if time.Since(start) > 100*time.Millisecond {
			t.Fatalf("CoarseSleep(%v) blocked", d)
		}
	}
	// Zero duration with an already-closed cancel prefers cancellation.
	closed := make(chan struct{})
	close(closed)
	if !CoarseSleep(0, closed) {
		t.Fatal("CoarseSleep(0, closed) should report canceled")
	}
}

// Many concurrent sleepers share the one clock daemon; all must wake.
func TestCoarseSleepConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			CoarseSleep(time.Duration(1+i%7)*time.Millisecond, nil)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent CoarseSleep callers did not all wake")
	}
}

func TestCoarseTimeTracksWallClock(t *testing.T) {
	got := CoarseTime()
	if skew := time.Since(got); skew < -clockSlackDur() || skew > clockSlackDur() {
		t.Fatalf("CoarseTime skew %v exceeds slack %v", skew, clockSlackDur())
	}
}

func clockSlackDur() time.Duration { return time.Duration(clockSlack) }
