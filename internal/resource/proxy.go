package resource

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/vm"
)

// Proxy errors, each corresponding to a protection property of §5.5.
var (
	// ErrRevoked — "a resource manager can invalidate any of its
	// currently active proxies at any time it wishes".
	ErrRevoked = errors.New("resource: proxy revoked")
	// ErrProxyExpired — "it is also possible to add an expiration time
	// to each proxy object".
	ErrProxyExpired = errors.New("resource: proxy expired")
	// ErrNotHolder — the identity-based capability check: "we can
	// limit its propagation ... by checking whether the invoker of
	// the proxy belongs to the protection domain to which it was
	// originally granted."
	ErrNotHolder = errors.New("resource: proxy held by foreign protection domain")
	// ErrMethodDisabled — Fig. 5's isEnabled throwing a security
	// exception.
	ErrMethodDisabled = errors.New("resource: method disabled on this proxy")
	// ErrUnknownMethod — the method does not exist on the resource.
	ErrUnknownMethod = errors.New("resource: unknown method")
	// ErrQuota — Telescript-style usage permits exhausted.
	ErrQuota = errors.New("resource: usage quota exhausted")
	// ErrNotController — caller may not invoke privileged control
	// methods ("the proxy would include access control information
	// about the protection domains that are permitted to execute this
	// privileged method").
	ErrNotController = errors.New("resource: caller may not control this proxy")
)

// Account is a snapshot of a proxy's accounting state (§5.5: "one can
// embed usage-metering and accounting mechanisms in a proxy").
type Account struct {
	Invocations uint64
	Charge      uint64
	Elapsed     time.Duration
	PerMethod   map[string]uint64 // invocation counts per method
}

// methodCounter is one method's invocation tally, padded out to its own
// cache line so concurrent callers of different methods never bounce a
// shared line between cores (per-method accounting sharding).
type methodCounter struct {
	n atomic.Uint64
	_ [56]byte
}

// methodEntry is the fast path's fused per-method record: the enable
// check, the dispatch target, the accounting cost and the per-method
// counter resolve in a single map lookup on an immutable snapshot.
type methodEntry struct {
	fn    Method
	cost  uint64
	count *methodCounter
}

// proxyState is the proxy's mutable control state, published as an
// immutable snapshot behind an atomic pointer: invocations load one
// snapshot and screen against it without locking; control operations
// (Revoke, Disable/EnableMethod, SetExpiry) build a new snapshot and
// swap it in. One snapshot per control mutation, zero per invocation.
type proxyState struct {
	// methods holds the currently *enabled* methods only; disabled or
	// unknown methods miss here and are told apart via the Def.
	methods map[string]*methodEntry
	// expiry is the proxy deadline in Unix nanoseconds; 0 = none.
	expiry int64
	// revoked marks the proxy invalid. Once a snapshot with revoked
	// set is published, no later invocation can pass the screen.
	revoked bool
	// epoch counts control-plane mutations (the revocation epoch):
	// it bumps on every snapshot swap and never goes backwards.
	epoch uint64
}

// Proxy is the per-agent protected interface to one resource: the
// runtime form of Figure 5's generated proxy class. It holds the only
// reference to the underlying resource methods; agents hold only the
// proxy.
//
// The proxy is split into an immutable grant (def, bound domain, quota
// bounds — fixed at GetProxy time) and the proxyState snapshot above.
// The invocation path is lock-free: one atomic snapshot load, one map
// lookup, atomic accounting. The control path pays for that: each
// mutation copies the state under p.ctl and publishes a fresh snapshot.
type Proxy struct {
	def   *Def
	bound domain.ID    // the protection domain the proxy was granted to
	quota policy.Quota // immutable usage bounds from the grant

	state atomic.Pointer[proxyState]
	ctl   sync.Mutex // serializes control-plane snapshot swaps

	// Accounting: atomic counters shared across snapshots, so control
	// mutations never reset usage. counters covers the resource's full
	// method set; snapshots reference these same counters.
	inv      atomic.Uint64
	charge   atomic.Uint64
	elapsed  atomic.Int64 // nanoseconds
	counters map[string]*methodCounter
}

func newProxy(d *Def, caller domain.ID, grant policy.Grant, expiry time.Time) *Proxy {
	startClock()
	p := &Proxy{
		def:      d,
		bound:    caller,
		quota:    grant.Quota,
		counters: make(map[string]*methodCounter, len(d.Methods)),
	}
	for m := range d.Methods {
		p.counters[m] = new(methodCounter)
	}
	st := &proxyState{methods: make(map[string]*methodEntry, len(grant.Methods))}
	for m, ok := range grant.Methods {
		if ok {
			if e := p.methodEntryFor(m); e != nil {
				st.methods[m] = e
			}
		}
	}
	if !expiry.IsZero() {
		st.expiry = expiry.UnixNano()
	}
	p.state.Store(st)
	return p
}

// methodEntryFor builds the fused fast-path record for one method of
// the resource; nil if the method does not exist.
func (p *Proxy) methodEntryFor(m string) *methodEntry {
	fn, ok := p.def.Methods[m]
	if !ok {
		return nil
	}
	cost := p.def.Costs[m]
	if cost == 0 {
		cost = DefaultCost
	}
	return &methodEntry{fn: fn, cost: cost, count: p.counters[m]}
}

// Identity passthrough: the proxy implements Resource so generic code
// can query it like the resource itself (Fig. 2: BufferProxy implements
// Buffer, which extends Resource).
func (p *Proxy) ResourceName() names.Name  { return p.def.ResourceName() }
func (p *Proxy) ResourceOwner() names.Name { return p.def.ResourceOwner() }
func (p *Proxy) Description() string       { return p.def.Description() }

// Path returns the resource's policy path.
func (p *Proxy) Path() string { return p.def.Path }

// MethodNames lists the resource's full method set (enabled or not).
func (p *Proxy) MethodNames() []string { return p.def.MethodNames() }

// BoundTo returns the protection domain the proxy was granted to.
func (p *Proxy) BoundTo() domain.ID { return p.bound }

// IsEnabled reports whether a method is currently enabled (Fig. 5's
// isEnabled check, exposed for tests and tools).
func (p *Proxy) IsEnabled(method string) bool {
	return p.state.Load().methods[method] != nil
}

// Epoch returns the proxy's revocation epoch: the number of control
// mutations (revocations, selective enables/disables, expiry changes)
// applied so far. A caller that remembers an epoch can detect that the
// grant changed underneath it without comparing individual fields.
func (p *Proxy) Epoch() uint64 { return p.state.Load().epoch }

// Invoke calls a resource method through the proxy's screen: the
// revocation, expiry, identity-based capability and enable-set checks
// read one immutable snapshot; quota and accounting use atomic
// counters. No lock is taken anywhere on this path.
func (p *Proxy) Invoke(caller domain.ID, method string, args []vm.Value) (vm.Value, error) {
	v, _, err := p.InvokeMetered(caller, method, args)
	return v, err
}

// InvokeMetered is Invoke plus the accounting charge the call incurred,
// so callers that settle usage records (the agent environment's invoke
// host call) don't need a full account snapshot around every call.
func (p *Proxy) InvokeMetered(caller domain.ID, method string, args []vm.Value) (vm.Value, uint64, error) {
	st := p.state.Load()
	e, err := p.screen(st, caller, method)
	if err != nil {
		return vm.Nil(), 0, err
	}
	// Charge before the call: a failing method still consumed the
	// resource's attention. Quota admission reserves first and rolls
	// back on overrun, so the counters stay exact; a denied call
	// leaves no trace.
	if n := p.inv.Add(1); p.quota.MaxInvocations != 0 && n > p.quota.MaxInvocations {
		p.inv.Add(^uint64(0))
		return vm.Nil(), 0, fmt.Errorf("%w: %d invocations", ErrQuota, p.quota.MaxInvocations)
	}
	if c := p.charge.Add(e.cost); p.quota.MaxCharge != 0 && c > p.quota.MaxCharge {
		p.charge.Add(^(e.cost - 1))
		p.inv.Add(^uint64(0))
		return vm.Nil(), 0, fmt.Errorf("%w: charge limit %d", ErrQuota, p.quota.MaxCharge)
	}
	e.count.n.Add(1)

	var start time.Time
	if p.def.MeterElapsed {
		start = time.Now()
	}
	v, err := e.fn(args)
	if p.def.MeterElapsed {
		p.elapsed.Add(int64(time.Since(start)))
	}
	if err == nil && p.def.OnUse != nil {
		p.def.OnUse(caller, method, e.cost)
	}
	return v, e.cost, err
}

// screen performs the snapshot-side access checks (revocation, expiry,
// holder identity, enable set) and resolves the method entry. It takes
// no locks; quota admission happens in InvokeMetered on the atomic
// counters.
func (p *Proxy) screen(st *proxyState, caller domain.ID, method string) (*methodEntry, error) {
	if st.revoked {
		return nil, ErrRevoked
	}
	if st.expiry != 0 && pastDeadline(st.expiry) {
		return nil, ErrProxyExpired
	}
	if caller != p.bound {
		return nil, fmt.Errorf("%w: bound to %s, invoked from %s", ErrNotHolder, p.bound, caller)
	}
	e := st.methods[method]
	if e == nil {
		if _, exists := p.def.Methods[method]; !exists {
			return nil, fmt.Errorf("%w: %q on %s", ErrUnknownMethod, method, p.def.Path)
		}
		return nil, fmt.Errorf("%w: %q on %s", ErrMethodDisabled, method, p.def.Path)
	}
	return e, nil
}

// AccountSnapshot returns the current accounting state.
func (p *Proxy) AccountSnapshot() Account {
	per := make(map[string]uint64, len(p.counters))
	for m, c := range p.counters {
		if n := c.n.Load(); n > 0 {
			per[m] = n
		}
	}
	return Account{
		Invocations: p.inv.Load(),
		Charge:      p.charge.Load(),
		Elapsed:     time.Duration(p.elapsed.Load()),
		PerMethod:   per,
	}
}

// --- Privileged control methods (§5.5) ---------------------------------
//
// "A resource manager can invalidate any of its currently active proxies
// at any time it wishes, or it can selectively revoke or add permissions
// for specific methods of a given proxy, by invoking a privileged method
// of the proxy object."
//
// Control operations pay the synchronization cost the invocation path
// no longer does: each one copies the current snapshot under p.ctl,
// applies its change, bumps the epoch and publishes the result. When
// the atomic store returns, every subsequent Invoke observes the new
// state — there is no window in which a post-Revoke invocation can pass
// the screen.

// mayControl reports whether caller may invoke control methods: the
// server domain always may; otherwise the caller must be listed in the
// resource's Controllers.
func (p *Proxy) mayControl(caller domain.ID) error {
	if caller == domain.ServerID {
		return nil
	}
	for _, c := range p.def.Controllers {
		if c == caller {
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrNotController, caller)
}

// mutate publishes a new control snapshot derived from the current one.
// The callback may replace ns.methods but must treat the map it was
// handed as shared and immutable.
func (p *Proxy) mutate(f func(ns *proxyState)) {
	p.ctl.Lock()
	defer p.ctl.Unlock()
	cur := p.state.Load()
	ns := &proxyState{
		methods: cur.methods,
		expiry:  cur.expiry,
		revoked: cur.revoked,
		epoch:   cur.epoch + 1,
	}
	f(ns)
	p.state.Store(ns)
}

// copyMethods clones an enable table for a mutation that edits it.
func copyMethods(m map[string]*methodEntry) map[string]*methodEntry {
	out := make(map[string]*methodEntry, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Revoke invalidates the proxy entirely. When Revoke returns, no new
// invocation can succeed; invocations that had already passed the
// screen may still complete (see docs/PROTOCOLS.md §8).
func (p *Proxy) Revoke(caller domain.ID) error {
	if err := p.mayControl(caller); err != nil {
		return err
	}
	p.mutate(func(ns *proxyState) { ns.revoked = true })
	return nil
}

// DisableMethod selectively revokes one method.
func (p *Proxy) DisableMethod(caller domain.ID, method string) error {
	if err := p.mayControl(caller); err != nil {
		return err
	}
	p.mutate(func(ns *proxyState) {
		ms := copyMethods(ns.methods)
		delete(ms, method)
		ns.methods = ms
	})
	return nil
}

// EnableMethod selectively adds a permission. The method must exist on
// the resource.
func (p *Proxy) EnableMethod(caller domain.ID, method string) error {
	if err := p.mayControl(caller); err != nil {
		return err
	}
	e := p.methodEntryFor(method)
	if e == nil {
		return fmt.Errorf("%w: %q", ErrUnknownMethod, method)
	}
	p.mutate(func(ns *proxyState) {
		ms := copyMethods(ns.methods)
		ms[method] = e
		ns.methods = ms
	})
	return nil
}

// SetExpiry adjusts the proxy's expiration time.
func (p *Proxy) SetExpiry(caller domain.ID, t time.Time) error {
	if err := p.mayControl(caller); err != nil {
		return err
	}
	p.mutate(func(ns *proxyState) {
		if t.IsZero() {
			ns.expiry = 0
		} else {
			ns.expiry = t.UnixNano()
		}
	})
	return nil
}

// Revoked reports whether the proxy has been invalidated.
func (p *Proxy) Revoked() bool {
	return p.state.Load().revoked
}
