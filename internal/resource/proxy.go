package resource

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/vm"
)

// Proxy errors, each corresponding to a protection property of §5.5.
var (
	// ErrRevoked — "a resource manager can invalidate any of its
	// currently active proxies at any time it wishes".
	ErrRevoked = errors.New("resource: proxy revoked")
	// ErrProxyExpired — "it is also possible to add an expiration time
	// to each proxy object".
	ErrProxyExpired = errors.New("resource: proxy expired")
	// ErrNotHolder — the identity-based capability check: "we can
	// limit its propagation ... by checking whether the invoker of
	// the proxy belongs to the protection domain to which it was
	// originally granted."
	ErrNotHolder = errors.New("resource: proxy held by foreign protection domain")
	// ErrMethodDisabled — Fig. 5's isEnabled throwing a security
	// exception.
	ErrMethodDisabled = errors.New("resource: method disabled on this proxy")
	// ErrUnknownMethod — the method does not exist on the resource.
	ErrUnknownMethod = errors.New("resource: unknown method")
	// ErrQuota — Telescript-style usage permits exhausted.
	ErrQuota = errors.New("resource: usage quota exhausted")
	// ErrNotController — caller may not invoke privileged control
	// methods ("the proxy would include access control information
	// about the protection domains that are permitted to execute this
	// privileged method").
	ErrNotController = errors.New("resource: caller may not control this proxy")
)

// Account is a snapshot of a proxy's accounting state (§5.5: "one can
// embed usage-metering and accounting mechanisms in a proxy").
type Account struct {
	Invocations uint64
	Charge      uint64
	Elapsed     time.Duration
	PerMethod   map[string]uint64 // invocation counts per method
}

// Proxy is the per-agent protected interface to one resource: the
// runtime form of Figure 5's generated proxy class. It holds the only
// reference to the underlying resource methods; agents hold only the
// proxy.
type Proxy struct {
	def       *Def
	bound     domain.ID // the protection domain the proxy was granted to
	mu        sync.Mutex
	enabled   map[string]bool
	expiry    time.Time
	revoked   bool
	quota     policy.Quota
	inv       uint64
	charge    uint64
	elapsed   time.Duration
	perMethod map[string]uint64
}

func newProxy(d *Def, caller domain.ID, grant policy.Grant, expiry time.Time) *Proxy {
	enabled := make(map[string]bool, len(grant.Methods))
	for m, ok := range grant.Methods {
		if ok {
			enabled[m] = true
		}
	}
	return &Proxy{
		def:       d,
		bound:     caller,
		enabled:   enabled,
		expiry:    expiry,
		quota:     grant.Quota,
		perMethod: make(map[string]uint64),
	}
}

// Identity passthrough: the proxy implements Resource so generic code
// can query it like the resource itself (Fig. 2: BufferProxy implements
// Buffer, which extends Resource).
func (p *Proxy) ResourceName() names.Name  { return p.def.ResourceName() }
func (p *Proxy) ResourceOwner() names.Name { return p.def.ResourceOwner() }
func (p *Proxy) Description() string       { return p.def.Description() }

// Path returns the resource's policy path.
func (p *Proxy) Path() string { return p.def.Path }

// MethodNames lists the resource's full method set (enabled or not).
func (p *Proxy) MethodNames() []string { return p.def.MethodNames() }

// BoundTo returns the protection domain the proxy was granted to.
func (p *Proxy) BoundTo() domain.ID { return p.bound }

// IsEnabled reports whether a method is currently enabled (Fig. 5's
// isEnabled check, exposed for tests and tools).
func (p *Proxy) IsEnabled(method string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.enabled[method]
}

// Invoke calls a resource method through the proxy's screen: revocation,
// expiry, identity-based capability, enable-set and quota checks happen
// under the lock; the underlying method runs outside it.
func (p *Proxy) Invoke(caller domain.ID, method string, args []vm.Value) (vm.Value, error) {
	cost := p.def.Costs[method]
	if cost == 0 {
		cost = DefaultCost
	}

	p.mu.Lock()
	if err := p.screen(caller, method, cost); err != nil {
		p.mu.Unlock()
		return vm.Nil(), err
	}
	// Charge before the call: a failing method still consumed the
	// resource's attention.
	p.inv++
	p.charge += cost
	p.perMethod[method]++
	meterElapsed := p.def.MeterElapsed
	fn := p.def.Methods[method]
	p.mu.Unlock()

	var start time.Time
	if meterElapsed {
		start = time.Now()
	}
	v, err := fn(args)
	if meterElapsed {
		d := time.Since(start)
		p.mu.Lock()
		p.elapsed += d
		p.mu.Unlock()
	}
	if err == nil && p.def.OnUse != nil {
		p.def.OnUse(caller, method, cost)
	}
	return v, err
}

// screen performs all access checks; the caller holds p.mu.
func (p *Proxy) screen(caller domain.ID, method string, cost uint64) error {
	if p.revoked {
		return ErrRevoked
	}
	if !p.expiry.IsZero() && time.Now().After(p.expiry) {
		return ErrProxyExpired
	}
	if caller != p.bound {
		return fmt.Errorf("%w: bound to %s, invoked from %s", ErrNotHolder, p.bound, caller)
	}
	if _, exists := p.def.Methods[method]; !exists {
		return fmt.Errorf("%w: %q on %s", ErrUnknownMethod, method, p.def.Path)
	}
	if !p.enabled[method] {
		return fmt.Errorf("%w: %q on %s", ErrMethodDisabled, method, p.def.Path)
	}
	if q := p.quota.MaxInvocations; q != 0 && p.inv >= q {
		return fmt.Errorf("%w: %d invocations", ErrQuota, q)
	}
	if q := p.quota.MaxCharge; q != 0 && p.charge+cost > q {
		return fmt.Errorf("%w: charge limit %d", ErrQuota, q)
	}
	return nil
}

// AccountSnapshot returns the current accounting state.
func (p *Proxy) AccountSnapshot() Account {
	p.mu.Lock()
	defer p.mu.Unlock()
	per := make(map[string]uint64, len(p.perMethod))
	for k, v := range p.perMethod {
		per[k] = v
	}
	return Account{Invocations: p.inv, Charge: p.charge, Elapsed: p.elapsed, PerMethod: per}
}

// --- Privileged control methods (§5.5) ---------------------------------
//
// "A resource manager can invalidate any of its currently active proxies
// at any time it wishes, or it can selectively revoke or add permissions
// for specific methods of a given proxy, by invoking a privileged method
// of the proxy object."

// mayControl reports whether caller may invoke control methods: the
// server domain always may; otherwise the caller must be listed in the
// resource's Controllers.
func (p *Proxy) mayControl(caller domain.ID) error {
	if caller == domain.ServerID {
		return nil
	}
	for _, c := range p.def.Controllers {
		if c == caller {
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrNotController, caller)
}

// Revoke invalidates the proxy entirely.
func (p *Proxy) Revoke(caller domain.ID) error {
	if err := p.mayControl(caller); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.revoked = true
	return nil
}

// DisableMethod selectively revokes one method.
func (p *Proxy) DisableMethod(caller domain.ID, method string) error {
	if err := p.mayControl(caller); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.enabled, method)
	return nil
}

// EnableMethod selectively adds a permission. The method must exist on
// the resource.
func (p *Proxy) EnableMethod(caller domain.ID, method string) error {
	if err := p.mayControl(caller); err != nil {
		return err
	}
	if _, ok := p.def.Methods[method]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMethod, method)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.enabled[method] = true
	return nil
}

// SetExpiry adjusts the proxy's expiration time.
func (p *Proxy) SetExpiry(caller domain.ID, t time.Time) error {
	if err := p.mayControl(caller); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.expiry = t
	return nil
}

// Revoked reports whether the proxy has been invalidated.
func (p *Proxy) Revoked() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.revoked
}
