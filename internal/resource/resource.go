// Package resource implements the paper's primary contribution: the
// proxy-based scheme for granting visiting agents protected access to
// host resources (§5.4–5.5, Figures 2, 3, 5, 7).
//
// The type structure mirrors the paper's Figure 2:
//
//	Resource (interface)        — generic queries: name, owner (Fig. 3)
//	ResourceImpl                — implements Resource (Fig. 3)
//	AccessProtocol (interface)  — GetProxy (Fig. 7)
//	Def                         — a concrete resource: ResourceImpl +
//	                              AccessProtocol + method table
//	Proxy                       — the per-agent protected interface
//	                              (Fig. 5), with isEnabled screening,
//	                              identity-based capability binding,
//	                              expiry, accounting and revocation
//
// Agents never receive references to the resource itself; GetProxy
// returns a Proxy whose restricted interface "ensures that the agent
// can only access the resource in a safe manner".
package resource

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/vm"
)

// Resource is the generic resource interface of Figure 3: "generic
// methods, common to all resources, e.g. queries for name/id,
// ownership, etc."
type Resource interface {
	ResourceName() names.Name
	ResourceOwner() names.Name
	Description() string
}

// ResourceImpl implements Resource; application resources embed it
// (Figure 3's ResourceImpl).
type ResourceImpl struct {
	Name  names.Name
	Owner names.Name
	Desc  string
}

// NewImpl builds the identity core of a resource. Application packages
// use this constructor instead of naming the ResourceImpl type
// directly — the concrete layout stays private to the resource/registry
// /server layers (enforced by the repolint resourceimpl rule), so it
// can grow fields without touching every resource definition in the
// tree.
func NewImpl(name, owner names.Name, desc string) ResourceImpl {
	return ResourceImpl{Name: name, Owner: owner, Desc: desc}
}

// ResourceName implements Resource.
func (r *ResourceImpl) ResourceName() names.Name { return r.Name }

// ResourceOwner implements Resource.
func (r *ResourceImpl) ResourceOwner() names.Name { return r.Owner }

// Description implements Resource.
func (r *ResourceImpl) Description() string { return r.Desc }

// Method is one callable operation of a resource. Arguments and results
// use VM values so resources are uniformly invocable from agent code;
// Go-native callers use the same signature.
type Method func(args []vm.Value) (vm.Value, error)

// Request carries the context GetProxy needs: the requesting agent's
// protection domain, its verified credentials (fetched from the domain
// database by the agent environment), the server policy to consult, and
// the evaluation time.
type Request struct {
	Caller domain.ID
	Creds  *cred.Credentials
	Policy *policy.Engine
	Now    time.Time
	// Cache, when set, memoizes the policy decision per
	// (credentials digest, resource path) under Stamp: a repeat binding
	// with an unchanged policy/registry configuration skips the rule
	// walk entirely. Stamp must carry the epochs of the configuration
	// the caller read — a stale stamp is a cache miss, never a wrong
	// grant.
	Cache *policy.DecisionCache
	Stamp policy.Stamp
	// CredKey is Creds.Digest(), when the caller has it precomputed
	// (the server computes it once per visit); zero means GetProxy
	// derives it on the spot.
	CredKey cred.Digest
}

// AccessProtocol is Figure 7: "the getProxy method returns a proxy
// object". Authorization is done by the resource, which embeds its
// security policy here.
type AccessProtocol interface {
	GetProxy(req Request) (*Proxy, error)
}

// Def is a concrete application-defined resource: identity, the method
// table, per-method accounting costs, and the policy-driven GetProxy.
// It is the runtime equivalent of writing BufferImpl implements Buffer,
// AccessProtocol (Figure 4) for resources invoked through the VM.
type Def struct {
	ResourceImpl
	// Path is the policy/rights path of the resource (the <resource>
	// part of "resource.method" rights).
	Path string
	// Methods is the full method table of the resource.
	Methods map[string]Method
	// Costs optionally assigns accounting charges per method
	// ("possibly assigning different costs to different methods",
	// §5.5); methods without an entry cost DefaultCost.
	Costs map[string]uint64
	// MeterElapsed additionally meters wall-clock execution time
	// ("or by metering the elapsed time for method execution").
	MeterElapsed bool
	// Controllers are the protection domains allowed to invoke the
	// proxy's privileged control methods (revocation etc.); the
	// server domain is always allowed.
	Controllers []domain.ID
	// OnUse, when set, is called after each successful proxy
	// invocation (the server wires this to the domain database's
	// usage records).
	OnUse func(caller domain.ID, method string, charge uint64)
}

// DefaultCost is charged for methods without an explicit cost.
const DefaultCost uint64 = 1

// ErrNoAccess is returned by GetProxy when policy yields an empty grant.
var ErrNoAccess = errors.New("resource: access denied by policy")

// MethodNames returns the method table's names (unsorted).
func (d *Def) MethodNames() []string {
	out := make([]string, 0, len(d.Methods))
	for m := range d.Methods {
		out = append(out, m)
	}
	return out
}

// GetProxy implements AccessProtocol. It consults the server policy
// with the caller's credentials and, "if permitted by the embedded
// security policy", creates an appropriately restricted proxy bound to
// the requesting agent's protection domain.
func (d *Def) GetProxy(req Request) (*Proxy, error) {
	if req.Creds == nil {
		return nil, fmt.Errorf("%w: no credentials", ErrNoAccess)
	}
	if req.Policy == nil {
		return nil, fmt.Errorf("%w: no policy engine", ErrNoAccess)
	}
	grant, cached := policy.Grant{}, false
	key := req.CredKey
	if req.Cache != nil {
		if key.IsZero() {
			key = req.Creds.Digest()
		}
		grant, cached = req.Cache.Get(key, d.Path, req.Stamp)
	}
	if !cached {
		grant = req.Policy.Decide(req.Creds, d.Path, d.MethodNames())
		if req.Cache != nil {
			req.Cache.Put(key, d.Path, req.Stamp, grant)
		}
	}
	if grant.Empty() {
		return nil, fmt.Errorf("%w: %s for %s", ErrNoAccess, d.Path, req.Creds.AgentName)
	}
	// The proxy never outlives the agent's credentials; policy TTL may
	// shorten further.
	expiry := req.Creds.EffectiveExpiry()
	if !grant.Expiry.IsZero() && grant.Expiry.Before(expiry) {
		expiry = grant.Expiry
	}
	return newProxy(d, req.Caller, grant, expiry), nil
}
