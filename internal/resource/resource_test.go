package resource

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/vm"
)

const (
	agentDom = domain.ID(2)
	otherDom = domain.ID(3)
	ownerDom = domain.ID(4) // resource owner's own agent domain
)

// fixture builds a counter resource with get/add/reset methods, an
// open policy unless rules are supplied, and credentials for one agent.
type fixture struct {
	def   *Def
	eng   *policy.Engine
	creds *cred.Credentials
	val   int64
	mu    sync.Mutex
	used  []string
}

func newFixture(t *testing.T, rights cred.RightSet, rules ...policy.Rule) *fixture {
	t.Helper()
	f := &fixture{eng: policy.NewEngine()}
	if len(rules) == 0 {
		rules = []policy.Rule{{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"}}}
	}
	f.eng.SetRules(rules)

	f.def = &Def{
		ResourceImpl: ResourceImpl{
			Name:  names.Resource("acme.com", "counter"),
			Owner: names.Principal("acme.com", "admin"),
			Desc:  "test counter",
		},
		Path: "counter",
		Methods: map[string]Method{
			"get": func(args []vm.Value) (vm.Value, error) {
				f.mu.Lock()
				defer f.mu.Unlock()
				return vm.I(f.val), nil
			},
			"add": func(args []vm.Value) (vm.Value, error) {
				f.mu.Lock()
				defer f.mu.Unlock()
				f.val += args[0].Int
				return vm.I(f.val), nil
			},
			"reset": func(args []vm.Value) (vm.Value, error) {
				f.mu.Lock()
				defer f.mu.Unlock()
				f.val = 0
				return vm.Nil(), nil
			},
		},
		Costs:       map[string]uint64{"add": 5},
		Controllers: []domain.ID{ownerDom},
		OnUse: func(caller domain.ID, method string, charge uint64) {
			f.mu.Lock()
			defer f.mu.Unlock()
			f.used = append(f.used, method)
		},
	}

	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	owner, err := keys.NewIdentity(reg, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cred.Issue(owner, names.Agent("umn.edu", "a1"),
		names.Principal("umn.edu", "app"), rights, time.Hour, "home")
	if err != nil {
		t.Fatal(err)
	}
	f.creds = &c
	return f
}

func (f *fixture) proxy(t *testing.T) *Proxy {
	t.Helper()
	p, err := f.def.GetProxy(Request{Caller: agentDom, Creds: f.creds, Policy: f.eng, Now: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGetProxyAndInvoke(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All))
	p := f.proxy(t)
	if v, err := p.Invoke(agentDom, "add", []vm.Value{vm.I(7)}); err != nil || !v.Equal(vm.I(7)) {
		t.Fatalf("%v %v", v, err)
	}
	if v, err := p.Invoke(agentDom, "get", nil); err != nil || !v.Equal(vm.I(7)) {
		t.Fatalf("%v %v", v, err)
	}
	if p.ResourceName() != f.def.Name || p.Path() != "counter" {
		t.Fatal("identity passthrough broken")
	}
}

func TestGetProxyDeniedByPolicy(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All),
		policy.Rule{Principal: names.Principal("umn.edu", "bob"), Resource: "counter", Methods: []string{"*"}})
	_, err := f.def.GetProxy(Request{Caller: agentDom, Creds: f.creds, Policy: f.eng})
	if !errors.Is(err, ErrNoAccess) {
		t.Fatalf("got %v", err)
	}
}

func TestGetProxyRequiresCredsAndPolicy(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All))
	if _, err := f.def.GetProxy(Request{Caller: agentDom, Policy: f.eng}); !errors.Is(err, ErrNoAccess) {
		t.Fatal("no creds accepted")
	}
	if _, err := f.def.GetProxy(Request{Caller: agentDom, Creds: f.creds}); !errors.Is(err, ErrNoAccess) {
		t.Fatal("no policy accepted")
	}
}

func TestDisabledMethodScreened(t *testing.T) {
	// Policy grants only get; add must raise the security exception.
	f := newFixture(t, cred.NewRightSet(cred.All),
		policy.Rule{AnyPrincipal: true, Resource: "counter", Methods: []string{"get"}})
	p := f.proxy(t)
	if _, err := p.Invoke(agentDom, "add", []vm.Value{vm.I(1)}); !errors.Is(err, ErrMethodDisabled) {
		t.Fatalf("got %v", err)
	}
	if !p.IsEnabled("get") || p.IsEnabled("add") {
		t.Fatal("enable set wrong")
	}
}

func TestOwnerRestrictionScreened(t *testing.T) {
	// Open policy, but the owner delegated only counter.get.
	f := newFixture(t, cred.NewRightSet("counter.get"))
	p := f.proxy(t)
	if _, err := p.Invoke(agentDom, "get", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(agentDom, "add", []vm.Value{vm.I(1)}); !errors.Is(err, ErrMethodDisabled) {
		t.Fatalf("got %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All))
	p := f.proxy(t)
	if _, err := p.Invoke(agentDom, "format_disk", nil); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("got %v", err)
	}
}

// TestC5_ProxyConfinement: a proxy leaked to another agent's domain is
// useless — the identity-based capability check rejects the invocation.
func TestC5_ProxyConfinement(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All))
	p := f.proxy(t)
	if _, err := p.Invoke(otherDom, "get", nil); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("got %v", err)
	}
	if p.BoundTo() != agentDom {
		t.Fatal("bound domain wrong")
	}
	// The rightful holder still works afterwards.
	if _, err := p.Invoke(agentDom, "get", nil); err != nil {
		t.Fatal(err)
	}
}

// TestC6 family: expiry and selective revocation.

func TestC6_ProxyExpiry(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All))
	p := f.proxy(t)
	if err := p.SetExpiry(domain.ServerID, time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(agentDom, "get", nil); !errors.Is(err, ErrProxyExpired) {
		t.Fatalf("got %v", err)
	}
}

func TestC6_RevokeAll(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All))
	p := f.proxy(t)
	if _, err := p.Invoke(agentDom, "get", nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Revoke(domain.ServerID); err != nil {
		t.Fatal(err)
	}
	if !p.Revoked() {
		t.Fatal("not marked revoked")
	}
	if _, err := p.Invoke(agentDom, "get", nil); !errors.Is(err, ErrRevoked) {
		t.Fatalf("got %v", err)
	}
}

func TestC6_SelectiveRevokeAndAdd(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All),
		policy.Rule{AnyPrincipal: true, Resource: "counter", Methods: []string{"get"}})
	p := f.proxy(t)
	// Resource owner (a controller) adds a permission at runtime.
	if err := p.EnableMethod(ownerDom, "add"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(agentDom, "add", []vm.Value{vm.I(2)}); err != nil {
		t.Fatal(err)
	}
	// ... and selectively revokes it again.
	if err := p.DisableMethod(ownerDom, "add"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(agentDom, "add", []vm.Value{vm.I(2)}); !errors.Is(err, ErrMethodDisabled) {
		t.Fatalf("got %v", err)
	}
	// get was never touched.
	if _, err := p.Invoke(agentDom, "get", nil); err != nil {
		t.Fatal(err)
	}
}

func TestControlACL(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All))
	p := f.proxy(t)
	// The agent holding the proxy is NOT a controller.
	if err := p.Revoke(agentDom); !errors.Is(err, ErrNotController) {
		t.Fatalf("holder revoked its own proxy: %v", err)
	}
	if err := p.EnableMethod(agentDom, "reset"); !errors.Is(err, ErrNotController) {
		t.Fatal("holder enabled a method")
	}
	if err := p.DisableMethod(otherDom, "get"); !errors.Is(err, ErrNotController) {
		t.Fatal("stranger disabled a method")
	}
	if err := p.SetExpiry(otherDom, time.Now()); !errors.Is(err, ErrNotController) {
		t.Fatal("stranger set expiry")
	}
	// Listed controller and server both may.
	if err := p.DisableMethod(ownerDom, "reset"); err != nil {
		t.Fatal(err)
	}
	if err := p.Revoke(domain.ServerID); err != nil {
		t.Fatal(err)
	}
}

func TestEnableUnknownMethodRejected(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All))
	p := f.proxy(t)
	if err := p.EnableMethod(domain.ServerID, "bogus"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("got %v", err)
	}
}

func TestAccountingExact(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All))
	p := f.proxy(t)
	for i := 0; i < 3; i++ {
		if _, err := p.Invoke(agentDom, "add", []vm.Value{vm.I(1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := p.Invoke(agentDom, "get", nil); err != nil {
			t.Fatal(err)
		}
	}
	a := p.AccountSnapshot()
	if a.Invocations != 5 {
		t.Fatalf("invocations = %d", a.Invocations)
	}
	// add costs 5 each, get costs DefaultCost(1) each: 3*5 + 2*1 = 17.
	if a.Charge != 17 {
		t.Fatalf("charge = %d", a.Charge)
	}
	if a.PerMethod["add"] != 3 || a.PerMethod["get"] != 2 {
		t.Fatalf("per-method = %v", a.PerMethod)
	}
	// OnUse hook observed every successful call.
	if len(f.used) != 5 {
		t.Fatalf("OnUse calls = %d", len(f.used))
	}
}

func TestElapsedMetering(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All))
	f.def.MeterElapsed = true
	f.def.Methods["sleepy"] = func([]vm.Value) (vm.Value, error) {
		time.Sleep(5 * time.Millisecond)
		return vm.Nil(), nil
	}
	p := f.proxy(t)
	if _, err := p.Invoke(agentDom, "sleepy", nil); err != nil {
		t.Fatal(err)
	}
	if a := p.AccountSnapshot(); a.Elapsed < 4*time.Millisecond {
		t.Fatalf("elapsed = %v", a.Elapsed)
	}
}

func TestQuotaInvocations(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All),
		policy.Rule{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"},
			Quota: policy.Quota{MaxInvocations: 2}})
	p := f.proxy(t)
	for i := 0; i < 2; i++ {
		if _, err := p.Invoke(agentDom, "get", nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Invoke(agentDom, "get", nil); !errors.Is(err, ErrQuota) {
		t.Fatalf("got %v", err)
	}
}

func TestQuotaCharge(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All),
		policy.Rule{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"},
			Quota: policy.Quota{MaxCharge: 11}})
	p := f.proxy(t)
	// add costs 5: two calls = 10 ≤ 11, third would reach 15 > 11.
	for i := 0; i < 2; i++ {
		if _, err := p.Invoke(agentDom, "add", []vm.Value{vm.I(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Invoke(agentDom, "add", []vm.Value{vm.I(1)}); !errors.Is(err, ErrQuota) {
		t.Fatalf("got %v", err)
	}
	// A cheap call still fits under the remaining charge budget.
	if _, err := p.Invoke(agentDom, "get", nil); err != nil {
		t.Fatal(err)
	}
}

func TestProxyExpiryBoundByCredentials(t *testing.T) {
	// Credentials that expire sooner than any policy TTL govern the
	// proxy's lifetime.
	f := newFixture(t, cred.NewRightSet(cred.All))
	f.creds.Expiry = time.Now().Add(-time.Second) // already expired
	p := f.proxy(t)
	if _, err := p.Invoke(agentDom, "get", nil); !errors.Is(err, ErrProxyExpired) {
		t.Fatalf("got %v", err)
	}
}

func TestSeparateProxiesPerAgent(t *testing.T) {
	// "A separate proxy is created for each agent" — state (quota,
	// accounting, revocation) must not be shared.
	f := newFixture(t, cred.NewRightSet(cred.All))
	p1 := f.proxy(t)
	p2, err := f.def.GetProxy(Request{Caller: otherDom, Creds: f.creds, Policy: f.eng})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Invoke(agentDom, "get", nil); err != nil {
		t.Fatal(err)
	}
	if err := p1.Revoke(domain.ServerID); err != nil {
		t.Fatal(err)
	}
	// p2 is unaffected by p1's revocation or accounting.
	if _, err := p2.Invoke(otherDom, "get", nil); err != nil {
		t.Fatal(err)
	}
	if a := p2.AccountSnapshot(); a.Invocations != 1 {
		t.Fatalf("p2 invocations = %d", a.Invocations)
	}
}

func TestConcurrentRevokeDuringInvocations(t *testing.T) {
	// Revocation racing live invocations must never panic, and once
	// Revoke returns, no new invocation may succeed.
	f := newFixture(t, cred.NewRightSet(cred.All))
	p := f.proxy(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_, _ = p.Invoke(agentDom, "get", nil)
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := p.Revoke(domain.ServerID); err != nil {
		t.Fatal(err)
	}
	// After Revoke returns, every new call must fail.
	if _, err := p.Invoke(agentDom, "get", nil); !errors.Is(err, ErrRevoked) {
		t.Fatalf("got %v", err)
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentInvocations(t *testing.T) {
	f := newFixture(t, cred.NewRightSet(cred.All))
	p := f.proxy(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := p.Invoke(agentDom, "add", []vm.Value{vm.I(1)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v, _ := p.Invoke(agentDom, "get", nil); !v.Equal(vm.I(800)) {
		t.Fatalf("counter = %v", v)
	}
	if a := p.AccountSnapshot(); a.Invocations != 801 {
		t.Fatalf("invocations = %d", a.Invocations)
	}
}
