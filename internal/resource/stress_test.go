package resource

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/vm"
)

// These tests exist for `go test -race -run Stress`: they hammer the
// lock-free invocation path while the control plane mutates snapshots
// underneath it, so the race detector sees every interleaving the
// design claims to tolerate, and they assert the §5.5 revocation
// guarantee — once Revoke has returned, no invocation may succeed.

// stressProxy builds an open-policy counter proxy for the stress tests.
func stressProxy(t *testing.T) (*fixture, *Proxy) {
	t.Helper()
	f := newFixture(t, cred.NewRightSet("*"))
	return f, f.proxy(t)
}

// TestStressInvokeDuringRevoke races invokers against one revoker and
// checks the hard cutoff: any invocation *started after* Revoke
// returned must fail with ErrRevoked.
func TestStressInvokeDuringRevoke(t *testing.T) {
	f, p := stressProxy(t)
	const workers = 8

	var revoked atomic.Bool // set immediately after Revoke returns
	var violations atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Sample the flag *before* the call: if revocation had
				// already returned by then, success is a violation.
				sawRevoked := revoked.Load()
				_, err := p.Invoke(agentDom, "get", nil)
				if sawRevoked && err == nil {
					violations.Add(1)
				}
				if err != nil && !errors.Is(err, ErrRevoked) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}

	time.Sleep(2 * time.Millisecond) // let invokers spin
	if err := p.Revoke(ownerDom); err != nil {
		t.Fatal(err)
	}
	revoked.Store(true)
	time.Sleep(2 * time.Millisecond) // invocations after the cutoff
	close(stop)
	wg.Wait()

	if n := violations.Load(); n > 0 {
		t.Fatalf("%d invocations succeeded after Revoke returned", n)
	}
	if _, err := p.Invoke(agentDom, "get", nil); !errors.Is(err, ErrRevoked) {
		t.Fatalf("want ErrRevoked, got %v", err)
	}
	_ = f
}

// TestStressInvokeDuringDisableMethod flips one method on and off while
// invokers hammer it; every outcome must be a clean success or
// ErrMethodDisabled, never a torn state.
func TestStressInvokeDuringDisableMethod(t *testing.T) {
	_, p := stressProxy(t)
	const workers = 4

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := p.Invoke(agentDom, "get", nil)
				if err != nil && !errors.Is(err, ErrMethodDisabled) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}

	for i := 0; i < 200; i++ {
		if err := p.DisableMethod(ownerDom, "get"); err != nil {
			t.Fatal(err)
		}
		if err := p.EnableMethod(ownerDom, "get"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// The control churn must not have disturbed other methods.
	if !p.IsEnabled("add") {
		t.Fatal("unrelated method lost its enable bit")
	}
	if p.Epoch() < 400 {
		t.Fatalf("epoch %d, want >= 400 control mutations", p.Epoch())
	}
}

// TestStressInvokeDuringSetExpiry moves the deadline back and forth
// (far future <-> already past) under invocation load; results must be
// success or ErrProxyExpired only.
func TestStressInvokeDuringSetExpiry(t *testing.T) {
	_, p := stressProxy(t)
	const workers = 4

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := p.Invoke(agentDom, "get", nil)
				if err != nil && !errors.Is(err, ErrProxyExpired) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}

	past := time.Now().Add(-time.Hour)
	future := time.Now().Add(time.Hour)
	for i := 0; i < 200; i++ {
		if err := p.SetExpiry(ownerDom, past); err != nil {
			t.Fatal(err)
		}
		if err := p.SetExpiry(ownerDom, future); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Deterministic endpoints: expired proxies reject, refreshed accept.
	if err := p.SetExpiry(ownerDom, past); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(agentDom, "get", nil); !errors.Is(err, ErrProxyExpired) {
		t.Fatalf("want ErrProxyExpired, got %v", err)
	}
	if err := p.SetExpiry(ownerDom, future); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(agentDom, "get", nil); err != nil {
		t.Fatalf("refreshed proxy rejected: %v", err)
	}
}

// TestStressAccountingExactUnderLoad checks that the atomic accounting
// counters lose nothing under concurrent invocation: the per-method
// shards, the invocation total and the charge total must all agree with
// the number of successful calls.
func TestStressAccountingExactUnderLoad(t *testing.T) {
	_, p := stressProxy(t)
	const workers = 8
	const perWorker = 500

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := p.Invoke(agentDom, "add", []vm.Value{vm.I(1)}); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	acct := p.AccountSnapshot()
	want := uint64(workers * perWorker)
	if acct.Invocations != want {
		t.Fatalf("invocations = %d, want %d", acct.Invocations, want)
	}
	if acct.PerMethod["add"] != want {
		t.Fatalf("per-method = %d, want %d", acct.PerMethod["add"], want)
	}
	if acct.Charge != want*5 { // fixture prices add at 5
		t.Fatalf("charge = %d, want %d", acct.Charge, want*5)
	}
}
