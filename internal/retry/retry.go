// Package retry provides the bounded-retry policy used everywhere a
// network operation can fail transiently. Mobile-agent platforms treat
// retry-with-backoff as table stakes for fault-tolerant itineraries
// (the paper's alternatives give the "try the next one" pattern; this
// package gives "try the same one again first"): a transient dial
// failure — a crashed-and-restarting server, a dropped connection, a
// healing partition — should cost a short backoff, not a whole
// itinerary leg.
//
// Errors are classified transient (worth retrying) or permanent (fail
// now). By default every error is transient unless wrapped with
// Permanent; callers install a Classify hook to pin down their own
// protocol-level permanent errors (rejection by the receiver, failed
// authentication, an unbound name).
package retry

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/resource"
)

// Default policy values, applied by (Policy).withDefaults for any field
// left zero.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 25 * time.Millisecond
	DefaultMaxDelay    = 2 * time.Second
	DefaultMultiplier  = 2.0
	DefaultJitter      = 0.2
	DefaultPerAttempt  = 5 * time.Second
)

// ErrCanceled is returned when the cancel channel closes while Do is
// backing off between attempts.
var ErrCanceled = errors.New("retry: canceled")

// Policy is a reusable retry configuration. The zero value is valid and
// means "the defaults above". Policies are plain values: copy freely.
type Policy struct {
	// MaxAttempts is the total number of tries (first attempt
	// included). 0 applies DefaultMaxAttempts; negative means exactly
	// one attempt (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// backoff multiplies by Multiplier up to MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter is the fractional randomization of each backoff: a delay
	// d becomes d * (1 ± Jitter*u) for uniform u in [0,1). Negative
	// disables jitter; 0 applies DefaultJitter.
	Jitter float64
	// PerAttempt is the deadline budget for one attempt. Do does not
	// enforce it (it cannot interrupt an opaque operation); callers
	// apply it to the underlying connection (conn.SetDeadline). 0
	// applies DefaultPerAttempt.
	PerAttempt time.Duration
	// Total bounds the whole Do call: once this much time has elapsed
	// no further attempt starts. 0 means no total deadline.
	Total time.Duration
	// Classify reports whether an error is transient (retryable).
	// nil applies the default: transient unless wrapped by Permanent.
	Classify func(error) bool
	// Sleep and Rand are test seams: the backoff sleeper (default
	// time.Sleep honoring cancel) and the jitter source (default a
	// shared seeded source). Rand must return values in [0,1).
	Sleep func(time.Duration)
	Rand  func() float64
	// Now is the clock used for the Total deadline (default time.Now).
	Now func() time.Time
	// OnRetry, when set, observes each backoff: the attempt that just
	// failed (1-based), its error, and the upcoming delay. Used by the
	// server to count retries and log attempts.
	OnRetry func(attempt int, err error, delay time.Duration)
}

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so the default classifier treats it as permanent.
// Wrapping nil returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// RetryAfterHint returns the receiver-supplied minimum wait carried by
// err (or anything it wraps), or zero. Errors advertise a hint by
// implementing `RetryAfterHint() time.Duration` — the admission layer's
// *ShedError does — and DoWithCancel stretches the computed backoff up
// to the hint: the receiver said when it can next conform, so retrying
// sooner only burns an attempt.
func RetryAfterHint(err error) time.Duration {
	var h interface{ RetryAfterHint() time.Duration }
	if errors.As(err, &h) {
		if d := h.RetryAfterHint(); d > 0 {
			return d
		}
	}
	return 0
}

// defaultRand is the shared jitter source; guarded because policies may
// be used from many dispatch goroutines at once.
var (
	defaultRandMu sync.Mutex
	defaultRand   = rand.New(rand.NewSource(1))
)

func sharedFloat() float64 {
	defaultRandMu.Lock()
	defer defaultRandMu.Unlock()
	return defaultRand.Float64()
}

// withDefaults resolves zero fields.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.MaxAttempts < 0 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Multiplier == 0 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Jitter == 0 {
		p.Jitter = DefaultJitter
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.PerAttempt == 0 {
		p.PerAttempt = DefaultPerAttempt
	}
	if p.Classify == nil {
		p.Classify = func(err error) bool { return !IsPermanent(err) }
	}
	if p.Rand == nil {
		p.Rand = sharedFloat
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	return p
}

// Delay returns the backoff after the given 1-based failed attempt,
// jittered. Exposed for tests and for callers that schedule their own
// sleeps (the server's dead-letter redelivery loop).
func (p Policy) Delay(attempt int) time.Duration {
	q := p.withDefaults()
	return q.delay(attempt)
}

func (p Policy) delay(attempt int) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		u := p.Rand() // [0,1)
		d *= 1 + p.Jitter*(2*u-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Do runs op until it succeeds, returns a permanent error, or the
// attempt/total budget is exhausted. The returned error is the last
// attempt's error.
func (p Policy) Do(op func() error) error {
	_, err := p.DoWithCancel(nil, op)
	return err
}

// DoWithCancel is Do with a cancellation channel (typically a server's
// quit channel): when it closes during a backoff, the loop stops with
// ErrCanceled. It also reports how many attempts ran, for callers that
// keep retry counters.
func (p Policy) DoWithCancel(cancel <-chan struct{}, op func() error) (attempts int, err error) {
	q := p.withDefaults()
	var deadline time.Time
	if q.Total > 0 {
		deadline = q.Now().Add(q.Total)
	}
	for attempts = 1; ; attempts++ {
		err = op()
		if err == nil || !q.Classify(err) {
			return attempts, err
		}
		if attempts >= q.MaxAttempts {
			return attempts, err
		}
		d := q.delay(attempts)
		// A receiver-supplied retry-after hint (load shedding) floors
		// the backoff: the receiver knows when the next attempt can
		// conform, and it may exceed MaxDelay deliberately.
		if h := RetryAfterHint(err); h > d {
			d = h
		}
		if !deadline.IsZero() && q.Now().Add(d).After(deadline) {
			return attempts, err
		}
		if q.OnRetry != nil {
			q.OnRetry(attempts, err, d)
		}
		if q.Sleep != nil {
			q.Sleep(d)
		} else if canceled := sleepOrCancel(d, cancel); canceled {
			return attempts, ErrCanceled
		}
		select {
		case <-cancel:
			return attempts, ErrCanceled
		default:
		}
	}
}

// sleepOrCancel waits out one backoff on the process-wide coarse clock
// (internal/resource/clock.go) instead of allocating a time.Timer per
// attempt: every retrying dispatcher in the process shares one ticker.
// Backoffs start at tens of milliseconds, so the clock's millisecond
// resolution is noise.
func sleepOrCancel(d time.Duration, cancel <-chan struct{}) bool {
	return resource.CoarseSleep(d, cancel)
}
