package retry

import (
	"errors"
	"testing"
	"time"
)

// noSleep makes tests instant and records requested backoffs.
func noSleep(delays *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *delays = append(*delays, d) }
}

func TestTransientSucceedsAfterRetries(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 5, Sleep: noSleep(&delays), Jitter: -1}
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if len(delays) != 2 {
		t.Fatalf("delays=%v", delays)
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 5, Sleep: noSleep(&delays)}
	calls := 0
	base := errors.New("rejected")
	err := p.Do(func() error {
		calls++
		return Permanent(base)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, base) || !IsPermanent(err) {
		t.Fatalf("err=%v", err)
	}
	if len(delays) != 0 {
		t.Fatalf("slept on a permanent error: %v", delays)
	}
}

func TestAttemptBudgetExhausted(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 3, Sleep: noSleep(&delays)}
	calls := 0
	fail := errors.New("still down")
	attempts, err := p.DoWithCancel(nil, func() error { calls++; return fail })
	if calls != 3 || attempts != 3 {
		t.Fatalf("calls=%d attempts=%d", calls, attempts)
	}
	if !errors.Is(err, fail) {
		t.Fatalf("err=%v", err)
	}
}

func TestExponentialBackoffCapped(t *testing.T) {
	p := Policy{
		BaseDelay:  10 * time.Millisecond,
		MaxDelay:   50 * time.Millisecond,
		Multiplier: 2,
		Jitter:     -1, // deterministic
	}
	want := []time.Duration{
		10 * time.Millisecond, // after attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		50 * time.Millisecond, // capped
		50 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestJitterBounded(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5,
		Rand: func() float64 { return 0 }} // u=0 -> d*(1-0.5)
	if got := p.Delay(1); got != 50*time.Millisecond {
		t.Fatalf("low jitter = %v", got)
	}
	p.Rand = func() float64 { return 0.999999 }
	got := p.Delay(1)
	if got < 140*time.Millisecond || got > 150*time.Millisecond {
		t.Fatalf("high jitter = %v", got)
	}
}

func TestTotalDeadlineStopsRetrying(t *testing.T) {
	now := time.Unix(0, 0)
	p := Policy{
		MaxAttempts: 100,
		BaseDelay:   time.Second,
		Multiplier:  1,
		Jitter:      -1,
		Total:       2500 * time.Millisecond,
		Now:         func() time.Time { return now },
		Sleep:       func(d time.Duration) { now = now.Add(d) },
	}
	calls := 0
	attempts, err := p.DoWithCancel(nil, func() error { calls++; return errors.New("down") })
	// t=0 attempt1, sleep 1s; t=1 attempt2, sleep 1s; t=2 attempt3;
	// next would finish at t=3 > 2.5 -> stop.
	if calls != 3 || attempts != 3 || err == nil {
		t.Fatalf("calls=%d attempts=%d err=%v", calls, attempts, err)
	}
}

func TestCancelDuringBackoff(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	p := Policy{MaxAttempts: 10, BaseDelay: time.Hour}
	calls := 0
	_, err := p.DoWithCancel(cancel, func() error { calls++; return errors.New("down") })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err=%v", err)
	}
	if calls != 1 {
		t.Fatalf("calls=%d", calls)
	}
}

func TestNegativeMaxAttemptsMeansOneTry(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: -1}
	_ = p.Do(func() error { calls++; return errors.New("down") })
	if calls != 1 {
		t.Fatalf("calls=%d", calls)
	}
}

func TestCustomClassifier(t *testing.T) {
	special := errors.New("special")
	p := Policy{
		MaxAttempts: 5,
		Sleep:       func(time.Duration) {},
		Classify:    func(err error) bool { return !errors.Is(err, special) },
	}
	calls := 0
	_ = p.Do(func() error { calls++; return special })
	if calls != 1 {
		t.Fatalf("classifier ignored: %d calls", calls)
	}
}

func TestOnRetryObserves(t *testing.T) {
	var seen []int
	p := Policy{MaxAttempts: 3, Sleep: func(time.Duration) {},
		OnRetry: func(attempt int, err error, d time.Duration) { seen = append(seen, attempt) }}
	_ = p.Do(func() error { return errors.New("down") })
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("seen=%v", seen)
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	if IsPermanent(errors.New("x")) {
		t.Fatal("unwrapped error reported permanent")
	}
}
