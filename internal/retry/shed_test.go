package retry

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/admission"
)

// Shed-path classification (PROTOCOLS.md §3.3): a load-shedding
// rejection must be retried — unlike transfer.ErrRejected it reports a
// transient condition at the receiver — and its retry-after hint must
// floor the backoff.

func TestShedClassification(t *testing.T) {
	defaultClassify := Policy{}.withDefaults().Classify
	cases := []struct {
		name      string
		err       error
		transient bool
		hint      time.Duration
	}{
		{
			name:      "shed with retry-after hint",
			err:       &admission.ShedError{Tier: "bronze", Cause: "rate", RetryAfter: 80 * time.Millisecond},
			transient: true,
			hint:      80 * time.Millisecond,
		},
		{
			name:      "shed without hint",
			err:       &admission.ShedError{Tier: "bronze", Cause: "concurrency"},
			transient: true,
			hint:      0,
		},
		{
			name:      "bare ErrShed sentinel",
			err:       admission.ErrShed,
			transient: true,
			hint:      0,
		},
		{
			name:      "wrapped shed keeps hint and class",
			err:       fmt.Errorf("dispatch: %w", &admission.ShedError{RetryAfter: time.Second}),
			transient: true,
			hint:      time.Second,
		},
		{
			name:      "permanent-marked error stays permanent",
			err:       Permanent(errors.New("rejected")),
			transient: false,
			hint:      0,
		},
		{
			name:      "plain error is transient with no hint",
			err:       errors.New("connection reset"),
			transient: true,
			hint:      0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := defaultClassify(tc.err); got != tc.transient {
				t.Fatalf("default classifier: transient=%v, want %v", got, tc.transient)
			}
			if got := RetryAfterHint(tc.err); got != tc.hint {
				t.Fatalf("hint = %v, want %v", got, tc.hint)
			}
		})
	}
}

func TestShedHintFloorsBackoff(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		Jitter:      -1,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	_, err := p.DoWithCancel(nil, func() error {
		calls++
		return &admission.ShedError{RetryAfter: 250 * time.Millisecond}
	})
	if !errors.Is(err, admission.ErrShed) {
		t.Fatalf("final error = %v", err)
	}
	if calls != 3 {
		t.Fatalf("attempts = %d, want 3", calls)
	}
	for i, d := range slept {
		// The hint (250ms) exceeds MaxDelay (2ms): it must win anyway —
		// the receiver said when the next attempt can conform.
		if d != 250*time.Millisecond {
			t.Fatalf("backoff %d = %v, want the 250ms hint", i, d)
		}
	}
}

func TestBackoffWinsOverSmallerHint(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 2,
		BaseDelay:   100 * time.Millisecond,
		Jitter:      -1,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	_, _ = p.DoWithCancel(nil, func() error {
		return &admission.ShedError{RetryAfter: time.Millisecond}
	})
	if len(slept) != 1 || slept[0] != 100*time.Millisecond {
		t.Fatalf("slept = %v, want the 100ms computed backoff", slept)
	}
}
