// Package rpcbase implements the communication-paradigm comparators
// for experiment C3. The paper's introduction (citing Harrison et al.
// and Stamos & Gifford's Remote Evaluation) claims mobile agents
// "reduce communication between the client and the server" by "moving
// processing functions close to where the information is stored", with
// REV as the midpoint. This package implements all three paradigms over
// the same record-filtering workload:
//
//   - RPC: the client pulls every record from each server and filters
//     locally ("data is transmitted between the client and server in
//     both directions").
//   - REV: the client ships a filter *program* (ASL source) to each
//     server; the server compiles, verifies and runs it in a sandboxed
//     VM and returns only the matches ("code is sent from the client to
//     the server, and data is returned").
//   - Agent: the tour implemented by the full platform (an ASL agent
//     visiting record-store resources), measured separately in the
//     bench harness; this package provides its analytic cost model.
//
// Live servers run over any net dialer (netsim in the benches) so
// bytes-on-wire are measured, not assumed; analytic Cost functions
// extrapolate the sweep tables.
package rpcbase

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/asl"
	"repro/internal/netsim"
	"repro/internal/vm"
)

// Record is one stored datum: a score used for filtering and an opaque
// payload that dominates transfer size.
type Record struct {
	ID      int
	Score   int64
	Payload []byte
}

// Store is one server's dataset.
type Store struct {
	Records []Record
}

// NewStore builds a deterministic dataset: n records of payloadSize
// bytes whose scores cycle 0..99, so a threshold t yields selectivity
// (100-t)/100 exactly.
func NewStore(n, payloadSize int) *Store {
	st := &Store{Records: make([]Record, n)}
	payload := bytes.Repeat([]byte{0xAB}, payloadSize)
	for i := range st.Records {
		st.Records[i] = Record{ID: i, Score: int64(i % 100), Payload: payload}
	}
	return st
}

// Matching returns the records with Score > threshold.
func (s *Store) Matching(threshold int64) []Record {
	var out []Record
	for _, r := range s.Records {
		if r.Score > threshold {
			out = append(out, r)
		}
	}
	return out
}

// --- wire protocol -------------------------------------------------------

// request/response are the RPC wire messages. Op "fetch_all" returns
// every record; op "rev" carries ASL source to run server-side.
type request struct {
	Op        string
	Threshold int64
	Source    string // REV program, for op "rev"
}

type response struct {
	Records []Record
	Err     string
}

func writeMsg(w io.Writer, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(buf.Len()))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func readMsg(r io.Reader, v any) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return err
	}
	data := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(r, data); err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// revFuel bounds REV program execution — visiting code is untrusted
// here exactly as in the agent system.
const revFuel = 50_000_000

// Server serves the record store over a listener until the listener
// closes. It answers both RPC and REV requests.
type Server struct {
	Store *Store
}

// Serve accepts connections until the listener fails.
func (s *Server) Serve(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		var req request
		if err := readMsg(conn, &req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := writeMsg(conn, resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req request) response {
	switch req.Op {
	case "fetch_all":
		return response{Records: s.Store.Records}
	case "rev":
		recs, err := s.runREV(req.Source, req.Threshold)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Records: recs}
	default:
		return response{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// runREV compiles and verifies the client's program, then runs its
// filter function once per record in a sandboxed VM. The program
// receives (score) and returns a truthy value to keep the record —
// genuine remote evaluation of untrusted code.
func (s *Server) runREV(source string, threshold int64) ([]Record, error) {
	mod, err := asl.Compile(source)
	if err != nil {
		return nil, fmt.Errorf("rev: %w", err)
	}
	_, f := mod.Fn("filter")
	if f == nil || f.NParams != 2 {
		return nil, errors.New("rev: program must define filter(score, threshold)")
	}
	env := vm.NewEnv()
	env.Meter = vm.NewMeter(revFuel)
	vm.InstallBuiltins(env)
	var out []Record
	for _, r := range s.Store.Records {
		v, err := vm.Run(env, mod, "filter", vm.I(r.Score), vm.I(threshold))
		if err != nil {
			return nil, fmt.Errorf("rev: %w", err)
		}
		if v.Truthy() {
			out = append(out, r)
		}
	}
	return out, nil
}

// --- clients --------------------------------------------------------------

// Dialer abstracts the transport (netsim.Network.Dial or net.Dial).
type Dialer func(addr string) (net.Conn, error)

// RPCClient pulls all records from every server and filters locally.
// Returns the matching records from all servers.
func RPCClient(dial Dialer, addrs []string, threshold int64) ([]Record, error) {
	var out []Record
	for _, addr := range addrs {
		conn, err := dial(addr)
		if err != nil {
			return nil, err
		}
		err = func() error {
			defer conn.Close()
			if err := writeMsg(conn, request{Op: "fetch_all"}); err != nil {
				return err
			}
			var resp response
			if err := readMsg(conn, &resp); err != nil {
				return err
			}
			if resp.Err != "" {
				return errors.New(resp.Err)
			}
			for _, r := range resp.Records {
				if r.Score > threshold {
					out = append(out, r)
				}
			}
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// REVFilterSource is the program REVClient ships; its size is the
// "code" term in the REV cost equation.
const REVFilterSource = `module revfilter
func filter(score, threshold) {
  return score > threshold
}`

// REVClient sends the filter program to every server and collects the
// matches.
func REVClient(dial Dialer, addrs []string, threshold int64) ([]Record, error) {
	var out []Record
	for _, addr := range addrs {
		conn, err := dial(addr)
		if err != nil {
			return nil, err
		}
		err = func() error {
			defer conn.Close()
			if err := writeMsg(conn, request{Op: "rev", Threshold: threshold, Source: REVFilterSource}); err != nil {
				return err
			}
			var resp response
			if err := readMsg(conn, &resp); err != nil {
				return err
			}
			if resp.Err != "" {
				return errors.New(resp.Err)
			}
			out = append(out, resp.Records...)
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- analytic cost models --------------------------------------------------

// Workload parameterizes the C3 sweep.
type Workload struct {
	Servers     int
	Records     int     // per server
	RecSize     int     // payload bytes per record
	Selectivity float64 // fraction of records matching
	// CodeSize approximates the REV program / agent code+state size
	// on the wire.
	CodeSize int
	// HeaderSize approximates per-message framing overhead.
	HeaderSize int
}

// Cost is a paradigm's modeled totals.
type Cost struct {
	Paradigm string
	Bytes    uint64
	Time     time.Duration
}

// matchBytes is the wire size of the matching records at one server.
func (w Workload) matchBytes() uint64 {
	return uint64(w.Selectivity * float64(w.Records) * float64(w.RecSize))
}

// RPCCost: per server, a small request and a response carrying all N
// records.
func RPCCost(w Workload, m netsim.Model) Cost {
	perServer := uint64(w.HeaderSize) + uint64(w.Records*w.RecSize) + uint64(w.HeaderSize)
	var t time.Duration
	for i := 0; i < w.Servers; i++ {
		t += m.RoundTrip(uint64(w.HeaderSize), uint64(w.Records*w.RecSize)+uint64(w.HeaderSize))
	}
	return Cost{Paradigm: "rpc", Bytes: perServer * uint64(w.Servers), Time: t}
}

// REVCost: per server, the program travels out and the matches travel
// back.
func REVCost(w Workload, m netsim.Model) Cost {
	perServer := uint64(w.HeaderSize+w.CodeSize) + w.matchBytes() + uint64(w.HeaderSize)
	var t time.Duration
	for i := 0; i < w.Servers; i++ {
		t += m.RoundTrip(uint64(w.HeaderSize+w.CodeSize), w.matchBytes()+uint64(w.HeaderSize))
	}
	return Cost{Paradigm: "rev", Bytes: perServer * uint64(w.Servers), Time: t}
}

// AgentCost: the agent hops server to server carrying its code plus the
// results accumulated so far, then returns home — M+1 one-way legs with
// a linearly growing payload, and no client round trips at all (the
// asynchrony advantage: the client is free after launch).
func AgentCost(w Workload, m netsim.Model) Cost {
	var total uint64
	var t time.Duration
	for leg := 0; leg <= w.Servers; leg++ {
		legBytes := uint64(w.CodeSize+w.HeaderSize) + uint64(leg)*w.matchBytes()
		total += legBytes
		t += m.TransferTime(legBytes)
	}
	return Cost{Paradigm: "agent", Bytes: total, Time: t}
}
