package rpcbase

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// startServers spins up n record-store servers on a fresh simulated
// network and returns the network and their addresses.
func startServers(t *testing.T, n, records, payload int) (*netsim.Network, []string) {
	t.Helper()
	nw := netsim.NewNetwork()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addr := "store" + string(rune('a'+i)) + ":1"
		l, err := nw.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = l.Close() })
		srv := &Server{Store: NewStore(records, payload)}
		go srv.Serve(l)
		addrs[i] = addr
	}
	return nw, addrs
}

func TestStoreSelectivityExact(t *testing.T) {
	st := NewStore(1000, 8)
	// Scores cycle 0..99; threshold 89 keeps scores 90..99 = 10%.
	if got := len(st.Matching(89)); got != 100 {
		t.Fatalf("matching = %d, want 100", got)
	}
	if got := len(st.Matching(-1)); got != 1000 {
		t.Fatalf("matching = %d, want all", got)
	}
	if got := len(st.Matching(99)); got != 0 {
		t.Fatalf("matching = %d, want none", got)
	}
}

func TestRPCClientFiltersCorrectly(t *testing.T) {
	nw, addrs := startServers(t, 2, 200, 16)
	recs, err := RPCClient(nw.Dial, addrs, 89)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*20 {
		t.Fatalf("got %d records, want 40", len(recs))
	}
	for _, r := range recs {
		if r.Score <= 89 {
			t.Fatalf("non-matching record leaked: %+v", r.Score)
		}
	}
}

func TestREVClientMatchesRPC(t *testing.T) {
	nw, addrs := startServers(t, 2, 200, 16)
	rpcRecs, err := RPCClient(nw.Dial, addrs, 50)
	if err != nil {
		t.Fatal(err)
	}
	revRecs, err := REVClient(nw.Dial, addrs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rpcRecs) != len(revRecs) {
		t.Fatalf("rpc %d vs rev %d records", len(rpcRecs), len(revRecs))
	}
}

func TestREVRejectsBadPrograms(t *testing.T) {
	srv := &Server{Store: NewStore(10, 4)}
	if resp := srv.handle(request{Op: "rev", Source: "not a program"}); resp.Err == "" {
		t.Fatal("malformed REV program accepted")
	}
	if resp := srv.handle(request{Op: "rev", Source: "module m\nfunc other() { return 1 }"}); resp.Err == "" {
		t.Fatal("program without filter accepted")
	}
	// A REV program that loops forever is stopped by the meter.
	loop := "module m\nfunc filter(s, t) { while true { } }"
	if resp := srv.handle(request{Op: "rev", Source: loop, Threshold: 0}); resp.Err == "" {
		t.Fatal("runaway REV program not stopped")
	}
}

func TestUnknownOp(t *testing.T) {
	srv := &Server{Store: NewStore(1, 1)}
	if resp := srv.handle(request{Op: "drop_tables"}); resp.Err == "" {
		t.Fatal("unknown op accepted")
	}
}

// TestC3_BytesOrderingLowSelectivity: with few matches, REV and (by
// model) the agent move far fewer bytes than RPC — the paper's claim.
func TestC3_BytesOrderingLowSelectivity(t *testing.T) {
	nw, addrs := startServers(t, 3, 500, 64)

	nw.ResetCounters()
	if _, err := RPCClient(nw.Dial, addrs, 89); err != nil { // 10% match
		t.Fatal(err)
	}
	rpcBytes := nw.BytesSent()

	nw.ResetCounters()
	if _, err := REVClient(nw.Dial, addrs, 89); err != nil {
		t.Fatal(err)
	}
	revBytes := nw.BytesSent()

	if revBytes >= rpcBytes {
		t.Fatalf("REV moved %d bytes, RPC %d — expected REV < RPC at 10%% selectivity",
			revBytes, rpcBytes)
	}
	if revBytes*2 > rpcBytes {
		t.Logf("note: REV %d vs RPC %d (less than 2x win)", revBytes, rpcBytes)
	}
}

// TestC3_BytesOrderingFullSelectivity: when everything matches, shipping
// code buys nothing — RPC is no worse (the crossover's far side).
func TestC3_BytesOrderingFullSelectivity(t *testing.T) {
	nw, addrs := startServers(t, 2, 300, 64)

	nw.ResetCounters()
	if _, err := RPCClient(nw.Dial, addrs, -1); err != nil { // 100% match
		t.Fatal(err)
	}
	rpcBytes := nw.BytesSent()

	nw.ResetCounters()
	if _, err := REVClient(nw.Dial, addrs, -1); err != nil {
		t.Fatal(err)
	}
	revBytes := nw.BytesSent()

	if revBytes < rpcBytes {
		t.Fatalf("REV (%d) should not beat RPC (%d) at 100%% selectivity", revBytes, rpcBytes)
	}
}

func TestAnalyticModelsOrdering(t *testing.T) {
	m := netsim.Model{Latency: 20 * time.Millisecond, Bandwidth: 1 << 20}
	w := Workload{Servers: 5, Records: 1000, RecSize: 256,
		Selectivity: 0.05, CodeSize: 4096, HeaderSize: 64}
	rpc, rev, ag := RPCCost(w, m), REVCost(w, m), AgentCost(w, m)
	// The paper's claim is against RPC: both code-shipping paradigms
	// move far fewer bytes at low selectivity. (The agent does NOT
	// necessarily beat REV on bytes — it drags accumulated results
	// across every remaining hop; its edge over REV is asynchrony.)
	if !(ag.Bytes < rpc.Bytes && rev.Bytes < rpc.Bytes) {
		t.Fatalf("bytes ordering: agent=%d rev=%d rpc=%d", ag.Bytes, rev.Bytes, rpc.Bytes)
	}
	if !(ag.Time < rpc.Time) {
		t.Fatalf("time ordering: agent=%v rpc=%v", ag.Time, rpc.Time)
	}

	// High selectivity reverses the outcome: the agent drags all the
	// accumulated results across every remaining hop.
	w.Selectivity = 1.0
	rpc, ag = RPCCost(w, m), AgentCost(w, m)
	if ag.Bytes < rpc.Bytes {
		t.Fatalf("at 100%% selectivity agent (%d) should lose to rpc (%d)", ag.Bytes, rpc.Bytes)
	}
}

func TestAnalyticCrossoverExists(t *testing.T) {
	// Somewhere between 0 and 1 selectivity the winner flips; find it.
	m := netsim.Model{Latency: 10 * time.Millisecond, Bandwidth: 1 << 20}
	w := Workload{Servers: 4, Records: 2000, RecSize: 128, CodeSize: 4096, HeaderSize: 64}
	agentWinsAt0 := false
	rpcWinsAt1 := false
	w.Selectivity = 0.01
	if AgentCost(w, m).Bytes < RPCCost(w, m).Bytes {
		agentWinsAt0 = true
	}
	w.Selectivity = 1.0
	if RPCCost(w, m).Bytes < AgentCost(w, m).Bytes {
		rpcWinsAt1 = true
	}
	if !agentWinsAt0 || !rpcWinsAt1 {
		t.Fatalf("no crossover: agentWins@0.01=%v rpcWins@1=%v", agentWinsAt0, rpcWinsAt1)
	}
}
