// Package sandbox implements the security manager: the reference
// monitor through which every security-sensitive ("privileged")
// operation is screened (§3.2: "the security manager acts as a
// reference monitor"). Following the paper's design decision, the
// security manager provides *generic protection of system resources*
// only; application-level resources are protected by proxies
// (internal/resource), keeping the monitor small (§5.4: "our approach
// is to limit the use of the security manager to providing generic
// protection of system resources").
package sandbox

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/domain"
)

// Op names a privileged operation class. These are the system-level
// operations the paper's security manager mediates (thread-group
// manipulation, domain-database update, registry modification, network
// and dispatch operations).
type Op string

const (
	// OpSpawnActivity is thread creation; agent domains may spawn
	// activities only inside their own domain ("a thread executing in
	// an agent's domain is not allowed to create a new thread in a
	// different thread group", §5.3).
	OpSpawnActivity Op = "activity.spawn"
	// OpDomainDBUpdate guards domain database mutation.
	OpDomainDBUpdate Op = "domaindb.update"
	// OpRegistryRegister / OpRegistryModify guard the resource
	// registry (ownership information "is used to prevent any
	// unauthorized modifications to the registry entries", §5.5).
	OpRegistryRegister Op = "registry.register"
	OpRegistryModify   Op = "registry.modify"
	// OpAgentDispatch guards sending an agent to another server.
	OpAgentDispatch Op = "agent.dispatch"
	// OpAgentControl guards control commands to other agents
	// (suspend/kill), allowed only to the owner's activities or the
	// server.
	OpAgentControl Op = "agent.control"
	// OpNetConnect guards raw network access (applet-style: agents
	// do not get raw sockets; all communication goes through server
	// primitives).
	OpNetConnect Op = "net.connect"
	// OpProxyControl guards privileged proxy-control methods
	// (revoke/enable/disable, §5.5).
	OpProxyControl Op = "proxy.control"
	// OpInstallSecurityManager mirrors Java's rule that "once this is
	// done, the security manager cannot be replaced or overridden".
	OpInstallSecurityManager Op = "secmgr.install"
)

// Target optionally narrows an operation (e.g. which domain a spawned
// activity would join, which registry entry is modified).
type Target struct {
	Domain domain.ID
	Name   string
}

// ErrDenied is wrapped by all denial errors.
var ErrDenied = errors.New("sandbox: operation denied")

// Decision records one mediation event for the audit log.
type Decision struct {
	Time    time.Time
	Caller  domain.ID
	Op      Op
	Target  Target
	Allowed bool
}

// Manager is the reference monitor. The default policy encodes the
// paper's rules; SetHook allows a server to tighten (never loosen)
// decisions for specific operations.
type Manager struct {
	mu       sync.Mutex
	sealed   bool
	hooks    map[Op]func(caller domain.ID, t Target) error
	audit    []Decision
	auditCap int
	denies   uint64
	allows   uint64
}

// New returns a Manager with the default policy and an audit ring of
// the given capacity (0 disables auditing).
func New(auditCap int) *Manager {
	return &Manager{
		hooks:    make(map[Op]func(domain.ID, Target) error),
		auditCap: auditCap,
	}
}

// Seal makes the manager immutable, mirroring Java's install-once rule.
// After Seal, SetHook fails.
func (m *Manager) Seal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sealed = true
}

// SetHook adds an extra check for op, run after the built-in policy
// allows the operation. Hooks can only further restrict.
func (m *Manager) SetHook(op Op, hook func(caller domain.ID, t Target) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sealed {
		return fmt.Errorf("%w: security manager is sealed", ErrDenied)
	}
	m.hooks[op] = hook
	return nil
}

// Check mediates one privileged operation. It returns nil when allowed
// and an ErrDenied-wrapping error otherwise.
func (m *Manager) Check(caller domain.ID, op Op, t Target) error {
	err := m.builtin(caller, op, t)
	if err == nil {
		m.mu.Lock()
		hook := m.hooks[op]
		m.mu.Unlock()
		if hook != nil {
			err = hook(caller, t)
		}
	}
	m.record(caller, op, t, err == nil)
	return err
}

// builtin is the paper's default policy.
func (m *Manager) builtin(caller domain.ID, op Op, t Target) error {
	if caller == domain.NoDomain {
		return fmt.Errorf("%w: no domain", ErrDenied)
	}
	server := caller == domain.ServerID
	switch op {
	case OpSpawnActivity:
		// Server activities may spawn anywhere; agents only within
		// their own domain.
		if server || t.Domain == caller {
			return nil
		}
		return fmt.Errorf("%w: %s may not spawn activity in %s", ErrDenied, caller, t.Domain)
	case OpDomainDBUpdate, OpAgentDispatch, OpInstallSecurityManager:
		if server {
			return nil
		}
		return fmt.Errorf("%w: %s requires server domain for %s", ErrDenied, caller, op)
	case OpRegistryRegister:
		// Any domain may register resources it owns; the registry
		// itself checks ownership on modification.
		return nil
	case OpRegistryModify:
		if server {
			return nil
		}
		// Non-server modification is resolved by the registry's
		// ownership check; the monitor only blocks domainless calls
		// (already handled) and lets the hook tighten if desired.
		return nil
	case OpAgentControl:
		// Server always; agents only against their own children —
		// expressed through the target domain equality or a hook
		// installed by the server with ownership knowledge.
		if server || t.Domain == caller {
			return nil
		}
		return fmt.Errorf("%w: %s may not control %s", ErrDenied, caller, t.Domain)
	case OpNetConnect:
		if server {
			return nil
		}
		return fmt.Errorf("%w: agents have no raw network access", ErrDenied)
	case OpProxyControl:
		// Proxy control methods carry their own ACLs (§5.5); the
		// monitor requires only a real domain, which we have.
		return nil
	default:
		return fmt.Errorf("%w: unknown operation %q", ErrDenied, op)
	}
}

// record appends to the bounded audit log.
func (m *Manager) record(caller domain.ID, op Op, t Target, allowed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if allowed {
		m.allows++
	} else {
		m.denies++
	}
	if m.auditCap == 0 {
		return
	}
	if len(m.audit) >= m.auditCap {
		copy(m.audit, m.audit[1:])
		m.audit = m.audit[:len(m.audit)-1]
	}
	m.audit = append(m.audit, Decision{
		Time: time.Now(), Caller: caller, Op: op, Target: t, Allowed: allowed,
	})
}

// Audit returns a copy of the audit log, oldest first.
func (m *Manager) Audit() []Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Decision(nil), m.audit...)
}

// Stats returns cumulative allow/deny counters.
func (m *Manager) Stats() (allows, denies uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allows, m.denies
}
