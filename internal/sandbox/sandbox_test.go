package sandbox

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/domain"
)

const (
	agentA = domain.ID(2)
	agentB = domain.ID(3)
)

func TestServerAllowedEverywhere(t *testing.T) {
	m := New(16)
	ops := []Op{OpSpawnActivity, OpDomainDBUpdate, OpRegistryRegister,
		OpRegistryModify, OpAgentDispatch, OpAgentControl, OpNetConnect,
		OpProxyControl, OpInstallSecurityManager}
	for _, op := range ops {
		if err := m.Check(domain.ServerID, op, Target{Domain: agentA}); err != nil {
			t.Errorf("server denied %s: %v", op, err)
		}
	}
}

func TestAgentSpawnOnlyOwnDomain(t *testing.T) {
	m := New(0)
	if err := m.Check(agentA, OpSpawnActivity, Target{Domain: agentA}); err != nil {
		t.Fatalf("spawn in own domain denied: %v", err)
	}
	if err := m.Check(agentA, OpSpawnActivity, Target{Domain: agentB}); !errors.Is(err, ErrDenied) {
		t.Fatal("spawn into foreign domain allowed")
	}
	if err := m.Check(agentA, OpSpawnActivity, Target{Domain: domain.ServerID}); !errors.Is(err, ErrDenied) {
		t.Fatal("spawn into server domain allowed")
	}
}

func TestAgentDeniedServerOnlyOps(t *testing.T) {
	m := New(0)
	for _, op := range []Op{OpDomainDBUpdate, OpAgentDispatch, OpNetConnect, OpInstallSecurityManager} {
		if err := m.Check(agentA, op, Target{}); !errors.Is(err, ErrDenied) {
			t.Errorf("agent allowed %s", op)
		}
	}
}

func TestAgentControlOwnDomainOnly(t *testing.T) {
	m := New(0)
	if err := m.Check(agentA, OpAgentControl, Target{Domain: agentA}); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(agentA, OpAgentControl, Target{Domain: agentB}); !errors.Is(err, ErrDenied) {
		t.Fatal("agent controlled a foreign agent")
	}
}

func TestNoDomainAlwaysDenied(t *testing.T) {
	m := New(0)
	if err := m.Check(domain.NoDomain, OpRegistryRegister, Target{}); !errors.Is(err, ErrDenied) {
		t.Fatal("domainless caller allowed")
	}
}

func TestUnknownOpDenied(t *testing.T) {
	m := New(0)
	if err := m.Check(domain.ServerID, Op("filesystem.format"), Target{}); !errors.Is(err, ErrDenied) {
		t.Fatal("unknown op allowed")
	}
}

func TestHookTightens(t *testing.T) {
	m := New(0)
	err := m.SetHook(OpRegistryRegister, func(caller domain.ID, tg Target) error {
		if tg.Name == "forbidden" {
			return fmt.Errorf("%w: name forbidden", ErrDenied)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Check(agentA, OpRegistryRegister, Target{Name: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(agentA, OpRegistryRegister, Target{Name: "forbidden"}); !errors.Is(err, ErrDenied) {
		t.Fatal("hook did not tighten")
	}
}

func TestHookCannotLoosen(t *testing.T) {
	m := New(0)
	// A hook that always allows cannot save an operation the builtin
	// policy denies, because hooks only run after the builtin allows.
	_ = m.SetHook(OpNetConnect, func(domain.ID, Target) error { return nil })
	if err := m.Check(agentA, OpNetConnect, Target{}); !errors.Is(err, ErrDenied) {
		t.Fatal("hook loosened builtin denial")
	}
}

func TestSealBlocksHooks(t *testing.T) {
	m := New(0)
	m.Seal()
	if err := m.SetHook(OpProxyControl, func(domain.ID, Target) error { return nil }); err == nil {
		t.Fatal("SetHook succeeded after Seal")
	}
}

func TestAuditRing(t *testing.T) {
	m := New(3)
	for i := 0; i < 5; i++ {
		_ = m.Check(domain.ServerID, OpRegistryRegister, Target{Name: fmt.Sprintf("r%d", i)})
	}
	log := m.Audit()
	if len(log) != 3 {
		t.Fatalf("audit len = %d, want 3", len(log))
	}
	if log[0].Target.Name != "r2" || log[2].Target.Name != "r4" {
		t.Fatalf("ring order wrong: %v %v", log[0].Target.Name, log[2].Target.Name)
	}
}

func TestStats(t *testing.T) {
	m := New(0)
	_ = m.Check(domain.ServerID, OpNetConnect, Target{}) // allow
	_ = m.Check(agentA, OpNetConnect, Target{})          // deny
	allows, denies := m.Stats()
	if allows != 1 || denies != 1 {
		t.Fatalf("stats = %d, %d", allows, denies)
	}
}
