// Admission control over access manifests: the server statically
// analyzes every arriving agent's code bundle (internal/vm/analysis)
// and rejects over-privileged agents BEFORE any VM starts. An agent
// whose reachable code asks for a resource the local policy would never
// grant its owner is turned away at the door instead of being hosted,
// metered and denied at the proxy — the cheap failure replaces the
// expensive one, and a malicious bundle never executes a single
// instruction here.
package server

import (
	"errors"
	"fmt"

	"repro/internal/agent"
	"repro/internal/names"
	"repro/internal/resource"
	"repro/internal/vm/analysis"
)

// AdmissionMode selects how the arrival gate treats access manifests.
type AdmissionMode int

const (
	// AdmissionOff (the default) skips the manifest check; agents are
	// admitted on credentials, bundle verification and capacity alone,
	// and every access check happens at binding time.
	AdmissionOff AdmissionMode = iota
	// AdmissionEnforce computes (or re-verifies a carried) access
	// manifest at arrival and rejects the agent when the manifest
	// demands a locally registered resource its owner has no grant
	// for. Fail-closed: an unanalyzable bundle is rejected.
	AdmissionEnforce
)

// ErrAdmission marks a manifest-based admission rejection.
var ErrAdmission = errors.New("admission denied")

// checkAdmission runs the manifest admission check. The bundle has
// already passed vm.VerifyBundle and the code-digest check.
//
// The effective manifest is the carried (owner-declared) one when the
// agent travels with a declaration — after re-verifying that it covers
// a freshly computed manifest, so an agent cannot under-declare its
// needs — and the computed one otherwise.
//
// The whole check runs against one pinned registry snapshot: a large
// manifest pays a single atomic table load instead of one per entry,
// and every entry is judged against the same registry generation — a
// concurrent install/unregister cannot make the verdict incoherent
// mid-manifest.
func (s *Server) checkAdmission(a *agent.Agent) error {
	computed, err := analysis.ComputeManifest(a.Code)
	if err != nil {
		// Fail-closed: a bundle the analyzer cannot reason about is
		// not hosted.
		return fmt.Errorf("%w: bundle unanalyzable: %v", ErrAdmission, err)
	}
	effective := computed
	if a.Manifest != nil {
		if !a.Manifest.Covers(computed) {
			return fmt.Errorf("%w: declared manifest does not cover the code's computed needs (declared %s; computed %s)",
				ErrAdmission, a.Manifest, computed)
		}
		effective = a.Manifest
	}
	snap := s.reg.Snapshot()
	for _, res := range effective.Resources {
		if res == analysis.Wildcard {
			// The analyzer could not resolve some get_resource/colocate
			// target: the agent may name any resource at run time.
			// Admissible only under an explicit wildcard-resource rule.
			if !s.cfg.Policy.AllowsWildcard(&a.Credentials) {
				return fmt.Errorf("%w: manifest demands unresolvable (\"*\") resource access and policy has no wildcard grant for %s",
					ErrAdmission, a.Credentials.Owner)
			}
			continue
		}
		rn, err := names.Parse(res)
		if err != nil {
			// An unparseable name can never be bound (get_resource
			// fails on it at run time); it grants nothing and is not an
			// admission concern.
			continue
		}
		entry, err := snap.Lookup(rn)
		if err != nil {
			// Not registered here: either a resource of a later stop
			// (another server's policy decides) or a name that will
			// simply fail to bind. Neither is this server's privilege
			// to refuse.
			continue
		}
		def, ok := entry.AP.(*resource.Def)
		if !ok {
			// A custom access protocol exposes no static method table
			// to decide over; the binding-time check governs.
			continue
		}
		grant := s.cfg.Policy.Decide(&a.Credentials, def.Path, def.MethodNames())
		if grant.Empty() {
			return fmt.Errorf("%w: manifest demands resource %s but policy grants %s no method on it",
				ErrAdmission, res, a.Credentials.Owner)
		}
	}
	return nil
}
