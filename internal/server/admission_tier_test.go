package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/agent"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/retry"
)

// TestTierRateShedAtGate drives the arrival gate directly through
// LaunchLocal: a tier with a one-per-second bucket admits the first
// agent and sheds the second with a typed, hinted error.
func TestTierRateShedAtGate(t *testing.T) {
	f := newFixture(t)
	s := f.startServer(t, "s1", "s1:7000", names.NewService())
	defer s.Stop()
	s.cfg.Policy.DefineTier(policy.Tier{Name: "bulk", Rate: 1, Burst: 1})
	s.cfg.Policy.AssignTier(policy.TierAssignment{Principal: f.owner.Name, Tier: "bulk"})

	src := "module m\nfunc main() { report(1) }"
	first := f.agent(t, "first", src, agent.Itinerary{}, "s1:7000")
	ch := s.Await(first.Name)
	if err := s.LaunchLocal(first); err != nil {
		t.Fatalf("first agent shed: %v", err)
	}
	second := f.agent(t, "second", src, agent.Itinerary{}, "s1:7000")
	err := s.LaunchLocal(second)
	if !errors.Is(err, admission.ErrShed) {
		t.Fatalf("second agent: %v, want ErrShed", err)
	}
	var shed *admission.ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("second agent error type %T", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("shed without a retry-after hint: %+v", shed)
	}
	if shed.Tier != "bulk" || shed.Cause != "rate" {
		t.Fatalf("shed = %+v, want tier bulk cause rate", shed)
	}
	<-ch
	if st := s.Stats(); st.ShedRateLimit != 1 {
		t.Fatalf("ShedRateLimit = %d, want 1", st.ShedRateLimit)
	}
}

// TestTierFuelCap: a tier's fuel quota caps the visit's instruction
// budget below the server default, so a tight-loop agent that would run
// for millions of instructions dies of fuel exhaustion instead.
func TestTierFuelCap(t *testing.T) {
	f := newFixture(t)
	s := f.startServer(t, "s1", "s1:7000", names.NewService())
	defer s.Stop()
	s.cfg.Policy.DefineTier(policy.Tier{Name: "tight", Rate: 1000, Burst: 1000, Fuel: 200})
	s.cfg.Policy.AssignTier(policy.TierAssignment{Principal: f.owner.Name, Tier: "tight"})

	a := f.agent(t, "burner",
		"module m\nfunc main() { var i = 0 while i < 100000 { i = i + 1 } report(i) }",
		agent.Itinerary{Stops: []agent.Stop{{Servers: []names.Name{s.Name()}, Entry: "main"}}},
		"s1:7000")
	ch := s.Await(a.Name)
	if err := s.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	select {
	case back := <-ch:
		if len(back.Results) != 0 {
			t.Fatalf("tier-capped agent completed: %+v", back.Results)
		}
		if len(back.Log) == 0 || !strings.Contains(back.Log[0], "quota exhausted") {
			t.Fatalf("expected a fuel-exhaustion log line, got %v", back.Log)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("agent never came home")
	}
}

// TestChaosOverloadShedding is the overload-safety invariant check
// (ISSUE 6 tentpole): a worker whose tier admits at most 2 concurrent
// visits from this owner faces 16 concurrent arrivals over a seeded
// lossy network. Every shed travels back as a transient, hinted error;
// the sender's retry and dead-letter machinery must eventually land
// every single agent — admitted after backoff or parked for
// redelivery — with zero losses and zero permanent rejections of
// compliant agents.
func TestChaosOverloadShedding(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	const (
		nAgents = 16
		seed    = 7
	)
	f := newFixture(t)
	ns := names.NewService()
	pol := retry.Policy{
		MaxAttempts: 25,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
	}
	mk := func(short, addr string) *Server {
		cfg := f.config(t, short, addr)
		cfg.NameService = ns
		cfg.Retry = pol
		cfg.RedeliverEvery = 25 * time.Millisecond
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	home := mk("home", "home:7000")
	defer home.Stop()
	w2 := mk("w2", "w2:7000")
	defer w2.Stop()

	// The overloaded worker's tier: 2 concurrent visits for this owner,
	// generous rate so concurrency is the binding limit.
	w2.cfg.Policy.DefineTier(policy.Tier{Name: "visitor", Rate: 5000, Burst: 64, MaxConcurrent: 2})
	w2.cfg.Policy.AssignTier(policy.TierAssignment{Principal: f.owner.Name, Tier: "visitor"})

	// Seeded background noise so sheds interleave with genuine network
	// retries — the two must not confuse each other's classification.
	f.nw.SeedFaults(seed)
	f.nw.SetDropProb("home:7000", "w2:7000", 0.1)

	type launched struct {
		name names.Name
		ch   <-chan *agent.Agent
	}
	fleet := make([]launched, 0, nAgents)
	for i := 0; i < nAgents; i++ {
		a := f.agent(t, fmt.Sprintf("storm%02d", i),
			"module m\nfunc main() { report(1) }",
			agent.Itinerary{Stops: []agent.Stop{
				{Servers: []names.Name{w2.Name()}, Entry: "main"},
			}}, "home:7000")
		ch := home.Await(a.Name)
		if err := home.LaunchLocal(a); err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, launched{name: a.Name, ch: ch})
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	returned := make(map[names.Name]*agent.Agent, nAgents)
	for _, l := range fleet {
		wg.Add(1)
		go func(l launched) {
			defer wg.Done()
			select {
			case back := <-l.ch:
				mu.Lock()
				returned[l.name] = back
				mu.Unlock()
			case <-time.After(90 * time.Second):
			}
		}(l)
	}
	wg.Wait()

	// The invariant: every agent is accounted for — home with results,
	// or parked awaiting redelivery. None lost, and none permanently
	// rejected (a compliant agent that came home with only a log line
	// means a shed was misclassified permanent).
	parked := make(map[names.Name]bool)
	for _, s := range []*Server{home, w2} {
		for _, n := range s.ParkedAgents() {
			parked[n] = true
		}
	}
	var lost, rejected []string
	completed := 0
	for _, l := range fleet {
		back, ok := returned[l.name]
		switch {
		case ok && len(back.Results) == 1:
			completed++
		case ok:
			rejected = append(rejected, fmt.Sprintf("%s (log: %v)", l.name, back.Log))
		case parked[l.name]:
			// Parked, not lost: the dead-letter loop owns it.
		default:
			lost = append(lost, l.name.String())
		}
	}
	if len(lost) > 0 {
		t.Fatalf("%d/%d agents lost: %s", len(lost), nAgents, strings.Join(lost, ", "))
	}
	if len(rejected) > 0 {
		t.Fatalf("compliant agents permanently rejected under overload: %s",
			strings.Join(rejected, "; "))
	}

	w2Stats := w2.Stats()
	homeStats := home.Stats()
	t.Logf("overload: %d completed, %d parked, sheds rate=%d conc=%d, home retries=%d",
		completed, len(parked), w2Stats.ShedRateLimit, w2Stats.ShedConcurrency,
		homeStats.Retries)
	// 16 near-simultaneous arrivals against a 2-visit cap must have
	// shed; zero sheds means the gate never engaged and the test
	// exercised nothing.
	if w2Stats.ShedRateLimit+w2Stats.ShedConcurrency == 0 {
		t.Error("overload produced no sheds — admission gate inert")
	}
	if homeStats.Retries == 0 {
		t.Error("sheds produced no sender retries — shed not classified transient")
	}
}

// TestTierHotReloadDuringTraffic: retuning the tier configuration while
// agents are arriving must take effect without blocking or failing
// in-flight admissions — the epoch flips, old tickets stay valid.
func TestTierHotReloadDuringTraffic(t *testing.T) {
	f := newFixture(t)
	s := f.startServer(t, "s1", "s1:7000", names.NewService())
	defer s.Stop()
	s.cfg.Policy.DefineTier(policy.Tier{Name: "t", Rate: 100000, Burst: 100000, MaxConcurrent: 64})
	s.cfg.Policy.AssignTier(policy.TierAssignment{AnyPrincipal: true, Tier: "t"})

	stop := make(chan struct{})
	var reloads sync.WaitGroup
	reloads.Add(1)
	go func() {
		defer reloads.Done()
		flip := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			flip = !flip
			limit := 64
			if flip {
				limit = 32
			}
			s.cfg.Policy.SetTierConfig(
				[]policy.Tier{{Name: "t", Rate: 100000, Burst: 100000, MaxConcurrent: limit}},
				[]policy.TierAssignment{{AnyPrincipal: true, Tier: "t"}},
			)
		}
	}()

	const n = 20
	chans := make([]<-chan *agent.Agent, 0, n)
	for i := 0; i < n; i++ {
		a := f.agent(t, fmt.Sprintf("reload%02d", i),
			"module m\nfunc main() { report(1) }",
			agent.Itinerary{Stops: []agent.Stop{{Servers: []names.Name{s.Name()}, Entry: "main"}}},
			"s1:7000")
		chans = append(chans, s.Await(a.Name))
		if err := s.LaunchLocal(a); err != nil {
			t.Fatalf("launch %d during hot reload: %v", i, err)
		}
	}
	for i, ch := range chans {
		select {
		case back := <-ch:
			if len(back.Results) != 1 {
				t.Fatalf("agent %d failed during hot reload: %v", i, back.Log)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("agent %d never came home", i)
		}
	}
	close(stop)
	reloads.Wait()
}
