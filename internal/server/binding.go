package server

import (
	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/sandbox"
	"repro/internal/vm"
)

// This file is the server's single resource-access path: every caller —
// the VM host calls (get_resource / invoke / install_resource /
// make_mailbox), the local API, and the examples driving a server — goes
// through bindResource, invokeProxy and installAgentResource. The
// Fig. 6 protocol steps and the accounting/ledger plumbing live here
// once, instead of being restated per host call.

// bindResource runs steps 2–5 of the Fig. 6 binding protocol for a
// hosted agent: registry lookup (step 3), the GetProxy upcall under the
// agent's verified credentials (step 4), and the domain-database binding
// record. The policy decision is memoized in the server's decision
// cache, stamped with the policy and registry epochs read at bind time —
// any later rule or registry change silently invalidates the entry.
func (s *Server) bindResource(v *visit, rn names.Name) (*boundResource, error) {
	// One registry snapshot pins both the entry and the epoch the
	// decision stamp uses, so the cached grant can never be filed under
	// an epoch newer than the table it was computed from.
	snap := s.reg.Snapshot()
	entry, err := snap.Lookup(rn) // step 3
	if err != nil {
		return nil, err
	}
	creds, err := s.db.CredentialsOf(v.dom) // getProxy's domain-database query
	if err != nil {
		return nil, err
	}
	// Read the policy epoch before the decision: a mutation racing the
	// bind at worst produces a stamp that immediately misses, never a
	// cached grant from a newer configuration under an older stamp.
	stamp := policy.Stamp{Policy: s.cfg.Policy.Epoch(), Registry: snap.Epoch()}
	proxy, err := entry.AP.GetProxy(resource.Request{ // step 4 (upcall)
		Caller:  v.dom,
		Creds:   creds,
		Policy:  s.cfg.Policy,
		Cache:   s.cache,
		Stamp:   stamp,
		CredKey: v.credKey, // digest computed once per visit, not per bind
	})
	if err != nil {
		return nil, err
	}
	// Record the binding in the domain database (§5.3: "if the agent is
	// currently granted access to any server resources, then information
	// about the binding objects is also maintained here").
	_ = s.db.AddBinding(domain.ServerID, v.dom, &domain.Binding{
		ResourcePath: proxy.Path(),
		Revoker:      func() { _ = proxy.Revoke(domain.ServerID) },
	})
	return &boundResource{proxy: proxy, usage: v.usageFor(proxy.Path())}, nil
}

// invokeProxy is step 6: access the resource through the proxy, which
// holds every protection check, then settle the accounting charge into
// the visit's local usage record — two uncontended atomic adds, no
// domain-database lock. The batch is flushed into the database (and,
// via the per-owner ledger, the paper's electronic-commerce
// requirement) once, when the visit finishes.
func (s *Server) invokeProxy(v *visit, br *boundResource, method string, args []vm.Value) (vm.Value, error) {
	out, charge, err := br.proxy.InvokeMetered(v.dom, method, args)
	if err == nil {
		br.usage.invocations.Add(1)
		br.usage.charge.Add(charge)
	}
	return out, err
}

// installAgentResource registers an agent-provided resource (Fig. 6
// step 1, performed by an agent: §5.5's dynamic extension of server
// capabilities). Registration is a mediated operation; the entry is
// owned by the installing agent's domain and survives its departure.
// Any accompanying policy rules are added only after the install
// succeeded, so a rejected registration leaves no dangling grants.
func (s *Server) installAgentResource(v *visit, rn names.Name, def *resource.Def, rules ...policy.Rule) error {
	if err := s.secmgr.Check(v.dom, sandbox.OpRegistryRegister,
		sandbox.Target{Domain: v.dom, Name: rn.String()}); err != nil {
		return err
	}
	if err := s.InstallResource(registry.Entry{
		Name:           rn,
		Resource:       def,
		AP:             def,
		OwnerDomain:    v.dom,
		OwnerPrincipal: v.agent.Credentials.Owner,
	}); err != nil {
		return err
	}
	for _, r := range rules {
		s.cfg.Policy.AddRule(r)
	}
	return nil
}
