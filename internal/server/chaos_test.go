package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/names"
	"repro/internal/retry"
)

// TestChaosNoLostAgents is the no-lost-agents invariant check: N agents
// tour multi-hop itineraries (each stop with two alternatives) while a
// seeded fault script injects dial drops, mid-stream connection resets,
// a network partition, and a server crash/restart. Every launched agent
// must eventually reach a terminal state at its home server — done with
// results, or failed with a log — and none may vanish.
//
// All faults are survivable by construction (drop probability < 1, the
// partition heals, the crashed server restarts), so retries, itinerary
// alternatives, and dead-letter redelivery must absorb everything.
func TestChaosNoLostAgents(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	const (
		nAgents = 24
		seed    = 42
	)
	f := newFixture(t)
	ns := names.NewService()
	pol := retry.Policy{
		MaxAttempts: 4,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
	}
	mk := func(short, addr string) *Server {
		cfg := f.config(t, short, addr)
		cfg.NameService = ns
		cfg.Retry = pol
		cfg.RedeliverEvery = 25 * time.Millisecond
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	home := mk("home", "home:7000")
	defer home.Stop()
	s2 := mk("w2", "w2:7000")
	defer s2.Stop()
	s3 := mk("w3", "w3:7000")
	defer s3.Stop()
	s4 := mk("w4", "w4:7000")
	defer s4.Stop()

	// Seeded background noise on every link that carries traffic:
	// dials drop with p=0.25, and two links reset established
	// connections mid-stream with p=0.05.
	f.nw.SeedFaults(seed)
	addrs := []string{"home:7000", "w2:7000", "w3:7000", "w4:7000"}
	for i, a := range addrs {
		for _, b := range addrs[i+1:] {
			f.nw.SetDropProb(a, b, 0.25)
		}
	}
	f.nw.SetResetProb("home:7000", "w2:7000", 0.05)
	f.nw.SetResetProb("w2:7000", "w3:7000", 0.05)

	// Launch the fleet: three-stop tours, every stop with a fallback
	// alternative, rotated per agent so load spreads.
	workers := []names.Name{s2.Name(), s3.Name(), s4.Name()}
	type launched struct {
		name names.Name
		ch   <-chan *agent.Agent
	}
	fleet := make([]launched, 0, nAgents)
	for i := 0; i < nAgents; i++ {
		var stops []agent.Stop
		for hop := 0; hop < 3; hop++ {
			first := workers[(i+hop)%len(workers)]
			second := workers[(i+hop+1)%len(workers)]
			stops = append(stops, agent.Stop{
				Servers: []names.Name{first, second}, Entry: "main",
			})
		}
		a := f.agent(t, fmt.Sprintf("chaos%02d", i),
			"module m\nfunc main() { report(1) }",
			agent.Itinerary{Stops: stops}, "home:7000")
		ch := home.Await(a.Name)
		if err := home.LaunchLocal(a); err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, launched{name: a.Name, ch: ch})
	}

	// The fault script: a partition that heals, and a crash/restart,
	// overlapping the fleet's tours.
	scriptDone := make(chan struct{})
	go func() {
		defer close(scriptDone)
		time.Sleep(30 * time.Millisecond)
		f.nw.Partition("home:7000", "w3:7000")
		time.Sleep(100 * time.Millisecond)
		f.nw.Heal("home:7000", "w3:7000")
		s4.Crash()
		time.Sleep(100 * time.Millisecond)
		if err := s4.Restart(); err != nil {
			t.Errorf("restart: %v", err)
		}
	}()

	// The invariant: every agent reaches a terminal state at home.
	var wg sync.WaitGroup
	var mu sync.Mutex
	returned := make(map[names.Name]*agent.Agent, nAgents)
	for _, l := range fleet {
		wg.Add(1)
		go func(l launched) {
			defer wg.Done()
			select {
			case back := <-l.ch:
				mu.Lock()
				returned[l.name] = back
				mu.Unlock()
			case <-time.After(90 * time.Second):
			}
		}(l)
	}
	wg.Wait()
	<-scriptDone

	var lost []string
	done, failed := 0, 0
	for _, l := range fleet {
		back, ok := returned[l.name]
		if !ok {
			lost = append(lost, l.name.String())
			continue
		}
		if len(back.Results) == 3 {
			done++
		} else if len(back.Log) > 0 {
			failed++ // terminal at home with a log naming the failure
		} else {
			t.Errorf("%s came home with neither full results nor a log: %+v",
				l.name, back.Results)
		}
	}
	if len(lost) > 0 {
		for _, s := range []*Server{home, s2, s3, s4} {
			t.Logf("%s stats: %+v parked: %v", s.Name(), s.Stats(), s.ParkedAgents())
		}
		t.Fatalf("%d/%d agents lost: %s", len(lost), nAgents, strings.Join(lost, ", "))
	}
	total := home.Stats()
	for _, s := range []*Server{s2, s3, s4} {
		st := s.Stats()
		total.Retries += st.Retries
		total.Parked += st.Parked
		total.Redelivered += st.Redelivered
	}
	t.Logf("chaos: %d done, %d failed-with-log, %d retries, %d parked, %d redelivered, faults=%+v",
		done, failed, total.Retries, total.Parked, total.Redelivered, f.nw.FaultCounters())
	// With p=0.25 dial drops on every link the run must have exercised
	// the retry machinery; a zero here means the faults never landed.
	if total.Retries == 0 {
		t.Error("chaos run exercised no retries — fault injection inert")
	}
}

// TestChaosPartitionWithWarmPool covers the pooled-channel failure
// path: a first agent warms a persistent session home -> w2, the link
// then partitions mid-lifetime (killing the parked session's
// usefulness), and a second agent is launched into the outage. The
// pooled-session failure must classify transient, the transfer must be
// retried on a fresh channel once the link heals, and exactly one
// dispatch (no duplicate delivery) may be counted for it.
func TestChaosPartitionWithWarmPool(t *testing.T) {
	f := newFixture(t)
	ns := names.NewService()
	pol := retry.Policy{
		MaxAttempts: 10,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    25 * time.Millisecond,
		Jitter:      -1,
	}
	mk := func(short, addr string) *Server {
		cfg := f.config(t, short, addr)
		cfg.NameService = ns
		cfg.Retry = pol
		cfg.RedeliverEvery = 25 * time.Millisecond
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	home := mk("home", "home:7000")
	defer home.Stop()
	w2 := mk("w2", "w2:7000")
	defer w2.Stop()

	tour := agent.Itinerary{Stops: []agent.Stop{
		{Servers: []names.Name{w2.Name()}, Entry: "main"},
	}}
	run := func(name string) *agent.Agent {
		a := f.agent(t, name, "module m\nfunc main() { report(1) }", tour, "home:7000")
		ch := home.Await(a.Name)
		if err := home.LaunchLocal(a); err != nil {
			t.Fatal(err)
		}
		select {
		case back := <-ch:
			return back
		case <-time.After(30 * time.Second):
			t.Fatalf("%s never came home", name)
			return nil
		}
	}

	// Warm the pool: after this round trip home holds an idle session
	// to w2 (and w2 one to home).
	if back := run("warm"); len(back.Results) != 1 {
		t.Fatalf("warmup agent failed: %+v", back)
	}
	// The sender's checkin races the receiver's homecoming hand-off by
	// design (ack first, host after), so allow it a moment to land.
	warmBy := time.Now().Add(2 * time.Second)
	for {
		st := home.ChannelPoolStats()
		if st.Dials == 1 && st.Idle == 1 {
			break
		}
		if time.Now().After(warmBy) {
			t.Fatalf("pool not warm after first tour: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	preDispatches := home.Stats().Dispatches
	preArrivals := w2.Arrivals()
	preRetries := home.Stats().Retries

	// Partition the link, launch into the outage, heal while the
	// sender is still backing off.
	f.nw.Partition("home:7000", "w2:7000")
	healed := make(chan struct{})
	go func() {
		defer close(healed)
		time.Sleep(60 * time.Millisecond)
		f.nw.Heal("home:7000", "w2:7000")
	}()
	back := run("survivor")
	<-healed
	if len(back.Results) != 1 {
		t.Fatalf("agent did not complete after heal: results=%v log=%v", back.Results, back.Log)
	}
	// The homecoming waiter fires from the receiving side while the
	// dispatching goroutine is still returning through the retry loop
	// (its success counter lands a beat later), so wait for the
	// dispatch count to settle before asserting on it.
	settleBy := time.Now().Add(2 * time.Second)
	for home.Stats().Dispatches == preDispatches {
		if time.Now().After(settleBy) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Grace period: a duplicate delivery would land shortly after the
	// first, so give it a moment to show up before counting.
	time.Sleep(50 * time.Millisecond)

	homeStats := home.Stats()
	poolStats := home.ChannelPoolStats()
	t.Logf("pool: %+v, dispatches: %d, retries: %d, w2 arrivals: %d",
		poolStats, homeStats.Dispatches-preDispatches,
		homeStats.Retries-preRetries, w2.Arrivals()-preArrivals)

	// The warm session died with the partition: the pool must have
	// noticed and re-dialed rather than surfacing a permanent failure.
	if poolStats.StaleRedials == 0 {
		t.Error("warm pooled session's death not handled by a transparent redial")
	}
	// The partition outlasted the transparent redial, so the failure
	// reached the retry policy and must have classified transient.
	if homeStats.Retries == preRetries {
		t.Error("partition failure did not reach the retry policy (classified permanent?)")
	}
	// Exactly one dispatch for the survivor (no duplicate delivery):
	// one outbound transfer counted at home, one arrival at w2.
	if got := homeStats.Dispatches - preDispatches; got != 1 {
		t.Errorf("home dispatches = %d, want exactly 1", got)
	}
	if got := w2.Arrivals() - preArrivals; got != 1 {
		t.Errorf("w2 arrivals = %d, want exactly 1 (duplicate delivery)", got)
	}
}

// TestPoolDrainOnStopAndCrash checks pool lifecycle at server death:
// Stop closes the pool (idle sessions dropped, further sends refused)
// and Crash resets it (warm channels do not survive into the restart).
func TestPoolDrainOnStopAndCrash(t *testing.T) {
	f := newFixture(t)
	ns := names.NewService()
	home := f.startServer(t, "home", "home:7000", ns)
	defer home.Stop()
	w2 := f.startServer(t, "w2", "w2:7000", ns)

	tour := agent.Itinerary{Stops: []agent.Stop{
		{Servers: []names.Name{w2.Name()}, Entry: "main"},
	}}
	a := f.agent(t, "drainer", "module m\nfunc main() { report(1) }", tour, "home:7000")
	ch := home.Await(a.Name)
	if err := home.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(30 * time.Second):
		t.Fatal("agent never came home")
	}
	warmBy := time.Now().Add(2 * time.Second)
	for home.ChannelPoolStats().Idle == 0 {
		if time.Now().After(warmBy) {
			t.Fatalf("no warm session after tour: %+v", home.ChannelPoolStats())
		}
		time.Sleep(time.Millisecond)
	}

	// Crash drops the warm channels but the pool stays usable.
	home.Crash()
	if st := home.ChannelPoolStats(); st.Idle != 0 {
		t.Fatalf("warm sessions survived Crash: %+v", st)
	}
	if err := home.Restart(); err != nil {
		t.Fatal(err)
	}

	// Stop drains for good.
	w2.Stop()
	if st := w2.ChannelPoolStats(); st.Idle != 0 || st.Active != 0 {
		t.Fatalf("sessions survived Stop: %+v", st)
	}
}
