// Dead-letter store: the server's "no agent is ever lost" backstop.
// An agent whose homecoming transfer fails (home site crashed,
// partitioned, mid-handshake reset) is parked here instead of being
// dropped, and a background loop periodically re-attempts delivery
// until the destination comes back. Together with the held-agents map
// (homecomings that arrive before anyone calls Await) this closes the
// two loss paths the single-attempt dispatch design had.
package server

import (
	"sync/atomic"
	"time"

	"repro/internal/agent"
	"repro/internal/names"
	"repro/internal/resource"
)

// DefaultRedeliverEvery is the dead-letter redelivery period applied
// when Config.RedeliverEvery is zero.
const DefaultRedeliverEvery = 500 * time.Millisecond

// parcel is one parked agent: the serialized-ready agent plus where it
// still needs to go.
type parcel struct {
	agent    *agent.Agent
	addr     string // destination (the agent's home site)
	attempts int    // delivery attempts so far (initial + redeliveries)
}

// Stats is the server's fault-tolerance and traffic counter snapshot,
// exposed for operators and the chaos harness.
type Stats struct {
	// Arrivals counts agents this server has hosted.
	Arrivals uint64
	// Dispatches counts successful outbound agent transfers.
	Dispatches uint64
	// Retries counts transient per-attempt dispatch retries (the
	// backoff loop firing, across all destinations).
	Retries uint64
	// DispatchFailures counts stops whose every alternative was
	// exhausted (the agent then failed home).
	DispatchFailures uint64
	// Parked counts agents ever parked in the dead-letter store;
	// ParkedNow is the current store size.
	Parked    uint64
	ParkedNow int
	// Redelivered counts parked agents later delivered successfully.
	Redelivered uint64
	// Delivered counts agents handed to a local waiter; HeldNow is
	// the number of homecomings waiting for a future Await call.
	Delivered uint64
	HeldNow   int
	// AdmissionRejects counts agents turned away by the manifest
	// admission check (admission.go) — over-privileged bundles that
	// never executed an instruction here.
	AdmissionRejects uint64
	// ShedRateLimit / ShedConcurrency count arrivals shed by the tier
	// admission gate (internal/admission): over the owner's token-bucket
	// rate, or over the tier's concurrent-visit cap. Sheds are
	// transient — the sender retries after the hinted delay — so these
	// count deferrals, not losses.
	ShedRateLimit   uint64
	ShedConcurrency uint64
	// RebindFailures counts post-transfer directory rebinds that
	// failed after the receiver had already accepted the agent
	// (dispatch.go afterTransferAck). These are permanent directory
	// errors — a name the authority rejects or a federation with no
	// store for its authority — not transfer failures: the agent
	// arrived, but the directory may still point at its old location
	// until the receiver's own binding activity corrects it.
	RebindFailures uint64
}

// Delta returns the traffic one measurement window contributed: every
// monotonic counter as s minus prev, with the point-in-time gauges
// (ParkedNow, HeldNow) kept at their current value — a gauge has no
// meaningful difference. The cluster load harness snapshots Stats at
// each phase boundary and attributes the deltas to the phase.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Arrivals:         s.Arrivals - prev.Arrivals,
		Dispatches:       s.Dispatches - prev.Dispatches,
		Retries:          s.Retries - prev.Retries,
		DispatchFailures: s.DispatchFailures - prev.DispatchFailures,
		Parked:           s.Parked - prev.Parked,
		ParkedNow:        s.ParkedNow,
		Redelivered:      s.Redelivered - prev.Redelivered,
		Delivered:        s.Delivered - prev.Delivered,
		HeldNow:          s.HeldNow,
		AdmissionRejects: s.AdmissionRejects - prev.AdmissionRejects,
		ShedRateLimit:    s.ShedRateLimit - prev.ShedRateLimit,
		ShedConcurrency:  s.ShedConcurrency - prev.ShedConcurrency,
		RebindFailures:   s.RebindFailures - prev.RebindFailures,
	}
}

// counters aggregates the atomic tallies behind Stats.
type counters struct {
	arrivals         atomic.Uint64
	dispatches       atomic.Uint64
	retries          atomic.Uint64
	dispatchFailures atomic.Uint64
	parked           atomic.Uint64
	redelivered      atomic.Uint64
	delivered        atomic.Uint64
	admissionRejects atomic.Uint64
	rebindFailures   atomic.Uint64
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	s.parkMu.Lock()
	parkedNow := len(s.parked)
	heldNow := len(s.held)
	s.parkMu.Unlock()
	gate := s.gate.Stats()
	return Stats{
		Arrivals:         s.stats.arrivals.Load(),
		Dispatches:       s.stats.dispatches.Load(),
		Retries:          s.stats.retries.Load(),
		DispatchFailures: s.stats.dispatchFailures.Load(),
		Parked:           s.stats.parked.Load(),
		ParkedNow:        parkedNow,
		Redelivered:      s.stats.redelivered.Load(),
		Delivered:        s.stats.delivered.Load(),
		HeldNow:          heldNow,
		AdmissionRejects: s.stats.admissionRejects.Load(),
		ShedRateLimit:    gate.ShedRate,
		ShedConcurrency:  gate.ShedConcurrency,
		RebindFailures:   s.stats.rebindFailures.Load(),
	}
}

// park stores an undeliverable agent in the dead-letter store. The
// redelivery loop owns it from here; a duplicate park (an at-least-once
// transfer race) keeps the newer copy.
func (s *Server) park(a *agent.Agent, addr string) {
	s.parkMu.Lock()
	s.parked[a.Name] = &parcel{agent: a, addr: addr, attempts: 1}
	s.parkMu.Unlock()
	s.stats.parked.Add(1)
}

// ParkedAgents lists the names currently in the dead-letter store, so
// operators (and tests) can see exactly which agents are waiting out a
// failure rather than lost.
func (s *Server) ParkedAgents() []names.Name {
	s.parkMu.Lock()
	defer s.parkMu.Unlock()
	out := make([]names.Name, 0, len(s.parked))
	for n := range s.parked {
		out = append(out, n)
	}
	return out
}

// redeliverLoop periodically retries every parked agent until the
// server stops. Attempts run outside the lock; an agent parked again
// mid-attempt (it cannot be: the loop owns parked entries once taken)
// simply re-enters the store.
func (s *Server) redeliverLoop(every time.Duration) {
	defer s.wg.Done()
	for {
		// The shared coarse clock replaces a per-server ticker: one
		// timer goroutine process-wide instead of one per loop, at the
		// cost of ~1ms scheduling granularity — far below the
		// redelivery period.
		if canceled := resource.CoarseSleep(every, s.quit); canceled {
			return
		}
		s.redeliverOnce()
	}
}

// redeliverOnce attempts one delivery per parked agent.
func (s *Server) redeliverOnce() {
	s.parkMu.Lock()
	batch := make([]*parcel, 0, len(s.parked))
	for _, p := range s.parked {
		batch = append(batch, p)
	}
	s.parkMu.Unlock()
	for _, p := range batch {
		select {
		case <-s.quit:
			return
		default:
		}
		p.attempts++
		if err := s.sendToAddr(p.agent, p.addr); err != nil {
			continue // still unreachable; next tick
		}
		s.parkMu.Lock()
		delete(s.parked, p.agent.Name)
		s.parkMu.Unlock()
		s.stats.redelivered.Add(1)
		s.stats.dispatches.Add(1)
	}
}
