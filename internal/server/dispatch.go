package server

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/agent"
	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/retry"
	"repro/internal/sandbox"
	"repro/internal/transfer"
)

// This file owns outbound agent movement: itinerary dispatch, go()
// migrations, the retrying transfer sends underneath both, and final
// delivery (homecoming) with dead-letter parking.

// dispatchStop sends the agent to the first reachable alternative of a
// stop, nearest alternative first when the server has a proximity
// estimate (location-aware routing; itinerary order otherwise). Each
// alternative gets the full transient-retry treatment before the next
// one is tried (the paper's "try the next one" pattern, §4); only when
// every alternative is exhausted does the agent fail home, with a log
// entry naming each attempt.
func (s *Server) dispatchStop(a *agent.Agent, stop agent.Stop) {
	var attempts []string
	for _, srv := range s.rankAlternatives(stop.Servers) {
		if srv == s.Name() {
			// The next stop is this server — rare but legal; re-host.
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.host(a)
			}()
			return
		}
		err := s.sendTo(a, srv)
		if err == nil {
			return
		}
		attempts = append(attempts, fmt.Sprintf("%s: %v", srv, err))
	}
	s.stats.dispatchFailures.Add(1)
	a.Logf("%s: all alternatives unreachable: %s", s.Name(), strings.Join(attempts, "; "))
	s.failHome(a)
}

// dispatchTo handles a go()-requested migration.
func (s *Server) dispatchTo(a *agent.Agent, dest names.Name, entry string) {
	a.PendingEntry = entry
	if dest == s.Name() {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.host(a)
		}()
		return
	}
	if err := s.sendTo(a, dest); err != nil {
		a.Logf("%s: go %s: %v", s.Name(), dest, err)
		s.stats.dispatchFailures.Add(1)
		s.failHome(a) // clears PendingEntry
	}
}

// sendTo transfers the agent to a named server via the transfer
// protocol, retrying transient failures under the server's policy.
// Dispatch is a server-domain privilege.
func (s *Server) sendTo(a *agent.Agent, dest names.Name) error {
	if err := s.secmgr.Check(domain.ServerID, sandbox.OpAgentDispatch,
		sandbox.Target{Name: dest.String()}); err != nil {
		return retry.Permanent(err)
	}
	// Narrowing delegation happens once per send, not once per
	// attempt: each Delegate call appends a signed link.
	if !s.cfg.DispatchRestriction.IsEmpty() {
		narrowed := a.Credentials.EffectiveRights().Restrict(s.cfg.DispatchRestriction)
		if err := a.Credentials.Delegate(s.cfg.Identity, narrowed, time.Time{}); err != nil {
			return retry.Permanent(fmt.Errorf("server: dispatch delegation: %w", err))
		}
	}
	// Resolution happens inside the retry loop: a lease-valid cache
	// hit costs an atomic load, and a send that fails through a cached
	// location invalidates the entry so the next attempt re-resolves
	// through the authority — the convergence path for stale caches.
	// ErrNotBound / ErrNoAuthority still classify permanent and stop
	// the loop on the first attempt.
	_, err := s.retry.DoWithCancel(s.quit, func() error {
		loc, err := s.resolver.Resolve(dest)
		if err != nil {
			return err
		}
		if err := s.sendToAddr(a, loc.Address); err != nil {
			s.resolver.Invalidate(dest)
			return err
		}
		return nil
	})
	if err == nil {
		s.stats.dispatches.Add(1)
	}
	return err
}

// rankAlternatives orders a stop's alternative servers nearest-first
// using the configured proximity estimate, resolving each through the
// cache. This server itself ranks closest (a local re-host beats any
// network hop); unmeasured or unresolvable alternatives keep their
// itinerary order after the measured ones. Without a Proximity func
// the itinerary order is returned untouched — the author's preference
// stands.
func (s *Server) rankAlternatives(servers []names.Name) []names.Name {
	if s.cfg.Proximity == nil || len(servers) < 2 {
		return servers
	}
	type ranked struct {
		n  names.Name
		d  time.Duration
		ok bool
	}
	ds := make([]ranked, len(servers))
	for i, srv := range servers {
		ds[i] = ranked{n: srv}
		if srv == s.Name() {
			ds[i].ok = true // d = 0: local re-host
			continue
		}
		loc, err := s.resolver.Resolve(srv)
		if err != nil {
			continue
		}
		d := s.cfg.Proximity(s.cfg.Address, loc.Address)
		ds[i] = ranked{n: srv, d: d, ok: d > 0}
	}
	sort.SliceStable(ds, func(i, j int) bool {
		switch {
		case ds[i].ok && ds[j].ok:
			return ds[i].d < ds[j].d
		case ds[i].ok:
			return true
		default:
			return false
		}
	})
	out := make([]names.Name, len(ds))
	for i := range ds {
		out[i] = ds[i].n
	}
	return out
}

// afterTransferAck runs on the sending side of every accepted transfer
// (wired as the endpoint's OnAck hook): the receiver's authenticated
// ack proves the agent now lives at addr, so the authoritative rebind
// and the local forwarding hint piggyback on it — the hot-destination
// path costs zero extra round-trips. This replaces the old post-send
// Bind whose error was silently discarded: a rebind failure here is
// permanent by classification (a malformed name or an authority the
// federation does not serve will not improve with retrying), so it is
// not retried; it is counted in Stats.RebindFailures and the possibly
// stale cache entry is dropped so later sends re-resolve through the
// authority.
func (s *Server) afterTransferAck(a *agent.Agent, receiver names.Name, addr string) {
	loc := names.Location{Address: addr, ServerName: receiver}
	if err := s.cfg.NameService.Bind(a.Name, loc); err != nil {
		s.stats.rebindFailures.Add(1)
		s.resolver.Invalidate(a.Name)
		return
	}
	s.resolver.Observe(a.Name, loc)
}

func (s *Server) sendToAddr(a *agent.Agent, addr string) error {
	if s.pool == nil {
		// Permanent: a server with no dialer will not grow one by
		// retrying, and the retry loop must fail the agent home at
		// once instead of burning its backoff budget.
		return retry.Permanent(errors.New("server: config needs Dial"))
	}
	// The post-ack rebind happens in afterTransferAck (the endpoint's
	// OnAck hook), which fires only after the receiver accepts: a
	// failed transfer never leaves the directory pointing at a server
	// that never got the agent.
	return s.pool.Send(addr, a)
}

// deliver completes an agent's journey: hand it to a local waiter, or
// send it to its home site. A homecoming that fails even after retries
// parks the agent in the dead-letter store for periodic redelivery —
// a completed agent is never dropped because its home was unreachable.
func (s *Server) deliver(a *agent.Agent) {
	if a.Credentials.HomeSite != "" && a.Credentials.HomeSite != s.cfg.Address {
		home := a.Credentials.HomeSite
		_, err := s.retry.DoWithCancel(s.quit, func() error {
			return s.sendToAddr(a, home)
		})
		if err != nil {
			a.Logf("%s: homecoming failed: %v (parked for redelivery)", s.Name(), err)
			s.park(a, home)
			return
		}
		s.stats.dispatches.Add(1)
		return
	}
	s.deliverLocal(a)
}

// ChannelPoolStats returns a snapshot of the outbound channel pool's
// counters (dials, reuses, evictions, transparent redials, occupancy).
func (s *Server) ChannelPoolStats() transfer.PoolStats {
	if s.pool == nil {
		return transfer.PoolStats{}
	}
	return s.pool.Stats()
}
