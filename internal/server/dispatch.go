package server

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/agent"
	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/retry"
	"repro/internal/sandbox"
	"repro/internal/transfer"
)

// This file owns outbound agent movement: itinerary dispatch, go()
// migrations, the retrying transfer sends underneath both, and final
// delivery (homecoming) with dead-letter parking.

// dispatchStop sends the agent to the first reachable alternative of a
// stop. Each alternative gets the full transient-retry treatment
// before the next one is tried (the paper's "try the next one"
// pattern, §4); only when every alternative is exhausted does the
// agent fail home, with a log entry naming each attempt.
func (s *Server) dispatchStop(a *agent.Agent, stop agent.Stop) {
	var attempts []string
	for _, srv := range stop.Servers {
		if srv == s.Name() {
			// The next stop is this server — rare but legal; re-host.
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.host(a)
			}()
			return
		}
		err := s.sendTo(a, srv)
		if err == nil {
			return
		}
		attempts = append(attempts, fmt.Sprintf("%s: %v", srv, err))
	}
	s.stats.dispatchFailures.Add(1)
	a.Logf("%s: all alternatives unreachable: %s", s.Name(), strings.Join(attempts, "; "))
	s.failHome(a)
}

// dispatchTo handles a go()-requested migration.
func (s *Server) dispatchTo(a *agent.Agent, dest names.Name, entry string) {
	a.PendingEntry = entry
	if dest == s.Name() {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.host(a)
		}()
		return
	}
	if err := s.sendTo(a, dest); err != nil {
		a.Logf("%s: go %s: %v", s.Name(), dest, err)
		s.stats.dispatchFailures.Add(1)
		s.failHome(a) // clears PendingEntry
	}
}

// sendTo transfers the agent to a named server via the transfer
// protocol, retrying transient failures under the server's policy.
// Dispatch is a server-domain privilege.
func (s *Server) sendTo(a *agent.Agent, dest names.Name) error {
	if err := s.secmgr.Check(domain.ServerID, sandbox.OpAgentDispatch,
		sandbox.Target{Name: dest.String()}); err != nil {
		return retry.Permanent(err)
	}
	// Narrowing delegation happens once per send, not once per
	// attempt: each Delegate call appends a signed link.
	if !s.cfg.DispatchRestriction.IsEmpty() {
		narrowed := a.Credentials.EffectiveRights().Restrict(s.cfg.DispatchRestriction)
		if err := a.Credentials.Delegate(s.cfg.Identity, narrowed, time.Time{}); err != nil {
			return retry.Permanent(fmt.Errorf("server: dispatch delegation: %w", err))
		}
	}
	loc, err := s.cfg.NameService.Lookup(dest)
	if err != nil {
		return err // ErrNotBound classifies as permanent
	}
	_, err = s.retry.DoWithCancel(s.quit, func() error {
		return s.sendToAddr(a, loc.Address)
	})
	if err == nil {
		s.stats.dispatches.Add(1)
	}
	return err
}

func (s *Server) sendToAddr(a *agent.Agent, addr string) error {
	if s.pool == nil {
		// Permanent: a server with no dialer will not grow one by
		// retrying, and the retry loop must fail the agent home at
		// once instead of burning its backoff budget.
		return retry.Permanent(errors.New("server: config needs Dial"))
	}
	if err := s.pool.Send(addr, a); err != nil {
		return err
	}
	// Re-bind only after the receiver's ack: a failed transfer must not
	// leave the name service pointing at a server that never got the
	// agent.
	_ = s.cfg.NameService.Bind(a.Name, names.Location{Address: addr})
	return nil
}

// deliver completes an agent's journey: hand it to a local waiter, or
// send it to its home site. A homecoming that fails even after retries
// parks the agent in the dead-letter store for periodic redelivery —
// a completed agent is never dropped because its home was unreachable.
func (s *Server) deliver(a *agent.Agent) {
	if a.Credentials.HomeSite != "" && a.Credentials.HomeSite != s.cfg.Address {
		home := a.Credentials.HomeSite
		_, err := s.retry.DoWithCancel(s.quit, func() error {
			return s.sendToAddr(a, home)
		})
		if err != nil {
			a.Logf("%s: homecoming failed: %v (parked for redelivery)", s.Name(), err)
			s.park(a, home)
			return
		}
		s.stats.dispatches.Add(1)
		return
	}
	s.deliverLocal(a)
}

// ChannelPoolStats returns a snapshot of the outbound channel pool's
// counters (dials, reuses, evictions, transparent redials, occupancy).
func (s *Server) ChannelPoolStats() transfer.PoolStats {
	if s.pool == nil {
		return transfer.PoolStats{}
	}
	return s.pool.Stats()
}
