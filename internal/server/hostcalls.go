package server

import (
	"errors"
	"fmt"

	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/vm"
)

// Host-call errors surfaced to agent code as aborted executions.
var (
	ErrBadArg    = errors.New("server: bad host-call argument")
	ErrBadHandle = errors.New("server: invalid resource handle")
)

// installHostAPI wires the agent environment primitives (§4) into a
// visit's VM environment. Every call runs on the agent's own activity —
// the paper notes for Fig. 6 that "it is the requesting agent's thread
// which is executing these methods" — and the visit's domain ID flows
// into every privileged operation, so the security manager and proxies
// always know the calling protection domain.
func (s *Server) installHostAPI(v *visit) {
	host := v.env.Host
	a := v.agent

	need := func(args []vm.Value, n int, name string) error {
		if len(args) != n {
			return fmt.Errorf("%w: %s wants %d args, got %d", ErrBadArg, name, n, len(args))
		}
		return nil
	}
	str := func(args []vm.Value, i int, name string) (string, error) {
		if args[i].Kind != vm.KindStr {
			return "", fmt.Errorf("%w: %s arg %d must be str", ErrBadArg, name, i)
		}
		return args[i].Str, nil
	}

	// --- identity and journey queries -----------------------------

	host["agent_name"] = func(args []vm.Value) (vm.Value, error) {
		return vm.S(a.Name.String()), nil
	}
	host["owner_name"] = func(args []vm.Value) (vm.Value, error) {
		return vm.S(a.Credentials.Owner.String()), nil
	}
	host["server_name"] = func(args []vm.Value) (vm.Value, error) {
		return vm.S(s.Name().String()), nil
	}
	host["hops"] = func(args []vm.Value) (vm.Value, error) {
		return vm.I(int64(a.Hops)), nil
	}

	// --- monitoring and control of other agents (§4) ----------------
	//
	// "Other primitives provided by the agent server include ...
	// monitoring the status of child agents, issuing control commands
	// to them." Status queries are open; control is mediated: the
	// server's Kill enforces that only the same owner may control an
	// agent, so one user's agents can manage each other but nobody
	// else's.

	host["agent_status"] = func(args []vm.Value) (vm.Value, error) {
		if err := need(args, 1, "agent_status"); err != nil {
			return vm.Nil(), err
		}
		nameStr, err := str(args, 0, "agent_status")
		if err != nil {
			return vm.Nil(), err
		}
		an, err := names.Parse(nameStr)
		if err != nil {
			return vm.Nil(), fmt.Errorf("%w: agent name: %v", ErrBadArg, err)
		}
		st, ok := s.AgentStatus(an)
		if !ok {
			return vm.Nil(), nil
		}
		return vm.S(string(st)), nil
	}

	host["kill_agent"] = func(args []vm.Value) (vm.Value, error) {
		if err := need(args, 1, "kill_agent"); err != nil {
			return vm.Nil(), err
		}
		nameStr, err := str(args, 0, "kill_agent")
		if err != nil {
			return vm.Nil(), err
		}
		an, err := names.Parse(nameStr)
		if err != nil {
			return vm.Nil(), fmt.Errorf("%w: agent name: %v", ErrBadArg, err)
		}
		// The kill is issued under the calling agent's owner; the
		// server's ownership check decides.
		if err := s.Kill(a.Credentials.Owner, an); err != nil {
			return vm.Nil(), err
		}
		return vm.B(true), nil
	}

	// --- reporting -------------------------------------------------

	host["log"] = func(args []vm.Value) (vm.Value, error) {
		if err := need(args, 1, "log"); err != nil {
			return vm.Nil(), err
		}
		a.Log = append(a.Log, fmt.Sprintf("%s: %s", s.Name(), args[0].Text()))
		return vm.Nil(), nil
	}
	host["report"] = func(args []vm.Value) (vm.Value, error) {
		if err := need(args, 1, "report"); err != nil {
			return vm.Nil(), err
		}
		a.Results = append(a.Results, args[0].Clone())
		return vm.Nil(), nil
	}

	// --- mobility: the go primitive (§4) ---------------------------
	//
	// go(server_name, entry) transports the agent to the named server
	// and resumes at entry. It unwinds the current execution; code
	// after a successful go never runs at the departing server.

	host["go"] = func(args []vm.Value) (vm.Value, error) {
		if err := need(args, 2, "go"); err != nil {
			return vm.Nil(), err
		}
		destStr, err := str(args, 0, "go")
		if err != nil {
			return vm.Nil(), err
		}
		entry, err := str(args, 1, "go")
		if err != nil {
			return vm.Nil(), err
		}
		dest, err := names.Parse(destStr)
		if err != nil {
			return vm.Nil(), fmt.Errorf("%w: go destination: %v", ErrBadArg, err)
		}
		v.migrateDest = dest
		v.migrateEntry = entry
		return vm.Nil(), errMigrate
	}

	// colocate(resource_name, entry) is the §4 higher-level mobility
	// abstraction: resolve the named resource's current location via
	// the name service and migrate there, resuming at entry. Built on
	// the go primitive exactly as the paper describes.
	host["colocate"] = func(args []vm.Value) (vm.Value, error) {
		if err := need(args, 2, "colocate"); err != nil {
			return vm.Nil(), err
		}
		resStr, err := str(args, 0, "colocate")
		if err != nil {
			return vm.Nil(), err
		}
		entry, err := str(args, 1, "colocate")
		if err != nil {
			return vm.Nil(), err
		}
		rn, err := names.Parse(resStr)
		if err != nil {
			return vm.Nil(), fmt.Errorf("%w: colocate resource: %v", ErrBadArg, err)
		}
		// ResolveAll answers nearest-first when the server has a
		// proximity estimate, so a resource replicated on several
		// servers co-locates the agent with its closest live copy.
		locs, err := s.resolver.ResolveAll(rn)
		if err != nil {
			return vm.Nil(), err
		}
		dest := names.Name{}
		for _, loc := range locs {
			if !loc.ServerName.IsZero() {
				dest = loc.ServerName
				break
			}
		}
		if dest.IsZero() {
			return vm.Nil(), fmt.Errorf("%w: resource %s has no hosting server", ErrBadArg, rn)
		}
		v.migrateDest = dest
		v.migrateEntry = entry
		return vm.Nil(), errMigrate
	}

	// --- the resource binding protocol (Fig. 6) --------------------
	//
	// get_resource implements steps 2–5: the agent requests a global
	// resource name; the environment looks it up in the registry,
	// upcalls getProxy with the agent's credentials (fetched from the
	// domain database), and returns a handle to the proxy. Step 6 is
	// the invoke call below.

	host["get_resource"] = func(args []vm.Value) (vm.Value, error) {
		if err := need(args, 1, "get_resource"); err != nil {
			return vm.Nil(), err
		}
		nameStr, err := str(args, 0, "get_resource")
		if err != nil {
			return vm.Nil(), err
		}
		rn, err := names.Parse(nameStr)
		if err != nil {
			return vm.Nil(), fmt.Errorf("%w: resource name: %v", ErrBadArg, err)
		}
		br, err := s.bindResource(v, rn) // steps 3-4 (binding.go)
		if err != nil {
			return vm.Nil(), err
		}
		return v.nextHandle(br), nil // step 5
	}

	// invoke(handle, method, args...) is step 6: access the resource
	// via the proxy; every protection check lives in the proxy. The
	// shared invocation path (binding.go) settles the accounting charge
	// into the domain database's usage record.
	host["invoke"] = func(args []vm.Value) (vm.Value, error) {
		if len(args) < 2 {
			return vm.Nil(), fmt.Errorf("%w: invoke wants (handle, method, ...)", ErrBadArg)
		}
		if args[0].Kind != vm.KindHandle {
			return vm.Nil(), fmt.Errorf("%w: invoke arg 0 must be a resource handle", ErrBadArg)
		}
		method, err := str(args, 1, "invoke")
		if err != nil {
			return vm.Nil(), err
		}
		br, ok := v.handles[args[0].Handle]
		if !ok {
			return vm.Nil(), ErrBadHandle
		}
		return s.invokeProxy(v, br, method, args[2:])
	}

	// resource_methods(handle) lists the methods currently enabled on
	// a proxy, letting agents adapt to restricted grants.
	host["resource_methods"] = func(args []vm.Value) (vm.Value, error) {
		if err := need(args, 1, "resource_methods"); err != nil {
			return vm.Nil(), err
		}
		if args[0].Kind != vm.KindHandle {
			return vm.Nil(), fmt.Errorf("%w: resource_methods wants a handle", ErrBadArg)
		}
		br, ok := v.handles[args[0].Handle]
		if !ok {
			return vm.Nil(), ErrBadHandle
		}
		proxy := br.proxy
		var out []vm.Value
		for _, m := range proxy.MethodNames() {
			if proxy.IsEnabled(m) {
				out = append(out, vm.S(m))
			}
		}
		return vm.L(out...), nil
	}

	// --- dynamic extension of server capabilities (§5.5, C9) -------
	//
	// install_resource(resource_name, module, policy_path) registers
	// a resource whose methods are implemented by one of the agent's
	// own modules. The resource object stays behind when the agent
	// departs; other agents then access it "via the usual
	// proxy-request mechanism".

	host["install_resource"] = func(args []vm.Value) (vm.Value, error) {
		if err := need(args, 3, "install_resource"); err != nil {
			return vm.Nil(), err
		}
		nameStr, err := str(args, 0, "install_resource")
		if err != nil {
			return vm.Nil(), err
		}
		modName, err := str(args, 1, "install_resource")
		if err != nil {
			return vm.Nil(), err
		}
		path, err := str(args, 2, "install_resource")
		if err != nil {
			return vm.Nil(), err
		}
		rn, err := names.Parse(nameStr)
		if err != nil {
			return vm.Nil(), fmt.Errorf("%w: resource name: %v", ErrBadArg, err)
		}
		def, err := s.newVMResource(v, rn, modName, path)
		if err != nil {
			return vm.Nil(), err
		}
		var rules []policy.Rule
		if s.cfg.InstalledResourcePolicy {
			rules = append(rules, policyRuleForInstalled(path))
		}
		// Registration is a mediated operation (step 1 of Fig. 6,
		// performed by an agent this time); binding.go owns the path.
		if err := s.installAgentResource(v, rn, def, rules...); err != nil {
			return vm.Nil(), err
		}
		return vm.B(true), nil
	}

	// --- inter-agent communication (§5.1, §5.5) ---------------------
	//
	// Co-located agents communicate through the same proxy scheme: an
	// agent registers a mailbox resource; peers obtain proxies to it
	// and invoke its send method; the owner drains it with recv.

	host["make_mailbox"] = func(args []vm.Value) (vm.Value, error) {
		if err := need(args, 2, "make_mailbox"); err != nil {
			return vm.Nil(), err
		}
		nameStr, err := str(args, 0, "make_mailbox")
		if err != nil {
			return vm.Nil(), err
		}
		path, err := str(args, 1, "make_mailbox")
		if err != nil {
			return vm.Nil(), err
		}
		rn, err := names.Parse(nameStr)
		if err != nil {
			return vm.Nil(), fmt.Errorf("%w: mailbox name: %v", ErrBadArg, err)
		}
		def := s.newMailbox(v, rn, path)
		// The owner gets full access; everyone else may only send.
		if err := s.installAgentResource(v, rn, def,
			policyOwnerRule(a.Credentials.Owner, path),
			policySendRule(path)); err != nil {
			return vm.Nil(), err
		}
		return vm.B(true), nil
	}

	host["recv"] = func(args []vm.Value) (vm.Value, error) {
		if err := need(args, 0, "recv"); err != nil {
			return vm.Nil(), err
		}
		v.mailMu.Lock()
		defer v.mailMu.Unlock()
		if len(v.mailbox) == 0 {
			return vm.Nil(), nil
		}
		msg := v.mailbox[0]
		v.mailbox = v.mailbox[1:]
		return msg, nil
	}
}
