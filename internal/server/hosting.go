package server

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"repro/internal/admission"
	"repro/internal/agent"
	"repro/internal/domain"
	"repro/internal/loader"
	"repro/internal/names"
	"repro/internal/sandbox"
	"repro/internal/vm"
)

// This file owns agent hosting: the arrival gate (admit), local launch,
// the visit state machine (host), homecoming delivery to waiters, and
// the failure path home.

// admit is the arrival gate: credential verification ("mutual
// authentication of the agent and server"), tier admission (load
// shedding), bundle verification, and admission control. Rejections
// travel back to the sending server.
func (s *Server) admit(a *agent.Agent, from names.Name) error {
	if err := a.Credentials.Verify(s.cfg.Verifier, time.Now()); err != nil {
		return fmt.Errorf("credentials: %w", err)
	}
	if a.Name != a.Credentials.AgentName {
		return errors.New("agent name does not match credentials")
	}
	// Tier admission (admission.Gate, PROTOCOLS.md §3.3) runs after the
	// owner's identity is verified — an unverified owner name must not
	// pick whose bucket to drain — and before the expensive bundle and
	// manifest work, so an overload is shed at the cheapest point. The
	// shed error carries a retry-after hint back to the sender, whose
	// retry/dead-letter machinery classifies it transient.
	ticket, err := s.gate.Admit(a.Credentials.Owner, a.Credentials.Digest())
	if err != nil {
		return err
	}
	// Any rejection below must hand back the concurrency slot the
	// ticket may hold; only a fully admitted agent carries it into the
	// visit (released when the visit terminates).
	admitted := false
	defer func() {
		if !admitted {
			ticket.Release()
		}
	}()
	if err := vm.VerifyBundle(a.Code); err != nil {
		return fmt.Errorf("code: %w", err)
	}
	// Code-integrity check (§2): when the owner pinned the bundle
	// digest, a host that patched or swapped the agent's code en route
	// is caught here.
	if len(a.Credentials.CodeDigest) > 0 {
		digest, err := agent.BundleDigest(a.Code)
		if err != nil {
			return err
		}
		if !bytes.Equal(digest, a.Credentials.CodeDigest) {
			return errors.New("code does not match the owner-signed digest")
		}
	}
	// Manifest admission control (admission.go): reject agents whose
	// statically computed access needs exceed what this server's
	// policy would ever grant them — before any VM starts.
	if s.cfg.Admission == AdmissionEnforce {
		if err := s.checkAdmission(a); err != nil {
			s.stats.admissionRejects.Add(1)
			return err
		}
	}
	s.visitMu.Lock()
	defer s.visitMu.Unlock()
	if s.cfg.MaxAgents > 0 && len(s.visits) >= s.cfg.MaxAgents {
		return ErrCapacity
	}
	admitted = true
	a.SetHostState(ticket)
	return nil
}

// LaunchLocal submits an agent directly to this server (the path used
// by a local application, Fig. 1's "submitted to it either by a
// user-level application or by another agent server via the network").
func (s *Server) LaunchLocal(a *agent.Agent) error {
	if err := s.admit(a, s.Name()); err != nil {
		return err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.host(a)
	}()
	return nil
}

// Await registers interest in an agent's homecoming. The returned
// channel receives the agent when it completes its itinerary and is
// delivered at this server (its home site). An agent that already came
// home before anyone awaited it is handed over immediately from the
// held map — homecomings are never dropped for want of a waiter.
//
// The held check and the waiter registration must be one atomic step
// against deliverLocal's mirror-image check, so this is one of the two
// places that nest visitMu → parkMu (the documented lock order, §8.5).
func (s *Server) Await(agentName names.Name) <-chan *agent.Agent {
	ch := make(chan *agent.Agent, 1)
	s.visitMu.Lock()
	s.parkMu.Lock()
	if a, ok := s.held[agentName]; ok {
		delete(s.held, agentName)
		s.parkMu.Unlock()
		s.visitMu.Unlock()
		ch <- a
		s.stats.delivered.Add(1)
		return ch
	}
	s.waiters[agentName] = ch
	s.parkMu.Unlock()
	s.visitMu.Unlock()
	return ch
}

// host runs one agent visit end to end: domain creation, namespace
// construction, entry execution, then migration / homecoming.
func (s *Server) host(a *agent.Agent) {
	s.stats.arrivals.Add(1)

	// The admission ticket (if any) rode in from the arrival gate. Its
	// concurrency slot is held for the duration of the visit and handed
	// back on every terminal path; Release is idempotent and nil-safe,
	// so the defer is a pure backstop for early returns. Re-hosting
	// paths that bypass admit (self-dispatch) simply find no ticket.
	ticket, _ := a.TakeHostState().(*admission.Ticket)
	defer ticket.Release()

	// Homecoming: itinerary finished and no pending detour — deliver
	// to the waiting owner without creating an execution domain.
	if a.PendingEntry == "" && a.Itinerary.Done() {
		ticket.Release()
		s.deliver(a)
		return
	}

	// Domain creation (§5.3): mediated by the security manager, then
	// recorded in the domain database.
	if err := s.secmgr.Check(domain.ServerID, sandbox.OpDomainDBUpdate, sandbox.Target{Name: a.Name.String()}); err != nil {
		return
	}
	dom, err := s.db.Admit(domain.ServerID, &a.Credentials)
	if err != nil {
		return
	}
	ns, err := loader.NewNamespace(s.cfg.Trusted, a.Code, s.cfg.StrictNamespaces)
	if err != nil {
		a.Log = append(a.Log, fmt.Sprintf("%s: namespace rejected: %v", s.Name(), err))
		_ = s.db.Remove(domain.ServerID, dom)
		s.failHome(a)
		return
	}

	// A tier may cap the fuel a visit burns below the server default —
	// quota enforcement for low-trust principals (ISSUE 6 tentpole).
	fuel := s.cfg.Fuel
	if ticket != nil && ticket.Fuel > 0 && ticket.Fuel < fuel {
		fuel = ticket.Fuel
	}
	v := &visit{
		agent:   a,
		dom:     dom,
		ns:      ns,
		meter:   vm.NewMeter(fuel),
		credKey: a.Credentials.Digest(),
		handles: make(map[uint64]*boundResource),
		usage:   make(map[string]*visitUsage),
	}
	v.env = &vm.Env{
		Globals:   a.State,
		Host:      make(map[string]vm.HostFunc),
		Resolver:  ns,
		Meter:     v.meter,
		MaxFrames: vm.DefaultMaxFrames,
		Owner:     dom,
	}
	vm.InstallBuiltins(v.env)
	s.installHostAPI(v)

	s.visitMu.Lock()
	s.visits[a.Name] = v
	s.visitMu.Unlock()

	// finish ends the visit: record the terminal status, flush the
	// visit's locally batched usage into the domain database and settle
	// it into the per-owner ledger ("mechanisms ... for metering of
	// resource use and charging for such usage", §2), and tear down the
	// protection domain. It must run before the agent is dispatched or
	// delivered so observers never see a live domain for a departed
	// agent — every terminal path below (departure, homecoming, VM
	// failure, kill) calls it exactly once, so no accounting is lost
	// even when the agent afterwards fails home or is parked in the
	// dead-letter store.
	var finished bool
	finish := func(st domain.Status) {
		if finished {
			return
		}
		finished = true
		ticket.Release()
		_ = s.db.SetStatus(domain.ServerID, dom, st)
		s.setFinalStatus(a.Name, st)
		s.visitMu.Lock()
		delete(s.visits, a.Name)
		s.visitMu.Unlock()
		if total, _ := s.db.FlushUsage(domain.ServerID, dom, v.usageBatch()); total > 0 {
			s.finalMu.Lock()
			s.ledger[a.Credentials.Owner] += total
			s.finalMu.Unlock()
		}
		_ = s.db.RevokeAll(domain.ServerID, dom)
		_ = s.db.Remove(domain.ServerID, dom)
	}
	defer finish(domain.StatusTerminated) // backstop; normally a no-op

	mainMod, err := v.ns.Module(a.MainModule)
	if err != nil {
		a.Log = append(a.Log, fmt.Sprintf("%s: %v", s.Name(), err))
		finish(domain.StatusFailed)
		s.failHome(a)
		return
	}

	// First arrival anywhere: evaluate module-level initializers.
	if !a.Initialized {
		if _, err := vm.Run(v.env, mainMod, "__init__"); err != nil {
			a.Log = append(a.Log, fmt.Sprintf("%s: init: %v", s.Name(), err))
			finish(domain.StatusFailed)
			s.failHome(a)
			return
		}
		a.Initialized = true
	}

	// Select the entry to run: a pending detour entry (set by go) or
	// the itinerary's current stop if it names this server.
	entry := a.PendingEntry
	a.PendingEntry = ""
	advance := false
	if entry == "" {
		if stop, ok := a.Itinerary.Current(); ok {
			for _, srv := range stop.Servers {
				if srv == s.Name() {
					entry = stop.Entry
					advance = true
					break
				}
			}
		}
	}
	if entry != "" {
		_, err = vm.Run(v.env, mainMod, entry)
		switch {
		case err == nil:
			// fall through to itinerary handling
		case errors.Is(err, errMigrate):
			// A go() detour consumes the itinerary stop that was
			// running: the agent has taken over its own routing.
			if advance {
				a.Itinerary.Advance()
			}
			a.Hops++
			finish(domain.StatusDeparted)
			s.dispatchTo(a, v.migrateDest, v.migrateEntry)
			return
		case errors.Is(err, vm.ErrAborted):
			a.Log = append(a.Log, fmt.Sprintf("%s: %s: killed", s.Name(), entry))
			finish(domain.StatusKilled)
			s.failHome(a)
			return
		default:
			a.Log = append(a.Log, fmt.Sprintf("%s: %s: %v", s.Name(), entry, err))
			finish(domain.StatusFailed)
			s.failHome(a)
			return
		}
	}
	if advance {
		a.Itinerary.Advance()
	}
	if stop, ok := a.Itinerary.Current(); ok {
		a.Hops++
		finish(domain.StatusDeparted)
		s.dispatchStop(a, stop)
		return
	}
	finish(domain.StatusTerminated)
	s.deliver(a)
}

// failHome abandons the agent's remaining itinerary and sends it home
// so the owner sees the log. Any pending go() entry is cleared: a
// failed (possibly parked-then-redelivered) agent must never resume a
// stale entry function on arrival.
func (s *Server) failHome(a *agent.Agent) {
	a.PendingEntry = ""
	a.Itinerary.Abandon()
	// The tombstone left by the visit said "departed"; the departure
	// failed, so correct it (without masking killed/failed records).
	s.finalMu.Lock()
	if st, ok := s.statuses[a.Name]; !ok || st == domain.StatusDeparted {
		s.statuses[a.Name] = domain.StatusFailed
	}
	s.finalMu.Unlock()
	s.deliver(a)
}

// deliverLocal hands a homecoming agent to its waiter, or holds it for
// a future Await call. The waiter check and the held insertion are one
// atomic step against Await — the second of the two visitMu → parkMu
// nestings (§8.5).
func (s *Server) deliverLocal(a *agent.Agent) {
	s.visitMu.Lock()
	s.parkMu.Lock()
	ch, ok := s.waiters[a.Name]
	if ok {
		delete(s.waiters, a.Name)
	} else {
		s.held[a.Name] = a
	}
	s.parkMu.Unlock()
	s.visitMu.Unlock()
	if ok {
		ch <- a
		s.stats.delivered.Add(1)
	}
}
