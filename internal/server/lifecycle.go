package server

import (
	"errors"
	"net"

	"repro/internal/agent"
	"repro/internal/names"
)

// This file owns the server's process lifecycle: listener management
// (Start/Stop), the crash/restart fault-injection pair, and the accept
// loop feeding arriving transfers into hosting.

// Start binds the listener and begins accepting agent transfers, and
// starts the dead-letter redelivery loop.
func (s *Server) Start() error {
	if s.cfg.Listen == nil {
		return errors.New("server: config needs Listen")
	}
	l, err := s.cfg.Listen(s.cfg.Address)
	if err != nil {
		return err
	}
	s.netMu.Lock()
	s.listener = l
	s.netMu.Unlock()
	if err := s.cfg.NameService.Bind(s.Name(), names.Location{
		Address: s.cfg.Address, ServerName: s.Name(),
	}); err != nil {
		_ = l.Close()
		return err
	}
	s.wg.Add(1)
	go s.acceptLoop(l)
	every := s.cfg.RedeliverEvery
	if every <= 0 {
		every = DefaultRedeliverEvery
	}
	s.wg.Add(1)
	go s.redeliverLoop(every)
	return nil
}

// Stop shuts the server down and waits for hosted agents to finish
// their current activity. Agents still parked in the dead-letter store
// remain queryable via ParkedAgents (they are not lost, just stranded
// until the operator restarts or drains the server).
func (s *Server) Stop() {
	s.quitOnce.Do(func() { close(s.quit) })
	s.netMu.Lock()
	l := s.listener
	s.listener = nil
	s.netMu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	s.cfg.NameService.Unbind(s.Name())
	// Kill inbound transfer streams: a peer's pooled sender would hold
	// its channel open (and this server's serving goroutine with it)
	// indefinitely. The peer sees a closed session and re-dials
	// elsewhere — or parks the agent — under its own retry policy.
	s.closeInbound()
	s.wg.Wait()
	// Only after hosted agents finished their final sends (retries are
	// cancelled by quit) is the outbound pool drained.
	if s.pool != nil {
		s.pool.Close()
	}
}

// closeInbound tears down every live inbound transfer stream.
func (s *Server) closeInbound() {
	s.netMu.Lock()
	conns := make([]net.Conn, 0, len(s.inbound))
	for c := range s.inbound {
		conns = append(conns, c)
	}
	s.netMu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Crash simulates a machine failure for fault-injection tests: the
// listener drops, so new transfers are refused, but — unlike Stop —
// the name-service binding stays (a crashed machine does not
// deregister itself) and nothing else is torn down. Restart brings
// the server back at the same address; senders are expected to ride
// out the gap with retries and dead-letter redelivery.
func (s *Server) Crash() {
	s.netMu.Lock()
	l := s.listener
	s.listener = nil
	s.netMu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	// A machine failure severs established connections in both
	// directions: inbound streams drop (peers' pooled sessions to this
	// server die and must re-dial after Restart) and this server's own
	// warm outbound channels do not survive into its afterlife.
	s.closeInbound()
	if s.pool != nil {
		s.pool.Reset()
	}
}

// Restart re-binds the listener after a Crash. A no-op if the server
// is already accepting.
func (s *Server) Restart() error {
	s.netMu.Lock()
	if s.listener != nil {
		s.netMu.Unlock()
		return nil
	}
	s.netMu.Unlock()
	l, err := s.cfg.Listen(s.cfg.Address)
	if err != nil {
		return err
	}
	s.netMu.Lock()
	s.listener = l
	s.netMu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return nil
}

// acceptLoop serves one listener incarnation; Crash/Restart cycle the
// loop with the listener they close and rebind.
func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
			}
			s.netMu.Lock()
			alive := s.listener == l
			s.netMu.Unlock()
			if !alive {
				return // crashed or stopped; Restart spawns a new loop
			}
			continue
		}
		s.netMu.Lock()
		s.inbound[conn] = struct{}{}
		s.netMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.netMu.Lock()
				delete(s.inbound, conn)
				s.netMu.Unlock()
			}()
			// One connection carries a stream of transfers (a pooled
			// sender keeps it open); each accepted agent is hosted on
			// its own goroutine so the channel is free for the next.
			_ = s.endpoint.ServeConn(conn, s.admit, func(a *agent.Agent) {
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					s.host(a)
				}()
			})
		}()
	}
}
