package server

import (
	"fmt"

	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/vm"
)

// mailboxCapacity bounds queued messages per mailbox, so a hostile
// peer cannot exhaust server memory by flooding (an annoyance attack,
// §5).
const mailboxCapacity = 1024

// newMailbox builds the mailbox resource through which co-located
// agents communicate. The paper folds inter-agent communication into
// the same protection scheme: "an agent can make itself available to
// other agents in similar fashion, by registering itself as a
// resource" — peers obtain proxies to the mailbox and invoke send;
// the owning agent drains it with the recv primitive. The proxy layer
// supplies authentication of the sender's domain and policy-based
// screening for free.
func (s *Server) newMailbox(v *visit, rn names.Name, path string) *resource.Def {
	return &resource.Def{
		ResourceImpl: resource.ResourceImpl{
			Name:  rn,
			Owner: v.agent.Credentials.Owner,
			Desc:  fmt.Sprintf("mailbox of %s", v.agent.Name),
		},
		Path: path,
		Methods: map[string]resource.Method{
			// send(message) — open to any principal the policy lets
			// through; the proxy identifies the sending domain.
			"send": func(args []vm.Value) (vm.Value, error) {
				if len(args) != 1 {
					return vm.Nil(), fmt.Errorf("%w: send wants 1 arg", ErrBadArg)
				}
				v.mailMu.Lock()
				defer v.mailMu.Unlock()
				if len(v.mailbox) >= mailboxCapacity {
					return vm.Nil(), fmt.Errorf("server: mailbox %s full", rn)
				}
				v.mailbox = append(v.mailbox, args[0].Clone())
				return vm.B(true), nil
			},
			// pending() — queue length; owner-restricted by policy.
			"pending": func(args []vm.Value) (vm.Value, error) {
				v.mailMu.Lock()
				defer v.mailMu.Unlock()
				return vm.I(int64(len(v.mailbox))), nil
			},
		},
		Controllers: []domain.ID{v.dom},
	}
}

// policyOwnerRule grants the mailbox owner full access.
func policyOwnerRule(owner names.Name, path string) policy.Rule {
	return policy.Rule{Principal: owner, Resource: path, Methods: []string{"*"}}
}

// policySendRule lets every principal deliver to the mailbox.
func policySendRule(path string) policy.Rule {
	return policy.Rule{AnyPrincipal: true, Resource: path, Methods: []string{"send"}}
}
