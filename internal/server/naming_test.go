package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/asl"
	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/retry"
	"repro/internal/vm"
)

// Server-level tests for the federated name service: authority
// partitioning on the dispatch path, proximity-ranked routing,
// forwarding-hint rebinds on transfer acks, and the stale-cache
// convergence chaos run.

// startNamed starts a server under an arbitrary global name (so tests
// can place servers under different naming authorities) against any
// Directory implementation.
func (f *fixture) startNamed(t *testing.T, name names.Name, addr string, dir names.Directory, mut ...func(*Config)) *Server {
	t.Helper()
	id, err := keys.NewIdentity(f.ca, name, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Identity:       id,
		Verifier:       f.ca.Verifier(),
		Address:        addr,
		NameService:    dir,
		Policy:         policy.NewEngine(),
		Dial:           func(a string) (net.Conn, error) { return f.nw.DialFrom(addr, a) },
		Listen:         func(a string) (net.Listener, error) { return f.nw.Listen(a) },
		Retry:          fastRetry(),
		RedeliverEvery: 20 * time.Millisecond,
	}
	for _, m := range mut {
		m(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func awaitAgent(t *testing.T, ch <-chan *agent.Agent) *agent.Agent {
	t.Helper()
	select {
	case a := <-ch:
		return a
	case <-time.After(90 * time.Second):
		t.Fatal("agent never reached a terminal state at home")
		return nil
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFederatedDispatchAcrossAuthorities runs two servers under
// different naming authorities against one Federation: each server's
// binding lands in its own authority's store, and an agent dispatched
// from one authority to a server of the other resolves through the
// federation transparently.
func TestFederatedDispatchAcrossAuthorities(t *testing.T) {
	f := newFixture(t)
	umn := names.NewService()
	acme := names.NewService()
	fed := names.NewFederation()
	if err := fed.AddAuthority("umn.edu", umn); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddAuthority("acme.org", acme); err != nil {
		t.Fatal(err)
	}

	home := f.startNamed(t, names.Server("umn.edu", "home"), "home:7000", fed)
	defer home.Stop()
	remote := f.startNamed(t, names.Server("acme.org", "w1"), "w1:7000", fed)
	defer remote.Stop()

	// Authority partitioning: each binding lives in exactly one store.
	if _, err := acme.Resolve(remote.Name()); err != nil {
		t.Fatalf("remote server missing from its own authority store: %v", err)
	}
	if _, err := umn.Resolve(remote.Name()); err == nil {
		t.Fatal("acme.org binding leaked into the umn.edu store")
	}
	if _, err := umn.Resolve(home.Name()); err != nil {
		t.Fatalf("home server missing from umn.edu store: %v", err)
	}

	a := f.agent(t, "traveler", "module m\nfunc main() { report(1) }",
		agent.Itinerary{Stops: []agent.Stop{
			{Servers: []names.Name{remote.Name()}, Entry: "main"},
		}}, "home:7000")
	ch := home.Await(a.Name)
	if err := home.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	back := awaitAgent(t, ch)
	if len(back.Results) != 1 {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	if remote.Arrivals() != 1 {
		t.Fatalf("remote arrivals = %d, want 1", remote.Arrivals())
	}
}

// TestUnknownAuthorityFailsPermanently: a stop whose first alternative
// names a server under an unregistered authority must fail that
// alternative immediately — ErrNoAuthority is permanent, no retry
// budget is burned — and fall through to the live alternative.
func TestUnknownAuthorityFailsPermanently(t *testing.T) {
	f := newFixture(t)
	umn := names.NewService()
	fed := names.NewFederation()
	if err := fed.AddAuthority("umn.edu", umn); err != nil {
		t.Fatal(err)
	}
	home := f.startNamed(t, names.Server("umn.edu", "home"), "home:7000", fed)
	defer home.Stop()
	worker := f.startNamed(t, names.Server("umn.edu", "w1"), "w1:7000", fed)
	defer worker.Stop()

	ghost := names.Server("nowhere.net", "ghost")
	a := f.agent(t, "fallback", "module m\nfunc main() { report(1) }",
		agent.Itinerary{Stops: []agent.Stop{
			{Servers: []names.Name{ghost, worker.Name()}, Entry: "main"},
		}}, "home:7000")
	ch := home.Await(a.Name)
	if err := home.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	back := awaitAgent(t, ch)
	if len(back.Results) != 1 {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	if worker.Arrivals() != 1 {
		t.Fatalf("worker arrivals = %d, want 1", worker.Arrivals())
	}
	// Permanent classification means the unknown authority consumed no
	// retry attempts (a healthy network saw no transient failures).
	if st := home.Stats(); st.Retries != 0 {
		t.Errorf("retries = %d, want 0 (ErrNoAuthority must classify permanent)", st.Retries)
	}
}

// TestFederationPartitionHealsAndConverges launches an agent across a
// partitioned inter-authority link; retries, dead-letter parking and
// redelivery must carry it over once the partition heals.
func TestFederationPartitionHealsAndConverges(t *testing.T) {
	f := newFixture(t)
	umn := names.NewService()
	acme := names.NewService()
	fed := names.NewFederation()
	if err := fed.AddAuthority("umn.edu", umn); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddAuthority("acme.org", acme); err != nil {
		t.Fatal(err)
	}
	// A retry policy patient enough to ride out the 50ms partition.
	patient := func(cfg *Config) {
		cfg.Retry = retry.Policy{MaxAttempts: 12,
			BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	}
	home := f.startNamed(t, names.Server("umn.edu", "home"), "home:7000", fed, patient)
	defer home.Stop()
	remote := f.startNamed(t, names.Server("acme.org", "w1"), "w1:7000", fed, patient)
	defer remote.Stop()

	f.nw.Partition("home:7000", "w1:7000")
	a := f.agent(t, "crosser", "module m\nfunc main() { report(1) }",
		agent.Itinerary{Stops: []agent.Stop{
			{Servers: []names.Name{remote.Name()}, Entry: "main"},
		}}, "home:7000")
	ch := home.Await(a.Name)
	if err := home.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	f.nw.Heal("home:7000", "w1:7000")

	back := awaitAgent(t, ch)
	if len(back.Results) != 1 {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	if st := home.Stats(); st.Retries == 0 && st.Parked == 0 {
		t.Errorf("stats = %+v: partition left no trace in retries or parking", st)
	}
}

// TestProximityRoutingPrefersNearest attaches a netsim latency matrix
// and checks that a stop with three alternatives dispatches to the one
// the matrix says is closest.
func TestProximityRoutingPrefersNearest(t *testing.T) {
	f := newFixture(t)
	lm := netsim.NewLatencyMatrix(netsim.Model{Latency: 10 * time.Millisecond})
	lm.SetLatency("home:7000", "w2:7000", 30*time.Millisecond)
	lm.SetLatency("home:7000", "w3:7000", 20*time.Millisecond)
	lm.SetLatency("home:7000", "w4:7000", 2*time.Millisecond)
	f.nw.SetLatencyMatrix(lm)

	ns := names.NewService()
	mk := func(short, addr string) *Server {
		cfg := f.config(t, short, addr)
		cfg.NameService = ns
		cfg.Retry = fastRetry()
		cfg.RedeliverEvery = 20 * time.Millisecond
		cfg.Proximity = f.nw.Latency
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	home := mk("home", "home:7000")
	defer home.Stop()
	w2 := mk("w2", "w2:7000")
	defer w2.Stop()
	w3 := mk("w3", "w3:7000")
	defer w3.Stop()
	w4 := mk("w4", "w4:7000")
	defer w4.Stop()

	a := f.agent(t, "nearest", "module m\nfunc main() { report(1) }",
		agent.Itinerary{Stops: []agent.Stop{
			{Servers: []names.Name{w2.Name(), w3.Name(), w4.Name()}, Entry: "main"},
		}}, "home:7000")
	ch := home.Await(a.Name)
	if err := home.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	back := awaitAgent(t, ch)
	if len(back.Results) != 1 {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	if got := w4.Arrivals(); got != 1 {
		t.Errorf("nearest alternative w4 arrivals = %d, want 1", got)
	}
	if w2.Arrivals() != 0 || w3.Arrivals() != 0 {
		t.Errorf("farther alternatives were visited: w2=%d w3=%d",
			w2.Arrivals(), w3.Arrivals())
	}
}

// TestColocatePrefersNearestReplica installs the same resource name on
// two servers (BindReplica makes them alternative locations) and
// checks that colocate moves the agent to the replica nearest to where
// it is running.
func TestColocatePrefersNearestReplica(t *testing.T) {
	f := newFixture(t)
	lm := netsim.NewLatencyMatrix(netsim.Model{Latency: 10 * time.Millisecond})
	lm.SetLatency("w3:7000", "w2:7000", 50*time.Millisecond)
	lm.SetLatency("w3:7000", "w4:7000", 2*time.Millisecond)
	f.nw.SetLatencyMatrix(lm)

	ns := names.NewService()
	mk := func(short, addr string) *Server {
		cfg := f.config(t, short, addr)
		cfg.NameService = ns
		cfg.Retry = fastRetry()
		cfg.RedeliverEvery = 20 * time.Millisecond
		cfg.Proximity = f.nw.Latency
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	home := mk("home", "home:7000")
	defer home.Stop()
	w2 := mk("w2", "w2:7000")
	defer w2.Stop()
	w3 := mk("w3", "w3:7000")
	defer w3.Stop()
	w4 := mk("w4", "w4:7000")
	defer w4.Stop()

	install := func(s *Server) {
		def := &resource.Def{
			ResourceImpl: resource.NewImpl(names.Resource("umn.edu", "data"),
				names.Principal("umn.edu", "admin"), ""),
			Path: "data",
			Methods: map[string]resource.Method{
				"ping": func([]vm.Value) (vm.Value, error) { return vm.I(1), nil },
			},
		}
		if err := s.InstallResource(registry.Entry{
			Name: def.Name, Resource: def, AP: def, OwnerDomain: domain.ServerID,
		}); err != nil {
			t.Fatal(err)
		}
	}
	install(w2)
	install(w4)

	// The agent reaches w3 first, then colocates with the resource;
	// the nearest replica (per the matrix, from w3) is on w4.
	a := f.agent(t, "seeker", `module m
func main() { colocate("ajanta:resource:umn.edu/data", "work") }
func work() { report(server_name()) }`,
		agent.Itinerary{Stops: []agent.Stop{
			{Servers: []names.Name{w3.Name()}, Entry: "main"},
		}}, "home:7000")
	ch := home.Await(a.Name)
	if err := home.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	back := awaitAgent(t, ch)
	if len(back.Results) != 1 {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	if got := back.Results[0].Text(); got != w4.Name().String() {
		t.Errorf("agent colocated at %s, want nearest replica %s", got, w4.Name())
	}
}

// TestTransferAckRebindsAgentLocation: every accepted transfer ack
// rebinds the agent's name at the sender — zero extra round-trips —
// so after a round trip the directory's last word is the home server.
func TestTransferAckRebindsAgentLocation(t *testing.T) {
	f := newFixture(t)
	ns := names.NewService()
	home := f.startServer(t, "home", "home:7000", ns)
	defer home.Stop()
	w2 := f.startServer(t, "w2", "w2:7000", ns)
	defer w2.Stop()

	a := f.agent(t, "mover", "module m\nfunc main() { report(1) }",
		agent.Itinerary{Stops: []agent.Stop{
			{Servers: []names.Name{w2.Name()}, Entry: "main"},
		}}, "home:7000")
	an := a.Name
	ch := home.Await(an)
	if err := home.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	back := awaitAgent(t, ch)
	if len(back.Results) != 1 {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	// The homecoming ack fires on w2's sending goroutine, concurrent
	// with home's delivery; poll for the final binding.
	waitUntil(t, "agent rebound to home", func() bool {
		b, err := ns.Resolve(an)
		if err != nil {
			return false
		}
		p := b.Primary()
		return p.Address == "home:7000" && p.ServerName == home.Name() && b.Epoch >= 2
	})
}

// TestRebindFailureSurfacedInStats: when the post-ack rebind cannot
// reach any authority (the agent's name is under an unregistered
// authority), the failure is counted in Stats rather than silently
// discarded — the regression the old `_ = Bind` hid.
func TestRebindFailureSurfacedInStats(t *testing.T) {
	f := newFixture(t)
	umn := names.NewService()
	fed := names.NewFederation()
	if err := fed.AddAuthority("umn.edu", umn); err != nil {
		t.Fatal(err)
	}
	home := f.startNamed(t, names.Server("umn.edu", "home"), "home:7000", fed)
	defer home.Stop()
	w2 := f.startNamed(t, names.Server("umn.edu", "w2"), "w2:7000", fed)
	defer w2.Stop()

	c, err := cred.Issue(f.owner, names.Agent("nowhere.net", "stray"),
		f.owner.Name, cred.NewRightSet(cred.All), time.Hour, "home:7000")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := asl.Compile("module m\nfunc main() { report(1) }")
	if err != nil {
		t.Fatal(err)
	}
	a, err := agent.New(c, mod.Name, []vm.Module{*mod}, agent.Itinerary{
		Stops: []agent.Stop{{Servers: []names.Name{w2.Name()}, Entry: "main"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := home.Await(a.Name)
	if err := home.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	back := awaitAgent(t, ch)
	if len(back.Results) != 1 {
		t.Fatalf("results = %v, log = %v", back.Results, back.Log)
	}
	// home's outbound transfer was acked, its rebind hit ErrNoAuthority.
	waitUntil(t, "rebind failure counted", func() bool {
		return home.Stats().RebindFailures >= 1
	})
}

// TestChaosStaleCacheConvergence is the tentpole invariant check for
// the lease-cached resolvers: servers resolve dispatch targets through
// per-server caches with a deliberately short lease while a seeded
// fault script rebinds a server name to a new address (a second
// incarnation binds over the old one, then the old machine crashes for
// good), partitions and heals a link, and crash/restarts another
// worker. Stale cache entries must converge — lease expiry refreshes
// them, failed sends invalidate them — and every agent must reach a
// terminal state at home. Nothing may be lost.
func TestChaosStaleCacheConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	const (
		nAgents = 16
		seed    = 43
		lease   = 25 * time.Millisecond
	)
	f := newFixture(t)
	ns := names.NewServiceWithLease(lease)
	pol := retry.Policy{
		MaxAttempts: 4,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
	}
	mk := func(short, addr string) *Server {
		cfg := f.config(t, short, addr)
		cfg.NameService = ns
		cfg.Retry = pol
		cfg.RedeliverEvery = 25 * time.Millisecond
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	home := mk("home", "home:7000")
	defer home.Stop()
	s2 := mk("w2", "w2:7000")
	defer s2.Stop()
	s3old := mk("w3", "w3:7000") // will be replaced mid-run, crashes for good
	s4 := mk("w4", "w4:7000")
	defer s4.Stop()

	// Warm every resolver cache with a fault-free tour so the fleet
	// starts against lease-valid entries that then go stale.
	warm := f.agent(t, "warmup", "module m\nfunc main() { report(1) }",
		agent.Itinerary{Stops: []agent.Stop{
			{Servers: []names.Name{s2.Name()}, Entry: "main"},
			{Servers: []names.Name{s3old.Name()}, Entry: "main"},
			{Servers: []names.Name{s4.Name()}, Entry: "main"},
		}}, "home:7000")
	wch := home.Await(warm.Name)
	if err := home.LaunchLocal(warm); err != nil {
		t.Fatal(err)
	}
	if back := awaitAgent(t, wch); len(back.Results) != 3 {
		t.Fatalf("warmup results = %v, log = %v", back.Results, back.Log)
	}

	// Seeded background noise on every link.
	f.nw.SeedFaults(seed)
	addrs := []string{"home:7000", "w2:7000", "w3:7000", "w3b:7000", "w4:7000"}
	for i, x := range addrs {
		for _, y := range addrs[i+1:] {
			f.nw.SetDropProb(x, y, 0.2)
		}
	}

	workers := []names.Name{s2.Name(), s3old.Name(), s4.Name()}
	type launched struct {
		name names.Name
		ch   <-chan *agent.Agent
	}
	fleet := make([]launched, 0, nAgents)
	for i := 0; i < nAgents; i++ {
		var stops []agent.Stop
		for hop := 0; hop < 3; hop++ {
			first := workers[(i+hop)%len(workers)]
			second := workers[(i+hop+1)%len(workers)]
			stops = append(stops, agent.Stop{
				Servers: []names.Name{first, second}, Entry: "main",
			})
		}
		a := f.agent(t, fmt.Sprintf("stale%02d", i),
			"module m\nfunc main() { report(1) }",
			agent.Itinerary{Stops: stops}, "home:7000")
		ch := home.Await(a.Name)
		if err := home.LaunchLocal(a); err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, launched{name: a.Name, ch: ch})
	}

	// The fault script. The rebind: a new incarnation of w3 binds the
	// same server name at a new address (epoch bump in the authority),
	// then the old machine crashes for good. Caches still holding
	// w3:7000 within the lease window either expire into a refresh or
	// fail a send and invalidate — both must converge on w3b:7000.
	var s3new *Server
	scriptDone := make(chan struct{})
	go func() {
		defer close(scriptDone)
		time.Sleep(10 * time.Millisecond)
		s3new = mk("w3", "w3b:7000")
		time.Sleep(30 * time.Millisecond)
		s3old.Crash() // never restarts: the name now lives at w3b:7000
		f.nw.Partition("home:7000", "w2:7000")
		time.Sleep(80 * time.Millisecond)
		f.nw.Heal("home:7000", "w2:7000")
		s4.Crash()
		time.Sleep(80 * time.Millisecond)
		if err := s4.Restart(); err != nil {
			t.Errorf("restart: %v", err)
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	returned := make(map[names.Name]*agent.Agent, nAgents)
	for _, l := range fleet {
		wg.Add(1)
		go func(l launched) {
			defer wg.Done()
			select {
			case back := <-l.ch:
				mu.Lock()
				returned[l.name] = back
				mu.Unlock()
			case <-time.After(90 * time.Second):
			}
		}(l)
	}
	wg.Wait()
	<-scriptDone
	defer s3new.Stop()
	defer s3old.Stop()

	var lost []string
	done, failed := 0, 0
	for _, l := range fleet {
		back, ok := returned[l.name]
		if !ok {
			lost = append(lost, l.name.String())
			continue
		}
		if len(back.Results) == 3 {
			done++
		} else if len(back.Log) > 0 {
			failed++
		} else {
			t.Errorf("%s came home with neither full results nor a log: %+v",
				l.name, back.Results)
		}
	}
	servers := []*Server{home, s2, s3old, s3new, s4}
	if len(lost) > 0 {
		for _, s := range servers {
			t.Logf("%s(%s) stats: %+v parked: %v",
				s.Name(), s.Address(), s.Stats(), s.ParkedAgents())
		}
		t.Fatalf("%d/%d agents lost: %s", len(lost), nAgents, strings.Join(lost, ", "))
	}

	// The authority's last word on w3 is the new incarnation.
	if b, err := ns.Resolve(s3new.Name()); err != nil || b.Primary().Address != "w3b:7000" {
		t.Errorf("authority resolves w3 to %+v, %v; want w3b:7000", b, err)
	}

	var st Stats
	var rs names.ResolverStats
	for _, s := range servers {
		ss := s.Stats()
		st.Retries += ss.Retries
		st.Parked += ss.Parked
		st.Redelivered += ss.Redelivered
		r := s.ResolverStats()
		rs.Hits += r.Hits
		rs.StaleServes += r.StaleServes
		rs.Misses += r.Misses
		rs.Refreshes += r.Refreshes
		rs.Invalidations += r.Invalidations
	}
	t.Logf("chaos: %d done, %d failed-with-log, dispatch=%+v resolver=%+v faults=%+v",
		done, failed, st, rs, f.nw.FaultCounters())
	if st.Retries == 0 {
		t.Error("chaos run exercised no retries — fault injection inert")
	}
	if rs.Hits == 0 {
		t.Error("resolver caches served no hits — lease caching inert")
	}
	if rs.Invalidations == 0 {
		t.Error("no cache invalidations — failed sends are not invalidating stale entries")
	}
}
